"""Tests for the event-DAG command scheduler (the OOO queue engine).

Covers graph construction (explicit edges + RAW/WAR/WAW hazard
inference), flush/drain semantics, cross-queue waits, deferred errors,
wait-list cycles, and functional equivalence with the eager engine.
"""

import threading
import time

import numpy as np
import pytest

from repro import minicl as cl
from repro import workers
from repro.minicl.errors import InvalidOperation
from repro.minicl.schedule import (
    CommandScheduler,
    reset_scheduler_stats,
    scheduler_stats,
)


@pytest.fixture
def ctx():
    return cl.Context(cl.cpu_platform().devices)


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_scheduler_stats()
    yield
    reset_scheduler_stats()


@pytest.fixture
def four_workers():
    workers.set_worker_count(4)
    yield
    workers.set_worker_count(None)


def _buf(ctx, n=1024):
    return ctx.create_buffer(
        cl.mem_flags.READ_WRITE, size=4 * n, dtype=np.float32
    ), np.arange(n, dtype=np.float32)


class TestHazardInference:
    """reads/writes sets turn into RAW / WAR / WAW edges."""

    def _node(self, sched, reads=(), writes=(), label=""):
        return sched.add(lambda: None, None, reads=reads, writes=writes,
                         label=label)

    def test_raw_edge(self):
        sched = CommandScheduler()
        b = object()
        w = self._node(sched, writes=(b,), label="w")
        r = self._node(sched, reads=(b,), label="r")
        assert w in r.deps
        assert scheduler_stats()["hazard_edges"] == 1
        sched.drain()

    def test_war_edge(self):
        sched = CommandScheduler()
        b = object()
        r = self._node(sched, reads=(b,), label="r")
        w = self._node(sched, writes=(b,), label="w")
        assert r in w.deps
        sched.drain()

    def test_waw_edge(self):
        sched = CommandScheduler()
        b = object()
        w1 = self._node(sched, writes=(b,), label="w1")
        w2 = self._node(sched, writes=(b,), label="w2")
        assert w1 in w2.deps
        sched.drain()

    def test_independent_buffers_no_edge(self):
        sched = CommandScheduler()
        w1 = self._node(sched, writes=(object(),))
        w2 = self._node(sched, writes=(object(),))
        assert not w2.deps and not w1.deps
        assert scheduler_stats()["hazard_edges"] == 0
        sched.drain()

    def test_two_readers_share_no_edge(self):
        sched = CommandScheduler()
        b = object()
        self._node(sched, writes=(b,))
        r1 = self._node(sched, reads=(b,))
        r2 = self._node(sched, reads=(b,))
        assert r1 not in r2.deps  # loads commute
        sched.drain()

    def test_hazard_order_is_respected_under_parallel_retirement(
        self, four_workers
    ):
        sched = CommandScheduler()
        b = object()
        order = []
        lock = threading.Lock()

        def act(tag, delay=0.0):
            def run():
                if delay:
                    time.sleep(delay)
                with lock:
                    order.append(tag)
            return run

        # slow writer, then a chain of dependents on the same buffer
        sched.add(act("w1", 0.02), None, writes=(b,))
        sched.add(act("r1"), None, reads=(b,))
        sched.add(act("w2"), None, writes=(b,))
        sched.drain()
        assert order.index("w1") < order.index("r1") < order.index("w2")


class TestFlushAndDrain:
    def test_flush_does_not_block(self):
        sched = CommandScheduler()
        release = threading.Event()
        started = threading.Event()

        def slow():
            started.set()
            release.wait(5.0)

        sched.add(slow, None)
        t0 = time.perf_counter()
        sched.flush()
        assert time.perf_counter() - t0 < 1.0  # returned before the action
        assert started.wait(5.0)
        assert sched.pending == 1  # still retiring
        release.set()
        sched.drain()
        assert sched.pending == 0

    def test_add_alone_does_not_execute(self):
        sched = CommandScheduler()
        ran = []
        sched.add(lambda: ran.append(1), None)
        time.sleep(0.05)
        assert not ran  # recorded, never released
        sched.drain()
        assert ran == [1]

    def test_deferred_error_raised_at_drain(self):
        sched = CommandScheduler()

        def boom():
            raise ZeroDivisionError("deferred failure")

        sched.add(boom, None)
        with pytest.raises(ZeroDivisionError):
            sched.drain()
        # error is consumed: a second drain is clean
        sched.drain()

    def test_lowest_node_id_error_wins(self):
        sched = CommandScheduler()

        def first():
            time.sleep(0.02)
            raise ValueError("first enqueued")

        def second():
            raise KeyError("second enqueued")

        sched.add(first, None, writes=())
        sched.add(second, None)
        with pytest.raises(ValueError):
            sched.drain()


class TestCycleDetection:
    def test_wait_list_cycle_raises_invalid_operation(self):
        sched = CommandScheduler()
        a = sched.add(lambda: None, None, label="a")
        b = sched.add(lambda: None, None, label="b")
        sched.add_dependency(a, b)  # a waits on b ...
        sched.add_dependency(b, a)  # ... and b waits on a
        with pytest.raises(InvalidOperation, match="cycle"):
            sched.drain()

    def test_self_edge_is_ignored(self):
        sched = CommandScheduler()
        b = object()
        # reads and writes the same buffer: must not depend on itself
        n = sched.add(lambda: None, None, reads=(b,), writes=(b,))
        assert n not in n.deps
        sched.drain()


class TestQueueIntegration:
    """The DAG engine behind ``create_command_queue(out_of_order=True)``."""

    def test_write_is_deferred_until_wait(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b, h = _buf(ctx)
        ev = q.enqueue_write_buffer(b, h, blocking=False)
        assert ev.status != cl.command_status.COMPLETE
        ev.wait()
        assert ev.status == cl.command_status.COMPLETE
        assert (b.array == h).all()

    def test_finish_retires_everything(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b, h = _buf(ctx)
        q.enqueue_write_buffer(b, h, blocking=False)
        q.enqueue_copy_buffer(b, b2 := ctx.create_buffer(
            cl.mem_flags.READ_WRITE, size=h.nbytes, dtype=np.float32))
        q.finish()
        assert (b2.array == h).all()
        assert scheduler_stats()["executed"] >= 2

    def test_flush_is_non_blocking_submission(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b, h = _buf(ctx)
        ev = q.enqueue_write_buffer(b, h, blocking=False)
        q.flush()  # must not raise and must not require completion
        ev.wait()
        assert (b.array == h).all()

    def test_duplicate_events_in_wait_list(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b, h = _buf(ctx)
        e1 = q.enqueue_write_buffer(b, h, blocking=False)
        e2 = q.enqueue_marker(wait_for=[e1, e1, e1])
        e2.wait()
        assert e2.status == cl.command_status.COMPLETE
        # duplicates collapse into a single explicit edge
        assert scheduler_stats()["explicit_edges"] == 1

    def test_marker_anchors_to_all_prior_commands(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b1, h1 = _buf(ctx)
        b2, h2 = _buf(ctx)
        q.enqueue_write_buffer(b1, h1, blocking=False)
        q.enqueue_write_buffer(b2, h2, blocking=False)
        m = q.enqueue_marker()
        m.wait()
        # marker completion implies both writes retired
        assert (b1.array == h1).all() and (b2.array == h2).all()

    def test_barrier_orders_later_commands(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b, h = _buf(ctx)
        q.enqueue_write_buffer(b, h, blocking=False)
        q.enqueue_barrier()
        # the barrier edge forces the read to see the write's data
        out = np.zeros_like(h)
        q.enqueue_read_buffer(b, out, blocking=True)
        assert (out == h).all()

    def test_cross_queue_wait_same_context(self, ctx):
        q1 = ctx.create_command_queue(out_of_order=True)
        q2 = ctx.create_command_queue(out_of_order=True)
        b, h = _buf(ctx)
        dst = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=h.nbytes,
                                dtype=np.float32)
        e1 = q1.enqueue_write_buffer(b, h, blocking=False)
        e2 = q2.enqueue_copy_buffer(b, dst, wait_for=[e1])
        e2.wait()
        assert (dst.array == h).all()

    def test_reentrant_wait_from_callback(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b, h = _buf(ctx)
        ev = q.enqueue_write_buffer(b, h, blocking=False)
        seen = []

        def cb(e):
            e.wait()  # must not deadlock: COMPLETE is set before callbacks
            seen.append(e.status)

        ev.add_callback(cb)
        ev.wait()
        assert seen == [cl.command_status.COMPLETE]

    def test_failed_kernel_error_surfaces_at_wait(self, ctx):
        from repro.kernelir.builder import KernelBuilder
        from repro.kernelir.types import F32

        kb = KernelBuilder("oob")
        x = kb.buffer("x", F32)
        # out-of-bounds store: index past the end of a 16-element buffer
        x[kb.global_id(0) + 1_000_000] = 1.0
        k = ctx.create_program(kb.finish()).create_kernel("oob")
        q = ctx.create_command_queue(out_of_order=True)
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=4 * 16,
                              dtype=np.float32)
        k.set_args(b)
        ev = q.enqueue_nd_range_kernel(k, (16,), None)
        with pytest.raises(Exception):
            ev.wait()


class TestEngineEquivalence:
    """OOO DAG execution must match eager in-order execution bit-for-bit."""

    def _pipeline(self, ctx, *, out_of_order):
        from repro.kernelir.builder import KernelBuilder
        from repro.kernelir.types import F32

        kb = KernelBuilder("scale2")
        x = kb.buffer("x", F32)
        x[kb.global_id(0)] = x[kb.global_id(0)] * 2.0 + 1.0
        k = ctx.create_program(kb.finish()).create_kernel("scale2")

        q = ctx.create_command_queue(out_of_order=out_of_order)
        n = 4096
        src = np.linspace(-8.0, 8.0, n, dtype=np.float32)
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=4 * n,
                              dtype=np.float32)
        dst = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=4 * n,
                                dtype=np.float32)
        k.set_args(b)
        q.enqueue_write_buffer(b, src, blocking=False)
        q.enqueue_nd_range_kernel(k, (n,), (64,))
        q.enqueue_copy_buffer(b, dst)
        out = np.zeros(n, np.float32)
        q.enqueue_read_buffer(dst, out, blocking=True)
        q.finish()
        return out

    def test_buffer_results_bitwise_equal(self, ctx, four_workers):
        eager = self._pipeline(ctx, out_of_order=False)
        dag = self._pipeline(ctx, out_of_order=True)
        assert (eager.view(np.uint32) == dag.view(np.uint32)).all()

    def test_virtual_profile_independent_of_engine(self, ctx, monkeypatch):
        def stamps(disable_engine):
            if disable_engine:
                monkeypatch.setenv("REPRO_NO_OOO", "1")
            else:
                monkeypatch.delenv("REPRO_NO_OOO", raising=False)
            q = ctx.create_command_queue(out_of_order=True)
            b, h = _buf(ctx, 1 << 16)
            b2, h2 = _buf(ctx, 1 << 18)
            e1 = q.enqueue_write_buffer(b, h, blocking=False)
            e2 = q.enqueue_write_buffer(b2, h2, blocking=False)
            e3 = q.enqueue_marker(wait_for=[e1, e2])
            q.finish()
            return [(e.profile.queued, e.profile.submit, e.profile.start,
                     e.profile.end) for e in (e1, e2, e3)]

        assert stamps(True) == stamps(False)

    def test_worker_count_does_not_change_virtual_time(self, ctx):
        def end_ns(nworkers):
            workers.set_worker_count(nworkers)
            try:
                q = ctx.create_command_queue(out_of_order=True)
                b, h = _buf(ctx, 1 << 16)
                q.enqueue_write_buffer(b, h, blocking=False)
                q.enqueue_write_buffer(b, h, blocking=False)
                return q.finish()
            finally:
                workers.set_worker_count(None)

        assert end_ns(1) == end_ns(4)
