"""Persistent on-disk cache for compiled kernels and launch-plan verdicts.

pocl (and every production OpenCL runtime) keys a kernel binary cache on a
hash of the source and the compiler version so that cold processes skip
codegen entirely; this module is the same idea for the repo's kernel JIT.
Two entry kinds live under ``~/.cache/repro`` (override with
``REPRO_CACHE_DIR``):

* **kernels** — the self-contained generated Python source of one
  :class:`~repro.kernelir.compile.CompiledKernel` (or the negative
  "unsupported IR" verdict), keyed on ``Kernel.fingerprint()`` + compile
  options;
* **plans** — the launch-plan facts that are expensive to recompute (the
  chunk-safety race proof and the chosen coarsening factor), keyed on the
  kernel key + NDRange + scalars;
* **verify** — the harness verifier's full diagnostic report for one
  (kernel, launch, data shape) triple, so warm benchmark runs skip the
  abstract-interpretation fixpoint and the race rules entirely;
* **tune** — the auto-tuner's measured objective for one (kernel, knob
  point) pair, so repeated or widened sweeps re-run only new points
  (see :mod:`repro.tune.store`);
* **analysis** — one serialized dataflow verdict bundle per
  (kernel fingerprint, launch shape, referenced scalars) — the replayable
  form of :class:`repro.kernelir.dataflow.KernelDataflow`, so warm runs
  skip the abstract-interpretation fixpoint entirely;
* **serve** — one experiment-service result payload per dedupe key
  (:mod:`repro.serve.service`), so the response cache survives daemon
  restarts and is shared between ``serve`` and CLI runs.

Entries are partitioned by a **code version** — a hash over the source of
every module that defines generated-code semantics — so upgrading the repo
silently invalidates stale entries; each payload additionally carries the
version stamp and is rejected on mismatch (belt and braces, and it makes
the invalidation unit-testable).  Writes go through a temp file +
``os.replace`` so concurrent writers never publish a torn entry, and loads
treat any malformed payload as a miss.  ``REPRO_NO_CACHE=1`` bypasses the
disk exactly like it bypasses the in-memory plan caches.

``python -m repro cache {stats,clear}`` inspects and resets the cache.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
from pathlib import Path
from typing import Optional

__all__ = [
    "cache_dir",
    "clear",
    "code_version",
    "disk_cache_stats",
    "enabled",
    "load_analysis",
    "load_kernel",
    "load_plan",
    "load_serve",
    "load_tune",
    "load_verify",
    "reset_disk_cache_stats",
    "store_analysis",
    "store_kernel",
    "store_plan",
    "store_serve",
    "store_tune",
    "store_verify",
    "sweep_stale_tmp",
    "usage",
]

#: the entry kinds (subdirectories) a version directory may contain
PARTITIONS = ("kernels", "plans", "verify", "tune", "analysis", "serve")

#: modules whose source defines the semantics of generated code and of the
#: cached plan verdicts; any edit to them must invalidate the cache
_VERSIONED_MODULES = (
    "repro.kernelir.ast",
    "repro.kernelir.types",
    "repro.kernelir.interp",
    "repro.kernelir.compile",
    "repro.kernelir.coarsen",
    "repro.kernelir.fuse",
    "repro.kernelir.dataflow",
    "repro.kernelir.vectorize",
    "repro.kernelir.verify",
)

_STATS = {
    "kernel_hits": 0,
    "kernel_misses": 0,
    "kernel_stores": 0,
    "plan_hits": 0,
    "plan_misses": 0,
    "plan_stores": 0,
    "verify_hits": 0,
    "verify_misses": 0,
    "verify_stores": 0,
    "tune_hits": 0,
    "tune_misses": 0,
    "tune_stores": 0,
    "analysis_hits": 0,
    "analysis_misses": 0,
    "analysis_stores": 0,
    "serve_hits": 0,
    "serve_misses": 0,
    "serve_stores": 0,
    "errors": 0,
}

_tmp_counter = itertools.count()
_code_version: Optional[str] = None


def cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


def enabled() -> bool:
    """Disk persistence honors the same kill switch as the plan caches."""
    from . import plancache

    return plancache.caching_enabled()


def code_version() -> str:
    """Hash of every semantics-defining module's source (computed once)."""
    global _code_version
    if _code_version is None:
        import importlib

        h = hashlib.sha1()
        for modname in _VERSIONED_MODULES:
            mod = importlib.import_module(modname)
            try:
                h.update(Path(mod.__file__).read_bytes())
            except OSError:
                h.update(modname.encode())
        _code_version = h.hexdigest()
    return _code_version


def _entry_path(kind: str, key: tuple) -> Path:
    h = hashlib.sha1(repr(key).encode()).hexdigest()
    return cache_dir() / code_version()[:16] / kind / f"{h}.json"


def _load(kind: str, key: tuple) -> Optional[dict]:
    path = _entry_path(kind, key)
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
        if not isinstance(payload, dict):
            raise ValueError("cache entry is not an object")
        if payload.get("version") != code_version():
            return None  # stale stamp: treat as a miss, will be rewritten
        return payload
    except FileNotFoundError:
        return None
    except Exception:
        # torn/corrupted/foreign content: a miss, never an error upstream
        _STATS["errors"] += 1
        return None


def _store(kind: str, key: tuple, payload: dict) -> None:
    path = _entry_path(kind, key)
    payload = dict(payload)
    payload["version"] = code_version()
    # The publish protocol for concurrent multi-process (and, under the
    # experiment service, multi-thread) writers: serialize into a tmp file
    # that is unique per process *and* per write (pid + a process-global
    # counter), then atomically rename over the final path.  Two writers
    # racing on one key each publish a complete payload and the last
    # rename wins; readers either see the old complete entry or the new
    # complete entry, never a torn one.
    tmp = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        )
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        os.replace(tmp, path)
    except OSError:
        _STATS["errors"] += 1
        if tmp is not None:
            # never leave a half-written tmp file behind to accumulate
            try:
                os.unlink(tmp)
            except OSError:
                pass


# -- compiled kernels -------------------------------------------------------


def load_kernel(key: tuple) -> Optional[dict]:
    """The cached payload for one compile key, or ``None``.

    Payloads hold either ``{"source": <generated python>}`` or
    ``{"unsupported": <reason>}`` for kernels the JIT refused.
    """
    if not enabled():
        return None
    payload = _load("kernels", key)
    if payload is None or ("source" not in payload
                           and "unsupported" not in payload):
        _STATS["kernel_misses"] += 1
        return None
    _STATS["kernel_hits"] += 1
    return payload


def store_kernel(key: tuple, payload: dict) -> None:
    if not enabled():
        return
    _STATS["kernel_stores"] += 1
    _store("kernels", key, payload)


# -- launch-plan verdicts ---------------------------------------------------


def load_plan(key: tuple) -> Optional[dict]:
    """Cached ``{"parallel": bool, "coarsen": K}`` verdicts for one plan."""
    if not enabled():
        return None
    payload = _load("plans", key)
    if payload is None or "parallel" not in payload:
        _STATS["plan_misses"] += 1
        return None
    _STATS["plan_hits"] += 1
    return payload


def store_plan(key: tuple, payload: dict) -> None:
    if not enabled():
        return
    _STATS["plan_stores"] += 1
    _store("plans", key, payload)


# -- verifier reports -------------------------------------------------------


def load_verify(key: tuple) -> Optional[dict]:
    """Cached :class:`~repro.kernelir.verify.VerifyReport` payload, or None."""
    if not enabled():
        return None
    payload = _load("verify", key)
    if payload is None or not isinstance(payload.get("diagnostics"), list):
        _STATS["verify_misses"] += 1
        return None
    _STATS["verify_hits"] += 1
    return payload


def store_verify(key: tuple, payload: dict) -> None:
    if not enabled():
        return
    _STATS["verify_stores"] += 1
    _store("verify", key, payload)


# -- auto-tuner sweep results -----------------------------------------------


def load_tune(key: tuple) -> Optional[dict]:
    """Cached ``{"result": {...}}`` payload for one tuner sweep point.

    The key is the tuner's content address (kernel fingerprint + knob
    point + cost-model version; see :mod:`repro.tune.store`), so a
    repeated identical sweep loads every point from disk and re-executes
    nothing.
    """
    if not enabled():
        return None
    payload = _load("tune", key)
    if payload is None or not isinstance(payload.get("result"), dict):
        _STATS["tune_misses"] += 1
        return None
    _STATS["tune_hits"] += 1
    return payload


def store_tune(key: tuple, payload: dict) -> None:
    if not enabled():
        return
    _STATS["tune_stores"] += 1
    _store("tune", key, payload)


# -- dataflow analysis verdicts ---------------------------------------------


def load_analysis(key: tuple) -> Optional[dict]:
    """Cached serialized dataflow bundle for one launch key, or ``None``.

    Payloads carry the replayable fact groups of one
    :class:`~repro.kernelir.dataflow.KernelDataflow` (findings, access
    rows, vectorizer facts); the deserializer treats anything it cannot
    reconstruct as a miss, so a corrupt entry re-analyzes instead of
    crashing.
    """
    if not enabled():
        return None
    payload = _load("analysis", key)
    if payload is None or not isinstance(payload.get("accesses"), list):
        _STATS["analysis_misses"] += 1
        return None
    _STATS["analysis_hits"] += 1
    return payload


def store_analysis(key: tuple, payload: dict) -> None:
    if not enabled():
        return
    _STATS["analysis_stores"] += 1
    _store("analysis", key, payload)


# -- experiment-service results ---------------------------------------------


def load_serve(key: tuple) -> Optional[dict]:
    """Cached ``{"result": {...}}`` payload for one service dedupe key.

    The key is the service's cross-tenant dedupe identity (kernel
    fingerprint + resolved launch config), so a restarted daemon — or a
    CLI run on the same machine — answers repeat requests from disk
    without executing anything.
    """
    if not enabled():
        return None
    payload = _load("serve", key)
    if payload is None or not isinstance(payload.get("result"), dict):
        _STATS["serve_misses"] += 1
        return None
    _STATS["serve_hits"] += 1
    return payload


def store_serve(key: tuple, payload: dict) -> None:
    if not enabled():
        return
    _STATS["serve_stores"] += 1
    _store("serve", key, payload)


# -- maintenance / reporting ------------------------------------------------


def disk_cache_stats() -> dict:
    """This process's disk-cache activity (absorbed by ``repro.obs``)."""
    return dict(_STATS)


def reset_disk_cache_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


def usage() -> dict:
    """On-disk footprint: entry counts and bytes, split by code version.

    Each version's breakdown additionally splits by partition (the entry
    kinds in :data:`PARTITIONS`), and the totals are mirrored per
    partition at the top level so ``repro cache stats`` can print one row
    per kind.
    """
    root = cache_dir()
    out = {
        "dir": str(root),
        "code_version": code_version(),
        "entries": 0,
        "bytes": 0,
        "partitions": {p: {"entries": 0, "bytes": 0} for p in PARTITIONS},
        "versions": {},
    }
    if not root.is_dir():
        return out
    for vdir in sorted(p for p in root.iterdir() if p.is_dir()):
        n = size = 0
        parts = {p: {"entries": 0, "bytes": 0} for p in PARTITIONS}
        for f in vdir.rglob("*.json"):
            try:
                fsize = f.stat().st_size
            except OSError:
                continue
            n += 1
            size += fsize
            kind = f.parent.name
            if kind in parts:
                parts[kind]["entries"] += 1
                parts[kind]["bytes"] += fsize
                out["partitions"][kind]["entries"] += 1
                out["partitions"][kind]["bytes"] += fsize
        out["versions"][vdir.name] = {
            "entries": n, "bytes": size, "partitions": parts,
        }
        out["entries"] += n
        out["bytes"] += size
    return out


def clear(partition: Optional[str] = None) -> int:
    """Delete cached entries (all code versions); returns entries removed.

    ``partition`` restricts the wipe to one entry kind — e.g.
    ``clear("tune")`` resets the tuner's sweep store without discarding
    compiled kernels or plan verdicts.
    """
    root = cache_dir()
    if not root.is_dir():
        return 0
    if partition is None:
        removed = sum(1 for _ in root.rglob("*.json"))
        shutil.rmtree(root, ignore_errors=True)
        return removed
    if partition not in PARTITIONS:
        raise ValueError(
            f"unknown cache partition {partition!r}; known: {PARTITIONS}"
        )
    removed = 0
    for vdir in (p for p in root.iterdir() if p.is_dir()):
        pdir = vdir / partition
        if pdir.is_dir():
            removed += sum(1 for _ in pdir.rglob("*.json"))
            shutil.rmtree(pdir, ignore_errors=True)
    return removed


def sweep_stale_tmp(max_age_seconds: float = 3600.0) -> int:
    """Remove orphaned ``*.tmp`` publish files older than ``max_age_seconds``.

    A writer that crashes between serializing and renaming leaves its tmp
    file behind; they are invisible to loads (only ``*.json`` is read) but
    would accumulate under a long-lived service.  ``repro serve`` calls
    this on startup; the age guard means an *in-flight* concurrent write
    is never swept.  Returns the number of files removed.
    """
    import time

    root = cache_dir()
    if not root.is_dir():
        return 0
    removed = 0
    cutoff = time.time() - max_age_seconds
    for f in root.rglob("*.tmp"):
        try:
            if f.stat().st_mtime < cutoff:
                f.unlink()
                removed += 1
        except OSError:
            continue
    return removed
