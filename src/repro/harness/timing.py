"""The paper's timing methodology (Section III-A), on virtual time.

    "We use the wall-clock execution time.  To measure stable execution time
    without fluctuation, we iterate the kernel execution until the total
    execution time of an application reaches a significant enough running
    time, 90 seconds in our evaluation."

We do the same over the queue's virtual clock: a launch is repeated until 90
virtual seconds have elapsed and the *average per-invocation* kernel time is
reported.  Because the simulator is deterministic, the average converges
after one repetition; ``max_invocations`` caps the loop so host time stays
sane while the methodology stays faithful.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..minicl.event import Event

__all__ = ["Measurement", "repeat_to_target", "TARGET_VIRTUAL_SECONDS"]

TARGET_VIRTUAL_SECONDS = 90.0


@dataclasses.dataclass
class Measurement:
    """Averaged timing of a repeated command."""

    mean_ns: float
    invocations: int
    total_virtual_ns: float

    @property
    def mean_ms(self) -> float:
        return self.mean_ns / 1e6

    def throughput(self, work_per_invocation: float) -> float:
        """Work units per virtual nanosecond."""
        return work_per_invocation / self.mean_ns if self.mean_ns > 0 else 0.0


def repeat_to_target(
    enqueue: Callable[[], Event],
    *,
    target_seconds: float = TARGET_VIRTUAL_SECONDS,
    max_invocations: int = 10,
    min_invocations: int = 1,
) -> Measurement:
    """Repeat ``enqueue`` until the paper's 90-virtual-second budget is met.

    ``enqueue`` must perform one kernel invocation (or transfer) and return
    its event.  The deterministic simulator makes more than a few
    repetitions redundant, hence ``max_invocations``.
    """
    if max_invocations < min_invocations:
        raise ValueError("max_invocations < min_invocations")
    target_ns = target_seconds * 1e9
    total = 0.0
    n = 0
    while n < min_invocations or (total < target_ns and n < max_invocations):
        ev = enqueue()
        total += ev.duration_ns
        n += 1
        if ev.duration_ns <= 0:
            break
    return Measurement(mean_ns=total / max(n, 1), invocations=n, total_virtual_ns=total)
