"""Experiment harness: the paper's timing methodology, result reporting,
and one experiment module per table/figure (see DESIGN.md section 3)."""

from .timing import Measurement, repeat_to_target, TARGET_VIRTUAL_SECONDS
from .report import ExperimentResult, Series
from .runner import (
    DeviceUnderTest,
    cpu_dut,
    gpu_dut,
    make_buffers,
    measure_app_throughput,
    measure_kernel,
)
from .registry import EXPERIMENTS, run_all, run_experiment

__all__ = [
    "Measurement", "repeat_to_target", "TARGET_VIRTUAL_SECONDS",
    "ExperimentResult", "Series",
    "DeviceUnderTest", "cpu_dut", "gpu_dut", "make_buffers",
    "measure_kernel", "measure_app_throughput",
    "EXPERIMENTS", "run_all", "run_experiment",
]
