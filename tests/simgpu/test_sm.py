"""Direct unit tests for the SM throughput model."""

import pytest

from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32, I32
from repro.simgpu.occupancy import compute_occupancy
from repro.simgpu.sm import SMModel
from repro.simgpu.spec import GTX580


def _analysis(build, gsize=(8192,), lsize=(256,), **scalars):
    return analyze_kernel(build(), LaunchContext(gsize, lsize, scalars))


def contiguous():
    kb = KernelBuilder("c")
    a = kb.buffer("a", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[g] * 2.0
    return kb.finish()


def strided(s):
    def build():
        kb = KernelBuilder("s")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        o[g] = a[g * s] * 2.0
        return kb.finish()
    return build


def gather():
    kb = KernelBuilder("g")
    a = kb.buffer("a", F32, access="r")
    idx = kb.buffer("idx", I32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[idx[g]] * 2.0
    return kb.finish()


def divergent():
    kb = KernelBuilder("d")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    with kb.if_((g % 2).eq(0)):
        o[g] = 1.0
    with kb.else_():
        o[g] = 2.0
    return kb.finish()


class TestCoalescing:
    def setup_method(self):
        self.sm = SMModel(GTX580)

    def test_contiguous_moves_element_bytes(self):
        bpi = self.sm.effective_bytes_per_item(_analysis(contiguous))
        assert bpi == pytest.approx(8.0)  # 4B load + 4B store

    def test_stride_inflates_traffic(self):
        b2 = self.sm.effective_bytes_per_item(_analysis(strided(2)))
        b8 = self.sm.effective_bytes_per_item(_analysis(strided(8)))
        b1 = self.sm.effective_bytes_per_item(_analysis(contiguous))
        assert b1 < b2 < b8

    def test_stride_caps_at_sector(self):
        b100 = self.sm.effective_bytes_per_item(_analysis(strided(100)))
        b1000 = self.sm.effective_bytes_per_item(_analysis(strided(1000)))
        assert b100 == b1000  # both one 32B sector per lane + store

    def test_gather_costs_one_sector_per_lane(self):
        bpi = self.sm.effective_bytes_per_item(_analysis(gather))
        # idx load (4) + gather sector (32) + store (4)
        assert bpi == pytest.approx(40.0)

    def test_uniform_broadcast_nearly_free(self):
        kb = KernelBuilder("u")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        o[g] = a[0] * 2.0
        an = analyze_kernel(kb.finish(), LaunchContext((8192,), (256,)))
        bpi = self.sm.effective_bytes_per_item(an)
        assert bpi < 5.0  # store dominates; broadcast ~1/32 of an element


class TestLatencyHiding:
    def setup_method(self):
        self.sm = SMModel(GTX580)

    def test_full_residency_hides_everything(self):
        an = _analysis(contiguous)
        occ = compute_occupancy(GTX580, 256)
        c = self.sm.workgroup_cycles(an, occ)
        assert c.latency_hiding == 1.0

    def test_single_small_workgroup_exposes_latency(self):
        an = _analysis(contiguous, lsize=(32,))
        occ = compute_occupancy(GTX580, 32)
        c = self.sm.workgroup_cycles(an, occ, resident_workgroups=1)
        assert c.latency_hiding < 0.2
        full = self.sm.workgroup_cycles(an, occ)
        per_wg_exposed = c.cycles_per_workgroup
        per_wg_hidden = full.cycles_per_workgroup
        assert per_wg_exposed > per_wg_hidden

    def test_divergence_doubles_issue(self):
        an_d = _analysis(divergent)
        an_c = _analysis(contiguous)
        occ = compute_occupancy(GTX580, 256)
        d = self.sm.workgroup_cycles(an_d, occ)
        c = self.sm.workgroup_cycles(an_c, occ)
        assert d.divergence_penalty == 2.0
        assert c.divergence_penalty == 1.0

    def test_dram_share_scales_memory_time(self):
        an = _analysis(contiguous)
        occ = compute_occupancy(GTX580, 256)
        full = self.sm.workgroup_cycles(an, occ, dram_share=1.0)
        sliver = self.sm.workgroup_cycles(an, occ, dram_share=1 / 16)
        assert sliver.memory_cycles > full.memory_cycles
