"""Caching must be invisible: same costs, same results, fewer recomputes.

These are the tentpole's correctness guarantees — launch-plan caching in
the device models, verify-result caching in the queue, and the harness
caches may change wall-clock time only, never any simulated number.
"""

import dataclasses

import numpy as np
import pytest

from repro import minicl as cl
from repro import plancache
from repro.plancache import caching_disabled, set_caching
from repro.simcpu.spec import XEON_E5645
from repro.simgpu.spec import GTX580
from repro.suite import SquareBenchmark, VectorAddBenchmark, mbench_by_name


@pytest.fixture(autouse=True)
def _caching_on():
    set_caching(True)
    yield
    set_caching(True)


def _cost_inputs(bench, gs):
    host, scalars = bench.make_data(gs, np.random.default_rng(0))
    return (
        bench.kernel(),
        {k: float(v) for k, v in scalars.items()},
        {k: int(v.nbytes) for k, v in host.items()},
    )


class TestDeviceModelCache:
    def test_repeat_launch_returns_cached_cost_object(self):
        model = cl.cpu_platform().devices[0].model
        kernel, scalars, nbytes = _cost_inputs(SquareBenchmark(), (4096,))
        c1 = model.kernel_cost(kernel, (4096,), (256,), scalars=scalars,
                               buffer_bytes=nbytes)
        c2 = model.kernel_cost(kernel, (4096,), (256,), scalars=scalars,
                               buffer_bytes=nbytes)
        assert c2 is c1
        assert model.plan_cache.hits >= 1

    def test_distinct_shapes_get_distinct_entries(self):
        model = cl.cpu_platform().devices[0].model
        kernel, scalars, nbytes = _cost_inputs(SquareBenchmark(), (4096,))
        model.kernel_cost(kernel, (4096,), (256,), scalars=scalars,
                          buffer_bytes=nbytes)
        model.kernel_cost(kernel, (4096,), (128,), scalars=scalars,
                          buffer_bytes=nbytes)
        model.kernel_cost(kernel, (8192,), (256,), scalars=scalars,
                          buffer_bytes=nbytes)
        assert len(model.plan_cache) == 3

    def test_distinct_scalars_get_distinct_costs(self):
        bench = mbench_by_name("MBench2")  # has an `alpha` scalar
        model = cl.cpu_platform().devices[0].model
        kernel, _, nbytes = _cost_inputs(bench, (4096,))
        model.kernel_cost(kernel, (4096,), (256,), scalars={"alpha": 0.5},
                          buffer_bytes=nbytes)
        model.kernel_cost(kernel, (4096,), (256,), scalars={"alpha": 0.75},
                          buffer_bytes=nbytes)
        assert len(model.plan_cache) == 2

    def test_buffer_content_mutation_still_hits(self):
        """Cost is a function of shape, not data: new arrays with the same
        sizes must reuse the plan."""
        bench = SquareBenchmark()
        model = cl.cpu_platform().devices[0].model
        kernel = bench.kernel()
        h1, s1 = bench.make_data((4096,), np.random.default_rng(1))
        h2, s2 = bench.make_data((4096,), np.random.default_rng(2))
        c1 = model.kernel_cost(kernel, (4096,), (256,),
                               scalars={k: float(v) for k, v in s1.items()},
                               buffer_bytes={k: v.nbytes for k, v in h1.items()})
        c2 = model.kernel_cost(kernel, (4096,), (256,),
                               scalars={k: float(v) for k, v in s2.items()},
                               buffer_bytes={k: v.nbytes for k, v in h2.items()})
        assert c2 is c1

    def test_rebuilt_kernel_ir_hits_via_fingerprint(self):
        """Two factory builds of the same kernel share one plan."""
        bench = SquareBenchmark()
        model = cl.cpu_platform().devices[0].model
        _, scalars, nbytes = _cost_inputs(bench, (4096,))
        c1 = model.kernel_cost(bench.kernel(), (4096,), (256,),
                               scalars=scalars, buffer_bytes=nbytes)
        c2 = model.kernel_cost(bench.kernel(), (4096,), (256,),
                               scalars=scalars, buffer_bytes=nbytes)
        assert c2 is c1

    def test_invalidate_plans(self):
        model = cl.cpu_platform().devices[0].model
        kernel, scalars, nbytes = _cost_inputs(SquareBenchmark(), (4096,))
        model.kernel_cost(kernel, (4096,), (256,), scalars=scalars,
                          buffer_bytes=nbytes)
        assert len(model.plan_cache) == 1
        model.invalidate_plans()
        assert len(model.plan_cache) == 0

    @pytest.mark.parametrize("platform", [cl.cpu_platform, cl.gpu_platform])
    def test_cache_on_off_total_ns_identical(self, platform):
        bench = SquareBenchmark()
        kernel, scalars, nbytes = _cost_inputs(bench, (4096,))

        def total():
            model = platform().devices[0].model
            a = model.kernel_cost(kernel, (4096,), (256,), scalars=scalars,
                                  buffer_bytes=nbytes)
            b = model.kernel_cost(kernel, (4096,), (256,), scalars=scalars,
                                  buffer_bytes=nbytes)
            return a.total_ns, b.total_ns

        on = total()
        with caching_disabled():
            off = total()
        assert on == off


class TestQueueAndFunctionalEquivalence:
    def _run_functional(self, bench, gs, ls):
        ctx = cl.Context(cl.cpu_platform().devices)
        queue = ctx.create_command_queue(functional=True)
        host, scalars = bench.make_data(gs, np.random.default_rng(7))
        program = ctx.create_program(bench.kernel()).build()
        k = program.create_kernel(bench.kernel().name)
        buffers = {
            name: ctx.create_buffer(
                cl.mem_flags.READ_WRITE | cl.mem_flags.COPY_HOST_PTR,
                hostbuf=arr,
            )
            for name, arr in host.items()
        }
        k.set_args(*[
            buffers[p.name] if p.name in buffers else scalars[p.name]
            for p in k.kernel.params
        ])
        ev = queue.enqueue_nd_range_kernel(k, gs, ls)
        out = {
            name: np.empty_like(arr) for name, arr in host.items()
        }
        for name, b in buffers.items():
            queue.enqueue_read_buffer(b, out[name])
        return out, ev.duration_ns

    @pytest.mark.parametrize("bench_cls", [SquareBenchmark, VectorAddBenchmark])
    def test_functional_results_and_timing_identical(self, bench_cls):
        bench = bench_cls()
        gs, ls = (2048,), (256,)
        on_out, on_ns = self._run_functional(bench, gs, ls)
        # run twice cached so the second launch exercises the hit path
        on_out2, on_ns2 = self._run_functional(bench, gs, ls)
        with caching_disabled():
            off_out, off_ns = self._run_functional(bench, gs, ls)
        assert on_ns == on_ns2 == off_ns
        for name in on_out:
            np.testing.assert_array_equal(on_out[name], off_out[name])
            np.testing.assert_array_equal(on_out[name], on_out2[name])

    def test_verify_cache_hits_under_repro_verify(self, monkeypatch):
        from repro.minicl import queue as queue_mod

        monkeypatch.setenv("REPRO_VERIFY", "1")
        bench = SquareBenchmark()
        ctx = cl.Context(cl.cpu_platform().devices)
        q = ctx.create_command_queue()
        host, scalars = bench.make_data((2048,), np.random.default_rng(0))
        program = ctx.create_program(bench.kernel()).build()
        k = program.create_kernel(bench.kernel().name)
        buffers = {
            name: ctx.create_buffer(
                cl.mem_flags.READ_WRITE | cl.mem_flags.COPY_HOST_PTR,
                hostbuf=arr,
            )
            for name, arr in host.items()
        }
        k.set_args(*[
            buffers[p.name] if p.name in buffers else scalars[p.name]
            for p in k.kernel.params
        ])
        hits_before = queue_mod._verify_cache().hits
        q.enqueue_nd_range_kernel(k, (2048,), (256,))
        first = q.last_verify_report
        q.enqueue_nd_range_kernel(k, (2048,), (256,))
        assert q.last_verify_report is first
        assert queue_mod._verify_cache().hits == hits_before + 1


class TestUnmapOverheadSpec:
    def test_cpu_unmap_cost_comes_from_spec(self):
        spec = dataclasses.replace(XEON_E5645, unmap_overhead_ns=987.0)
        ctx = cl.Context(cl.cpu_platform(spec).devices)
        q = ctx.create_command_queue()
        buf = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=1024)
        view, _ = q.enqueue_map_buffer(buf, cl.map_flags.WRITE)
        t0 = q.now_ns
        q.enqueue_unmap(buf, view)
        assert q.now_ns - t0 == 987.0

    def test_gpu_readonly_unmap_cost_comes_from_spec(self):
        spec = dataclasses.replace(GTX580, unmap_overhead_ns=654.0)
        ctx = cl.Context(cl.gpu_platform(spec).devices)
        q = ctx.create_command_queue()
        buf = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=1024)
        # READ-only mapping: no writeback crosses PCIe -> constant applies
        view, _ = q.enqueue_map_buffer(buf, cl.map_flags.READ)
        t0 = q.now_ns
        q.enqueue_unmap(buf, view)
        assert q.now_ns - t0 == 654.0

    def test_default_matches_seed_constant(self):
        assert XEON_E5645.unmap_overhead_ns == 200.0
        assert GTX580.unmap_overhead_ns == 200.0


class TestLazyCopyHostPtr:
    def test_readonly_source_defers_and_then_copies(self):
        ctx = cl.Context(cl.cpu_platform().devices)
        src = np.arange(16, dtype=np.float32)
        src.setflags(write=False)
        buf = ctx.create_buffer(
            cl.mem_flags.READ_WRITE | cl.mem_flags.COPY_HOST_PTR, hostbuf=src
        )
        assert buf._array is None          # metadata didn't materialize it
        assert buf.nbytes == src.nbytes
        arr = buf.array
        assert arr is not src and arr.flags.writeable
        np.testing.assert_array_equal(arr, src)
        arr[0] = -1.0                      # buffer writes never reach src
        assert src[0] == 0.0

    def test_writable_source_is_snapshotted_eagerly(self):
        ctx = cl.Context(cl.cpu_platform().devices)
        src = np.arange(16, dtype=np.float32)
        buf = ctx.create_buffer(
            cl.mem_flags.READ_WRITE | cl.mem_flags.COPY_HOST_PTR, hostbuf=src
        )
        src[0] = 99.0                      # mutation after create: not seen
        assert buf.array[0] == 0.0


class TestExperimentEquivalence:
    def test_fast_experiment_csv_identical_on_off(self):
        from repro.harness.registry import run_experiment

        plancache.invalidate_all()
        on = run_experiment("fig11", fast=True).to_csv()
        with caching_disabled():
            off = run_experiment("fig11", fast=True).to_csv()
        assert on == off
