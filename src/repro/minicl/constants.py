"""OpenCL 1.1-style constants (the subset the paper's experiments exercise)."""

from __future__ import annotations

import enum

__all__ = [
    "mem_flags",
    "map_flags",
    "device_type",
    "command_type",
    "command_status",
    "StatusCode",
]


class mem_flags(enum.IntFlag):
    """``clCreateBuffer`` allocation/access flags (paper Section II-C)."""

    READ_WRITE = 1 << 0
    WRITE_ONLY = 1 << 1
    READ_ONLY = 1 << 2
    USE_HOST_PTR = 1 << 3
    ALLOC_HOST_PTR = 1 << 4
    COPY_HOST_PTR = 1 << 5


class map_flags(enum.IntFlag):
    """``clEnqueueMapBuffer`` flags."""

    READ = 1 << 0
    WRITE = 1 << 1


class device_type(enum.IntFlag):
    CPU = 1 << 1
    GPU = 1 << 2
    ALL = 0xFFFFFFFF


class command_type(enum.Enum):
    NDRANGE_KERNEL = "CL_COMMAND_NDRANGE_KERNEL"
    READ_BUFFER = "CL_COMMAND_READ_BUFFER"
    WRITE_BUFFER = "CL_COMMAND_WRITE_BUFFER"
    COPY_BUFFER = "CL_COMMAND_COPY_BUFFER"
    MAP_BUFFER = "CL_COMMAND_MAP_BUFFER"
    UNMAP_MEM_OBJECT = "CL_COMMAND_UNMAP_MEM_OBJECT"
    MARKER = "CL_COMMAND_MARKER"


class command_status(enum.IntEnum):
    QUEUED = 3
    SUBMITTED = 2
    RUNNING = 1
    COMPLETE = 0


class StatusCode(enum.IntEnum):
    """OpenCL error codes (negated, as in the C API)."""

    SUCCESS = 0
    DEVICE_NOT_FOUND = -1
    MEM_OBJECT_ALLOCATION_FAILURE = -4
    OUT_OF_RESOURCES = -5
    INVALID_VALUE = -30
    INVALID_DEVICE = -33
    INVALID_CONTEXT = -34
    INVALID_MEM_OBJECT = -38
    INVALID_PROGRAM = -44
    INVALID_KERNEL_NAME = -46
    INVALID_KERNEL = -48
    INVALID_ARG_INDEX = -49
    INVALID_ARG_VALUE = -50
    INVALID_KERNEL_ARGS = -52
    INVALID_WORK_DIMENSION = -53
    INVALID_WORK_GROUP_SIZE = -54
    INVALID_WORK_ITEM_SIZE = -55
    INVALID_BUFFER_SIZE = -61
    INVALID_OPERATION = -59
