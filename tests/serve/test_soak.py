"""Soak: >=1000 concurrent requests across >=8 tenants, real execution.

The issue's acceptance bar for the service, verified end-to-end with the
load generator:

* zero dropped and zero duplicated responses (exactly-once, correlated
  by ``request_id``);
* every response byte-identical to a serial one-shot run of the same
  request (the determinism contract that makes cross-tenant sharing
  sound);
* the dedupe and result-cache counters actually moved — a
  repeated-launch workload must not re-execute.
"""

from repro.obs.metrics import MetricsRegistry
from repro.serve import ExperimentService, ServeConfig, reset_serve_stats
from repro.serve.loadgen import (
    _group_key,
    expand_batch,
    replay,
    serial_csv,
    summarize_report,
    verify_replay,
)

#: six distinct work identities; everything else in the batch is a
#: duplicate of one of these, spread across tenants
BASE_REQUESTS = [
    {"kind": "experiment", "name": "fig1", "fast": True},
    {"kind": "experiment", "name": "table1", "fast": True},
    {"kind": "launch", "benchmark": "Square"},
    {"kind": "launch", "benchmark": "Square", "coalesce": 2},
    {"kind": "launch", "benchmark": "Vectoraddition"},
    {"kind": "launch", "benchmark": "Vectoraddition", "coalesce": 4},
]


def test_soak_eight_tenants_thousand_requests():
    reset_serve_stats()
    batch = {
        "schema": 1,
        "tenants": 8,
        "repeat": 21,  # 6 x 8 x 21 = 1008 requests
        "requests": BASE_REQUESTS,
    }
    requests = expand_batch(batch)
    assert len(requests) >= 1000
    assert len({doc["tenant"] for doc in requests}) >= 8

    # the serial oracle: one in-process one-shot run per distinct identity
    expected = {}
    for doc in BASE_REQUESTS:
        d = dict(doc, tenant="serial")
        expected[_group_key(d)] = serial_csv(d)
    assert len(expected) == len(BASE_REQUESTS)

    svc = ExperimentService(ServeConfig(workers=4),
                            registry=MetricsRegistry())
    try:
        responses = replay(svc, requests, concurrency=32)
        report = verify_replay(requests, responses, expected=expected)
        assert report["passed"], summarize_report(report)
        assert report["failed"] == 0
        assert report["dropped"] == []
        assert report["duplicated"] == []
        assert report["groups"] == len(BASE_REQUESTS)

        stats = svc.health()["stats"]
        # single execution per identity, everything else was shared
        assert stats["executed"] == len(BASE_REQUESTS)
        assert stats["errors"] == 0
        assert stats["dedupe_cached"] > 0
        assert stats["dedupe_shared"] + stats["dedupe_cached"] > 0
        assert (stats["dedupe_leader"] + stats["dedupe_shared"]
                + stats["dedupe_cached"]) == len(requests)
        # the shared result cache carried the repeat load
        cache = svc.metrics_snapshot()["results_cache"]
        assert cache["hits"] > 0
        # per-tenant accounting adds back up to the whole batch
        reg = svc.registry
        per_tenant = sum(
            reg.counter(f"serve.tenant.t{i}.requests").value
            for i in range(8)
        )
        assert per_tenant == len(requests)
    finally:
        svc.close()
