"""Shared host worker pools for the execution engine.

Two distinct pools, mirroring how a CPU OpenCL runtime (pocl's task-graph
scheduler) separates command retirement from data-parallel kernel work:

* the **command pool** runs DAG nodes of :class:`repro.minicl.schedule.
  CommandScheduler` — one slot per in-flight command;
* the **chunk pool** runs NDRange chunks of one kernel launch
  (:mod:`repro.kernelir.compile`) — NumPy releases the GIL on array ops,
  so chunks of a fused launch genuinely overlap on host cores.

A third **serve pool** executes whole tenant requests for the experiment
service (:mod:`repro.serve`).  It sits *above* the other two: a serve
worker may retire commands through the command pool and fan a kernel over
the chunk pool, so it must never share slots with either.

Keeping them separate avoids the classic nested-pool deadlock: a command
node that itself fans a kernel out over workers must never wait on a slot
in its own pool.

Sizing comes from ``REPRO_WORKERS`` (``repro.env_int``); unset or ``0``
auto-sizes to ``min(4, cpu_count)``.  ``set_worker_count`` overrides the
environment in-process (the CLI's ``--workers`` writes the environment
variable instead so the choice survives into ``--jobs`` subprocesses).
Pools are created lazily and rebuilt when the effective count changes, so
tests can flip the count mid-process.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import repro

__all__ = [
    "chunk_pool",
    "command_pool",
    "ooo_enabled",
    "serve_worker_count",
    "set_worker_count",
    "shutdown_pools",
    "worker_count",
]

#: hard ceiling on auto-sized pools; explicit REPRO_WORKERS may exceed it
_AUTO_CAP = 4

_lock = threading.Lock()
_override: Optional[int] = None
_pools = {}  # role -> (ThreadPoolExecutor, size)


def worker_count() -> int:
    """Effective worker-thread count for both pools (always >= 1)."""
    if _override is not None:
        return max(1, _override)
    n = repro.env_int("REPRO_WORKERS", 0)
    if n > 0:
        return n
    return max(1, min(_AUTO_CAP, os.cpu_count() or 1))


def set_worker_count(n: Optional[int]) -> None:
    """In-process override of ``REPRO_WORKERS`` (``None`` restores it)."""
    global _override
    _override = None if n is None else int(n)


def serve_worker_count() -> int:
    """Concurrent request executors for the experiment service.

    ``REPRO_SERVE_WORKERS`` overrides; unset/``0`` follows
    :func:`worker_count` so the service defaults to the same width as the
    engine pools it feeds.
    """
    n = repro.env_int("REPRO_SERVE_WORKERS", 0)
    return n if n > 0 else worker_count()


def ooo_enabled() -> bool:
    """Whether the event-DAG engine may be used (``REPRO_NO_OOO`` kills it)."""
    return not repro.env_flag("REPRO_NO_OOO")


def _pool(role: str) -> ThreadPoolExecutor:
    n = worker_count()
    with _lock:
        entry = _pools.get(role)
        if entry is not None and entry[1] == n:
            return entry[0]
        if entry is not None:
            entry[0].shutdown(wait=False)
        pool = ThreadPoolExecutor(
            max_workers=n, thread_name_prefix=f"repro-{role}"
        )
        _pools[role] = (pool, n)
        return pool


def command_pool() -> ThreadPoolExecutor:
    """The pool that retires command-DAG nodes."""
    return _pool("cmd")


def chunk_pool() -> ThreadPoolExecutor:
    """The pool that runs NDRange chunks of one kernel launch."""
    return _pool("chunk")


def worker_index() -> int:
    """Index of the current pool worker thread (0 on non-pool threads).

    Pool threads are named ``repro-<role>_<i>`` by ThreadPoolExecutor;
    the tracer uses this to give each worker its own trace lane.
    """
    name = threading.current_thread().name
    if name.startswith("repro-") and "_" in name:
        try:
            return int(name.rsplit("_", 1)[1])
        except ValueError:
            return 0
    return 0


def shutdown_pools() -> None:
    """Tear down both pools (tests; pools re-create lazily afterwards)."""
    with _lock:
        for pool, _ in _pools.values():
            pool.shutdown(wait=True)
        _pools.clear()
