"""EXT — do the paper's CPU findings survive a newer CPU?

The paper closes on *performance portability*: its guidance is derived from
one 2010 Westmere Xeon.  Because our CPU is a parameterized model, we can
re-run the key experiments on a projected newer part — an AVX-generation
CPU (8-wide single-precision SIMD, bigger out-of-order window, more memory
bandwidth) — and check which findings are architectural and which are
artifacts of the testbed:

* **work coalescing (Figure 1)** — still pays: the overhead being amortized
  is software (workgroup dispatch, workitem loop), not SSE-specific;
* **ILP scaling (Figure 6)** — still linear: the dependence-latency bound
  depends on chain latency, not vector width; absolute Gflop/s roughly
  double with the wider units;
* **map-over-copy (Figure 7)** — unchanged: it follows from shared DRAM.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ... import minicl as cl
from ...simcpu.device import CPUDeviceModel
from ...simcpu.spec import CPUSpec, XEON_E5645
from ...suite import IlpMicroBenchmark, SquareBenchmark
from ..report import ExperimentResult, Series
from ..runner import DeviceUnderTest, make_buffers, measure_kernel

__all__ = ["run", "AVX_XEON"]

#: a projected Sandy-Bridge-generation part: AVX (8 x f32), larger window,
#: faster memory — everything else inherited from the paper's machine
AVX_XEON = dataclasses.replace(
    XEON_E5645,
    name="projected AVX Xeon (Sandy Bridge class)",
    simd_width_f32=8,
    ooo_window=168,
    frequency_ghz=2.7,
    dram_bandwidth_gbps=51.2,
    l3_bandwidth_gbps=96.0,
    l3_bytes=20 * 1024 * 1024,
)


def _dut(spec: CPUSpec) -> DeviceUnderTest:
    model = CPUDeviceModel(spec)
    plat = cl.Platform(spec.name, "repro.simcpu", [cl.Device(model)])
    ctx = cl.Context(plat.devices)
    return DeviceUnderTest(ctx, ctx.create_command_queue(functional=False))


def _coalescing_gain(dut: DeviceUnderTest, n: int) -> float:
    bench = SquareBenchmark()
    buffers, scalars, _ = make_buffers(dut, bench, (n,))
    base = measure_kernel(dut, bench, (n,), None,
                          buffers=buffers, scalars=scalars)
    co = measure_kernel(dut, bench, (n,), None, coalesce=100,
                        buffers=buffers, scalars=scalars)
    return base.mean_ns / co.mean_ns


def _ilp_gflops(dut: DeviceUnderTest, ilp: int, n: int) -> float:
    bench = IlpMicroBenchmark(ilp, n=n)
    m = measure_kernel(dut, bench, (n,), bench.default_local_size)
    return 2.0 * bench.total_ops * n / m.mean_ns


def run(fast: bool = False) -> ExperimentResult:
    n_sq = 100_000 if fast else 1_000_000
    n_ilp = 12 * 1024 if fast else 48 * 1024
    series = []
    notes = []
    for spec in (XEON_E5645, AVX_XEON):
        dut = _dut(spec)
        pts: Dict[str, float] = {}
        pts["coalescing gain (fig1)"] = _coalescing_gain(dut, n_sq)
        g1 = _ilp_gflops(dut, 1, n_ilp)
        g4 = _ilp_gflops(dut, 4, n_ilp)
        pts["ILP-4 / ILP-1 (fig6)"] = g4 / g1
        pts["ILP-4 Gflop/s"] = g4
        copy = dut.device.model.transfer_cost(1 << 24, "copy").total_ns
        mapped = dut.device.model.transfer_cost(1 << 24, "map").total_ns
        pts["copy/map time ratio (fig7)"] = copy / mapped
        label = "Westmere (paper)" if spec is XEON_E5645 else "AVX projection"
        series.append(Series(label, pts))
    notes.append(
        "architectural findings (coalescing pays, ILP scales, map >> copy) "
        "hold on the projected part; only absolute Gflop/s move"
    )
    return ExperimentResult(
        experiment_id="ext_portability",
        title="Do the CPU findings survive a newer (AVX) CPU?",
        series=series,
        value_name="(mixed units per column)",
        notes=notes,
    )
