"""The HTTP transport (:mod:`repro.serve.http`).

Exercises every route and every status-code mapping against a live
``ThreadingHTTPServer`` on an ephemeral port, with the service's
execution stubbed where the test is about transport, and real where the
test is about end-to-end behavior.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import ExperimentService, ServeConfig, reset_serve_stats
from repro.serve.http import MAX_BODY_BYTES, ExperimentHTTPServer
from repro.serve.service import BackpressureError, ExecutionError


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_serve_stats()
    yield
    reset_serve_stats()


@pytest.fixture
def stub_server():
    import threading

    svc = ExperimentService(ServeConfig(workers=1),
                            registry=MetricsRegistry())
    svc._execute_request = lambda req, session: {
        "csv": "h\n1\n", "notes": [], "title": "stub",
    }
    server = ExperimentHTTPServer(("127.0.0.1", 0), service=svc)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()


def _post(server, doc, raw=None):
    data = raw if raw is not None else json.dumps(doc).encode()
    req = urllib.request.Request(
        server.url + "/v1/submit", data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _expect_error(server, status, doc=None, raw=None, path="/v1/submit",
                  method="POST"):
    try:
        if method == "GET":
            urllib.request.urlopen(server.url + path, timeout=30)
        else:
            _post(server, doc, raw=raw)
    except urllib.error.HTTPError as e:
        assert e.code == status
        return e, json.loads(e.read())
    raise AssertionError(f"expected HTTP {status}")


class TestRoutes:
    def test_submit_ok(self, stub_server):
        status, body = _post(stub_server, {
            "kind": "experiment", "tenant": "acme", "name": "fig1",
            "request_id": "r1",
        })
        assert status == 200
        assert body["ok"] and body["csv"] == "h\n1\n"
        assert body["request_id"] == "r1"
        assert body["dedupe"] == "leader"
        assert body["trace"]["total_ms"] >= 0

    def test_healthz_and_metrics(self, stub_server):
        _post(stub_server, {"kind": "experiment", "tenant": "acme",
                            "name": "fig1"})
        status, health = _get(stub_server, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["stats"]["requests"] == 1
        status, metrics = _get(stub_server, "/v1/metrics")
        assert status == 200
        assert metrics["schema"] == 1
        assert metrics["metrics"]["counters"]["serve.requests"] == 1

    def test_unknown_routes_404(self, stub_server):
        _, body = _expect_error(stub_server, 404, path="/nope", method="GET")
        assert body["error"] == "not_found"
        # posting to an unknown path also 404s
        try:
            urllib.request.urlopen(urllib.request.Request(
                stub_server.url + "/v2/submit", data=b"{}"), timeout=30)
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as e:
            assert e.code == 404


class TestErrorMapping:
    def test_bad_json_400(self, stub_server):
        _, body = _expect_error(stub_server, 400, raw=b"{not json")
        assert body["error"] == "bad_json"

    def test_bad_request_400(self, stub_server):
        _, body = _expect_error(stub_server, 400,
                                doc={"kind": "bogus", "tenant": "a"})
        assert body["error"] == "bad_request"
        assert "kind" in body["message"]

    def test_oversized_body_413(self, stub_server):
        raw = b"[" + b"1," * MAX_BODY_BYTES + b"1]"
        _, body = _expect_error(stub_server, 413, raw=raw)
        assert body["error"] == "too_large"

    def test_backpressure_429_with_retry_after(self, stub_server):
        def throttled(doc):
            raise BackpressureError("tenant", 5, 4, 1.25)

        stub_server.service.submit = throttled
        err, body = _expect_error(stub_server, 429,
                                  doc={"kind": "experiment", "tenant": "a",
                                       "name": "fig1"})
        assert body["error"] == "backpressure"
        assert float(err.headers["Retry-After"]) == pytest.approx(1.25)

    def test_execution_failure_500(self, stub_server):
        def broken(doc):
            raise ExecutionError("experiment request failed: boom")

        stub_server.service.submit = broken
        _, body = _expect_error(stub_server, 500,
                                doc={"kind": "experiment", "tenant": "a",
                                     "name": "fig1"})
        assert body["error"] == "execution"
        assert "boom" in body["message"]


class TestEndToEnd:
    def test_real_launch_over_http(self):
        server = ExperimentHTTPServer(
            ("127.0.0.1", 0), config=ServeConfig(workers=2))
        import threading

        t = threading.Thread(target=server.serve_forever, daemon=True)
        t.start()
        try:
            status, body = _post(server, {
                "kind": "launch", "tenant": "e2e", "benchmark": "Square",
            })
            assert status == 200
            assert body["ok"]
            assert body["launch"]["benchmark"] == "Square"
            assert body["csv"].startswith("benchmark,device,")
            # same request again: served from the shared result cache
            status, again = _post(server, {
                "kind": "launch", "tenant": "other", "benchmark": "Square",
            })
            assert again["dedupe"] == "cached"
            assert again["csv"] == body["csv"]
        finally:
            server.close()
