"""``Histogram`` — 256-bin histogram with per-workgroup ``__local`` bins.

Table II: global size 409600, local 256.  Each workgroup builds a private
histogram in local memory with local atomics, then merges it into the global
histogram — the standard GPU-SDK formulation (and a kernel OpenCL CPU
compilers refuse to vectorize because of the atomics).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import I32, U32
from ..base import Benchmark

__all__ = ["HistogramBenchmark", "build_histogram_kernel"]

BINS = 256


def build_histogram_kernel(wg_size: int = 256) -> Kernel:
    """Must be launched with local size ``wg_size`` (>= BINS preferred)."""
    if wg_size < BINS or wg_size % BINS != 0:
        raise ValueError(f"workgroup size must be a multiple of {BINS}")
    kb = KernelBuilder("histogram256")
    data = kb.buffer("data", I32, access="r")
    hist = kb.buffer("hist", U32, access="rw")
    lhist = kb.local_array("lhist", BINS, U32)

    gid = kb.global_id(0)
    lid = kb.local_id(0)

    with kb.if_(lid < BINS):
        lhist[lid] = kb.cast(0, U32)
    kb.barrier()
    v = kb.let("v", data[gid])
    lhist.atomic_add(v, kb.cast(1, U32))
    kb.barrier()
    with kb.if_(lid < BINS):
        hist.atomic_add(lid, lhist[lid])
    return kb.finish()


class HistogramBenchmark(Benchmark):
    name = "Histogram"
    work_dim = 1
    default_global_sizes = ((409_600,),)
    default_local_size = (256,)
    supports_coalescing = False

    def __init__(self, wg_size: int = 256):
        self.wg_size = wg_size
        self.default_local_size = (wg_size,)

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("Histogram does not support workitem coalescing")
        return build_histogram_kernel(self.wg_size)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        return (
            {
                "data": rng.integers(0, BINS, size=n, dtype=np.int32),
                "hist": np.zeros(BINS, dtype=np.uint32),
            },
            {},
        )

    def reference(self, buffers, scalars, global_size):
        counts = np.bincount(buffers["data"], minlength=BINS)
        return {"hist": counts.astype(np.uint32)}
