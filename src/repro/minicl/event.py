"""Events with virtual-time profiling (``CL_QUEUE_PROFILING_ENABLE``).

Profiling timestamps are *virtual* nanoseconds and are fully determined at
enqueue time (the simulator computes a command's device-time schedule from
its wait list and cost estimate, never from host execution).  The event's
*status* is a separate, host-side lifecycle: under the eager engine every
command completes inside its ``enqueue_*`` call, while under the DAG
engine (:mod:`repro.minicl.schedule`) an event really does move through
``QUEUED -> SUBMITTED -> RUNNING -> COMPLETE`` as the scheduler retires its
node, and :meth:`Event.wait` blocks until then.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, List, Optional

from .constants import command_status, command_type

__all__ = ["Event", "EventProfile"]


@dataclasses.dataclass(frozen=True)
class EventProfile:
    """The four OpenCL profiling timestamps, in virtual nanoseconds.

    ``queued`` is when the host enqueued the command, ``submit`` is when
    the runtime handed it to the device (its wait list had resolved),
    ``start``/``end`` bracket device execution.  On this simulator the
    device is idle at hand-off, so SUBMIT and START coincide; QUEUED and
    SUBMIT separate whenever a wait list (or an out-of-order queue's
    dependency tracking) held the command back after enqueue.
    """

    queued: float
    submit: float
    start: float
    end: float

    @property
    def duration_ns(self) -> float:
        """CL_PROFILING_COMMAND_END - CL_PROFILING_COMMAND_START."""
        return self.end - self.start

    @property
    def queue_delay_ns(self) -> float:
        """CL_PROFILING_COMMAND_SUBMIT - CL_PROFILING_COMMAND_QUEUED."""
        return self.submit - self.queued


class Event:
    """Completion/profiling handle returned by every enqueue call.

    Eagerly-executed commands are born COMPLETE (the pre-scheduler
    behaviour, still used by in-order queues under ``REPRO_NO_OOO`` and by
    timing-only queues).  Deferred commands call :meth:`_defer` before the
    scheduler owns them and are driven through the status ladder by their
    DAG node.
    """

    def __init__(self, ctype: command_type, queued: float, start: float, end: float,
                 info: Optional[dict] = None, *, submit: Optional[float] = None):
        self.command_type = ctype
        self._profile = EventProfile(
            queued=queued,
            submit=queued if submit is None else submit,
            start=start,
            end=end,
        )
        self.status = command_status.COMPLETE  # eager default
        #: model diagnostics (KernelCost / TransferCost) for the harness
        self.info = info or {}
        #: the scheduler node retiring this command (DAG engine only)
        self._node = None
        self._done: Optional[threading.Event] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self._cb_lock = threading.Lock()

    @property
    def profile(self) -> EventProfile:
        return self._profile

    @property
    def duration_ns(self) -> float:
        return self._profile.duration_ns

    # -- scheduler-driven lifecycle -------------------------------------------
    def _defer(self) -> None:
        """Mark this event as scheduler-owned (status starts at QUEUED)."""
        self.status = command_status.QUEUED
        self._done = threading.Event()

    def _mark_submitted(self) -> None:
        if self.status == command_status.QUEUED:
            self.status = command_status.SUBMITTED

    def _mark_running(self) -> None:
        self.status = command_status.RUNNING

    def _mark_complete(self, error: Optional[BaseException] = None) -> None:
        """Retire the event: set COMPLETE *before* callbacks run, so a
        callback that re-entrantly calls :meth:`wait` returns immediately
        instead of deadlocking on the completion latch."""
        self._error = error
        self.status = command_status.COMPLETE
        if self._done is not None:
            self._done.set()
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    # -- public API -------------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """``clSetEventCallback``: run ``fn(event)`` once the command
        completes (immediately if it already has)."""
        with self._cb_lock:
            if self.status != command_status.COMPLETE:
                self._callbacks.append(fn)
                return
        fn(self)

    def wait(self) -> None:
        """``clWaitForEvents`` on this event.

        Eager events are already complete (no-op).  Deferred events first
        ask their queue's scheduler to submit anything this command
        transitively depends on, then block until the node retires; a
        command that failed re-raises its execution error here.
        """
        if self.status != command_status.COMPLETE:
            node = self._node
            if node is not None and node.scheduler is not None:
                node.scheduler.drain(self)
            if self._done is not None:
                self._done.wait()
        if self._error is not None:
            raise self._error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Event {self.command_type.value} "
            f"[{self._profile.start:.0f}..{self._profile.end:.0f}ns]>"
        )
