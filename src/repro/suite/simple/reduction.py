"""``Reduction`` — workgroup tree-reduction in ``__local`` memory.

Table II: global sizes 640000 / 2560000 / 10240000, local 256.  Each
workgroup reduces its slice to one partial sum; the host (or a second pass)
adds the partials, as in the classic NVIDIA/AMD SDK sample.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32, I64
from ..base import Benchmark

__all__ = ["ReductionBenchmark", "build_reduction_kernel"]


def build_reduction_kernel(wg_size: int = 256) -> Kernel:
    """Tree reduction; must be launched with local size ``wg_size`` (pow2)."""
    if wg_size <= 0 or wg_size & (wg_size - 1):
        raise ValueError("workgroup size must be a positive power of two")
    levels = int(math.log2(wg_size))
    kb = KernelBuilder("reduce")
    data = kb.buffer("input", F32, access="r")
    partial = kb.buffer("partial", F32, access="w")
    scratch = kb.local_array("scratch", wg_size, F32)

    gid = kb.global_id(0)
    lid = kb.local_id(0)
    grp = kb.group_id(0)

    scratch[lid] = data[gid]
    kb.barrier()
    with kb.loop("p", 0, levels) as p:
        stride = kb.let("stride", kb.local_size(0) >> (p + 1))
        with kb.if_(lid < stride):
            scratch[lid] = scratch[lid] + scratch[lid + stride]
        kb.barrier()
    with kb.if_(lid.eq(0)):
        partial[grp] = scratch[0]
    return kb.finish()


class ReductionBenchmark(Benchmark):
    name = "Reduction"
    work_dim = 1
    default_global_sizes = ((640_000,), (2_560_000,), (10_240_000,))
    default_local_size = (256,)
    supports_coalescing = False

    def __init__(self, wg_size: int = 256):
        self.wg_size = wg_size
        self.default_local_size = (wg_size,)

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("Reduction does not support workitem coalescing")
        return build_reduction_kernel(self.wg_size)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        if n % self.wg_size != 0:
            raise ValueError(f"global size {n} not divisible by {self.wg_size}")
        return (
            {
                "input": rng.standard_normal(n, dtype=np.float32),
                "partial": np.zeros(n // self.wg_size, dtype=np.float32),
            },
            {},
        )

    def reference(self, buffers, scalars, global_size):
        n = int(global_size[0])
        groups = buffers["input"].reshape(n // self.wg_size, self.wg_size)
        # match the kernel's pairwise (tree) summation order for fp stability
        acc = groups.astype(np.float32).copy()
        width = self.wg_size
        while width > 1:
            half = width // 2
            acc[:, :half] += acc[:, half:width]
            width = half
        return {"partial": acc[:, 0]}
