"""Property-based tests: the interpreter agrees with numpy on random
elementwise expression trees, loops and masks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernelir import ast as ir
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.interp import Interpreter
from repro.kernelir.types import F32, I64


# -- random elementwise expressions -------------------------------------------

def _expr_strategy(depth=3):
    """Random arithmetic over two input arrays and safe constants."""
    leaf = st.sampled_from(["a", "b", "1.5", "0.25", "2.0"])
    if depth == 0:
        return leaf
    sub = _expr_strategy(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "min", "max"]), sub, sub),
        st.tuples(st.sampled_from(["fabs", "neg"]), sub),
    )


def _build(node, handles, kb):
    if isinstance(node, str):
        if node in ("a", "b"):
            return handles[node][kb.global_id(0)]
        return kb.f32(float(node))
    if len(node) == 2:
        op, x = node
        e = _build(x, handles, kb)
        return kb.fabs(e) if op == "fabs" else -e
    op, l, r = node
    le, re_ = _build(l, handles, kb), _build(r, handles, kb)
    if op == "min":
        return kb.min(le, re_)
    if op == "max":
        return kb.max(le, re_)
    return {"+": le + re_, "-": le - re_, "*": le * re_}[op]


def _eval_np(node, a, b):
    if isinstance(node, str):
        if node == "a":
            return a
        if node == "b":
            return b
        return np.float32(float(node))
    if len(node) == 2:
        op, x = node
        v = _eval_np(x, a, b)
        return np.abs(v) if op == "fabs" else -v
    op, l, r = node
    lv, rv = _eval_np(l, a, b), _eval_np(r, a, b)
    if op == "min":
        return np.minimum(lv, rv).astype(np.float32)
    if op == "max":
        return np.maximum(lv, rv).astype(np.float32)
    return {
        "+": np.add(lv, rv, dtype=np.float32),
        "-": np.subtract(lv, rv, dtype=np.float32),
        "*": np.multiply(lv, rv, dtype=np.float32),
    }[op]


@settings(max_examples=40, deadline=None)
@given(
    tree=_expr_strategy(),
    n=st.integers(1, 64),
    seed=st.integers(0, 2 ** 16),
)
def test_random_elementwise_matches_numpy(tree, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-4, 4, n).astype(np.float32)
    b = rng.uniform(-4, 4, n).astype(np.float32)
    kb = KernelBuilder("prop")
    ha = kb.buffer("a", F32, access="r")
    hb = kb.buffer("b", F32, access="r")
    ho = kb.buffer("o", F32, access="w")
    e = _build(tree, {"a": ha, "b": hb}, kb)
    ho[kb.global_id(0)] = e
    bufs = {"a": a, "b": b, "o": np.zeros(n, np.float32)}
    Interpreter().launch(kb.finish(), n, buffers=bufs)
    np.testing.assert_allclose(
        bufs["o"], _eval_np(tree, a, b), rtol=1e-5, atol=1e-5, equal_nan=True
    )


# -- loops ------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 48),
    trips=st.integers(0, 20),
    seed=st.integers(0, 2 ** 16),
)
def test_loop_sum_matches_numpy(n, trips, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0, 1, max(n * trips, 1)).astype(np.float32)
    kb = KernelBuilder("sum")
    ha = kb.buffer("a", F32, access="r")
    ho = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    acc = kb.let("acc", kb.f32(0.0))
    with kb.loop("i", 0, trips) as i:
        acc = kb.let("acc", acc + ha[g * trips + i])
    ho[g] = acc
    bufs = {"a": a, "o": np.zeros(n, np.float32)}
    Interpreter().launch(kb.finish(), n, buffers=bufs)
    if trips == 0:
        expect = np.zeros(n, np.float32)
    else:
        expect = a[: n * trips].reshape(n, trips).astype(np.float64).sum(axis=1)
    np.testing.assert_allclose(bufs["o"], expect, rtol=1e-4, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 64),
    thresh=st.integers(-2, 70),
    seed=st.integers(0, 2 ** 16),
)
def test_masked_if_matches_numpy(n, thresh, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, n).astype(np.float32)
    kb = KernelBuilder("mask")
    ha = kb.buffer("a", F32, access="r")
    ho = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    with kb.if_(g < thresh):
        ho[g] = ha[g] * 2.0
    with kb.else_():
        ho[g] = ha[g] - 1.0
    bufs = {"a": a, "o": np.zeros(n, np.float32)}
    Interpreter().launch(kb.finish(), n, buffers=bufs)
    idx = np.arange(n)
    expect = np.where(idx < thresh, a * np.float32(2.0), a - np.float32(1.0))
    np.testing.assert_allclose(bufs["o"], expect, rtol=1e-6)


# -- workgroup decomposition invariance ----------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    groups=st.integers(1, 8),
    lsize=st.integers(1, 16),
    seed=st.integers(0, 2 ** 16),
)
def test_result_independent_of_workgroup_shape(groups, lsize, seed):
    """A kernel without workgroup constructs must not care about local size."""
    n = groups * lsize
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, n).astype(np.float32)
    kb = KernelBuilder("wg")
    ha = kb.buffer("a", F32, access="r")
    ho = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    ho[g] = ha[g] * 3.0 + 1.0
    k = kb.finish()
    out1 = np.zeros(n, np.float32)
    out2 = np.zeros(n, np.float32)
    Interpreter().launch(k, n, lsize, buffers={"a": a, "o": out1})
    Interpreter().launch(k, n, None, buffers={"a": a, "o": out2})
    np.testing.assert_array_equal(out1, out2)


@settings(max_examples=25, deadline=None)
@given(
    groups=st.integers(1, 6),
    lsize=st.sampled_from([2, 4, 8]),
    seed=st.integers(0, 2 ** 16),
)
def test_groupwise_reduction_matches_numpy(groups, lsize, seed):
    """Tree reduction in local memory is correct for any pow2 group size."""
    import math

    n = groups * lsize
    rng = np.random.default_rng(seed)
    a = rng.uniform(0, 1, n).astype(np.float32)
    levels = int(math.log2(lsize))
    kb = KernelBuilder("red")
    ha = kb.buffer("a", F32, access="r")
    ho = kb.buffer("o", F32, access="w")
    s = kb.local_array("s", lsize, F32)
    lid = kb.local_id(0)
    s[lid] = ha[kb.global_id(0)]
    kb.barrier()
    with kb.loop("p", 0, levels) as p:
        stride = kb.let("stride", kb.local_size(0) >> (p + 1))
        with kb.if_(lid < stride):
            s[lid] = s[lid] + s[lid + stride]
        kb.barrier()
    with kb.if_(lid.eq(0)):
        ho[kb.group_id(0)] = s[0]
    bufs = {"a": a, "o": np.zeros(groups, np.float32)}
    Interpreter().launch(kb.finish(), n, lsize, buffers=bufs)
    np.testing.assert_allclose(
        bufs["o"], a.reshape(groups, lsize).sum(axis=1), rtol=1e-5
    )
