"""Figure 2 — Parboil benchmarks with different workload per workitem.

The Parboil kernels are coalesced 2x and 4x on the CPU device.  Expected
shape: modest gains (base < 2X <= 4X) for the short kernels, and
``MRI-FHD: RhoPhi`` staying flat (its per-item work is already trivial and
its workitem count small, so scheduling overhead is not the bottleneck —
the paper: "The performance [of] the MRI-FHD:RhoPhi kernel remains same").
"""

from __future__ import annotations

from typing import Dict

from ...suite import (
    CPCenergyBenchmark,
    MriFhdFHBenchmark,
    MriFhdRhoPhiBenchmark,
    MriQComputeQBenchmark,
    MriQPhiMagBenchmark,
)
from ..report import ExperimentResult, Series
from ..runner import cpu_dut, make_buffers, measure_kernel

__all__ = ["run", "FACTORS"]

FACTORS = (1, 2, 4)


def _benches(fast: bool):
    if fast:
        return [
            CPCenergyBenchmark(natoms=200),
            MriQPhiMagBenchmark(),
            MriQComputeQBenchmark(num_k=128),
            MriFhdRhoPhiBenchmark(),
            MriFhdFHBenchmark(num_k=128),
        ]
    return [
        CPCenergyBenchmark(),
        MriQPhiMagBenchmark(),
        MriQComputeQBenchmark(),
        MriFhdRhoPhiBenchmark(),
        MriFhdFHBenchmark(),
    ]


def run(fast: bool = False) -> ExperimentResult:
    cpu = cpu_dut()
    series: Dict[str, Dict[str, float]] = {
        ("base" if f == 1 else f"{f}X"): {} for f in FACTORS
    }
    for bench in _benches(fast):
        gs = bench.default_global_sizes[0]
        buffers, scalars, _ = make_buffers(cpu, bench, gs)
        base = None
        for f in FACTORS:
            m = measure_kernel(
                cpu, bench, gs, None, coalesce=f, buffers=buffers, scalars=scalars
            )
            thr = m.throughput(float(gs[0]))
            if base is None:
                base = thr
            series["base" if f == 1 else f"{f}X"][bench.name] = thr / base
    return ExperimentResult(
        experiment_id="fig2",
        title="Parboil benchmarks with different workload per workitem (CPU)",
        series=[Series(k, v) for k, v in series.items()],
    )
