"""Reproduction of *OpenCL Performance Evaluation on Modern Multi Core CPUs*
(Lee, Patel, Nigania, Kim, Kim — IPPS 2013).

Subpackages
-----------
``repro.kernelir``
    SIMT kernel IR, lock-step numpy interpreter, static analyses, vectorizers.
``repro.simcpu``
    Out-of-order multicore CPU model (Xeon E5645-like): caches, cores,
    threads, workgroup scheduler, transfer model.
``repro.simgpu``
    GPU model (GTX 580-like): SMs, warps, occupancy, PCIe.
``repro.minicl``
    OpenCL-1.1-style runtime (platforms, contexts, queues, buffers, kernels,
    events) running on the simulated devices in deterministic virtual time.
``repro.openmp``
    Conventional parallel-programming baseline: fork-join ``parallel_for``
    with affinity and a classic loop auto-vectorizer.
``repro.suite``
    Every benchmark from the paper's Tables II and III plus the ILP and
    vectorization micro-benchmarks.
``repro.harness``
    The paper's timing methodology and one experiment module per
    table/figure.
``repro.obs``
    Observability: virtual-time/wall-clock tracing, the metrics
    registry, Chrome-trace (Perfetto) export.

Environment kill switches
-------------------------
Every ``REPRO_*`` environment variable is parsed by one helper
(:func:`env_flag`) with one rule — unset, empty or ``0`` means *off*,
anything else means *on*:

================  ==========================================================
``REPRO_VERIFY``   run the static kernel verifier on every enqueue
                   (:mod:`repro.kernelir.verify`)
``REPRO_NO_CACHE`` bypass every launch-plan cache (:mod:`repro.plancache`)
``REPRO_NO_JIT``   force the tree-walk interpreter engine
                   (:mod:`repro.kernelir.compile`)
``REPRO_TRACE``    enable tracing on the CLI; ``1`` writes ``trace.json``,
                   any other value is the output path (:mod:`repro.obs`)
``REPRO_NO_OOO``   force eager serial command execution (disable the
                   event-DAG scheduler; :mod:`repro.minicl.schedule`)
``REPRO_WORKERS``  host worker threads for the execution engine
                   (integer; unset/0 = auto-size; :mod:`repro.workers`)
``REPRO_QUEUE``    harness queue engine: ``ooo`` retires harness commands
                   through the DAG scheduler (:mod:`repro.harness.runner`)
================  ==========================================================

``REPRO_WORKERS`` and ``REPRO_QUEUE`` carry values rather than on/off
switches; they get the value-parsing helpers :func:`env_int` and
:func:`env_value` next to :func:`env_flag`.  The experiment service
(:mod:`repro.serve`, ``python -m repro serve``) adds the value-carrying
``REPRO_SERVE_{HOST,PORT,WORKERS,QUEUE,TENANT_QUEUE,PERSIST}`` family,
documented in ``docs/SERVE.md``.  The zero-copy data plane
(:mod:`repro.shm`, documented in ``docs/PERF.md``) adds ``REPRO_SHM``
(kill switch, default on) and ``REPRO_SHM_MAX_MB`` (per-segment cap).
"""

from __future__ import annotations

import os

__version__ = "1.0.0"

#: the documented ``REPRO_*`` switches (name -> one-line description);
#: kept in lock-step with the README table by ``tests/obs``
ENV_VARS = {
    "REPRO_VERIFY": "run the static kernel verifier on every enqueue",
    "REPRO_NO_CACHE": "bypass every launch-plan cache",
    "REPRO_NO_JIT": "force the tree-walk interpreter engine",
    "REPRO_TRACE": "enable tracing (1 = trace.json, other values = path)",
    "REPRO_NO_OOO": "force eager serial command execution (no DAG scheduler)",
    "REPRO_WORKERS": "host worker threads for the engine (0/unset = auto)",
    "REPRO_QUEUE": "harness queue engine ('ooo' = DAG scheduler)",
    "REPRO_SERVE_HOST": "experiment-service bind address (default 127.0.0.1)",
    "REPRO_SERVE_PORT": "experiment-service port (default 8752)",
    "REPRO_SERVE_WORKERS": "service execution threads (0/unset = engine auto)",
    "REPRO_SERVE_QUEUE": "service global admission queue limit (default 256)",
    "REPRO_SERVE_TENANT_QUEUE": "service per-tenant queue limit (default 64)",
    "REPRO_SERVE_PERSIST": "persist serve results to the disk cache "
                           "(daemon default on; 0 = off)",
    "REPRO_SHM": "zero-copy shared-memory data plane (default on; 0 = off)",
    "REPRO_SHM_MAX_MB": "per-segment shared-memory size cap in MB "
                        "(default 512)",
}


def env_flag(name: str) -> bool:
    """True when the ``REPRO_*`` switch ``name`` is on.

    One parsing rule for every kill switch: unset, ``""`` and ``"0"``
    are off; any other value is on.  Call sites must not re-parse
    ``os.environ`` themselves — this is the single source of truth.
    """
    return os.environ.get(name, "") not in ("", "0")


def env_value(name: str) -> str:
    """Raw value of a ``REPRO_*`` variable (``""`` when unset).

    For the variables that carry a value rather than an on/off switch
    (``REPRO_QUEUE``); keeps all environment parsing in this module.
    """
    return os.environ.get(name, "")


def env_int(name: str, default: int = 0) -> int:
    """Integer value of a ``REPRO_*`` variable.

    Unset, empty and unparsable values fall back to ``default`` (they
    never raise: a typo in an environment variable must not take down a
    run, matching the tolerant parsing of :func:`env_flag`).
    """
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


from . import kernelir  # noqa: F401,E402

__all__ = ["ENV_VARS", "env_flag", "env_int", "env_value", "kernelir",
           "metrics", "obs", "__version__"]


def __getattr__(name):
    # lazy: metrics pulls in both device models; obs pulls in exporters.
    # importlib (not ``from . import``) — the latter re-enters __getattr__.
    if name in ("metrics", "obs"):
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(name)
