"""Unit tests for the static analyses (op counts, ILP, access patterns)."""

import numpy as np
import pytest

from repro.kernelir import ast as ir
from repro.kernelir.analysis import (
    AffineIndex,
    LaunchContext,
    LatencyTable,
    affine_index,
    analyze_kernel,
)
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.interp import Interpreter
from repro.kernelir.types import F32, I32


def ctx(gsize=(64,), lsize=(16,), **scalars):
    return LaunchContext(gsize, lsize, scalars)


class TestAffineIndex:
    def test_gid_linear(self):
        c = ctx()
        a = affine_index(ir.GlobalId(0) * 4 + 2, c)
        assert a.coeff(("g", 0)) == 4 and a.const == 2
        assert a.vector_stride == 4

    def test_lid_contributes_to_vector_stride(self):
        c = ctx()
        a = affine_index(ir.LocalId(0) + ir.GroupId(0) * 16, c)
        assert a.vector_stride == 1  # grp is packet-constant

    def test_sizes_resolve_to_constants(self):
        c = ctx((64,), (16,))
        a = affine_index(ir.GlobalSize(0) + ir.LocalSize(0) + ir.NumGroups(0), c)
        assert a.const == 64 + 16 + 4 and not a.coeffs

    def test_scalar_substitution(self):
        c = ctx(w=10)
        a = affine_index(ir.GlobalId(0) * ir.Var("w", I32), c)
        assert a.coeff(("g", 0)) == 10

    def test_nonaffine_products(self):
        c = ctx()
        assert affine_index(ir.GlobalId(0) * ir.GlobalId(1), c) is None

    def test_load_is_opaque(self):
        c = ctx()
        e = ir.Load("a", ir.GlobalId(0), F32)
        assert affine_index(e, c) is None

    def test_division_by_constant(self):
        c = ctx()
        a = affine_index((ir.GlobalId(0) * 4) / 2, c)
        assert a is not None and a.coeff(("g", 0)) == 2
        assert affine_index((ir.GlobalId(0) * 3) / 2, c) is None

    def test_mod_nonaffine(self):
        c = ctx()
        assert affine_index(ir.GlobalId(0) % 7, c) is None

    def test_shift_scales(self):
        c = ctx()
        a = affine_index(ir.GlobalId(0) << 2, c)
        assert a.coeff(("g", 0)) == 4

    def test_env_variable_resolution(self):
        c = ctx()
        env = {"idx": AffineIndex(1.0, {("g", 0): 2.0})}
        a = affine_index(ir.Var("idx", I32) + 5, c, env)
        assert a.coeff(("g", 0)) == 2 and a.const == 6

    def test_loop_symbol(self):
        c = ctx()
        env = {"j": AffineIndex(0.0, {("loop", "j"): 1.0})}
        a = affine_index(ir.GlobalId(0) * 8 + ir.Var("j", I32), c, env)
        assert a.loop_stride("j") == 1
        assert not a.is_uniform
        u = affine_index(ir.Var("j", I32) * 2, c, env)
        assert u.is_uniform  # loop-varying but workitem-invariant


def _elementwise():
    kb = KernelBuilder("e")
    a = kb.buffer("a", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    x = kb.let("x", a[g])
    o[g] = x * x + 1.0
    return kb.finish()


class TestCounts:
    def test_elementwise_counts(self):
        an = analyze_kernel(_elementwise(), ctx())
        assert an.per_item.loads == 1
        assert an.per_item.stores == 1
        assert an.per_item.flops == 2

    def test_loop_multiplies_counts(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("i", 0, 10) as i:
            acc = kb.let("acc", acc + a[g * 10 + i])
        o[g] = acc
        an = analyze_kernel(kb.finish(), ctx())
        assert an.per_item.loads == 10
        assert an.per_item.flops == 10
        assert an.per_item.stores == 1

    def test_nested_loops_multiply(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("i", 0, 3):
            with kb.loop("j", 0, 4):
                acc = kb.let("acc", acc + 1.0)
        o[g] = acc
        an = analyze_kernel(kb.finish(), ctx())
        assert an.per_item.flops == 12

    def test_scalar_dependent_trip_count(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        n = kb.scalar("n", I32)
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("i", 0, n):
            acc = kb.let("acc", acc + 1.0)
        o[g] = acc
        an = analyze_kernel(kb.finish(), ctx(n=25))
        assert an.per_item.flops == 25
        assert not an.approximate

    def test_divergent_trip_marks_approximate(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        with kb.loop("i", 0, g):
            kb.let("x", kb.f32(1.0))
        o[g] = 0.0
        an = analyze_kernel(kb.finish(), ctx())
        assert an.approximate and an.divergent_flow

    def test_if_else_half_weight(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        with kb.if_((g % 2).eq(0)):
            o[g] = kb.f32(1.0) + 1.0
        with kb.else_():
            o[g] = kb.f32(2.0) + 2.0
        an = analyze_kernel(kb.finish(), ctx())
        assert an.per_item.flops == pytest.approx(1.0)  # 0.5 + 0.5
        assert an.divergent_flow

    def test_counts_match_interpreter(self):
        """Static counts equal dynamic counts for uniform kernels."""
        k = _elementwise()
        n = 32
        bufs = {"a": np.ones(n, np.float32), "o": np.zeros(n, np.float32)}
        res = Interpreter().launch(k, n, 8, buffers=bufs, count_ops=True)
        an = analyze_kernel(k, ctx((n,), (8,)))
        assert res.counters.flops == an.per_item.flops * n
        assert res.counters.loads == an.per_item.loads * n
        assert res.counters.stores == an.per_item.stores * n


class TestILP:
    def _chain_kernel(self, chains, per_chain):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32)
        g = kb.global_id(0)
        vs = [kb.let(f"v{i}", a[g] + float(i)) for i in range(chains)]
        with kb.loop("t", 0, 16):
            for i in range(chains):
                for _ in range(per_chain):
                    vs[i] = kb.let(f"v{i}", vs[i] * 1.5)
        acc = vs[0]
        for v in vs[1:]:
            acc = acc + v
        a[g] = acc
        return kb.finish()

    def test_single_chain_ilp_is_one(self):
        an = analyze_kernel(self._chain_kernel(1, 4), ctx())
        assert an.ilp == pytest.approx(1.0, abs=0.35)

    def test_ilp_scales_with_chains(self):
        ilps = [
            analyze_kernel(self._chain_kernel(k, 4), ctx()).ilp for k in (1, 2, 4)
        ]
        assert ilps[0] < ilps[1] < ilps[2]
        assert ilps[2] / ilps[0] == pytest.approx(4.0, rel=0.35)

    def test_independent_iterations_have_high_ilp(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        with kb.loop("i", 0, 32) as i:
            o[g * 32 + i] = a[g * 32 + i] * 2.0
        an = analyze_kernel(kb.finish(), ctx())
        assert an.ilp > 4  # no loop-carried dependence


class TestAccessPatterns:
    def test_contiguous(self):
        an = analyze_kernel(_elementwise(), ctx())
        assert {a.pattern for a in an.accesses} == {"contiguous"}

    def test_strided_and_uniform(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        o[g] = a[g * 2] + a[0]
        an = analyze_kernel(kb.finish(), ctx())
        pats = sorted(a.pattern for a in an.accesses)
        assert pats == ["contiguous", "strided", "uniform"]

    def test_gather(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        idx = kb.buffer("idx", I32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        o[g] = a[idx[g]]
        an = analyze_kernel(kb.finish(), ctx())
        assert any(a.pattern == "gather" for a in an.accesses)
        assert 0 < an.gather_fraction() < 1

    def test_loop_stride_recorded(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("i", 0, 8) as i:
            acc = kb.let("acc", acc + a[g * 8 + i])
        o[g] = acc
        an = analyze_kernel(kb.finish(), ctx())
        loads = [x for x in an.accesses if not x.is_store]
        assert loads[0].inner_loop_stride == 1
        assert loads[0].count_per_item == 8

    def test_bytes_and_intensity(self):
        an = analyze_kernel(_elementwise(), ctx())
        assert an.bytes_loaded_per_item == 4
        assert an.bytes_stored_per_item == 4
        assert an.arithmetic_intensity == pytest.approx(2 / 8)


class TestLatencyTable:
    def test_ordering(self):
        lt = LatencyTable()
        assert lt.fp_div > lt.fp_mul > lt.int_op
        assert lt.of_call("exp") > lt.of_call("sqrt") >= lt.of_call("fabs")
        assert lt.of_binop("<", F32) == lt.compare
        assert lt.of_binop("+", I32) == lt.int_op
