"""Shared test configuration.

The kernel JIT persists compiled sources and launch-plan verdicts under
``~/.cache/repro`` (see :mod:`repro.diskcache`).  Tests must be hermetic:
they should neither read entries a previous run left behind nor pollute
the developer's real cache, so every test session gets a private
throwaway cache root unless the invoker pinned one explicitly.
"""

import os
import tempfile


def pytest_configure(config):
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-cache-")
