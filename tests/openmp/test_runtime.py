"""Unit/integration tests for the OpenMP-like parallel_for runtime."""

import numpy as np
import pytest

from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32
from repro.openmp import FORK_JOIN_NS, OpenMPRuntime
from repro.openmp.env import OmpEnv


def vadd():
    kb = KernelBuilder("vadd")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    c[g] = a[g] + b[g]
    return kb.finish()


def chain_kernel():
    kb = KernelBuilder("chain")
    a = kb.buffer("a", F32)
    g = kb.global_id(0)
    v = kb.let("v", a[g])
    for _ in range(6):
        v = kb.let("v", v * 1.25)
    a[g] = v
    return kb.finish()


def data(n, rng=None):
    rng = rng or np.random.default_rng(0)
    return {
        "a": rng.random(n).astype(np.float32),
        "b": rng.random(n).astype(np.float32),
        "c": np.zeros(n, np.float32),
    }


class TestFunctional:
    def test_executes_correctly(self):
        rt = OpenMPRuntime()
        bufs = data(1000)
        r = rt.parallel_for(vadd(), 1000, buffers=bufs)
        np.testing.assert_allclose(bufs["c"], bufs["a"] + bufs["b"], rtol=1e-6)
        assert r.iterations == 1000
        assert r.time_ns >= FORK_JOIN_NS

    def test_rejects_workgroup_kernels(self):
        kb = KernelBuilder("bad")
        o = kb.buffer("o", F32, access="w")
        kb.barrier()
        o[kb.global_id(0)] = 1.0
        rt = OpenMPRuntime()
        with pytest.raises(ValueError, match="no .*OpenMP loop equivalent"):
            rt.parallel_for(kb.finish(), 16)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            OpenMPRuntime().parallel_for(vadd(), 0)

    def test_functional_off_skips_execution(self):
        rt = OpenMPRuntime(functional=False)
        bufs = data(100)
        rt.parallel_for(vadd(), 100, buffers=bufs)
        assert (bufs["c"] == 0).all()


class TestScheduling:
    def test_static_chunks_cover_range(self):
        chunks = OpenMPRuntime._static_chunks(10, 3)
        assert chunks == [(0, 4), (4, 7), (7, 10)]
        assert OpenMPRuntime._static_chunks(2, 8)[:2] == [(0, 1), (1, 2)]

    def test_threads_capped_by_n(self):
        rt = OpenMPRuntime(env={"OMP_NUM_THREADS": "16"}, functional=False)
        r = rt.parallel_for(vadd(), 4, buffers=data(4))
        assert r.threads == 4

    def test_dynamic_schedule_adds_overhead(self):
        static = OpenMPRuntime(functional=False)
        dynamic = OpenMPRuntime(
            env={"OMP_SCHEDULE": "dynamic,1"}, functional=False
        )
        n = 100_000
        bufs = data(n)
        t_s = static.parallel_for(vadd(), n, buffers=bufs).time_ns
        t_d = dynamic.parallel_for(vadd(), n, buffers=bufs).time_ns
        assert t_d > t_s

    def test_more_threads_faster(self):
        # compute-bound kernel: near-linear scaling
        n = 1 << 20
        bufs = {"a": np.ones(n, np.float32)}
        t1 = OpenMPRuntime(functional=False).parallel_for(
            chain_kernel(), n, buffers=bufs, num_threads=1
        ).time_ns
        t12 = OpenMPRuntime(functional=False).parallel_for(
            chain_kernel(), n, buffers=bufs, num_threads=12
        ).time_ns
        assert t12 < t1 / 6

    def test_memory_bound_scaling_is_sublinear(self):
        # streaming vadd shares the memory system: adding threads helps
        # less than linearly (bandwidth wall)
        n = 1 << 20
        bufs = data(n)
        t1 = OpenMPRuntime(functional=False).parallel_for(
            vadd(), n, buffers=bufs, num_threads=1
        ).time_ns
        t12 = OpenMPRuntime(functional=False).parallel_for(
            vadd(), n, buffers=bufs, num_threads=12
        ).time_ns
        assert t12 < t1          # still faster...
        assert t12 > t1 / 12     # ...but not 12x faster


class TestAffinity:
    ENV = {
        "OMP_PROC_BIND": "true",
        "OMP_NUM_THREADS": "8",
        "GOMP_CPU_AFFINITY": "0-7",
    }

    def test_pinned_placement(self):
        rt = OpenMPRuntime(env=self.ENV, functional=False)
        r = rt.parallel_for(vadd(), 800, buffers=data(800))
        assert r.placement == list(range(8))

    def test_unbound_placement_varies(self):
        rt = OpenMPRuntime(functional=False)
        r1 = rt.parallel_for(vadd(), 800, buffers=data(800))
        r2 = rt.parallel_for(vadd(), 800, buffers=data(800))
        assert r1.placement != r2.placement

    def test_aligned_consumer_faster_than_misaligned(self):
        n = 400_000

        def run(misaligned):
            rt = OpenMPRuntime(env=dict(self.ENV), functional=False)
            bufs = data(n)
            rt.parallel_for(vadd(), n, buffers=bufs)
            if misaligned:
                rt.env = OmpEnv.from_dict(
                    {**self.ENV, "GOMP_CPU_AFFINITY": "1 2 3 4 5 6 7 0"}
                )
            bufs2 = {"a": bufs["c"], "b": bufs["a"], "c": np.zeros(n, np.float32)}
            return rt.parallel_for(vadd(), n, buffers=bufs2).time_ns

        aligned, misaligned = run(False), run(True)
        assert misaligned > aligned * 1.05

    def test_residency_persists_across_calls(self):
        rt = OpenMPRuntime(env=self.ENV, functional=False)
        n = 100_000
        bufs = data(n)
        t_cold = rt.parallel_for(vadd(), n, buffers=bufs).time_ns
        t_warm = rt.parallel_for(vadd(), n, buffers=bufs).time_ns
        assert t_warm <= t_cold


class TestVectorizationWiring:
    def test_vectorizable_loop_reports_vectorized(self):
        rt = OpenMPRuntime(functional=False)
        r = rt.parallel_for(vadd(), 4096, buffers=data(4096))
        assert r.vectorization.vectorized

    def test_chain_defeats_loop_vectorizer_and_costs_more(self):
        rt = OpenMPRuntime(functional=False)
        n = 1 << 18
        bufs = {"a": np.ones(n, np.float32)}
        r = rt.parallel_for(chain_kernel(), n, buffers=bufs)
        assert not r.vectorization.vectorized
        rt2 = OpenMPRuntime(functional=False, fragile_vectorizer=False)
        r2 = rt2.parallel_for(chain_kernel(), n, buffers=bufs)
        assert r2.vectorization.vectorized
        assert r2.time_ns < r.time_ns  # ablation A4
