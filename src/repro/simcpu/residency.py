"""Shared residency-aware memory costing.

Both runtimes that can pin computation to cores — the OpenMP runtime
(natively) and the minicl affinity extension (the paper's Section III-E
proposal) — cost a chunk of work the same way: contiguous loads whose byte
ranges sit in the executing core's private caches are cheaper in latency
*and* put no traffic on the shared L3/DRAM.  This module holds that logic so
the two runtimes cannot drift apart.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..kernelir.analysis import KernelAnalysis
from .cachemodel import MemEstimate, MemoryCostModel
from .threads import CoreResidencyTracker

__all__ = [
    "DEFAULT_MISS_VISIBILITY",
    "contiguous_load_sites",
    "residency_adjusted_mem",
    "touch_contiguous",
]

#: fraction of the residency-miss latency visible past the prefetcher
DEFAULT_MISS_VISIBILITY = 0.15


def contiguous_load_sites(analysis: KernelAnalysis):
    """The global load sites the residency model can reason about."""
    return [
        a
        for a in analysis.accesses
        if not a.is_local and not a.is_store and a.pattern == "contiguous"
    ]


def residency_adjusted_mem(
    mem_model: MemoryCostModel,
    tracker: CoreResidencyTracker,
    analysis: KernelAnalysis,
    base_mem: MemEstimate,
    core: int,
    item_range: Tuple[int, int],
    buffer_ids: Dict[str, object],
    buffer_bytes: Dict[str, int],
    *,
    visibility: float = DEFAULT_MISS_VISIBILITY,
) -> MemEstimate:
    """Re-cost contiguous loads of items [lo, hi) executing on ``core``.

    Buffers the tracker has never seen keep the footprint-based baseline;
    (partially) resident buffers get residency-based latency and traffic.
    """
    lo, hi = item_range
    spec = mem_model.spec
    baseline_lat = spec.l1_latency + spec.l2_latency
    extra_amat = 0.0
    l3_delta = 0.0
    dram_delta = 0.0
    for a in contiguous_load_sites(analysis):
        bid = buffer_ids.get(a.buffer, a.buffer)
        p_priv, p_l3 = tracker.residency_fraction(
            core, bid, lo * a.itemsize, hi * a.itemsize
        )
        if p_priv + p_l3 <= 0.0:
            continue
        fp = int(buffer_bytes.get(a.buffer, spec.l3_bytes * 4))
        base_amat, base_dram, base_l3 = mem_model.site_cost(a, fp)
        avg_lat = tracker.avg_load_latency(
            core, bid, lo * a.itemsize, hi * a.itemsize
        )
        line_fraction = min(1.0, a.itemsize / spec.line_bytes)
        res_amat = max(0.0, avg_lat - baseline_lat) * visibility * line_fraction
        p_dram = max(0.0, 1.0 - p_priv - p_l3)
        res_l3 = a.itemsize * (p_l3 + p_dram)  # inclusive: DRAM crosses L3
        res_dram = a.itemsize * p_dram
        extra_amat += (res_amat - base_amat) * a.count_per_item
        l3_delta += (res_l3 - base_l3) * a.count_per_item
        dram_delta += (res_dram - base_dram) * a.count_per_item
    return dataclasses.replace(
        base_mem,
        amat_cycles=max(0.0, base_mem.amat_cycles + extra_amat),
        l3_bytes=max(0.0, base_mem.l3_bytes + l3_delta),
        dram_bytes=max(0.0, base_mem.dram_bytes + dram_delta),
    )


def touch_contiguous(
    tracker: CoreResidencyTracker,
    analysis: KernelAnalysis,
    core: int,
    item_range: Tuple[int, int],
    buffer_ids: Dict[str, object],
) -> None:
    """Record the byte ranges [lo, hi) streamed by contiguous accesses."""
    lo, hi = item_range
    if hi <= lo:
        return
    for a in analysis.accesses:
        if a.is_local or a.pattern != "contiguous":
            continue
        bid = buffer_ids.get(a.buffer, a.buffer)
        tracker.touch(core, bid, lo * a.itemsize, hi * a.itemsize)
