"""Hardware description of the modelled GPU (NVIDIA GeForce GTX 580, Fermi).

Paper Table I: 16 SMs, L1/global L2 = 16KB/768KB, 1.56 Tflop/s peak,
1544 MHz shader clock.  Peak corresponds to

    16 SMs x 32 CUDA cores x 2 flops (FMA) x 1.544 GHz ~ 1.58 Tflop/s.
"""

from __future__ import annotations

import dataclasses

__all__ = ["GPUSpec", "GTX580"]


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Parameters of the SM/warp/occupancy GPU model."""

    name: str = "NVidia GeForce GTX 580"
    num_sms: int = 16
    cores_per_sm: int = 32
    warp_size: int = 32
    max_threads_per_sm: int = 1536
    max_warps_per_sm: int = 48
    max_workgroups_per_sm: int = 8
    shared_mem_per_sm: int = 48 * 1024
    l1_bytes: int = 16 * 1024
    l2_bytes: int = 768 * 1024
    shader_clock_ghz: float = 1.544
    dram_bandwidth_gbps: float = 192.4
    #: memory transaction granularity per warp
    transaction_bytes: int = 128
    #: arithmetic pipeline latency; hiding it needs ~latency/issue warps
    alu_latency_cycles: float = 18.0
    #: warps needed per SM for full latency hiding
    warps_to_hide_latency: float = 18.0

    # runtime costs
    kernel_launch_overhead_ns: float = 5_000.0
    workgroup_dispatch_ns: float = 50.0  # hardware scheduler: ~negligible
    #: clEnqueueUnmapMemObject bookkeeping when no writeback crosses PCIe
    unmap_overhead_ns: float = 200.0

    # PCIe link (discrete device: host<->device crossings are real)
    pcie_latency_ns: float = 10_000.0
    pcie_bandwidth_pageable_gbps: float = 3.0
    pcie_bandwidth_pinned_gbps: float = 6.0

    @property
    def peak_gflops_sp(self) -> float:
        return self.num_sms * self.cores_per_sm * 2 * self.shader_clock_ghz

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.shader_clock_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.cycle_ns

    def describe(self) -> dict:
        return {
            "GPUs": self.name,
            "# SMs": str(self.num_sms),
            "Caches": (
                f"L1/Global L2: {self.l1_bytes // 1024}KB/"
                f"{self.l2_bytes // 1024}KB"
            ),
            "FP peak performance": f"{self.peak_gflops_sp / 1000:.2f} Tflop/s",
            "Shader Clock frequency": f"{self.shader_clock_ghz * 1000:.0f} MHz",
        }


#: The paper's GPU.
GTX580 = GPUSpec()
