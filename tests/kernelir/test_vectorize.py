"""Unit tests for both vectorization strategies (the Figure 10/11 engine)."""

import pytest

from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32, I32, U32
from repro.kernelir.vectorize import (
    LoopVectorizer,
    OpenCLVectorizer,
    dependence_chain_length,
)


def ctx(gsize=(1024,), lsize=(256,), **scalars):
    return LaunchContext(gsize, lsize, scalars)


def vadd():
    kb = KernelBuilder("vadd")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    c[g] = a[g] + b[g]
    return kb.finish()


def saxpy():
    kb = KernelBuilder("saxpy")
    x = kb.buffer("x", F32, access="r")
    y = kb.buffer("y", F32)
    al = kb.scalar("alpha", F32)
    g = kb.global_id(0)
    y[g] = kb.mad(al, x[g], y[g])
    return kb.finish()


def chain_loop():
    """Figure 11's pattern."""
    kb = KernelBuilder("chain")
    a = kb.buffer("a", F32)
    b = kb.buffer("b", F32, access="r")
    g = kb.global_id(0)
    acc = kb.let("acc", a[g])
    v = kb.let("v", b[g])
    with kb.loop("j", 0, 4):
        for _ in range(6):
            acc = kb.let("acc", acc * v)
    a[g] = acc
    return kb.finish()


def strided():
    kb = KernelBuilder("strided")
    a = kb.buffer("a", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    c[g] = a[g * 2]
    return kb.finish()


def gather():
    kb = KernelBuilder("gather")
    a = kb.buffer("a", F32, access="r")
    idx = kb.buffer("idx", I32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    c[g] = a[idx[g]]
    return kb.finish()


class TestParity:
    """The patterns where both compilers vectorize (kept out of the MBench
    family, which follows the paper's all-OpenCL-wins selection)."""

    @pytest.mark.parametrize("k", [vadd, saxpy])
    def test_both_vectorize(self, k):
        kernel = k()
        c = ctx(alpha=1.5)
        assert OpenCLVectorizer(4).vectorize(kernel, c).vectorized
        assert LoopVectorizer(4).vectorize(kernel, c).vectorized


class TestOpenCLVectorizer:
    def test_chain_is_fine_for_simt(self):
        rep = OpenCLVectorizer(4).vectorize(chain_loop(), ctx())
        assert rep.vectorized and rep.width == 4

    def test_atomics_block(self):
        kb = KernelBuilder("h")
        h = kb.buffer("h", U32)
        h.atomic_add(kb.global_id(0) % 4, kb.cast(1, U32))
        rep = OpenCLVectorizer(4).vectorize(kb.finish(), ctx())
        assert not rep.vectorized
        assert any("atomic" in r for r in rep.reasons)

    def test_tiny_workgroup_blocks(self):
        rep = OpenCLVectorizer(4).vectorize(vadd(), ctx((1024,), (2,)))
        assert not rep.vectorized

    def test_barrier_with_divergence_blocks(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        s = kb.local_array("s", 4, F32)
        g = kb.global_id(0)
        with kb.if_(g < 2):
            s[kb.local_id(0)] = kb.f32(1.0)
        kb.barrier()
        o[g] = s[0]
        rep = OpenCLVectorizer(4).vectorize(kb.finish(), ctx((16,), (4,)))
        assert not rep.vectorized
        assert any("divergent" in r for r in rep.reasons)

    def test_barrier_without_divergence_ok(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        s = kb.local_array("s", 4, F32)
        lid = kb.local_id(0)
        s[lid] = a[kb.global_id(0)]
        kb.barrier()
        o[kb.global_id(0)] = s[lid]
        rep = OpenCLVectorizer(4).vectorize(kb.finish(), ctx((16,), (4,)))
        assert rep.vectorized

    def test_erf_forces_scalar(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        o[g] = kb.erf(a[g])
        rep = OpenCLVectorizer(4).vectorize(kb.finish(), ctx())
        assert not rep.vectorized
        assert any("scalar-only" in r for r in rep.reasons)

    def test_effective_width_degrades_with_gathers(self):
        full = OpenCLVectorizer(4).vectorize(vadd(), ctx())
        g = OpenCLVectorizer(4).vectorize(gather(), ctx())
        assert full.effective_width > g.effective_width >= 1.0

    def test_weighted_accesses_override_static_sites(self):
        kernel = vadd()
        c = ctx()
        an = analyze_kernel(kernel, c)
        rep = OpenCLVectorizer(4).vectorize(kernel, c, an.accesses)
        assert rep.contiguous_ops == 3  # 2 loads + 1 store, weight 1 each

    def test_large_stride_counts_as_gather(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        c = kb.buffer("c", F32, access="w")
        g = kb.global_id(0)
        c[g] = a[g * 100]
        rep = OpenCLVectorizer(4).vectorize(kb.finish(), ctx())
        assert rep.gather_ops >= 1


class TestLoopVectorizer:
    def test_chain_blocks(self):
        rep = LoopVectorizer(4).vectorize(chain_loop(), ctx())
        assert not rep.vectorized
        assert any("dependence chain" in r for r in rep.reasons)

    def test_chain_allowed_when_fragility_off(self):
        rep = LoopVectorizer(4, fragile=False).vectorize(chain_loop(), ctx())
        assert rep.vectorized  # ablation A4

    def test_strided_blocks(self):
        rep = LoopVectorizer(4).vectorize(strided(), ctx())
        assert any("noncontiguous" in r for r in rep.reasons)

    def test_gather_blocks(self):
        rep = LoopVectorizer(4).vectorize(gather(), ctx())
        assert any("indirect" in r for r in rep.reasons)

    def test_divergent_control_flow_blocks(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        with kb.if_(g < 5):
            o[g] = kb.f32(1.0)
        rep = LoopVectorizer(4).vectorize(kb.finish(), ctx())
        assert any("control flow" in r for r in rep.reasons)

    def test_runtime_offset_aliasing_blocks(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        c = kb.buffer("c", F32)
        off = kb.scalar("off", I32)
        g = kb.global_id(0)
        c[g] = a[g] + c[g + off]
        rep = LoopVectorizer(4).vectorize(kb.finish(), ctx(off=512))
        assert any("loop-carried dependence" in r for r in rep.reasons)

    def test_same_index_read_write_allowed(self):
        rep = LoopVectorizer(4).vectorize(saxpy(), ctx(alpha=2.0))
        assert rep.vectorized  # y[i] = f(y[i]) is not loop-carried

    def test_workgroup_constructs_block(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        s = kb.local_array("s", 4, F32)
        lid = kb.local_id(0)
        s[lid] = kb.f32(1.0)
        kb.barrier()
        o[kb.global_id(0)] = s[lid]
        rep = LoopVectorizer(4).vectorize(kb.finish(), ctx((16,), (4,)))
        assert any("workgroup constructs" in r for r in rep.reasons)


class TestChainLength:
    def test_counts_dependent_float_ops(self):
        assert dependence_chain_length(chain_loop().body, ctx()) == 6

    def test_independent_ops_do_not_chain(self):
        assert dependence_chain_length(vadd().body, ctx()) == 1

    def test_mad_counts_two(self):
        kb = KernelBuilder("k")
        x = kb.buffer("x", F32)
        g = kb.global_id(0)
        v = kb.let("v", x[g])
        v = kb.let("v", kb.mad(v, v, v))
        v = kb.let("v", kb.mad(v, v, v))
        x[g] = v
        assert dependence_chain_length(kb.finish().body, ctx()) == 4

    def test_branches_merge_with_max(self):
        kb = KernelBuilder("k")
        x = kb.buffer("x", F32)
        g = kb.global_id(0)
        v = kb.let("v", x[g])
        with kb.if_(g < 2):
            for _ in range(5):
                v = kb.let("v", v * 2.0)
        x[g] = v
        assert dependence_chain_length(kb.finish().body, ctx()) == 5
