"""Software threads, affinity, and coarse per-core cache residency.

OpenMP supports pinning threads to cores (``OMP_PROC_BIND``,
``GOMP_CPU_AFFINITY``); OpenCL does not (the paper's Section II-D / III-E).
This module provides:

* :class:`AffinityPolicy` — parses the GNU OpenMP environment controls and
  yields a thread -> logical-core placement;
* :class:`CoreResidencyTracker` — a coarse, range-granular model of *which
  data each physical core's private caches hold across kernel launches*.
  This is what makes the Figure 9 experiment work: the producer kernel warms
  each core's private L2 with its chunk, and the consumer kernel's cost
  depends on whether its chunks land on the same cores (aligned) or on
  different ones (misaligned — served from the shared L3 instead).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .spec import CPUSpec

__all__ = ["AffinityPolicy", "CoreResidencyTracker", "parse_cpu_affinity"]


def parse_cpu_affinity(value: str) -> List[int]:
    """Parse a ``GOMP_CPU_AFFINITY``-style list: ``"0 3 1-2 4-10:2"``.

    Returns the explicit CPU list (order matters: thread i is bound to
    ``list[i % len(list)]``).
    """
    cpus: List[int] = []
    for tok in value.replace(",", " ").split():
        if "-" in tok:
            rng, _, stride = tok.partition(":")
            lo_s, _, hi_s = rng.partition("-")
            lo, hi = int(lo_s), int(hi_s)
            st = int(stride) if stride else 1
            if st <= 0 or hi < lo:
                raise ValueError(f"bad affinity token {tok!r}")
            cpus.extend(range(lo, hi + 1, st))
        else:
            cpus.append(int(tok))
    if not cpus:
        raise ValueError("empty affinity list")
    if any(c < 0 for c in cpus):
        raise ValueError("negative CPU id in affinity list")
    return cpus


@dataclasses.dataclass
class AffinityPolicy:
    """Thread placement policy.

    ``proc_bind=False`` models the OS free to migrate threads (and models
    OpenCL, which cannot pin at all): each launch gets a fresh, arbitrary
    placement, so cross-kernel cache reuse is not guaranteed.
    """

    proc_bind: bool = False
    cpu_list: Optional[List[int]] = None

    @classmethod
    def from_env(cls, env: Dict[str, str]) -> "AffinityPolicy":
        bind = env.get("OMP_PROC_BIND", "false").strip().lower() in (
            "true",
            "1",
            "yes",
            "spread",
            "close",
        )
        aff = env.get("GOMP_CPU_AFFINITY")
        cpus = parse_cpu_affinity(aff) if aff else None
        # Setting GOMP_CPU_AFFINITY implies binding in GNU OpenMP.
        return cls(proc_bind=bind or cpus is not None, cpu_list=cpus)

    def placement(self, num_threads: int, num_cores: int) -> List[int]:
        """Logical core for each thread id."""
        if self.cpu_list is not None:
            return [self.cpu_list[i % len(self.cpu_list)] % num_cores
                    for i in range(num_threads)]
        return [i % num_cores for i in range(num_threads)]


class _LruStore:
    """LRU of ``(buffer_id, start, end) -> resident bytes``.

    Keeps a running byte total (eviction would otherwise re-sum the store
    per insert) and a per-buffer key index (overlap queries only ever look
    at one buffer, so they must not scan every resident range).
    """

    __slots__ = ("ranges", "total", "_by_buf")

    def __init__(self):
        self.ranges: OrderedDict = OrderedDict()
        self.total = 0
        self._by_buf: Dict[object, dict] = {}

    def __len__(self) -> int:
        return len(self.ranges)

    def insert(self, key: Tuple, nbytes: int, capacity: int) -> None:
        if key in self.ranges:
            self.ranges.move_to_end(key)
            return
        self.ranges[key] = nbytes
        self._by_buf.setdefault(key[0], {})[key] = None
        self.total += nbytes
        while self.total > capacity and len(self.ranges) > 1:
            k, evicted = self.ranges.popitem(last=False)
            d = self._by_buf.get(k[0])
            if d is not None:
                d.pop(k, None)
                if not d:
                    del self._by_buf[k[0]]
            self.total -= evicted
        if self.total > capacity and self.ranges:
            # single oversized range: keep only the resident tail
            k, old = self.ranges.popitem(last=False)
            self.ranges[k] = capacity
            self.total += capacity - old

    def overlap(self, buffer_id: object, start: int, end: int) -> int:
        keys = self._by_buf.get(buffer_id)
        if not keys:
            return 0
        got = 0
        ranges = self.ranges
        for key in keys:
            _, s, e = key
            # residency is the LRU *tail* of the range, i.e. its last bytes
            res_start = max(s, e - ranges[key])
            lo, hi = max(start, res_start), min(end, e)
            if hi > lo:
                got += hi - lo
        return got

    def clear(self) -> None:
        self.ranges.clear()
        self._by_buf.clear()
        self.total = 0


class CoreResidencyTracker:
    """Range-granular residency of buffer data in private caches and L3.

    State is tracked per *physical core* (SMT siblings share caches) as an
    LRU list of ``(buffer_id, start, end)`` byte ranges bounded by the
    private capacity (L1d + L2), plus a per-socket LRU bounded by L3.
    """

    def __init__(self, spec: CPUSpec):
        self.spec = spec
        self.private_capacity = spec.l1d_bytes + spec.l2_bytes
        self.l3_capacity = spec.l3_bytes
        self._private: List[_LruStore] = [
            _LruStore() for _ in range(spec.physical_cores)
        ]
        self._l3: List[_LruStore] = [_LruStore() for _ in range(spec.sockets)]

    # -- topology helpers ----------------------------------------------------
    def physical_of(self, logical_core: int) -> int:
        return logical_core % self.spec.physical_cores

    def socket_of(self, physical_core: int) -> int:
        return physical_core // self.spec.cores_per_socket

    # -- state update ----------------------------------------------------------
    def touch(
        self, logical_core: int, buffer_id: object, start: int, end: int
    ) -> None:
        """Record that ``logical_core`` streamed bytes [start, end) of buffer."""
        if end <= start:
            return
        phys = self.physical_of(logical_core)
        nbytes = end - start
        key = (buffer_id, start, end)
        self._private[phys].insert(key, nbytes, self.private_capacity)
        self._l3[self.socket_of(phys)].insert(key, nbytes, self.l3_capacity)

    # -- queries -------------------------------------------------------------
    def residency_fraction(
        self, logical_core: int, buffer_id: object, start: int, end: int
    ) -> Tuple[float, float]:
        """(private_fraction, l3_fraction) of [start, end) for this core.

        The L3 fraction excludes what is already private (inclusive caches:
        private implies L3, so the returned fractions are disjoint shares).
        """
        if end <= start:
            return 0.0, 0.0
        phys = self.physical_of(logical_core)
        total = end - start
        priv = self._private[phys].overlap(buffer_id, start, end) / total
        l3 = self._l3[self.socket_of(phys)].overlap(buffer_id, start, end) / total
        l3_only = max(0.0, min(1.0, l3) - min(1.0, priv))
        return min(1.0, priv), l3_only

    def avg_load_latency(
        self, logical_core: int, buffer_id: object, start: int, end: int
    ) -> float:
        """Average cycles to load one line of [start, end) from this core."""
        s = self.spec
        priv, l3 = self.residency_fraction(logical_core, buffer_id, start, end)
        dram = max(0.0, 1.0 - priv - l3)
        lat_priv = s.l1_latency + s.l2_latency
        lat_l3 = s.l1_latency + s.l2_latency + s.l3_latency
        lat_dram = lat_l3 + s.dram_latency
        return priv * lat_priv + l3 * lat_l3 + dram * lat_dram

    @property
    def is_empty(self) -> bool:
        """True when no residency has been recorded (fast-path check)."""
        return not any(self._private) and not any(self._l3)

    def reset(self) -> None:
        for st in self._private:
            st.clear()
        for st in self._l3:
            st.clear()
