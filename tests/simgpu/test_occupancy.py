"""Unit tests for the SM occupancy calculator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgpu.occupancy import compute_occupancy
from repro.simgpu.spec import GTX580


class TestLimits:
    def test_thread_limited(self):
        occ = compute_occupancy(GTX580, 512)
        assert occ.workgroups_per_sm == 3  # 1536 / 512
        assert occ.limiter == "threads"

    def test_slot_limited_for_tiny_groups(self):
        occ = compute_occupancy(GTX580, 1)
        assert occ.workgroups_per_sm == 8
        assert occ.limiter == "slots"
        assert occ.active_threads == 8

    def test_shared_memory_limited(self):
        occ = compute_occupancy(GTX580, 64, shared_bytes_per_wg=20 * 1024)
        assert occ.workgroups_per_sm == 2
        assert occ.limiter == "shared"

    def test_warp_limited(self):
        # 96-thread groups: 3 warps each; warp limit 48/3=16 > slots 8
        occ = compute_occupancy(GTX580, 96)
        assert occ.workgroups_per_sm == 8

    def test_full_occupancy_config(self):
        occ = compute_occupancy(GTX580, 192)
        assert occ.active_threads == 1536
        assert occ.occupancy == 1.0


class TestLaneEfficiency:
    def test_full_warps(self):
        assert compute_occupancy(GTX580, 256).lane_efficiency == 1.0

    def test_partial_warp_wastes_lanes(self):
        occ = compute_occupancy(GTX580, 1)
        assert occ.lane_efficiency == pytest.approx(1 / 32)
        occ10 = compute_occupancy(GTX580, 10)
        assert occ10.lane_efficiency == pytest.approx(10 / 32)

    def test_odd_size_tail_warp(self):
        occ = compute_occupancy(GTX580, 48)
        assert occ.warps_per_workgroup == 2
        assert occ.lane_efficiency == pytest.approx(48 / 64)


class TestValidation:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            compute_occupancy(GTX580, 0)

    def test_rejects_oversized_group(self):
        with pytest.raises(ValueError):
            compute_occupancy(GTX580, 2048)

    def test_rejects_oversized_shared(self):
        with pytest.raises(ValueError):
            compute_occupancy(GTX580, 64, shared_bytes_per_wg=64 * 1024)


@settings(max_examples=50, deadline=None)
@given(wg=st.integers(1, 1024), shared=st.integers(0, 48 * 1024))
def test_occupancy_invariants(wg, shared):
    occ = compute_occupancy(GTX580, wg, shared)
    assert 1 <= occ.workgroups_per_sm <= GTX580.max_workgroups_per_sm
    assert occ.active_threads <= GTX580.max_threads_per_sm
    assert occ.active_warps <= GTX580.max_warps_per_sm
    if shared:
        assert occ.workgroups_per_sm * shared <= GTX580.shared_mem_per_sm
    assert 0 < occ.lane_efficiency <= 1.0
