"""Parboil ``MRI-Q`` — non-Cartesian MRI reconstruction, Q matrix.

Two kernels (Table III):

* ``computePhiMag`` — global 3072, local 512: magnitude of the complex
  coil sensitivity, ``phiMag[k] = phiR[k]^2 + phiI[k]^2``;
* ``computeQ`` — global 32768, local 256: for every voxel, accumulate
  cos/sin contributions of every k-space sample.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32
from ..base import Benchmark

__all__ = [
    "MriQPhiMagBenchmark",
    "MriQComputeQBenchmark",
    "build_phimag_kernel",
    "build_computeq_kernel",
]

TWO_PI = 2.0 * math.pi


def build_phimag_kernel(coalesce: int = 1) -> Kernel:
    kb = KernelBuilder("computePhiMag")
    phiR = kb.buffer("phiR", F32, access="r")
    phiI = kb.buffer("phiI", F32, access="r")
    phiMag = kb.buffer("phiMag", F32, access="w")
    gid = kb.global_id(0)

    def one(idx):
        r = kb.let("r", phiR[idx])
        i = kb.let("i", phiI[idx])
        phiMag[idx] = r * r + i * i

    if coalesce == 1:
        one(gid)
    else:
        n_per = kb.scalar("n_per", I32)
        with kb.loop("j", 0, n_per) as j:
            idx = kb.let("idx", gid * n_per + j)
            one(idx)
    return kb.finish()


def build_computeq_kernel(coalesce: int = 1) -> Kernel:
    kb = KernelBuilder("computeQ")
    kx = kb.buffer("kx", F32, access="r")
    ky = kb.buffer("ky", F32, access="r")
    kz = kb.buffer("kz", F32, access="r")
    x = kb.buffer("x", F32, access="r")
    y = kb.buffer("y", F32, access="r")
    z = kb.buffer("z", F32, access="r")
    phiMag = kb.buffer("phiMag", F32, access="r")
    Qr = kb.buffer("Qr", F32, access="w")
    Qi = kb.buffer("Qi", F32, access="w")
    numK = kb.scalar("numK", I32)
    gid = kb.global_id(0)

    def one(idx):
        xi = kb.let("xi", x[idx])
        yi = kb.let("yi", y[idx])
        zi = kb.let("zi", z[idx])
        qr = kb.let("qr", kb.f32(0.0))
        qi = kb.let("qi", kb.f32(0.0))
        with kb.loop("k", 0, numK) as k:
            arg = kb.let(
                "arg",
                kb.f32(TWO_PI) * (kx[k] * xi + ky[k] * yi + kz[k] * zi),
            )
            m = kb.let("m", phiMag[k])
            qr = kb.let("qr", kb.mad(m, kb.cos(arg), qr))
            qi = kb.let("qi", kb.mad(m, kb.sin(arg), qi))
        Qr[idx] = qr
        Qi[idx] = qi

    if coalesce == 1:
        one(gid)
    else:
        n_per = kb.scalar("n_per", I32)
        with kb.loop("j", 0, n_per) as j:
            idx = kb.let("idx", gid * n_per + j)
            one(idx)
    return kb.finish()


class MriQPhiMagBenchmark(Benchmark):
    name = "MRI-Q: computePhiMag"
    work_dim = 1
    default_global_sizes = ((3072,),)
    default_local_size = (512,)

    def kernel(self, coalesce: int = 1) -> Kernel:
        return build_phimag_kernel(coalesce)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        return (
            {
                "phiR": rng.standard_normal(n, dtype=np.float32),
                "phiI": rng.standard_normal(n, dtype=np.float32),
                "phiMag": np.zeros(n, dtype=np.float32),
            },
            {},
        )

    def reference(self, buffers, scalars, global_size):
        return {"phiMag": buffers["phiR"] ** 2 + buffers["phiI"] ** 2}


class MriQComputeQBenchmark(Benchmark):
    name = "MRI-Q: computeQ"
    work_dim = 1
    default_global_sizes = ((32768,),)
    default_local_size = (256,)

    def __init__(self, num_k: int = 3072):
        self.num_k = num_k

    def kernel(self, coalesce: int = 1) -> Kernel:
        return build_computeq_kernel(coalesce)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        k = self.num_k
        mk = lambda m: rng.standard_normal(m, dtype=np.float32)  # noqa: E731
        return (
            {
                "kx": mk(k), "ky": mk(k), "kz": mk(k),
                "x": mk(n), "y": mk(n), "z": mk(n),
                "phiMag": rng.random(k, dtype=np.float32),
                "Qr": np.zeros(n, dtype=np.float32),
                "Qi": np.zeros(n, dtype=np.float32),
            },
            {"numK": k},
        )

    def reference(self, buffers, scalars, global_size):
        arg = TWO_PI * (
            np.outer(buffers["x"].astype(np.float64), buffers["kx"].astype(np.float64))
            + np.outer(buffers["y"].astype(np.float64), buffers["ky"].astype(np.float64))
            + np.outer(buffers["z"].astype(np.float64), buffers["kz"].astype(np.float64))
        )
        m = buffers["phiMag"].astype(np.float64)[None, :]
        return {
            "Qr": (m * np.cos(arg)).sum(axis=1).astype(np.float32),
            "Qi": (m * np.sin(arg)).sum(axis=1).astype(np.float32),
        }
