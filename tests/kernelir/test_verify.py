"""Table-driven tests for the static kernel verifier.

One minimal IR kernel per rule, with a positive (defect present, rule id
emitted) and a negative (defect fixed, rule id absent) variant, plus a
sweep asserting every kernel the suite ships is diagnostic-clean at its
default launch sizes, and integration checks for the runtime wiring
(interpreter flag enforcement, ``verify=`` enqueue mode).
"""

import numpy as np
import pytest

from repro.kernelir import (
    F32,
    I32,
    Interpreter,
    KernelBuilder,
    KernelExecutionError,
    LaunchContext,
    verify_launch,
)
from repro.kernelir.verify import RULES


def _ctx():
    return LaunchContext((64,), (16,))


def _rules(report):
    return {d.rule for d in report.diagnostics}


# ---------------------------------------------------------------------------
# one kernel per rule: (name, build -> (kernel, sizes, flags), expected rule)
# ---------------------------------------------------------------------------

def _racy_const_store():
    # every workitem writes out[0]: classic write-write race
    kb = KernelBuilder("racy")
    out = kb.buffer("out", F32, access="w")
    kb.store(out, 0, kb.f32(1.0))
    return kb.finish(), {"out": 64}, None


def _racy_overlapping_stores():
    # item i writes i and i+1; item i+1 also writes i+1
    kb = KernelBuilder("overlap")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g] = kb.f32(1.0)
    out[g + 1] = kb.f32(2.0)
    return kb.finish(), {"out": 128}, None


def _clean_elementwise():
    kb = KernelBuilder("square")
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g] = a[g] * a[g]
    return kb.finish(), {"a": 64, "out": 64}, None


def _divergent_barrier():
    kb = KernelBuilder("divb")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    with kb.if_(g < 32):
        kb.barrier()
    out[g] = kb.f32(1.0)
    return kb.finish(), {"out": 64}, None


def _uniform_barrier():
    # barrier under a scalar-uniform condition is fine
    kb = KernelBuilder("unib")
    out = kb.buffer("out", F32, access="w")
    n = kb.scalar("n", I32)
    tile = kb.local_array("tile", 16, F32)
    lid = kb.local_id(0)
    g = kb.global_id(0)
    tile[lid] = kb.f32(3.0)
    with kb.if_(n > 0):
        kb.barrier()
    out[g] = tile[lid] + kb.i32(0) * n
    return kb.finish(), {"out": 64}, None


def _oob_store():
    kb = KernelBuilder("oob")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g + 8] = kb.f32(1.0)
    return kb.finish(), {"out": 64}, None


def _in_bounds_store():
    kb = KernelBuilder("inb")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g + 8] = kb.f32(1.0)
    return kb.finish(), {"out": 72}, None


def _readonly_write():
    kb = KernelBuilder("flagw")
    buf = kb.buffer("buf", F32, access="rw")
    g = kb.global_id(0)
    buf[g] = buf[g] + kb.f32(1.0)
    return kb.finish(), {"buf": 64}, {"buf": "r"}


def _writeonly_read():
    kb = KernelBuilder("flagr")
    src = kb.buffer("src", F32, access="rw")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g] = src[g]
    return kb.finish(), {"src": 64, "out": 64}, {"src": "w", "out": "w"}


def _flags_respected():
    k, sizes, _ = _clean_elementwise()
    return k, sizes, {"a": "r", "out": "w"}


def _local_race_no_barrier():
    kb = KernelBuilder("localrace")
    out = kb.buffer("out", F32, access="w")
    tile = kb.local_array("tile", 16, F32)
    lid = kb.local_id(0)
    g = kb.global_id(0)
    tile[lid] = kb.f32(2.0)
    out[g] = tile[15 - lid]  # reads a slot another workitem wrote
    return kb.finish(), {"out": 64}, None


def _local_race_with_barrier():
    kb = KernelBuilder("localok")
    out = kb.buffer("out", F32, access="w")
    tile = kb.local_array("tile", 16, F32)
    lid = kb.local_id(0)
    g = kb.global_id(0)
    tile[lid] = kb.f32(2.0)
    kb.barrier()
    out[g] = tile[15 - lid]
    return kb.finish(), {"out": 64}, None


def _uninit_local_read():
    kb = KernelBuilder("uninit")
    out = kb.buffer("out", F32, access="w")
    tile = kb.local_array("tile", 16, F32)
    lid = kb.local_id(0)
    g = kb.global_id(0)
    out[g] = tile[lid]
    return kb.finish(), {"out": 64}, None


def _unused_param():
    kb = KernelBuilder("unused")
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    kb.scalar("n", I32)  # never referenced
    g = kb.global_id(0)
    out[g] = a[g]
    return kb.finish(), {"a": 64, "out": 64}, None


def _vec_blocker():
    # erf is scalar-only for the packer (paper Fig. 10's Blackscholes case)
    kb = KernelBuilder("erfk")
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g] = kb.erf(a[g])
    return kb.finish(), {"a": 64, "out": 64}, None


CASES = [
    # (id, builder, rule that must fire, expected severity)
    ("race-const-index", _racy_const_store, "R-RACE-GLOBAL", "error"),
    ("race-overlapping-stores", _racy_overlapping_stores, "R-RACE-GLOBAL", "error"),
    ("barrier-divergent", _divergent_barrier, "R-BARRIER-DIV", "error"),
    ("oob-store", _oob_store, "R-OOB", "error"),
    ("readonly-write", _readonly_write, "R-FLAGS", "error"),
    ("writeonly-read", _writeonly_read, "R-FLAGS", "error"),
    ("local-missing-barrier", _local_race_no_barrier, "R-RACE-LOCAL", "error"),
    ("uninit-local", _uninit_local_read, "R-UNINIT-LOCAL", "warning"),
    ("unused-param", _unused_param, "R-UNUSED-PARAM", "warning"),
    ("vec-blocker", _vec_blocker, "R-VEC", "note"),
]

NEGATIVES = [
    # (id, builder, rule that must NOT fire)
    ("clean-elementwise", _clean_elementwise, "R-RACE-GLOBAL"),
    ("uniform-barrier", _uniform_barrier, "R-BARRIER-DIV"),
    ("in-bounds", _in_bounds_store, "R-OOB"),
    ("flags-respected", _flags_respected, "R-FLAGS"),
    ("local-with-barrier", _local_race_with_barrier, "R-RACE-LOCAL"),
    ("local-with-barrier-uninit", _local_race_with_barrier, "R-UNINIT-LOCAL"),
    ("clean-no-unused", _clean_elementwise, "R-UNUSED-PARAM"),
]


class TestRuleTable:
    @pytest.mark.parametrize("case_id,build,rule,severity",
                             CASES, ids=[c[0] for c in CASES])
    def test_positive(self, case_id, build, rule, severity):
        kernel, sizes, flags = build()
        report = verify_launch(
            kernel, _ctx(), buffer_sizes=sizes, buffer_flags=flags
        )
        matches = [d for d in report.diagnostics if d.rule == rule]
        assert matches, f"{case_id}: expected {rule}, got {_rules(report)}"
        assert any(d.severity == severity for d in matches)
        # every diagnostic is well-formed
        for d in report.diagnostics:
            assert d.rule in RULES
            assert d.kernel == kernel.name
            assert d.location
            assert d.rule in d.format()

    @pytest.mark.parametrize("case_id,build,rule",
                             NEGATIVES, ids=[c[0] for c in NEGATIVES])
    def test_negative(self, case_id, build, rule):
        kernel, sizes, flags = build()
        report = verify_launch(
            kernel, _ctx(), buffer_sizes=sizes, buffer_flags=flags
        )
        assert rule not in _rules(report), (
            f"{case_id}: {rule} fired: {report.render()}"
        )

    def test_clean_kernel_is_fully_clean(self):
        kernel, sizes, _ = _clean_elementwise()
        report = verify_launch(kernel, _ctx(), buffer_sizes=sizes)
        assert report.diagnostics == [] and report.clean and report.ok

    def test_severity_taxonomy(self):
        kernel, sizes, _ = _vec_blocker()
        report = verify_launch(kernel, _ctx(), buffer_sizes=sizes)
        # a note-only report is still "clean" (lint exit 0)
        assert report.clean and report.ok
        assert report.counts() == (0, 0, len(report.notes))


class TestSuppression:
    def test_suppressed_rule_is_dropped_but_counted(self):
        kb = KernelBuilder("suppr")
        out = kb.buffer("out", F32, access="w")
        kb.store(out, 0, kb.f32(1.0))
        kb.suppress("R-RACE-GLOBAL")
        kernel = kb.finish()
        assert kernel.suppressions == ("R-RACE-GLOBAL",)
        report = verify_launch(kernel, _ctx(), buffer_sizes={"out": 64})
        assert "R-RACE-GLOBAL" not in _rules(report)
        assert report.suppressed >= 1

    def test_unsuppressed_rules_still_fire(self):
        kb = KernelBuilder("supp2")
        out = kb.buffer("out", F32, access="w")
        kb.scalar("n", I32)
        kb.store(out, 0, kb.f32(1.0))
        kb.suppress("R-UNUSED-PARAM")
        report = verify_launch(kb.finish(), _ctx(), buffer_sizes={"out": 64})
        assert "R-RACE-GLOBAL" in _rules(report)
        assert "R-UNUSED-PARAM" not in _rules(report)


class TestReportRendering:
    def test_render_groups_and_formats(self):
        kernel, sizes, _ = _racy_const_store()
        report = verify_launch(kernel, _ctx(), buffer_sizes=sizes)
        text = report.render()
        assert "R-RACE-GLOBAL" in text and "[error]" in text
        assert list(report.by_rule()) == ["R-RACE-GLOBAL"]


class TestSuiteSweep:
    def _all_benchmarks(self):
        from repro.suite import (
            ILP_LEVELS,
            IlpMicroBenchmark,
            MBENCHES,
            all_parboil_benchmarks,
            all_table2_benchmarks,
        )

        out = list(all_table2_benchmarks()) + list(all_parboil_benchmarks())
        out += list(MBENCHES)
        out += [IlpMicroBenchmark(lvl) for lvl in ILP_LEVELS]
        return out

    def test_every_suite_kernel_is_clean_at_default_sizes(self):
        dirty = {}
        for bench in self._all_benchmarks():
            report = bench.verify()
            if not report.clean:
                dirty[bench.name] = report.render()
        assert not dirty, f"suite kernels with findings: {dirty}"

    def test_coalesced_variants_are_clean(self):
        from repro.suite import SquareBenchmark, VectorAddBenchmark

        for bench in (SquareBenchmark(), VectorAddBenchmark()):
            for coalesce in (2, 4):
                report = bench.verify(coalesce=coalesce)
                assert report.clean, report.render()


class TestInterpreterFlagEnforcement:
    def _rw_kernel(self):
        kb = KernelBuilder("rw")
        b = kb.buffer("b", F32, access="rw")
        g = kb.global_id(0)
        b[g] = b[g] + kb.f32(1.0)
        return kb.finish()

    def test_write_to_readonly_rejected(self):
        arr = np.zeros(16, dtype=np.float32)
        with pytest.raises(KernelExecutionError, match="READ_ONLY"):
            Interpreter().launch(
                self._rw_kernel(), (16,), (4,),
                buffers={"b": arr}, readonly={"b"},
            )

    def test_read_from_writeonly_rejected(self):
        arr = np.zeros(16, dtype=np.float32)
        with pytest.raises(KernelExecutionError, match="WRITE_ONLY"):
            Interpreter().launch(
                self._rw_kernel(), (16,), (4,),
                buffers={"b": arr}, writeonly={"b"},
            )

    def test_atomic_to_readonly_rejected(self):
        kb = KernelBuilder("at")
        b = kb.buffer("b", F32, access="rw")
        b.atomic_add(0, kb.f32(1.0))
        arr = np.zeros(16, dtype=np.float32)
        with pytest.raises(KernelExecutionError, match="READ_ONLY"):
            Interpreter().launch(
                kb.finish(), (16,), (4,),
                buffers={"b": arr}, readonly={"b"},
            )

    def test_default_launch_stays_permissive(self):
        arr = np.zeros(16, dtype=np.float32)
        Interpreter().launch(self._rw_kernel(), (16,), (4,), buffers={"b": arr})
        assert np.all(arr == 1.0)


class TestEnqueueVerifyMode:
    def _setup(self, kernel, flags_by_name, n=64):
        from repro import minicl as cl

        ctx = cl.Context(cl.cpu_platform().devices)
        queue = cl.CommandQueue(ctx)
        prog = cl.Program(ctx, [kernel]).build()
        k = prog.create_kernel(kernel.name)
        args = []
        for p in kernel.buffer_params:
            args.append(cl.Buffer(
                ctx, flags_by_name[p.name], size=n * 4, dtype=np.float32
            ))
        k.set_args(*args)
        return queue, k

    def test_error_finding_raises(self):
        from repro import minicl as cl

        kb = KernelBuilder("racy")
        out = kb.buffer("out", F32, access="w")
        kb.store(out, 0, kb.f32(1.0))
        queue, k = self._setup(
            kb.finish(), {"out": cl.mem_flags.READ_WRITE}
        )
        with pytest.raises(cl.KernelVerificationError) as ei:
            queue.enqueue_nd_range_kernel(k, (64,), (16,), verify=True)
        assert [d.rule for d in ei.value.report.errors] == ["R-RACE-GLOBAL"]
        assert isinstance(ei.value, cl.InvalidKernelArgs)

    def test_clean_kernel_passes_and_records_report(self):
        from repro import minicl as cl

        kernel, _, _ = _clean_elementwise()
        queue, k = self._setup(kernel, {
            "a": cl.mem_flags.READ_ONLY, "out": cl.mem_flags.WRITE_ONLY,
        })
        queue.enqueue_nd_range_kernel(k, (64,), (16,), verify=True)
        assert queue.last_verify_report is not None
        assert queue.last_verify_report.ok

    def test_env_var_enables_verification(self, monkeypatch):
        from repro import minicl as cl

        kb = KernelBuilder("racy")
        out = kb.buffer("out", F32, access="w")
        kb.store(out, 0, kb.f32(1.0))
        queue, k = self._setup(
            kb.finish(), {"out": cl.mem_flags.READ_WRITE}
        )
        monkeypatch.setenv("REPRO_VERIFY", "1")
        with pytest.raises(cl.KernelVerificationError):
            queue.enqueue_nd_range_kernel(k, (64,), (16,))
        # explicit verify=False overrides the env var
        queue.enqueue_nd_range_kernel(k, (64,), (16,), verify=False)

    def test_verify_mode_enforces_flags_dynamically(self):
        from repro import minicl as cl

        # verifier-silent (gather index) kernel that reads a WRITE_ONLY
        # buffer through a data-dependent index the static pass cannot see
        kb = KernelBuilder("gather")
        idx = kb.buffer("idx", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        out[g] = idx[kb.cast(idx[g], I32)]
        queue, k = self._setup(kb.finish(), {
            "idx": cl.mem_flags.READ_ONLY, "out": cl.mem_flags.WRITE_ONLY,
        })
        queue.enqueue_nd_range_kernel(k, (64,), (16,), verify=True)


class TestHarnessTally:
    def test_collect_diagnostics_counts_launches(self):
        from repro.harness.runner import collect_diagnostics, cpu_dut, measure_kernel
        from repro.suite import SquareBenchmark

        dut = cpu_dut()
        bench = SquareBenchmark()
        with collect_diagnostics() as tally:
            measure_kernel(dut, bench, (4096,), (256,), max_invocations=1)
            # same configuration again: verified only once
            measure_kernel(dut, bench, (4096,), (256,), max_invocations=1)
        assert tally.launches == 1
        assert tally.counts == {"error": 0, "warning": 0, "note": 0}
        assert "0 error(s)" in tally.summary()

    def test_run_experiment_appends_note(self):
        from repro.harness.registry import run_experiment

        result = run_experiment("fig11", fast=True)
        assert any("verifier:" in n for n in result.notes)
