"""Unit tests for affinity parsing and the cache-residency tracker."""

import pytest

from repro.simcpu.spec import XEON_E5645
from repro.simcpu.threads import (
    AffinityPolicy,
    CoreResidencyTracker,
    parse_cpu_affinity,
)


class TestParseAffinity:
    def test_simple_list(self):
        assert parse_cpu_affinity("0 3 1") == [0, 3, 1]

    def test_ranges(self):
        assert parse_cpu_affinity("0-3") == [0, 1, 2, 3]

    def test_stride(self):
        assert parse_cpu_affinity("0-6:2") == [0, 2, 4, 6]

    def test_commas(self):
        assert parse_cpu_affinity("0,1,2") == [0, 1, 2]

    @pytest.mark.parametrize("bad", ["", "3-1", "0-4:0", "-1", "a"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_cpu_affinity(bad)


class TestAffinityPolicy:
    def test_from_env_binds_with_list(self):
        p = AffinityPolicy.from_env({"GOMP_CPU_AFFINITY": "0-7"})
        assert p.proc_bind and p.cpu_list == list(range(8))

    def test_from_env_proc_bind_only(self):
        p = AffinityPolicy.from_env({"OMP_PROC_BIND": "true"})
        assert p.proc_bind and p.cpu_list is None

    def test_unbound_default(self):
        p = AffinityPolicy.from_env({})
        assert not p.proc_bind

    def test_placement_wraps(self):
        p = AffinityPolicy(True, [0, 1, 2])
        assert p.placement(5, 24) == [0, 1, 2, 0, 1]

    def test_placement_default_round_robin(self):
        p = AffinityPolicy(True)
        assert p.placement(4, 2) == [0, 1, 0, 1]


class TestResidencyTracker:
    def setup_method(self):
        self.t = CoreResidencyTracker(XEON_E5645)
        self.cap = self.t.private_capacity

    def test_untouched_buffer_has_no_residency(self):
        p, l3 = self.t.residency_fraction(0, "buf", 0, 1000)
        assert p == 0.0 and l3 == 0.0

    def test_full_private_residency(self):
        self.t.touch(0, "buf", 0, 1000)
        p, l3 = self.t.residency_fraction(0, "buf", 0, 1000)
        assert p == 1.0 and l3 == 0.0  # L3 share excludes private

    def test_other_core_sees_l3_only(self):
        self.t.touch(0, "buf", 0, 1000)
        p, l3 = self.t.residency_fraction(1, "buf", 0, 1000)
        assert p == 0.0 and l3 == 1.0

    def test_other_socket_sees_nothing(self):
        self.t.touch(0, "buf", 0, 1000)
        other = XEON_E5645.cores_per_socket  # first core of socket 1
        p, l3 = self.t.residency_fraction(other, "buf", 0, 1000)
        assert p == 0.0 and l3 == 0.0

    def test_smt_siblings_share_private_cache(self):
        self.t.touch(0, "buf", 0, 1000)
        sibling = XEON_E5645.physical_cores  # logical core mapping wraps
        p, _ = self.t.residency_fraction(sibling, "buf", 0, 1000)
        assert p == 1.0

    def test_oversized_range_keeps_tail(self):
        big = self.cap * 2
        self.t.touch(0, "buf", 0, big)
        p, _ = self.t.residency_fraction(0, "buf", 0, big)
        assert 0.4 < p <= 0.51  # only the LRU tail is resident
        # the tail end is resident, the head is not
        p_tail, _ = self.t.residency_fraction(0, "buf", big - 100, big)
        p_head, _ = self.t.residency_fraction(0, "buf", 0, 100)
        assert p_tail == 1.0 and p_head == 0.0

    def test_capacity_eviction(self):
        half = self.cap // 2 + 1024
        self.t.touch(0, "a", 0, half)
        self.t.touch(0, "b", 0, half)
        self.t.touch(0, "c", 0, half)  # evicts "a"
        pa, _ = self.t.residency_fraction(0, "a", 0, half)
        pc, _ = self.t.residency_fraction(0, "c", 0, half)
        assert pa == 0.0 and pc == 1.0

    def test_retouch_refreshes_lru(self):
        # two ranges fit together; a third forces exactly one eviction
        half = self.cap // 2 - 1024
        self.t.touch(0, "a", 0, half)
        self.t.touch(0, "b", 0, half)
        self.t.touch(0, "a", 0, half)  # refresh a
        self.t.touch(0, "c", 0, half)  # evicts b (the LRU entry)
        pa, _ = self.t.residency_fraction(0, "a", 0, half)
        pb, _ = self.t.residency_fraction(0, "b", 0, half)
        assert pa == 1.0 and pb == 0.0

    def test_avg_latency_orders(self):
        self.t.touch(0, "buf", 0, 1000)
        fast = self.t.avg_load_latency(0, "buf", 0, 1000)
        l3 = self.t.avg_load_latency(1, "buf", 0, 1000)
        cold = self.t.avg_load_latency(0, "cold", 0, 1000)
        assert fast < l3 < cold

    def test_reset(self):
        self.t.touch(0, "buf", 0, 1000)
        self.t.reset()
        p, l3 = self.t.residency_fraction(0, "buf", 0, 1000)
        assert p == 0.0 and l3 == 0.0

    def test_empty_range(self):
        self.t.touch(0, "buf", 100, 100)
        assert self.t.residency_fraction(0, "buf", 5, 5) == (0.0, 0.0)
