"""Property tests for virtual-time queue semantics under random command
sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import minicl as cl

# random command sequence: each entry is a buffer size class
SIZES = [1 << 10, 1 << 14, 1 << 18]


def _run_sequence(queue, ctx, sizes):
    events = []
    for s in sizes:
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=s, dtype=np.uint8)
        events.append(
            queue.enqueue_write_buffer(b, np.zeros(s, np.uint8))
        )
    return events


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.sampled_from(SIZES), min_size=1, max_size=12))
def test_in_order_queue_is_gapless_and_monotone(sizes):
    ctx = cl.Context(cl.cpu_platform().devices)
    q = ctx.create_command_queue(functional=False)
    evs = _run_sequence(q, ctx, sizes)
    for e in evs:
        assert e.profile.queued <= e.profile.start <= e.profile.end
        assert e.duration_ns >= 0
    for a, b in zip(evs, evs[1:]):
        assert b.profile.start == a.profile.end  # back-to-back
    assert q.finish() == evs[-1].profile.end


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.sampled_from(SIZES), min_size=1, max_size=12))
def test_out_of_order_queue_overlaps_independent_commands(sizes):
    ctx = cl.Context(cl.cpu_platform().devices)
    q = ctx.create_command_queue(functional=False, out_of_order=True)
    evs = _run_sequence(q, ctx, sizes)
    assert all(e.profile.start == 0.0 for e in evs)
    assert q.finish() == max(e.profile.end for e in evs)
    # OOO makespan never exceeds in-order makespan for the same commands
    ctx2 = cl.Context(cl.cpu_platform().devices)
    q2 = ctx2.create_command_queue(functional=False)
    evs2 = _run_sequence(q2, ctx2, sizes)
    assert q.finish() <= q2.finish() + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.sampled_from(SIZES), min_size=2, max_size=10),
    data=st.data(),
)
def test_wait_lists_respected_under_random_dags(sizes, data):
    """Every command starts no earlier than all its dependencies end."""
    ctx = cl.Context(cl.cpu_platform().devices)
    q = ctx.create_command_queue(functional=False, out_of_order=True)
    events = []
    deps_of = []
    for i, s in enumerate(sizes):
        n_deps = data.draw(st.integers(0, min(i, 3)))
        deps = (
            data.draw(
                st.lists(
                    st.sampled_from(range(i)), min_size=n_deps,
                    max_size=n_deps, unique=True,
                )
            )
            if i
            else []
        )
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=s, dtype=np.uint8)
        ev = q.enqueue_write_buffer(
            b, np.zeros(s, np.uint8), wait_for=[events[d] for d in deps]
        )
        events.append(ev)
        deps_of.append(deps)
    for ev, deps in zip(events, deps_of):
        for d in deps:
            assert ev.profile.start >= events[d].profile.end


@settings(max_examples=15, deadline=None)
@given(
    pre=st.lists(st.sampled_from(SIZES), min_size=1, max_size=6),
    post=st.lists(st.sampled_from(SIZES), min_size=1, max_size=6),
)
def test_barrier_separates_phases(pre, post):
    ctx = cl.Context(cl.cpu_platform().devices)
    q = ctx.create_command_queue(functional=False, out_of_order=True)
    evs_pre = _run_sequence(q, ctx, pre)
    bar = q.enqueue_barrier()
    evs_post = _run_sequence(q, ctx, post)
    latest_pre = max(e.profile.end for e in evs_pre)
    assert bar.profile.end == latest_pre
    for e in evs_post:
        assert e.profile.start >= latest_pre
