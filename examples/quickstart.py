#!/usr/bin/env python
"""Quickstart: vector addition through the minicl runtime, on both devices.

This is the canonical OpenCL host program — platform discovery, context,
buffers, program, NDRange launch, readback — against the simulated Xeon
E5645 CPU platform and GTX 580 GPU platform.  All times are deterministic
virtual nanoseconds from the device models.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import minicl as cl
from repro.kernelir import F32, KernelBuilder


def build_vadd():
    """The kernel, written in the IR the way you'd write OpenCL C."""
    kb = KernelBuilder("vadd")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    gid = kb.global_id(0)
    c[gid] = a[gid] + b[gid]
    return kb.finish()


def run_on(platform, n=1 << 20):
    device = platform.devices[0]
    ctx = cl.Context([device])
    queue = ctx.create_command_queue()

    rng = np.random.default_rng(42)
    ha = rng.random(n).astype(np.float32)
    hb = rng.random(n).astype(np.float32)

    mf = cl.mem_flags
    buf_a = ctx.create_buffer(mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=ha)
    buf_b = ctx.create_buffer(mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=hb)
    buf_c = ctx.create_buffer(mf.WRITE_ONLY, size=4 * n, dtype=np.float32)

    program = ctx.create_program(build_vadd()).build()
    print(f"  build log: {program.build_log['vadd']}")

    kernel = program.create_kernel("vadd")
    kernel.set_args(buf_a, buf_b, buf_c)
    ev = queue.enqueue_nd_range_kernel(kernel, (n,), None)

    out = np.empty(n, np.float32)
    read_ev = queue.enqueue_read_buffer(buf_c, out)

    assert np.allclose(out, ha + hb), "wrong results!"
    print(f"  kernel: {ev.duration_ns / 1e3:9.1f} us "
          f"(local size {ev.info['local_size']})")
    print(f"  read  : {read_ev.duration_ns / 1e3:9.1f} us")
    print(f"  result verified against numpy ({n} elements)")


def main():
    for platform in cl.get_platforms():
        print(f"\n== {platform.name} ==")
        print(f"  device: {platform.devices[0].name}")
        run_on(platform)


if __name__ == "__main__":
    main()
