"""Static kernel verifier: races, divergence, bounds and flag misuse.

Given a :class:`~repro.kernelir.ast.Kernel` and a concrete
:class:`~repro.kernelir.analysis.LaunchContext`, :func:`verify_launch` emits
structured :class:`Diagnostic` records for the correctness pitfalls that the
timing analyses in :mod:`repro.kernelir.analysis` silently assume away:

* **R-RACE-GLOBAL** — two workitems may write (or write/read) the same
  element of a ``__global`` buffer in one launch.
* **R-RACE-LOCAL** — a ``__local`` store and a conflicting access from
  another workitem are not separated by a ``Barrier``.
* **R-BARRIER-DIV** — a ``Barrier`` sits under control flow whose condition
  (or enclosing loop bound) varies across workitems of one workgroup
  (OpenCL undefined behaviour).
* **R-OOB** — an index provably escapes ``[0, size)`` for the launch's
  buffer sizes.
* **R-FLAGS** — the kernel writes a buffer created ``mem_flags.READ_ONLY``
  or reads one created ``WRITE_ONLY``.
* **R-UNINIT-LOCAL** — a ``__local`` array is read before any store to it.
* **R-UNINIT-PRIVATE** — a private variable is read before its definition
  reaches on every control-flow path (reaching-definitions lattice).
* **R-UNUSED-PARAM** — a kernel parameter is never referenced.
* **R-DEAD-STORE** — a ``__global`` store provably overwritten before any
  read (liveness over the recorded access stream).
* **R-DIV-ZERO** — division/modulo whose divisor's interval contains 0.
* **R-SHIFT-RANGE** — shift amount outside ``[0, bit width)``.
* **R-VEC** — notes explaining why :mod:`repro.kernelir.vectorize` bails
  (the paper's Figure 10/11 blockers), so a slow kernel is explainable.

The abstract-interpretation engine behind all of this lives in
:mod:`repro.kernelir.dataflow` — one fixpoint core over affine forms,
intervals, stride congruences, divergence and reaching definitions, shared
with the vectorizer, the JIT's fusion/hoisting legality checks and the
scheduler's chunk-safety proofs, and cached per launch shape in
``LaunchPlanCache("kernelir.analysis")``.  This module is the *diagnostic
surface*: it resolves launch-dependent rules (R-OOB, R-FLAGS) against the
caller's buffer map, attaches the kernel name, applies suppressions, and
sorts deterministically.

Everything here is *conservative in the reporting direction*: a diagnostic
is only emitted when the analysis can actually argue the defect, so
data-dependent (gather) indices stay silent and are left to the
interpreter's dynamic bounds checks.

Rules can be suppressed per kernel via ``Kernel.suppressions`` (see
``KernelBuilder.suppress``); suppressed findings are counted but dropped.

Diagnostics are sorted by severity (errors first), then by location
(natural order, so ``body[2]`` precedes ``body[10]``), then rule, then
message — a total, deterministic order that ``repro lint`` relies on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from . import ast as ir
from .analysis import LaunchContext
from .dataflow import analyze_launch, location_sort_key

__all__ = [
    "Diagnostic",
    "VerifyReport",
    "verify_launch",
    "RULES",
    "SEVERITIES",
]

#: rule id -> one-line catalogue entry (docs/LINT.md holds the long form)
RULES = {
    "R-RACE-GLOBAL": "inter-workitem data race on a __global buffer",
    "R-RACE-LOCAL": "__local access pair not separated by a barrier",
    "R-BARRIER-DIV": "barrier under workitem-divergent control flow",
    "R-OOB": "index provably out of bounds for the launch's buffer sizes",
    "R-FLAGS": "access violates the buffer's mem_flags",
    "R-UNINIT-LOCAL": "__local array read before any store",
    "R-UNINIT-PRIVATE": "private variable read before assignment on some path",
    "R-UNUSED-PARAM": "kernel parameter is never referenced",
    "R-DEAD-STORE": "__global store overwritten before any read",
    "R-DIV-ZERO": "division or modulo by a possibly-zero value",
    "R-SHIFT-RANGE": "shift amount outside the operand's bit width",
    "R-VEC": "why implicit vectorization bails (informational)",
}

SEVERITIES = ("error", "warning", "note")
_SEV_ORDER = {s: i for i, s in enumerate(SEVERITIES)}


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One structured finding."""

    severity: str  # "error" | "warning" | "note"
    rule: str  # e.g. "R-RACE-GLOBAL"
    kernel: str
    location: str  # AST path, e.g. "body[3]/for[p]/then[0]"
    message: str
    hint: str = ""

    def format(self) -> str:
        out = f"[{self.severity}] {self.rule} {self.kernel} @ {self.location}: {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out


@dataclasses.dataclass
class VerifyReport:
    """All diagnostics for one (kernel, launch) pair."""

    kernel: str
    diagnostics: List[Diagnostic] = dataclasses.field(default_factory=list)
    suppressed: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def notes(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "note"]

    @property
    def ok(self) -> bool:
        """No error-severity findings (launch would be allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No errors and no warnings (notes are informational)."""
        return not self.errors and not self.warnings

    def by_rule(self) -> Dict[str, List[Diagnostic]]:
        out: Dict[str, List[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule, []).append(d)
        return out

    def counts(self) -> Tuple[int, int, int]:
        return len(self.errors), len(self.warnings), len(self.notes)

    def render(self, show_notes: bool = True) -> str:
        lines = []
        for d in self.diagnostics:
            if d.severity == "note" and not show_notes:
                continue
            lines.append(d.format())
        if self.suppressed:
            lines.append(f"({self.suppressed} finding(s) suppressed)")
        return "\n".join(lines)

    # -- persistence (repro.diskcache "verify" entries) ----------------------
    def to_payload(self) -> dict:
        return {
            "kernel": self.kernel,
            "suppressed": self.suppressed,
            "diagnostics": [
                [d.severity, d.rule, d.kernel, d.location, d.message, d.hint]
                for d in self.diagnostics
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "VerifyReport":
        diags = [
            Diagnostic(sev, rule, kernel, loc, msg, hint)
            for sev, rule, kernel, loc, msg, hint in payload["diagnostics"]
        ]
        return cls(
            kernel=str(payload["kernel"]),
            diagnostics=diags,
            suppressed=int(payload["suppressed"]),
        )


_VEC_HINTS = {
    "atomics": "replace global atomics with a per-workgroup reduction",
    "divergent": "make barrier-reaching control flow uniform per workgroup",
    "scalar-only": "avoid erf-class builtins on the hot path",
    "smaller than SIMD": "launch workgroups of at least the SIMD width",
}


def _vec_hint(reason: str) -> str:
    for k, h in _VEC_HINTS.items():
        if k in reason:
            return h
    return ""


def verify_launch(
    kernel: ir.Kernel,
    ctx: LaunchContext,
    buffer_sizes: Optional[Dict[str, int]] = None,
    buffer_flags: Optional[Dict[str, str]] = None,
    include_vectorization: bool = True,
) -> VerifyReport:
    """Run all static rules for one launch configuration.

    ``buffer_sizes`` maps buffer param names to their element counts (enables
    R-OOB); ``buffer_flags`` maps them to the host allocation's effective
    access ("r", "w" or "rw" — from ``mem_flags``; enables R-FLAGS).
    """
    df = analyze_launch(kernel, ctx)
    diags = [
        Diagnostic(f.severity, f.rule, kernel.name, f.location, f.message, f.hint)
        for f in df.findings(buffer_sizes, buffer_flags)
    ]

    if include_vectorization:
        from .vectorize import OpenCLVectorizer

        rep = OpenCLVectorizer().vectorize(kernel, ctx)
        if not rep.vectorized:
            for reason in rep.reasons:
                diags.append(
                    Diagnostic(
                        "note", "R-VEC", kernel.name, "kernel",
                        f"implicit vectorization bails: {reason}",
                        _vec_hint(reason),
                    )
                )

    suppressions = frozenset(getattr(kernel, "suppressions", ()) or ())
    kept = [d for d in diags if d.rule not in suppressions]
    kept.sort(key=lambda d: (
        _SEV_ORDER.get(d.severity, len(SEVERITIES)),
        location_sort_key(d.location),
        d.rule,
        d.message,
    ))
    return VerifyReport(
        kernel=kernel.name,
        diagnostics=kept,
        suppressed=len(diags) - len(kept),
    )
