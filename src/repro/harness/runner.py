"""Shared machinery for the experiment modules: device setup, buffer
creation, and one-call kernel/transfer measurement through the full minicl
stack (so every experiment exercises the same code path a user would)."""

from __future__ import annotations

import contextlib
import dataclasses
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import minicl as cl
from ..suite.base import Benchmark, scale_global_size
from .timing import Measurement, repeat_to_target

__all__ = [
    "DeviceUnderTest",
    "DiagnosticTally",
    "collect_diagnostics",
    "cpu_dut",
    "gpu_dut",
    "measure_kernel",
    "measure_app_throughput",
    "make_buffers",
]


class DiagnosticTally:
    """Aggregated static-verifier findings for one experiment's launches.

    The harness verifies each distinct (benchmark, coalesce, launch shape)
    once; repeated sweep points reuse the first result.
    """

    def __init__(self):
        self.launches = 0
        self.counts = {"error": 0, "warning": 0, "note": 0}
        self._seen = set()

    def record(self, bench: Benchmark, global_size, coalesce, local_size):
        key = (
            bench.name,
            int(coalesce),
            tuple(global_size),
            tuple(local_size) if local_size is not None else None,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        report = bench.verify(
            global_size, coalesce=coalesce, local_size=local_size
        )
        self.launches += 1
        for d in report.diagnostics:
            self.counts[d.severity] += 1

    def summary(self) -> str:
        c = self.counts
        return (
            f"verifier: {c['error']} error(s), {c['warning']} warning(s), "
            f"{c['note']} note(s) across {self.launches} verified launch(es)"
        )


#: active collector (installed by :func:`collect_diagnostics`)
_tally: Optional[DiagnosticTally] = None


@contextlib.contextmanager
def collect_diagnostics():
    """Verify every kernel launch measured inside the block and tally counts."""
    global _tally
    prev = _tally
    _tally = tally = DiagnosticTally()
    try:
        yield tally
    finally:
        _tally = prev


def _note_launch(bench: Benchmark, global_size, coalesce, local_size) -> None:
    if _tally is not None:
        _tally.record(bench, global_size, coalesce, local_size)


@dataclasses.dataclass
class DeviceUnderTest:
    """A context+queue pair on one simulated device."""

    context: cl.Context
    queue: cl.CommandQueue

    @property
    def device(self) -> cl.Device:
        return self.context.device

    @property
    def is_gpu(self) -> bool:
        return self.device.is_gpu

    def fresh_queue(self, functional: bool = False) -> cl.CommandQueue:
        return self.context.create_command_queue(functional=functional)


def cpu_dut(functional: bool = False) -> DeviceUnderTest:
    ctx = cl.Context(cl.cpu_platform().devices)
    return DeviceUnderTest(ctx, ctx.create_command_queue(functional=functional))


def gpu_dut(functional: bool = False) -> DeviceUnderTest:
    ctx = cl.Context(cl.gpu_platform().devices)
    return DeviceUnderTest(ctx, ctx.create_command_queue(functional=functional))


def make_buffers(
    dut: DeviceUnderTest,
    bench: Benchmark,
    global_size: Sequence[int],
    *,
    flags_map: Optional[Dict[str, cl.mem_flags]] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Dict[str, cl.Buffer], Dict[str, object], Dict[str, np.ndarray]]:
    """Create minicl buffers (+host arrays) for one benchmark launch.

    ``flags_map`` overrides allocation flags per buffer; the default honours
    the kernel's declared access (READ_ONLY inputs, WRITE_ONLY outputs),
    which is the paper's "ReadOnly or WriteOnly" configuration.
    """
    rng = rng or np.random.default_rng(12345)
    host, scalars = bench.make_data(global_size, rng)
    kernel = bench.kernel()
    flags_map = flags_map or {}
    buffers: Dict[str, cl.Buffer] = {}
    for p in kernel.buffer_params:
        arr = host[p.name]
        if p.name in flags_map:
            flags = flags_map[p.name]
        elif p.access == "r":
            flags = cl.mem_flags.READ_ONLY
        elif p.access == "w":
            flags = cl.mem_flags.WRITE_ONLY
        else:
            flags = cl.mem_flags.READ_WRITE
        buffers[p.name] = dut.context.create_buffer(
            flags | cl.mem_flags.COPY_HOST_PTR, hostbuf=arr
        )
    return buffers, scalars, host


def measure_kernel(
    dut: DeviceUnderTest,
    bench: Benchmark,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
    *,
    coalesce: int = 1,
    max_invocations: int = 3,
    buffers: Optional[Dict[str, cl.Buffer]] = None,
    scalars: Optional[Dict[str, object]] = None,
) -> Measurement:
    """Average kernel time for one configuration, via the full minicl path."""
    if buffers is None or scalars is None:
        buffers, scalars, _ = make_buffers(dut, bench, global_size)
    scalars = {**scalars, **bench.scalars_for(coalesce)}
    launch_gs = scale_global_size(global_size, coalesce)
    _note_launch(bench, global_size, coalesce, local_size)

    program = dut.context.create_program(bench.kernel(coalesce)).build()
    k = program.create_kernel(bench.kernel(coalesce).name)
    args = []
    for p in k.kernel.params:
        args.append(buffers[p.name] if p.name in buffers else scalars[p.name])
    k.set_args(*args)
    queue = dut.fresh_queue(functional=False)
    return repeat_to_target(
        lambda: queue.enqueue_nd_range_kernel(k, launch_gs, local_size),
        max_invocations=max_invocations,
    )


def measure_app_throughput(
    dut: DeviceUnderTest,
    bench: Benchmark,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
    *,
    transfer_api: str = "copy",
    flags_map: Optional[Dict[str, cl.mem_flags]] = None,
) -> float:
    """The paper's Equation (1): work / (kernel time + transfer time).

    Inputs move host->device before the kernel and outputs device->host
    after it, with either the copy APIs (``clEnqueueWrite/ReadBuffer``) or
    the mapping APIs (``clEnqueueMapBuffer``/unmap).
    """
    buffers, scalars, host = make_buffers(dut, bench, global_size,
                                          flags_map=flags_map)
    kernel_ir = bench.kernel()
    _note_launch(bench, global_size, 1, local_size)
    queue = dut.fresh_queue(functional=False)

    t0 = queue.now_ns
    # host -> device for kernel inputs
    for p in kernel_ir.buffer_params:
        if "r" in p.access:
            if transfer_api == "copy":
                queue.enqueue_write_buffer(buffers[p.name], host[p.name])
            else:
                view, _ = queue.enqueue_map_buffer(
                    buffers[p.name], cl.map_flags.WRITE
                )
                queue.enqueue_unmap(buffers[p.name], view)
    # the kernel itself
    program = dut.context.create_program(kernel_ir).build()
    k = program.create_kernel(kernel_ir.name)
    args = [
        buffers[p.name] if p.name in buffers else scalars[p.name]
        for p in kernel_ir.params
    ]
    k.set_args(*args)
    queue.enqueue_nd_range_kernel(k, tuple(global_size), local_size)
    # device -> host for kernel outputs
    for p in kernel_ir.buffer_params:
        if "w" in p.access:
            if transfer_api == "copy":
                dst = np.empty_like(host[p.name])
                queue.enqueue_read_buffer(buffers[p.name], dst)
            else:
                view, _ = queue.enqueue_map_buffer(
                    buffers[p.name], cl.map_flags.READ
                )
                queue.enqueue_unmap(buffers[p.name], view)
    elapsed = queue.now_ns - t0
    work = float(np.prod(tuple(global_size)))
    return work / elapsed if elapsed > 0 else 0.0
