"""Device objects: thin OpenCL-facing wrappers around the hardware models."""

from __future__ import annotations

from typing import Union

from ..simcpu.device import CPUDeviceModel
from ..simgpu.device import GPUDeviceModel
from .constants import device_type

__all__ = ["Device"]

Model = Union[CPUDeviceModel, GPUDeviceModel]


class Device:
    """One OpenCL device backed by a simulated hardware model."""

    def __init__(self, model: Model):
        self.model = model
        self.type = device_type.GPU if model.is_gpu else device_type.CPU

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def is_gpu(self) -> bool:
        return self.model.is_gpu

    @property
    def max_work_group_size(self) -> int:
        if self.is_gpu:
            return 1024  # Fermi limit
        return 8192     # Intel CPU runtime limit

    @property
    def max_compute_units(self) -> int:
        if self.is_gpu:
            return self.model.spec.num_sms
        return self.model.spec.logical_cores

    @property
    def local_mem_size(self) -> int:
        if self.is_gpu:
            return self.model.spec.shared_mem_per_sm
        return 32 * 1024  # CL_DEVICE_LOCAL_MEM_SIZE the Intel runtime reports

    @property
    def global_mem_size(self) -> int:
        return 4 * 1024 ** 3  # paper Table I: 4GB DRAM

    @property
    def unified_memory(self) -> bool:
        """CL_DEVICE_HOST_UNIFIED_MEMORY: true for the CPU device."""
        return not self.is_gpu

    def get_info(self) -> dict:
        info = {
            "CL_DEVICE_NAME": self.name,
            "CL_DEVICE_TYPE": self.type.name,
            "CL_DEVICE_MAX_COMPUTE_UNITS": self.max_compute_units,
            "CL_DEVICE_MAX_WORK_GROUP_SIZE": self.max_work_group_size,
            "CL_DEVICE_LOCAL_MEM_SIZE": self.local_mem_size,
            "CL_DEVICE_GLOBAL_MEM_SIZE": self.global_mem_size,
            "CL_DEVICE_HOST_UNIFIED_MEMORY": self.unified_memory,
        }
        info.update(self.model.describe())
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Device {self.name!r} ({self.type.name})>"
