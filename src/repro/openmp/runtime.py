"""Fork-join ``parallel for`` runtime — the conventional-model baseline.

An OpenMP "kernel" is the same IR as an OpenCL kernel, with
``get_global_id(0)`` read as the loop induction variable (the porting recipe
of the paper's Section III-F).  Differences from the OpenCL CPU runtime, all
architecturally meaningful and all evaluated by the paper:

* **one fork-join per loop**, not one dispatch per workgroup — the classic
  model has far lower scheduling overhead for big iteration counts;
* **affinity**: ``OMP_PROC_BIND``/``GOMP_CPU_AFFINITY`` pin threads to
  cores, so consecutive ``parallel_for`` calls can reuse each core's private
  cache (Figure 9).  Unbound runs get a fresh arbitrary placement per loop,
  like OpenCL workgroups do;
* **vectorization**: the *loop* auto-vectorizer with classic legality rules,
  not the cross-workitem packer (Figures 10/11).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kernelir.analysis import LatencyTable, LaunchContext, analyze_kernel
from ..kernelir.ast import Kernel
from ..kernelir.compile import launch_kernel
from ..kernelir.interp import Interpreter
from ..kernelir.vectorize import LoopVectorizer, VectorizationReport
from ..simcpu.cachemodel import MemoryCostModel
from ..simcpu.core import CoreModel
from ..simcpu.spec import CPUSpec, XEON_E5645
from ..simcpu.threads import CoreResidencyTracker
from .env import OmpEnv

__all__ = ["OpenMPRuntime", "ParallelForResult"]

#: one parallel-region fork+join (thread pool wake + barrier), nanoseconds
FORK_JOIN_NS = 4_000.0
#: per-scheduled-chunk overhead for dynamic scheduling
DYNAMIC_CHUNK_NS = 300.0


@dataclasses.dataclass
class ParallelForResult:
    """Timing and diagnostics of one ``parallel_for`` execution."""

    time_ns: float
    threads: int
    placement: List[int]
    vectorization: VectorizationReport
    per_thread_ns: List[float]
    iterations: int

    @property
    def gflops_of(self) -> float:  # pragma: no cover - convenience alias
        return 0.0


class OpenMPRuntime:
    """Simulated OpenMP runtime bound to the CPU model.

    A single runtime instance keeps per-core cache-residency state across
    ``parallel_for`` calls, which is what makes producer/consumer affinity
    experiments meaningful.
    """

    def __init__(
        self,
        spec: CPUSpec = XEON_E5645,
        env: Optional[Dict[str, str]] = None,
        *,
        fragile_vectorizer: bool = True,
        functional: bool = True,
    ):
        self.spec = spec
        self.env = OmpEnv.from_dict(env)
        self.functional = functional
        #: fraction of the residency-miss latency visible past the prefetcher
        self.residency_miss_visibility = 0.15
        self.vectorizer = LoopVectorizer(spec.simd_width_f32, fragile_vectorizer)
        self.core_model = CoreModel(spec)
        self.mem_model = MemoryCostModel(spec)
        self.residency = CoreResidencyTracker(spec)
        self.latencies = LatencyTable(load=float(spec.l1_latency))
        self._interp = Interpreter()
        self._unbound_epoch = 0  # perturbs placement when not pinned
        self.now_ns = 0.0

    # -- placement -------------------------------------------------------------
    def _placement(self, threads: int) -> List[int]:
        if self.env.affinity.proc_bind:
            return self.env.affinity.placement(threads, self.spec.logical_cores)
        # unbound: the OS gives an arbitrary (rotating) placement per region,
        # so cross-region cache reuse cannot be relied upon.
        self._unbound_epoch += 1
        off = (self._unbound_epoch * 5) % self.spec.logical_cores
        return [(off + i) % self.spec.logical_cores for i in range(threads)]

    # -- the core entry point ----------------------------------------------------
    def parallel_for(
        self,
        kernel: Kernel,
        n: int,
        *,
        buffers: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, object]] = None,
        num_threads: Optional[int] = None,
    ) -> ParallelForResult:
        """Run ``#pragma omp parallel for`` over iterations [0, n)."""
        if kernel.uses_barrier or kernel.uses_local_memory:
            raise ValueError(
                f"kernel {kernel.name!r} uses workgroup constructs; it has no "
                f"OpenMP loop equivalent"
            )
        if n <= 0:
            raise ValueError("iteration count must be positive")
        buffers = dict(buffers or {})
        scalars = dict(scalars or {})

        threads = num_threads or self.env.num_threads or self.spec.physical_cores
        threads = min(threads, n)
        placement = self._placement(threads)

        # --- static analysis in a whole-loop context -----------------------
        ctx = LaunchContext((n,), (n,), {k: float(v) for k, v in scalars.items()},
                            self.latencies)
        analysis = analyze_kernel(kernel, ctx)
        vec = self.vectorizer.vectorize(kernel, ctx)
        buffer_bytes = {name: b.nbytes for name, b in buffers.items()}
        base_mem = self.mem_model.estimate(analysis, buffer_bytes)

        # --- per-thread chunks (static schedule) ----------------------------
        chunks = self._static_chunks(n, threads)
        per_thread_ns: List[float] = []
        dram_share = 1.0 / max(1, min(threads, self.spec.physical_cores))
        for t, (lo, hi) in enumerate(chunks):
            iters = hi - lo
            if iters <= 0:
                per_thread_ns.append(0.0)
                continue
            mem = self._residency_adjusted(
                analysis, base_mem, buffers, placement[t], lo, hi
            )
            item = self.core_model.item_cycles(
                analysis, vec, mem, dram_share=dram_share
            )
            cycles = iters * (item.cycles + 2.0 / max(1.0, item.effective_vector_width))
            per_thread_ns.append(self.spec.cycles_to_ns(cycles))

        time_ns = FORK_JOIN_NS + max(per_thread_ns, default=0.0)
        if self.env.schedule == "dynamic":
            chunk = self.env.chunk or 1
            time_ns += (n / chunk) * DYNAMIC_CHUNK_NS / threads

        # --- update residency: each thread streamed its chunk ----------------
        self._touch_residency(analysis, buffers, chunks, placement)

        # --- functional execution --------------------------------------------
        if self.functional:
            launch_kernel(
                kernel, (n,), (n,), buffers=buffers, scalars=scalars,
                interpreter=self._interp,
            )

        self.now_ns += time_ns
        return ParallelForResult(
            time_ns=time_ns,
            threads=threads,
            placement=placement,
            vectorization=vec,
            per_thread_ns=per_thread_ns,
            iterations=n,
        )

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _static_chunks(n: int, threads: int) -> List[Tuple[int, int]]:
        """Contiguous near-equal chunks, as OMP static scheduling yields."""
        base, extra = divmod(n, threads)
        out = []
        lo = 0
        for t in range(threads):
            hi = lo + base + (1 if t < extra else 0)
            out.append((lo, hi))
            lo = hi
        return out

    def _buffer_id(self, name: str, buffers: Dict[str, np.ndarray]) -> object:
        arr = buffers.get(name)
        return id(arr.base if arr is not None and arr.base is not None else arr) \
            if arr is not None else name

    def _contiguous_ranges(
        self, analysis, buffers, lo: int, hi: int
    ) -> List[Tuple[object, int, int, float]]:
        """(buffer_id, byte_lo, byte_hi, accesses_per_iter) per streamed buffer."""
        out = []
        for a in analysis.accesses:
            if a.is_local or a.pattern != "contiguous":
                continue
            bid = self._buffer_id(a.buffer, buffers)
            out.append((bid, lo * a.itemsize, hi * a.itemsize, a.count_per_item))
        return out

    def _residency_adjusted(self, analysis, base_mem, buffers, core, lo, hi):
        """Re-cost contiguous loads whose data may sit in this core's caches.

        Delegates to :func:`repro.simcpu.residency.residency_adjusted_mem`
        (the same engine the minicl affinity extension uses): residency
        changes both the load *latency* and the shared-L3/DRAM *traffic*.
        """
        from ..simcpu.residency import residency_adjusted_mem

        buffer_ids = {n: self._buffer_id(n, buffers) for n in buffers}
        buffer_bytes = {n: b.nbytes for n, b in buffers.items()}
        return residency_adjusted_mem(
            self.mem_model,
            self.residency,
            analysis,
            base_mem,
            core,
            (lo, hi),
            buffer_ids,
            buffer_bytes,
            visibility=self.residency_miss_visibility,
        )

    def _touch_residency(self, analysis, buffers, chunks, placement) -> None:
        from ..simcpu.residency import touch_contiguous

        buffer_ids = {n: self._buffer_id(n, buffers) for n in buffers}
        for t, (lo, hi) in enumerate(chunks):
            touch_contiguous(
                self.residency, analysis, placement[t], (lo, hi), buffer_ids
            )
