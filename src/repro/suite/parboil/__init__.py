"""The Parboil benchmarks of the paper's Table III."""

from .cp import CPCenergyBenchmark, build_cenergy_kernel
from .mri_q import (
    MriQComputeQBenchmark,
    MriQPhiMagBenchmark,
    build_computeq_kernel,
    build_phimag_kernel,
)
from .mri_fhd import (
    MriFhdFHBenchmark,
    MriFhdRhoPhiBenchmark,
    build_fh_kernel,
    build_rhophi_kernel,
)

__all__ = [
    "CPCenergyBenchmark", "MriQPhiMagBenchmark", "MriQComputeQBenchmark",
    "MriFhdRhoPhiBenchmark", "MriFhdFHBenchmark",
    "build_cenergy_kernel", "build_phimag_kernel", "build_computeq_kernel",
    "build_rhophi_kernel", "build_fh_kernel",
]
