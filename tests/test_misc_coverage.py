"""Targeted tests for corners not covered elsewhere."""

import numpy as np
import pytest

from repro import minicl as cl
from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32
from repro.metrics import roofline
from repro.openmp import OpenMPRuntime


class TestRooflineEdges:
    def test_infinite_intensity_hits_compute_roof(self):
        kb = KernelBuilder("pure")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(1.0))
        with kb.loop("i", 0, 100):
            acc = kb.let("acc", acc * 1.0001)
        o[g] = acc
        an = analyze_kernel(kb.finish(), LaunchContext((64,), (16,)))
        # one store -> finite; drop accesses to force the inf branch
        an.accesses = [a for a in an.accesses if False]
        r = roofline(an, 10.0, peak_gflops=100.0, bandwidth_gbps=10.0, device="X")
        assert r.arithmetic_intensity == float("inf")
        assert r.attainable_gflops == 100.0
        assert not r.memory_bound

    def test_zero_achieved_efficiency(self):
        kb = KernelBuilder("z")
        a = kb.buffer("a", F32)
        a[kb.global_id(0)] = a[kb.global_id(0)]
        an = analyze_kernel(kb.finish(), LaunchContext((64,), (16,)))
        r = roofline(an, 0.0, peak_gflops=100.0, bandwidth_gbps=10.0, device="X")
        assert r.efficiency == 0.0


class TestOpenMP2D:
    def test_2d_kernel_timing_only(self):
        """2-D kernels can be *timed* through the OpenMP runtime (the
        flattened-loop port); functional execution requires a 1-D launch."""
        from repro.suite import BlackScholesBenchmark

        bench = BlackScholesBenchmark()
        host, scalars = bench.make_data((64, 64), np.random.default_rng(0))
        rt = OpenMPRuntime(functional=False)
        r = rt.parallel_for(bench.kernel(), 64 * 64, buffers=host, scalars=scalars)
        assert r.time_ns > 0


class TestAffinityQueueInheritsBaseFeatures:
    def test_wait_for_supported_via_base_methods(self):
        ctx = cl.Context(cl.cpu_platform().devices)
        q = cl.AffinityCommandQueue(ctx, functional=False)
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=4096, dtype=np.float32)
        e1 = q.enqueue_write_buffer(b, np.zeros(1024, np.float32))
        e2 = q.enqueue_read_buffer(b, np.zeros(1024, np.float32), wait_for=[e1])
        assert e2.profile.start >= e1.profile.end


class TestDeviceModelEdges:
    def test_cpu_two_dim_kernel_cost(self):
        from repro.simcpu.device import CPUDeviceModel
        from repro.suite.simple.blackscholes import build_blackscholes_kernel

        dev = CPUDeviceModel()
        c = dev.kernel_cost(
            build_blackscholes_kernel(), (64, 64), (16, 16),
            scalars={"riskfree": 0.02, "volatility": 0.3},
        )
        assert c.total_ns > 0
        assert c.analysis.ctx.workgroup_count == 16

    def test_gpu_null_policy_prime_size(self):
        from repro.simgpu.device import GPUDeviceModel

        ls = GPUDeviceModel().choose_local_size((997,), None)  # prime
        assert ls == (1,)

    def test_cpu_gflops_zero_when_no_flops(self):
        from repro.simcpu.device import CPUDeviceModel

        kb = KernelBuilder("mov")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        o[kb.global_id(0)] = a[kb.global_id(0)]
        c = CPUDeviceModel().kernel_cost(kb.finish(), (4096,), (64,))
        assert c.gflops == 0.0


class TestReportRendering:
    def test_missing_points_render_as_dash(self):
        from repro.harness.report import ExperimentResult, Series

        r = ExperimentResult("x", "t", [Series("a", {"p": 1.0}), Series("b", {})])
        out = r.render()
        assert "-" in out
