"""Tests for whole-grid fused launch plans and chunked multi-core execution.

The fused plan (`repro.kernelir.compile.get_fused_plan`) caches per-launch
facts (normalized sizes, the parallel-eligibility verdict) so repeat
launches skip straight to the compiled function, optionally split into
contiguous lane chunks on the shared worker pool.  Chunked execution must
be bit-for-bit identical to serial execution, including op counters.
"""

import numpy as np
import pytest

from repro import workers
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.compile import (
    _MIN_CHUNK_LANES,
    compile_kernel,
    get_fused_plan,
)
from repro.kernelir.types import F32, I32


def _saxpy_kernel():
    kb = KernelBuilder("saxpy")
    x = kb.buffer("x", F32, access="r")
    y = kb.buffer("y", F32)
    a = kb.scalar("a", F32)
    g = kb.global_id(0)
    y[g] = y[g] + a * x[g]
    return kb.finish()


def _saxpy_data(n, seed=7):
    rng = np.random.default_rng(seed)
    return {
        "x": rng.random(n, dtype=np.float32),
        "y": rng.random(n, dtype=np.float32),
    }


@pytest.fixture
def four_workers():
    workers.set_worker_count(4)
    yield
    workers.set_worker_count(None)


class TestPlanCaching:
    def test_same_launch_reuses_plan(self):
        ck = compile_kernel(_saxpy_kernel())
        p1 = get_fused_plan(ck, (256,), (64,), scalars={"a": 2.0})
        p2 = get_fused_plan(ck, (256,), (64,), scalars={"a": 2.0})
        assert p1 is p2

    def test_scalars_join_the_key(self):
        ck = compile_kernel(_saxpy_kernel())
        p1 = get_fused_plan(ck, (256,), (64,), scalars={"a": 2.0})
        p2 = get_fused_plan(ck, (256,), (64,), scalars={"a": 3.0})
        assert p1 is not p2

    def test_shape_joins_the_key(self):
        ck = compile_kernel(_saxpy_kernel())
        p1 = get_fused_plan(ck, (256,), (64,))
        p2 = get_fused_plan(ck, (512,), (64,))
        assert p1 is not p2
        assert p1.gsize == (256,) and p2.gsize == (512,)


class TestParallelEligibility:
    def test_elementwise_kernel_is_chunk_safe(self):
        ck = compile_kernel(_saxpy_kernel())
        plan = get_fused_plan(ck, (1 << 16,), (64,), scalars={"a": 2.0})
        assert plan.parallel

    def test_barrier_kernel_stays_serial(self):
        kb = KernelBuilder("b")
        x = kb.buffer("x", F32)
        g = kb.global_id(0)
        x[g] = x[g] + 1.0
        kb.barrier()
        x[g] = x[g] * 2.0
        plan = get_fused_plan(compile_kernel(kb.finish()), (1 << 16,), (64,))
        assert not plan.parallel

    def test_local_memory_kernel_stays_serial(self):
        kb = KernelBuilder("lm")
        x = kb.buffer("x", F32)
        tile = kb.local_array("tile", 64, F32)
        l = kb.local_id(0)
        tile[l] = x[kb.global_id(0)]
        x[kb.global_id(0)] = tile[l]
        plan = get_fused_plan(compile_kernel(kb.finish()), (1 << 16,), (64,))
        assert not plan.parallel

    def test_atomic_kernel_stays_serial(self):
        kb = KernelBuilder("at")
        x = kb.buffer("x", F32)
        x.atomic_add(0, 1.0)
        plan = get_fused_plan(compile_kernel(kb.finish()), (1 << 16,), (64,))
        assert not plan.parallel

    def test_cross_lane_store_race_stays_serial(self):
        # every lane stores to index 0: a store/store overlap the race
        # verifier flags, so chunking could reorder the last-writer
        kb = KernelBuilder("race")
        x = kb.buffer("x", F32)
        kb.global_id(0)  # touch the id so the kernel is not uniform
        x[0] = 1.0
        plan = get_fused_plan(compile_kernel(kb.finish()), (1 << 16,), (64,))
        assert not plan.parallel


class TestChunkBounds:
    def test_small_launch_stays_serial(self, four_workers):
        ck = compile_kernel(_saxpy_kernel())
        plan = get_fused_plan(ck, (256,), (64,), scalars={"a": 1.0})
        assert plan.parallel  # eligible ...
        assert plan._chunk_bounds(256) is None  # ... but below the floor

    def test_bounds_cover_every_lane_exactly_once(self, four_workers):
        ck = compile_kernel(_saxpy_kernel())
        plan = get_fused_plan(ck, (4 * _MIN_CHUNK_LANES + 3,), None,
                              scalars={"a": 1.0})
        n = 4 * _MIN_CHUNK_LANES + 3
        bounds = plan._chunk_bounds(n)
        assert bounds is not None and len(bounds) == 4
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (a_lo, a_hi), (b_lo, b_hi) in zip(bounds, bounds[1:]):
            assert a_hi == b_lo  # contiguous, no gaps or overlap

    def test_worker_count_change_takes_effect_per_launch(self):
        ck = compile_kernel(_saxpy_kernel())
        plan = get_fused_plan(ck, (4 * _MIN_CHUNK_LANES,), None,
                              scalars={"a": 1.0})
        workers.set_worker_count(1)
        try:
            assert plan._chunk_bounds(4 * _MIN_CHUNK_LANES) is None
            workers.set_worker_count(4)
            assert len(plan._chunk_bounds(4 * _MIN_CHUNK_LANES)) == 4
        finally:
            workers.set_worker_count(None)


class TestChunkedEquivalence:
    N = 2 * _MIN_CHUNK_LANES + 17

    def _launch(self, count_ops):
        ck = compile_kernel(_saxpy_kernel(), count_ops=count_ops)
        plan = get_fused_plan(ck, (self.N,), None, scalars={"a": 1.5})
        bufs = _saxpy_data(self.N)
        res = plan.launch(bufs, {"a": 1.5})
        return bufs["y"], res.counters

    def test_chunked_matches_serial_bitwise(self, four_workers):
        y_par, _ = self._launch(count_ops=False)
        workers.set_worker_count(1)
        y_ser, _ = self._launch(count_ops=False)
        assert (y_par.view(np.uint32) == y_ser.view(np.uint32)).all()

    def test_chunked_counters_match_serial(self, four_workers):
        _, c_par = self._launch(count_ops=True)
        workers.set_worker_count(1)
        _, c_ser = self._launch(count_ops=True)
        for field in ("flops", "int_ops", "loads", "stores", "local_loads",
                      "local_stores", "atomic_ops", "barriers"):
            assert getattr(c_par, field) == getattr(c_ser, field), field

    def test_chunk_error_propagates(self, four_workers):
        # out-of-bounds store in every lane: the launch must raise, not
        # swallow the worker exception
        kb = KernelBuilder("oob")
        x = kb.buffer("x", F32)
        x[kb.global_id(0) + 10_000_000] = 1.0
        ck = compile_kernel(kb.finish())
        plan = get_fused_plan(ck, (self.N,), None)
        with pytest.raises(Exception, match="out-of-bounds"):
            plan.launch({"x": np.zeros(16, np.float32)}, {})
