"""Tests for device-side buffer copies and assorted queue behaviour."""

import numpy as np
import pytest

from repro import minicl as cl
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32, I64


@pytest.fixture
def cpu():
    ctx = cl.Context(cl.cpu_platform().devices)
    return ctx, ctx.create_command_queue()


class TestCopyBuffer:
    def test_copies_data(self, cpu):
        ctx, q = cpu
        h = np.arange(64, dtype=np.float32)
        src = ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        dst = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=256, dtype=np.float32)
        ev = q.enqueue_copy_buffer(src, dst)
        np.testing.assert_array_equal(dst.array, h)
        assert ev.command_type == cl.command_type.COPY_BUFFER
        assert ev.duration_ns > 0

    def test_size_mismatch_rejected(self, cpu):
        ctx, q = cpu
        src = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=64, dtype=np.float32)
        dst = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=128, dtype=np.float32)
        with pytest.raises(cl.InvalidValue):
            q.enqueue_copy_buffer(src, dst)

    def test_copy_between_dtypes_is_bytewise(self, cpu):
        ctx, q = cpu
        h = np.arange(16, dtype=np.int64)
        src = ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        dst = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=128, dtype=np.float64)
        q.enqueue_copy_buffer(src, dst)
        np.testing.assert_array_equal(dst.array.view(np.int64), h)


class Test3DNDRange:
    def test_3d_kernel_executes(self, cpu):
        ctx, q = cpu
        kb = KernelBuilder("idx3", work_dim=3)
        o = kb.buffer("o", I64, access="w")
        g0, g1, g2 = kb.global_id(0), kb.global_id(1), kb.global_id(2)
        flat = kb.let(
            "flat",
            (g2 * kb.global_size(1) + g1) * kb.global_size(0) + g0,
        )
        o[flat] = g2 * 100 + g1 * 10 + g0
        k = ctx.create_program(kb.finish()).create_kernel("idx3")
        n = 2 * 3 * 4
        b = ctx.create_buffer(cl.mem_flags.WRITE_ONLY, size=8 * n, dtype=np.int64)
        k.set_args(b)
        q.enqueue_nd_range_kernel(k, (2, 3, 4), (1, 1, 2))
        expect = np.array(
            [z * 100 + y * 10 + x
             for z in range(4) for y in range(3) for x in range(2)]
        )
        np.testing.assert_array_equal(b.array, expect)


class TestPinnedScheduler:
    def test_pinned_makespan_is_per_core_serial(self):
        from repro.simcpu.scheduler import WorkgroupScheduler
        from repro.simcpu.spec import XEON_E5645

        s = WorkgroupScheduler(XEON_E5645)
        d = XEON_E5645.workgroup_dispatch_cycles
        # 3 workgroups pinned to core 0, 1 to core 1
        r = s.makespan_pinned([100, 100, 100, 100], [0, 0, 0, 1])
        assert r.makespan_cycles == pytest.approx(3 * (d + 100))
        assert r.threads_used == 2

    def test_pinned_balanced_matches_greedy(self):
        from repro.simcpu.scheduler import WorkgroupScheduler
        from repro.simcpu.spec import XEON_E5645

        s = WorkgroupScheduler(XEON_E5645)
        costs = [500.0] * 24
        pinned = s.makespan_pinned(costs, list(range(24)))
        greedy = s.makespan_hetero(costs)
        assert pinned.makespan_cycles == pytest.approx(
            greedy.makespan_cycles, rel=0.01
        )

    def test_pinned_imbalance_hurts(self):
        from repro.simcpu.scheduler import WorkgroupScheduler
        from repro.simcpu.spec import XEON_E5645

        s = WorkgroupScheduler(XEON_E5645)
        costs = [500.0] * 24
        balanced = s.makespan_pinned(costs, list(range(24)))
        skewed = s.makespan_pinned(costs, [0] * 12 + list(range(12)))
        assert skewed.makespan_cycles > balanced.makespan_cycles

    def test_length_mismatch(self):
        from repro.simcpu.scheduler import WorkgroupScheduler
        from repro.simcpu.spec import XEON_E5645

        s = WorkgroupScheduler(XEON_E5645)
        with pytest.raises(ValueError):
            s.makespan_pinned([1.0, 2.0], [0])

    def test_empty(self):
        from repro.simcpu.scheduler import WorkgroupScheduler
        from repro.simcpu.spec import XEON_E5645

        s = WorkgroupScheduler(XEON_E5645)
        assert s.makespan_pinned([], []).makespan_cycles == 0.0


class TestWorkitemSerializationOption:
    def test_reduces_total_time(self):
        from repro.simcpu.device import CPUDeviceModel
        from repro.suite.simple.square import build_square_kernel

        ref = CPUDeviceModel().kernel_cost(build_square_kernel(), (100_000,))
        opt = CPUDeviceModel(workitem_serialization=True).kernel_cost(
            build_square_kernel(), (100_000,)
        )
        assert opt.total_ns < ref.total_ns
