"""The tuner's knob space: one point = one complete execution configuration.

The paper's central finding is that CPU OpenCL performance hinges on the
execution configuration — workgroup size (Figures 3-5), thread coarsening
(Figures 1-2), mapping strategy (Figures 7-8), and workgroup placement
(Section III-E).  A :class:`KnobPoint` captures one choice of every knob;
a :class:`KnobSpace` is the candidate set a search strategy explores.

Two of the repo's knobs — the functional engine (``compiled``/``interp``),
the command-queue engine (``inorder``/``ooo``) and the worker count — are
*virtual-time-neutral by construction* (results are byte-identical across
them; only host wall clock moves), so the default spaces pin them.  They
are still part of the point, and therefore of the content address, so a
future model where they matter invalidates nothing retroactively.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..suite.base import Benchmark

__all__ = [
    "KnobPoint",
    "KnobSpace",
    "default_point",
    "default_space",
    "suite_benchmarks",
]

#: workgroup-placement policies the affinity sweep may use
AFFINITY_POLICIES = ("none", "blocked", "round_robin")

#: candidate workgroup sizes by NDRange rank (filtered per benchmark)
_LOCAL_1D = ((16,), (32,), (64,), (128,), (256,), (512,), (1024,))
_LOCAL_2D = ((8, 8), (16, 16), (32, 8), (8, 32), (32, 32))

#: candidate coarsening factors (filtered by divisibility per benchmark)
_COALESCE = (1, 2, 4, 8, 16)


def suite_benchmarks() -> Dict[str, Benchmark]:
    """The tunable benchmarks: every Table II + Table III application."""
    from ..suite import all_parboil_benchmarks, all_table2_benchmarks

    out: Dict[str, Benchmark] = {}
    for b in all_table2_benchmarks() + all_parboil_benchmarks():
        out[b.name] = b
    return out


@dataclasses.dataclass(frozen=True)
class KnobPoint:
    """One execution configuration (every knob bound to a value)."""

    local_size: Optional[Tuple[int, ...]] = None
    coalesce: int = 1
    affinity: str = "none"
    transfer_api: str = "copy"
    #: virtual-time-neutral knobs (kept in the content address)
    engine: str = "compiled"
    queue: str = "inorder"
    workers: int = 1

    def key(self) -> tuple:
        """Deterministic tuple identity for the content-addressed store."""
        return (
            ("local_size", self.local_size),
            ("coalesce", int(self.coalesce)),
            ("affinity", self.affinity),
            ("transfer_api", self.transfer_api),
            ("engine", self.engine),
            ("queue", self.queue),
            ("workers", int(self.workers)),
        )

    def to_payload(self) -> dict:
        """JSON-ready form (``tuned_configs.json`` and job transport)."""
        return {
            "local_size": (
                None if self.local_size is None else list(self.local_size)
            ),
            "coalesce": int(self.coalesce),
            "affinity": self.affinity,
            "transfer_api": self.transfer_api,
            "engine": self.engine,
            "queue": self.queue,
            "workers": int(self.workers),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "KnobPoint":
        ls = payload.get("local_size")
        return cls(
            local_size=None if ls is None else tuple(int(x) for x in ls),
            coalesce=int(payload.get("coalesce", 1)),
            affinity=str(payload.get("affinity", "none")),
            transfer_api=str(payload.get("transfer_api", "copy")),
            engine=str(payload.get("engine", "compiled")),
            queue=str(payload.get("queue", "inorder")),
            workers=int(payload.get("workers", 1)),
        )

    def describe(self) -> str:
        ls = (
            "NULL" if self.local_size is None
            else "x".join(str(x) for x in self.local_size)
        )
        parts = [f"local={ls}", f"coalesce={self.coalesce}"]
        if self.affinity != "none":
            parts.append(f"affinity={self.affinity}")
        if self.transfer_api != "copy":
            parts.append(f"transfer={self.transfer_api}")
        return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class KnobSpace:
    """Candidate values per knob; the search space is their product."""

    local_sizes: Tuple[Optional[Tuple[int, ...]], ...]
    coalesce_factors: Tuple[int, ...] = (1,)
    affinities: Tuple[str, ...] = ("none",)
    transfer_apis: Tuple[str, ...] = ("copy",)

    def points(self) -> List[KnobPoint]:
        """Every point, in a deterministic enumeration order."""
        return [
            KnobPoint(local_size=ls, coalesce=k, affinity=a, transfer_api=t)
            for ls, k, a, t in itertools.product(
                self.local_sizes, self.coalesce_factors,
                self.affinities, self.transfer_apis,
            )
        ]

    def size(self) -> int:
        return (
            len(self.local_sizes) * len(self.coalesce_factors)
            * len(self.affinities) * len(self.transfer_apis)
        )

    def neighbors(self, point: KnobPoint) -> List[KnobPoint]:
        """Hill-climb moves: vary one knob to an adjacent candidate."""
        out: List[KnobPoint] = []

        def _adjacent(values, current):
            values = list(values)
            try:
                i = values.index(current)
            except ValueError:
                return values[:1]
            return [values[j] for j in (i - 1, i + 1)
                    if 0 <= j < len(values)]

        for ls in _adjacent(self.local_sizes, point.local_size):
            out.append(dataclasses.replace(point, local_size=ls))
        for k in _adjacent(self.coalesce_factors, point.coalesce):
            out.append(dataclasses.replace(point, coalesce=k))
        for a in _adjacent(self.affinities, point.affinity):
            out.append(dataclasses.replace(point, affinity=a))
        for t in _adjacent(self.transfer_apis, point.transfer_api):
            out.append(dataclasses.replace(point, transfer_api=t))
        return [p for p in dict.fromkeys(out) if p != point]


def default_point(bench: Benchmark, objective: str = "kernel") -> KnobPoint:
    """The paper-default configuration (Table II/III) as a knob point."""
    ls = bench.default_local_size
    return KnobPoint(
        local_size=None if ls is None else tuple(int(x) for x in ls),
        coalesce=1,
        affinity="none",
        transfer_api="copy",
    )


def default_space(
    bench: Benchmark,
    global_size: Sequence[int],
    *,
    objective: str = "kernel",
    affinity: bool = False,
    sweep_coalesce: bool = True,
) -> KnobSpace:
    """The benchmark's default candidate set at one global size.

    Candidates are filtered for legality up front: coarsening factors must
    divide the dim-0 extent (``scale_global_size`` raises otherwise) and
    workgroup candidates larger than the NDRange are dropped.  Setting
    ``sweep_coalesce=False`` pins coarsening at 1 — the driver does that
    when the cycle-accounting report says the kernel is bandwidth-limited
    with negligible per-item scheduling overhead, so coarsening cannot pay.
    """
    gs = tuple(int(g) for g in global_size)
    rank = len(gs)

    cands = _LOCAL_1D if rank == 1 else _LOCAL_2D
    local_sizes: List[Optional[Tuple[int, ...]]] = [None]
    dls = bench.default_local_size
    if dls is not None:
        local_sizes.append(tuple(int(x) for x in dls))
    for ls in cands:
        if len(ls) == rank and all(l <= g for l, g in zip(ls, gs)):
            local_sizes.append(ls)
    local_sizes = list(dict.fromkeys(local_sizes))

    if sweep_coalesce and bench.supports_coalescing:
        coalesce = tuple(
            k for k in _COALESCE if gs[0] % k == 0 and gs[0] // k >= 1
        )
    else:
        coalesce = (1,)

    return KnobSpace(
        local_sizes=tuple(local_sizes),
        coalesce_factors=coalesce or (1,),
        affinities=AFFINITY_POLICIES if affinity else ("none",),
        transfer_apis=("copy", "map") if objective == "app" else ("copy",),
    )
