"""The complete GPU device model: kernel timing and PCIe transfer timing.

Unlike the CPU-as-device case, the GPU really is a *discrete* device behind
PCI-Express: OpenCL's disjoint-address-space assumption is physically true
here, so both copy and map APIs move data over the link (pinned DMA for
mapped/pinned buffers is faster, but never free — the contrast the paper
draws with the CPU in Section III-D).
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
from typing import Dict, Optional, Sequence, Tuple

from ..kernelir.analysis import KernelAnalysis, LaunchContext, LatencyTable, analyze_kernel
from ..obs import tracer as obs_tracer
from ..kernelir.ast import Kernel
from ..kernelir.compile import prepare_kernel as _jit_prepare
from ..plancache import LaunchPlanCache
from .occupancy import Occupancy, compute_occupancy
from .sm import SMCost, SMModel
from .spec import GPUSpec, GTX580

__all__ = ["GPUKernelCost", "GPUTransferCost", "GPUDeviceModel"]


@dataclasses.dataclass
class GPUKernelCost:
    """Cost and diagnostics of one NDRange launch on the GPU."""

    total_ns: float
    sm_cost: SMCost
    occupancy: Occupancy
    waves: int
    analysis: KernelAnalysis
    local_size: Tuple[int, ...]

    @property
    def gflops(self) -> float:
        flops = self.analysis.per_item.flops * self.analysis.ctx.total_workitems
        return flops / self.total_ns if self.total_ns > 0 else 0.0


@dataclasses.dataclass
class GPUTransferCost:
    total_ns: float
    api: str
    nbytes: int
    moved_bytes: int


class GPUDeviceModel:
    """Timing model of OpenCL execution on the discrete GPU."""

    is_gpu = True

    def __init__(self, spec: GPUSpec = GTX580,
                 latencies: Optional[LatencyTable] = None):
        self.spec = spec
        self.latencies = latencies or LatencyTable()
        self.sm_model = SMModel(spec)
        #: memoized launch plans (see :mod:`repro.plancache`)
        self.plan_cache = LaunchPlanCache("gpu.kernel_cost", maxsize=4096)

    # -- program build ------------------------------------------------------
    def prepare_kernel(self, kernel: Kernel) -> str:
        """clBuildProgram-time codegen: warm the kernel-JIT cache.

        Functional execution of GPU-device launches runs on the same host
        engines as the CPU device, so the same compiled artifact is shared.
        """
        return _jit_prepare(kernel)

    # -- NDRange policy -----------------------------------------------------
    def choose_local_size(
        self, global_size: Sequence[int], local_size: Optional[Sequence[int]]
    ) -> Tuple[int, ...]:
        """NULL-local-size policy: the driver picks a large divisor (<=256)."""
        gs = tuple(int(g) for g in global_size)
        if local_size is not None:
            return tuple(int(l) for l in local_size)
        best = 1
        for cand in range(1, min(256, gs[0]) + 1):
            if gs[0] % cand == 0:
                best = cand
        return (best,) + (1,) * (len(gs) - 1)

    # -- kernel timing ---------------------------------------------------------
    def kernel_cost(
        self,
        kernel: Kernel,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
        *,
        scalars: Optional[Dict[str, float]] = None,
        buffer_bytes: Optional[Dict[str, int]] = None,
    ) -> GPUKernelCost:
        gs = tuple(int(g) for g in global_size)
        ls = self.choose_local_size(gs, local_size)
        key = (
            kernel.fingerprint(),
            gs,
            ls,
            tuple(sorted((k, float(v)) for k, v in (scalars or {}).items())),
            tuple(sorted((buffer_bytes or {}).items())),
        )
        cached = self.plan_cache.get(key)
        if cached is not None:
            return cached
        tracer = obs_tracer.ACTIVE
        span = (
            tracer.wall_span(f"gpu plan {kernel.name}", "model",
                             {"global_size": list(gs), "local_size": list(ls)})
            if tracer is not None else contextlib.nullcontext()
        )
        with span:
            ctx = LaunchContext(gs, ls, dict(scalars or {}), self.latencies)
            analysis = analyze_kernel(kernel, ctx)

            wg_size = ctx.workgroup_size
            occ = compute_occupancy(self.spec, wg_size, kernel.local_mem_bytes)

            total_wgs = ctx.workgroup_count
            # wgs are distributed over SMs in waves
            per_wave = self.spec.num_sms * occ.workgroups_per_sm
            waves = max(1, math.ceil(total_wgs / per_wave))
            # SMs actually used in the (possibly only) partial wave
            sms_busy = min(self.spec.num_sms,
                           math.ceil(total_wgs / occ.workgroups_per_sm))
            resident = min(occ.workgroups_per_sm,
                           math.ceil(total_wgs / max(1, sms_busy)))
            dram_share = 1.0 / max(1, sms_busy)

            smc = self.sm_model.workgroup_cycles(
                analysis, occ, resident_workgroups=resident, dram_share=dram_share
            )
            # each SM runs ``resident`` workgroups concurrently per wave
            # Every workgroup's instructions issue through the SM's single
            # pipe; resident workgroups overlap latency (already in
            # smc.latency_hiding) but not issue bandwidth.
            wgs_per_sm_total = math.ceil(total_wgs / max(1, sms_busy))
            cycles = wgs_per_sm_total * smc.cycles_per_workgroup
            total_ns = (
                self.spec.cycles_to_ns(cycles)
                + self.spec.kernel_launch_overhead_ns
                + total_wgs * self.spec.workgroup_dispatch_ns / self.spec.num_sms
            )
            cost = GPUKernelCost(
                total_ns=total_ns,
                sm_cost=smc,
                occupancy=occ,
                waves=waves,
                analysis=analysis,
                local_size=ls,
            )
        self.plan_cache.put(key, cost)
        return cost

    def invalidate_plans(self) -> None:
        """Drop every memoized launch plan (after in-place model changes)."""
        self.plan_cache.invalidate()

    # -- transfers --------------------------------------------------------------
    def transfer_cost(self, nbytes: int, api: str, direction: str = "h2d",
                      *, pinned: bool = False) -> GPUTransferCost:
        s = self.spec
        if api == "copy":
            bw = s.pcie_bandwidth_pinned_gbps if pinned else s.pcie_bandwidth_pageable_gbps
            t = s.pcie_latency_ns + nbytes / bw
            return GPUTransferCost(t, "copy", nbytes, nbytes)
        if api == "map":
            # mapped access uses pinned DMA; data still crosses the link
            bw = s.pcie_bandwidth_pinned_gbps
            t = s.pcie_latency_ns + nbytes / bw
            return GPUTransferCost(t, "map", nbytes, nbytes)
        raise ValueError(f"unknown transfer api {api!r}")

    def describe(self) -> dict:
        return self.spec.describe()

    @property
    def name(self) -> str:
        return self.spec.name
