"""Shared host worker pools for the execution engine.

Two distinct pools, mirroring how a CPU OpenCL runtime (pocl's task-graph
scheduler) separates command retirement from data-parallel kernel work:

* the **command pool** runs DAG nodes of :class:`repro.minicl.schedule.
  CommandScheduler` — one slot per in-flight command;
* the **chunk pool** runs NDRange chunks of one kernel launch
  (:mod:`repro.kernelir.compile`) — NumPy releases the GIL on array ops,
  so chunks of a fused launch genuinely overlap on host cores.

A third **serve pool** executes whole tenant requests for the experiment
service (:mod:`repro.serve`).  It sits *above* the other two: a serve
worker may retire commands through the command pool and fan a kernel over
the chunk pool, so it must never share slots with either.

Keeping them separate avoids the classic nested-pool deadlock: a command
node that itself fans a kernel out over workers must never wait on a slot
in its own pool.

Sizing comes from ``REPRO_WORKERS`` (``repro.env_int``); unset or ``0``
auto-sizes to ``min(4, cpu_count)``.  ``set_worker_count`` overrides the
environment in-process (the CLI's ``--workers`` writes the environment
variable instead so the choice survives into ``--jobs`` subprocesses).
Pools are created lazily and rebuilt when the effective count changes, so
tests can flip the count mid-process.

A fourth pool is a **persistent process pool** (:func:`process_pool`,
:class:`BatchedProcessPool`): long-lived forked workers fed over queues in
**batches** so IPC round-trips amortize across jobs, with large results
spilled through :mod:`repro.shm` instead of the result pipe.  It replaces
the throwaway ``ProcessPoolExecutor`` that ``registry.pool_map`` used to
build per call (fork + warm-up + full dataset pickling on every call).
Stale shared-memory segments from crashed runs are swept on every pool
start, and ``shutdown_pools()``/``atexit`` release everything on clean
exits.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue as _queue
import threading
import concurrent.futures as cf
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence

import repro

__all__ = [
    "BatchedProcessPool",
    "chunk_pool",
    "command_pool",
    "ooo_enabled",
    "pool_stats",
    "process_pool",
    "serve_worker_count",
    "set_worker_count",
    "shutdown_pools",
    "worker_count",
]

#: hard ceiling on auto-sized pools; explicit REPRO_WORKERS may exceed it
_AUTO_CAP = 4

_lock = threading.Lock()
_override: Optional[int] = None
_pools = {}  # role -> (ThreadPoolExecutor, size)


def worker_count() -> int:
    """Effective worker-thread count for both pools (always >= 1)."""
    if _override is not None:
        return max(1, _override)
    n = repro.env_int("REPRO_WORKERS", 0)
    if n > 0:
        return n
    return max(1, min(_AUTO_CAP, os.cpu_count() or 1))


def set_worker_count(n: Optional[int]) -> None:
    """In-process override of ``REPRO_WORKERS`` (``None`` restores it)."""
    global _override
    _override = None if n is None else int(n)


def serve_worker_count() -> int:
    """Concurrent request executors for the experiment service.

    ``REPRO_SERVE_WORKERS`` overrides; unset/``0`` follows
    :func:`worker_count` so the service defaults to the same width as the
    engine pools it feeds.
    """
    n = repro.env_int("REPRO_SERVE_WORKERS", 0)
    return n if n > 0 else worker_count()


def ooo_enabled() -> bool:
    """Whether the event-DAG engine may be used (``REPRO_NO_OOO`` kills it)."""
    return not repro.env_flag("REPRO_NO_OOO")


def _pool(role: str) -> ThreadPoolExecutor:
    n = worker_count()
    with _lock:
        entry = _pools.get(role)
        if entry is not None and entry[1] == n:
            return entry[0]
        if entry is not None:
            entry[0].shutdown(wait=False)
        pool = ThreadPoolExecutor(
            max_workers=n, thread_name_prefix=f"repro-{role}"
        )
        _pools[role] = (pool, n)
        return pool


def command_pool() -> ThreadPoolExecutor:
    """The pool that retires command-DAG nodes."""
    return _pool("cmd")


def chunk_pool() -> ThreadPoolExecutor:
    """The pool that runs NDRange chunks of one kernel launch."""
    return _pool("chunk")


def worker_index() -> int:
    """Index of the current pool worker thread (0 on non-pool threads).

    Pool threads are named ``repro-<role>_<i>`` by ThreadPoolExecutor;
    the tracer uses this to give each worker its own trace lane.
    """
    name = threading.current_thread().name
    if name.startswith("repro-") and "_" in name:
        try:
            return int(name.rsplit("_", 1)[1])
        except ValueError:
            return 0
    return 0


def shutdown_pools() -> None:
    """Tear down every pool (tests; pools re-create lazily afterwards).

    Also releases this process's shared-memory segments, so a clean exit
    never leaves ``/dev/shm`` residue behind.
    """
    global _PROC_POOL
    with _lock:
        for pool, _ in _pools.values():
            pool.shutdown(wait=True)
        _pools.clear()
    with _proc_lock:
        if _PROC_POOL is not None:
            _PROC_POOL.shutdown(wait=True)
            _PROC_POOL = None
    from . import shm

    shm.release_all()


# ---------------------------------------------------------------------------
# The persistent batched process pool (the zero-copy data plane's engine)
# ---------------------------------------------------------------------------

#: results whose pickle exceeds this spill through a shared-memory blob
#: instead of the result pipe (the pipe serializes; the blob is one map)
_SPILL_BYTES = 256 * 1024

_proc_lock = threading.Lock()
_PROC_POOL: Optional["BatchedProcessPool"] = None

_POOL_STATS = {
    "pools_started": 0,
    "batches_dispatched": 0,
    "tasks_dispatched": 0,
    "tasks_completed": 0,
    "results_spilled": 0,
    "workers_lost": 0,
}


def pool_stats() -> dict:
    """Process-pool activity counters (absorbed by ``repro.obs``)."""
    out = dict(_POOL_STATS)
    pool = _PROC_POOL
    out["workers"] = pool.size if pool is not None and pool.alive else 0
    return out


def reset_pool_stats() -> None:
    for k in _POOL_STATS:
        _POOL_STATS[k] = 0


def _env_snapshot() -> Dict[str, str]:
    """The ``REPRO_*`` environment a batch must run under.

    Captured at submit time (not fork time): the bench harness flips
    ``REPRO_NO_CACHE`` between phases of one process's lifetime, and the
    long-lived workers must follow.
    """
    return {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}


def _apply_env(env: Dict[str, str]) -> None:
    for k in [k for k in os.environ if k.startswith("REPRO_")]:
        if k not in env:
            del os.environ[k]
    os.environ.update(env)


def _reset_after_fork() -> None:
    """Make a freshly forked worker self-consistent.

    Thread pools do not survive fork (their threads exist only in the
    parent) and the inherited process-pool handle shares the parent's
    queues; both must be discarded before the worker runs any task.
    """
    global _PROC_POOL
    _pools.clear()
    _PROC_POOL = None


def _send_result(result_q, gen: int, idx: int, value) -> None:
    from . import shm

    try:
        data = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
    except Exception as e:
        result_q.put((gen, idx, "err", RuntimeError(
            f"result of task {idx} is not picklable: {e!r}")))
        return
    if len(data) > _SPILL_BYTES and shm.shm_enabled():
        name = shm.publish_blob(data)
        if name is not None:
            result_q.put((gen, idx, "blob", name))
            return
    result_q.put((gen, idx, "okb", data))


def _worker_main(task_q, result_q) -> None:
    from . import shm

    _reset_after_fork()
    shm.mark_worker_process()
    while True:
        msg = task_q.get()
        if msg is None:
            # clean sentinel exit: forked children skip atexit, so the
            # worker must unlink its own published segments here
            shm.release_all()
            break
        gen, fn, items, env = msg
        _apply_env(env)
        for idx, args in items:
            try:
                value = fn(*args)
            except BaseException as e:
                try:
                    result_q.put((gen, idx, "err", e))
                except Exception:
                    result_q.put((gen, idx, "err",
                                  RuntimeError(f"task {idx} raised {e!r}")))
                continue
            _send_result(result_q, gen, idx, value)


class BatchedProcessPool:
    """Persistent forked workers fed in batches over one task queue.

    The contract ``registry.pool_map`` relies on:

    * :meth:`submit_batch` returns real :class:`concurrent.futures.Future`
      objects, resolved in arrival order by a collector thread — callers
      block on ``f.result()`` exactly as with a stock executor;
    * a dead worker fails every unresolved future of the active batch with
      :class:`BrokenProcessPool` and marks the pool broken (the next
      :func:`process_pool` call builds a fresh one);
    * :meth:`shutdown` with ``cancel_futures=True`` is safe mid-batch
      (``KeyboardInterrupt`` drain) — workers are terminated, nothing
      blocks.

    Tasks of one batch run in submission order within a worker; workers
    pull whole sub-batches dynamically, so slow tasks still load-balance.
    """

    def __init__(self, size: int):
        import multiprocessing as mp

        self.size = max(1, int(size))
        self._mp = mp.get_context("fork")
        self._task_q = self._mp.Queue()
        self._result_q = self._mp.Queue()
        self._lock = threading.Lock()
        self._gen = 0
        self._futures: List[cf.Future] = []
        self._pending = 0
        self._broken = False
        self._stopping = False
        self._procs = [
            self._mp.Process(
                target=_worker_main, args=(self._task_q, self._result_q),
                daemon=True, name=f"repro-proc_{i}",
            )
            for i in range(self.size)
        ]
        for p in self._procs:
            p.start()
        self._collector = threading.Thread(
            target=self._collect, daemon=True, name="repro-proc-collector"
        )
        self._collector.start()
        _POOL_STATS["pools_started"] += 1

    @property
    def alive(self) -> bool:
        return not self._broken and not self._stopping

    @property
    def broken(self) -> bool:
        return self._broken

    # -- submission -----------------------------------------------------------
    def submit_batch(self, fn, argtuples: Sequence[tuple]) -> List[cf.Future]:
        """Dispatch one ordered batch; returns one future per argtuple."""
        argtuples = list(argtuples)
        with self._lock:
            if not self.alive:
                raise BrokenProcessPool("process pool is not running")
            self._gen += 1
            gen = self._gen
            self._futures = [cf.Future() for _ in argtuples]
            self._pending = len(argtuples)
            futures = list(self._futures)
        env = _env_snapshot()
        step = max(1, len(argtuples) // (self.size * 4))
        indexed = list(enumerate(argtuples))
        for start in range(0, len(indexed), step):
            chunk = indexed[start:start + step]
            self._task_q.put((gen, fn, chunk, env))
            _POOL_STATS["batches_dispatched"] += 1
        _POOL_STATS["tasks_dispatched"] += len(argtuples)
        return futures

    # -- collection -----------------------------------------------------------
    def _resolve(self, fut: cf.Future, value=None, exc=None) -> None:
        try:
            if exc is not None:
                fut.set_exception(exc)
            else:
                fut.set_result(value)
        except cf.InvalidStateError:
            pass  # cancelled or already failed by a break/drain

    def _collect(self) -> None:
        from . import shm

        while not self._stopping:
            try:
                msg = self._result_q.get(timeout=0.1)
            except (_queue.Empty, OSError, EOFError):
                if self._stopping:
                    return
                self._check_workers()
                continue
            gen, idx, status, payload = msg
            with self._lock:
                if gen != self._gen or self._broken:
                    continue
                fut = self._futures[idx]
                self._pending -= 1
            if status == "okb":
                try:
                    self._resolve(fut, pickle.loads(payload))
                except Exception as e:
                    self._resolve(fut, exc=e)
            elif status == "blob":
                data = shm.take_blob(payload)
                _POOL_STATS["results_spilled"] += 1
                if data is None:
                    self._resolve(fut, exc=BrokenProcessPool(
                        f"spilled result segment {payload!r} disappeared"))
                else:
                    try:
                        self._resolve(fut, pickle.loads(data))
                    except Exception as e:
                        self._resolve(fut, exc=e)
            else:
                self._resolve(fut, exc=payload)
            _POOL_STATS["tasks_completed"] += 1

    def _check_workers(self) -> None:
        dead = [p for p in self._procs if not p.is_alive()]
        if not dead:
            return
        with self._lock:
            if self._broken:
                return
            self._broken = True
            _POOL_STATS["workers_lost"] += len(dead)
            exc = BrokenProcessPool(
                f"{len(dead)} worker process(es) terminated abruptly "
                f"(exit codes {[p.exitcode for p in dead]})"
            )
            unresolved = [f for f in self._futures if not f.done()]
        for f in unresolved:
            self._resolve(f, exc=exc)
        for p in self._procs:
            if p.is_alive():
                p.terminate()

    # -- teardown -------------------------------------------------------------
    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            unresolved = [f for f in self._futures if not f.done()]
        if cancel_futures:
            exc = cf.CancelledError()
            for f in unresolved:
                self._resolve(f, exc=exc)
        clean = wait and not self._broken and not cancel_futures
        if clean:
            for _ in self._procs:
                try:
                    self._task_q.put(None)
                except Exception:
                    clean = False
                    break
        for p in self._procs:
            if clean:
                p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            p.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        if wait:
            self._collector.join(timeout=1.0)


def process_pool(size: int) -> BatchedProcessPool:
    """The persistent process pool, rebuilt on size change or breakage.

    Every (re)start first sweeps shared-memory segments orphaned by dead
    processes — the SHM mirror of ``diskcache.sweep_stale_tmp()``.
    """
    global _PROC_POOL
    with _proc_lock:
        pool = _PROC_POOL
        if pool is not None and (not pool.alive or pool.size != size):
            pool.shutdown(wait=False, cancel_futures=True)
            _PROC_POOL = pool = None
        if pool is None:
            from . import shm

            shm.sweep_stale_segments()
            pool = BatchedProcessPool(size)
            _PROC_POOL = pool
        return pool


def _shutdown_at_exit() -> None:
    pool = _PROC_POOL
    if pool is not None:
        # wait=True runs the sentinel path, giving live workers the chance
        # to release their own segments before the stale sweep below
        pool.shutdown(wait=True)
    from . import shm

    shm.sweep_stale_segments()


atexit.register(_shutdown_at_exit)
