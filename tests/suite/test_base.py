"""Tests for the Benchmark base-class machinery itself."""

import numpy as np
import pytest

from repro.suite.base import (
    Benchmark,
    LaunchConfig,
    _largest_divisor_at_most,
    scale_global_size,
)
from repro.suite import SquareBenchmark


class TestScaleGlobalSize:
    def test_scales_dim0_only(self):
        assert scale_global_size((1000, 7), 10) == (100, 7)

    def test_identity(self):
        assert scale_global_size((123,), 1) == (123,)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError, match="not divisible"):
            scale_global_size((1001,), 10)


class TestLargestDivisor:
    @pytest.mark.parametrize(
        "n,cap,expect",
        [(100, 64, 50), (64, 64, 64), (97, 64, 1), (10_000, 64, 50),
         (1, 64, 1), (48, 7, 6)],
    )
    def test_values(self, n, cap, expect):
        assert _largest_divisor_at_most(n, cap) == expect


class TestLaunchConfig:
    def test_pretty_and_totals(self):
        c = LaunchConfig((16, 8), (4, 2))
        assert c.pretty() == "global=16 X 8 local=4 X 2"
        assert c.total_workitems == 128


class TestScalarsFor:
    def test_default_injection(self):
        b = SquareBenchmark()
        assert b.scalars_for(1) == {}
        assert b.scalars_for(100) == {"n_per": 100}

    def test_output_names(self):
        b = SquareBenchmark()
        bufs, sc = b.make_data((64,), np.random.default_rng(0))
        assert b.output_names(bufs, sc, (64,)) == ("output",)


class TestValidateAdjustsLocalSize:
    def test_local_shrinks_to_divisor(self):
        """validate() adapts an oversized default local size to the small
        test NDRange instead of failing on divisibility."""
        b = SquareBenchmark()
        # default local is None; force a large explicit one
        b.validate((100,), local_size=(64,))  # 64 does not divide 100 -> 50

    def test_abstract_interface_enforced(self):
        with pytest.raises(TypeError):
            Benchmark()  # abstract
