"""Cross-launch producer->consumer kernel fusion (IR -> IR).

The lock-step engines run *every* statement for the whole grid before the
next statement, so executing kernel A's body followed by kernel B's body in
one launch is exactly equivalent to launching A then B over the same
NDRange — no additional proof obligations beyond consistent parameter
bindings.  :func:`fuse_kernels` builds that concatenated kernel: B's
parameters that are bound to the same :class:`~numpy.ndarray` as one of
A's parameters collapse onto A's name (so the compiler's store->load
forwarding can elide the intermediate round-trip), and every other B-side
name that collides with an A-side name is suffixed (``__f1``, ``__f2`` for
chained fusions, ...).

The *scheduling* legality — that nothing may observe memory between the
two launches — is established by the event-DAG scheduler before it calls
this module: it only fuses a RAW producer->consumer pair when the consumer's
only dependency is the producer (see
:meth:`repro.minicl.schedule.CommandScheduler`).  Because the fused kernel
still performs A's stores, the intermediate buffer holds exactly the same
bytes afterwards; fusion never changes observable memory, only when the
work happens.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from . import ast as ir

__all__ = ["FuseError", "FusedKernel", "fuse_kernels"]


class FuseError(Exception):
    """The two kernels cannot be fused into one launch."""


@dataclasses.dataclass
class FusedKernel:
    """The concatenated kernel plus the B-side argument renames."""

    kernel: ir.Kernel
    #: B buffer-param name -> fused param name (A's name for shared buffers)
    buffer_map: Dict[str, str]
    #: B scalar-param name -> fused param name
    scalar_map: Dict[str, str]


def _assigned_names(body) -> set:
    names = set()
    for st in ir.walk_stmts(body):
        if isinstance(st, ir.Assign):
            names.add(st.name)
        elif isinstance(st, ir.For):
            names.add(st.var)
    return names


def _rewrite_expr(e: ir.Expr, env: Dict[str, str], bufs: Dict[str, str],
                  locs: Dict[str, str]) -> ir.Expr:
    if isinstance(e, ir.Var):
        new = env.get(e.name)
        return ir.Var(new, e.dtype) if new is not None else e
    if isinstance(e, (ir.Const, ir._IdBase)):
        return e
    if isinstance(e, ir.BinOp):
        lhs = _rewrite_expr(e.lhs, env, bufs, locs)
        rhs = _rewrite_expr(e.rhs, env, bufs, locs)
        if lhs is e.lhs and rhs is e.rhs:
            return e
        return ir.BinOp(e.op, lhs, rhs)
    if isinstance(e, ir.UnOp):
        op = _rewrite_expr(e.operand, env, bufs, locs)
        return e if op is e.operand else ir.UnOp(e.op, op)
    if isinstance(e, ir.Call):
        args = tuple(_rewrite_expr(a, env, bufs, locs) for a in e.args)
        if all(a is b for a, b in zip(args, e.args)):
            return e
        return ir.Call(e.fn, args)
    if isinstance(e, ir.Load):
        idx = _rewrite_expr(e.index, env, bufs, locs)
        name = bufs.get(e.buffer, e.buffer)
        if idx is e.index and name == e.buffer:
            return e
        return ir.Load(name, idx, e.dtype)
    if isinstance(e, ir.LoadLocal):
        idx = _rewrite_expr(e.index, env, bufs, locs)
        name = locs.get(e.array, e.array)
        if idx is e.index and name == e.array:
            return e
        return ir.LoadLocal(name, idx, e.dtype)
    if isinstance(e, ir.Select):
        c = _rewrite_expr(e.cond, env, bufs, locs)
        a = _rewrite_expr(e.if_true, env, bufs, locs)
        b = _rewrite_expr(e.if_false, env, bufs, locs)
        if c is e.cond and a is e.if_true and b is e.if_false:
            return e
        return ir.Select(c, a, b)
    if isinstance(e, ir.Cast):
        op = _rewrite_expr(e.operand, env, bufs, locs)
        return e if op is e.operand else ir.Cast(op, e.dtype)
    raise FuseError(f"unknown expression {type(e).__name__}")


def _rewrite_body(body, env, bufs, locs) -> List[ir.Stmt]:
    out: List[ir.Stmt] = []
    for s in body:
        if isinstance(s, ir.Assign):
            out.append(ir.Assign(env.get(s.name, s.name),
                                 _rewrite_expr(s.value, env, bufs, locs)))
        elif isinstance(s, ir.Store):
            out.append(ir.Store(bufs.get(s.buffer, s.buffer),
                                _rewrite_expr(s.index, env, bufs, locs),
                                _rewrite_expr(s.value, env, bufs, locs)))
        elif isinstance(s, ir.AtomicAdd):
            out.append(ir.AtomicAdd(bufs.get(s.buffer, s.buffer),
                                    _rewrite_expr(s.index, env, bufs, locs),
                                    _rewrite_expr(s.value, env, bufs, locs)))
        elif isinstance(s, ir.StoreLocal):
            out.append(ir.StoreLocal(locs.get(s.array, s.array),
                                     _rewrite_expr(s.index, env, bufs, locs),
                                     _rewrite_expr(s.value, env, bufs, locs)))
        elif isinstance(s, ir.AtomicAddLocal):
            out.append(ir.AtomicAddLocal(
                locs.get(s.array, s.array),
                _rewrite_expr(s.index, env, bufs, locs),
                _rewrite_expr(s.value, env, bufs, locs)))
        elif isinstance(s, ir.For):
            out.append(ir.For(env.get(s.var, s.var),
                              _rewrite_expr(s.start, env, bufs, locs),
                              _rewrite_expr(s.stop, env, bufs, locs),
                              _rewrite_expr(s.step, env, bufs, locs),
                              _rewrite_body(s.body, env, bufs, locs)))
        elif isinstance(s, ir.If):
            out.append(ir.If(_rewrite_expr(s.cond, env, bufs, locs),
                             _rewrite_body(s.then_body, env, bufs, locs),
                             _rewrite_body(s.else_body, env, bufs, locs)))
        elif isinstance(s, ir.Barrier):
            out.append(s)
        else:
            raise FuseError(f"unsupported statement {type(s).__name__}")
    return out


def fuse_kernels(a: ir.Kernel, b: ir.Kernel,
                 shared: Dict[str, str]) -> FusedKernel:
    """Concatenate ``a`` then ``b`` into one kernel over one NDRange.

    ``shared`` maps B buffer-param names onto the A buffer-param name bound
    to the same underlying array (established by the caller from the actual
    launch arguments).  Raises :class:`FuseError` when the signatures
    cannot be reconciled (dtype mismatch on a shared buffer, differing
    ``work_dim``).
    """
    if a.work_dim != b.work_dim:
        raise FuseError(f"work_dim mismatch ({a.work_dim} vs {b.work_dim})")

    a_bufs = {p.name: p for p in a.buffer_params}
    a_scals = {p.name: p for p in a.scalar_params}
    a_locals = {arr.name for arr in a.local_arrays}
    a_priv = _assigned_names(a.body)
    a_names = (set(a_bufs) | set(a_scals) | a_locals | a_priv)

    for bname, aname in shared.items():
        if aname not in a_bufs:
            raise FuseError(f"shared target {aname!r} is not an A buffer")

    depth = getattr(a, "fuse_depth", 0) + 1

    def fresh(name: str, taken: set) -> str:
        d = depth
        cand = f"{name}__f{d}"
        while cand in taken:
            d += 1
            cand = f"{name}__f{d}"
        return cand

    # -- B buffer params ---------------------------------------------------
    b_bufs = {p.name: p for p in b.buffer_params}
    for bname, p in b_bufs.items():
        if bname in shared and a_bufs[shared[bname]].dtype != p.dtype:
            raise FuseError(
                f"shared buffer {bname!r} dtype mismatch "
                f"({a_bufs[shared[bname]].dtype} vs {p.dtype})"
            )
    taken = set(a_names)
    buffer_map: Dict[str, str] = {}
    for bname in b_bufs:
        if bname in shared:
            buffer_map[bname] = shared[bname]
        elif bname in taken:
            buffer_map[bname] = fresh(bname, taken)
        else:
            buffer_map[bname] = bname
        taken.add(buffer_map[bname])

    # -- B scalar params, privates and locals ------------------------------
    b_priv = _assigned_names(b.body)
    env_map: Dict[str, str] = {}
    for name in sorted(set(p.name for p in b.scalar_params) | b_priv):
        if name in a_names:
            env_map[name] = fresh(name, taken)
            taken.add(env_map[name])
    local_map: Dict[str, str] = {}
    for arr in b.local_arrays:
        if arr.name in a_names:
            local_map[arr.name] = fresh(arr.name, taken)
            taken.add(local_map[arr.name])

    scalar_map = {p.name: env_map.get(p.name, p.name)
                  for p in b.scalar_params}

    # -- merged signature --------------------------------------------------
    params: List[object] = []
    shared_targets = set(shared.values())
    for p in a.params:
        if isinstance(p, ir.BufferParam) and p.name in shared_targets:
            b_access = next(bp.access for bn, bp in b_bufs.items()
                            if shared.get(bn) == p.name)
            merged = "".join(sorted(set(p.access) | set(b_access),
                                    reverse=True))
            merged = {"rw": "rw", "wr": "rw", "r": "r", "w": "w"}.get(
                merged, "rw")
            if merged != p.access:
                p = ir.BufferParam(p.name, p.dtype, merged)
        params.append(p)
    for p in b.params:
        if isinstance(p, ir.BufferParam):
            name = buffer_map[p.name]
            if name in shared_targets or name in a_bufs:
                continue  # collapsed onto A's parameter
            params.append(p if name == p.name
                          else ir.BufferParam(name, p.dtype, p.access))
        else:
            name = scalar_map[p.name]
            params.append(p if name == p.name
                          else ir.ScalarParam(name, p.dtype))

    local_arrays = list(a.local_arrays)
    for arr in b.local_arrays:
        name = local_map.get(arr.name, arr.name)
        local_arrays.append(arr if name == arr.name
                            else ir.LocalArray(name, arr.dtype, arr.size))

    body = list(a.body) + _rewrite_body(b.body, env_map, buffer_map,
                                        local_map)
    fused = ir.Kernel(
        name=f"{a.name}+{b.name}",
        params=params,
        local_arrays=local_arrays,
        body=body,
        work_dim=a.work_dim,
        suppressions=tuple(dict.fromkeys(tuple(a.suppressions)
                                         + tuple(b.suppressions))),
    )
    fused.fuse_depth = depth
    syn = (getattr(a, "synthetic_op_ids", frozenset())
           | getattr(b, "synthetic_op_ids", frozenset()))
    if syn:
        fused.synthetic_op_ids = syn
    return FusedKernel(fused, buffer_map, scalar_map)
