#!/usr/bin/env python
"""Heterogeneous execution: splitting one workload across CPU and GPU.

The paper's introduction motivates evaluating CPUs as OpenCL devices with
exactly this scenario: "CPUs can also be utilized to increase the
performance of OpenCL applications by using both CPUs and GPUs (especially
when a CPU is idle)" and "even for the massively parallel kernels, sometimes
CPUs can be better than GPUs depending on input sizes."

This example prices a Black-Scholes portfolio with the first ``f`` fraction
of options on the (simulated) GPU and the rest on the CPU, both devices
working concurrently.  GPU work pays PCIe transfers; CPU work does not.  The
sweep finds the optimal split per problem size — small problems land
CPU-only, large ones mostly-GPU, and the hybrid beats either alone in
between.

Run:  python examples/hetero_split.py
"""

import numpy as np

from repro import minicl as cl
from repro.suite import BlackScholesBenchmark


def _partition_cost(dut_kind, n_items, bench, host, scalars):
    """Virtual time for one device to process ``n_items`` options,
    including that device's share of data movement (Equation 1 style)."""
    if n_items == 0:
        return 0.0
    plat = cl.cpu_platform() if dut_kind == "cpu" else cl.gpu_platform()
    ctx = cl.Context(plat.devices)
    q = ctx.create_command_queue(functional=False)
    mf = cl.mem_flags

    side = int(np.sqrt(n_items))
    side = max(16, side - side % 16)
    gs = (side, side)
    sub = {k: v[: side * side] for k, v in host.items()}
    bufs = {
        k: ctx.create_buffer(mf.READ_WRITE | mf.COPY_HOST_PTR, hostbuf=v)
        for k, v in sub.items()
    }
    t0 = q.now_ns
    # inputs in
    for name in ("price", "strike", "years"):
        if plat.devices[0].is_gpu:
            q.enqueue_write_buffer(bufs[name], sub[name])
        else:
            view, _ = q.enqueue_map_buffer(bufs[name], cl.map_flags.WRITE)
            q.enqueue_unmap(bufs[name], view)
    k = ctx.create_program(bench.kernel()).build().create_kernel("blackScholes")
    k.set_args(*[
        bufs[p.name] if p.name in bufs else scalars[p.name]
        for p in k.kernel.params
    ])
    q.enqueue_nd_range_kernel(k, gs, (16, 16))
    # results out
    for name in ("call", "put"):
        if plat.devices[0].is_gpu:
            q.enqueue_read_buffer(bufs[name], np.empty_like(sub[name]))
        else:
            view, _ = q.enqueue_map_buffer(bufs[name], cl.map_flags.READ)
            q.enqueue_unmap(bufs[name], view)
    return q.now_ns - t0


def sweep(total_options):
    bench = BlackScholesBenchmark()
    rng = np.random.default_rng(3)
    side = int(np.sqrt(total_options))
    host, scalars = bench.make_data((side, side), rng)

    rows = []
    for gpu_fraction in np.linspace(0.0, 1.0, 11):
        n_gpu = int(total_options * gpu_fraction)
        n_cpu = total_options - n_gpu
        t_gpu = _partition_cost("gpu", n_gpu, bench, host, scalars)
        t_cpu = _partition_cost("cpu", n_cpu, bench, host, scalars)
        rows.append((gpu_fraction, max(t_cpu, t_gpu) / 1e6))
    return rows


def main():
    for total in (256 * 256, 512 * 512, 2048 * 2048):
        rows = sweep(total)
        best_f, best_t = min(rows, key=lambda r: r[1])
        cpu_only = rows[0][1]
        gpu_only = rows[-1][1]
        print(f"\n== {total} options ==")
        print("  GPU share   makespan (virtual ms)")
        for f, t in rows:
            marker = "  <- best" if (f, t) == (best_f, best_t) else ""
            print(f"    {f:4.1f}      {t:10.3f}{marker}")
        print(f"  CPU-only {cpu_only:.3f} ms, GPU-only {gpu_only:.3f} ms, "
              f"best hybrid {best_t:.3f} ms at {best_f:.0%} on GPU")
        if best_t < min(cpu_only, gpu_only) * 0.999:
            print("  -> the hybrid beats either device alone")
        elif best_f == 0.0:
            print("  -> small problem: CPU-only wins (no PCIe crossing)")
        else:
            print("  -> large problem: GPU takes (almost) everything")


if __name__ == "__main__":
    main()
