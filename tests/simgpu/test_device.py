"""Unit tests for the GPU device model — the paper's GPU-side contrasts."""

import pytest

from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32
from repro.simgpu.device import GPUDeviceModel
from repro.simgpu.spec import GTX580
from repro.suite import build_ilp_kernel
from repro.suite.simple.square import build_square_kernel


class TestSpec:
    def test_paper_peak(self):
        assert GTX580.peak_gflops_sp == pytest.approx(1580.0, rel=0.01)

    def test_describe(self):
        d = GTX580.describe()
        assert d["# SMs"] == "16"
        assert "16KB/768KB" in d["Caches"]


class TestKernelCost:
    def setup_method(self):
        self.dev = GPUDeviceModel()

    def test_never_exceeds_peak(self):
        for ilp in (1, 4):
            c = self.dev.kernel_cost(build_ilp_kernel(ilp), (96 * 1024,), (256,))
            assert c.gflops < GTX580.peak_gflops_sp

    def test_ilp_flat(self):
        """Figure 6's GPU line: throughput independent of ILP."""
        gf = [
            self.dev.kernel_cost(build_ilp_kernel(k), (96 * 1024,), (256,)).gflops
            for k in (1, 2, 4)
        ]
        assert max(gf) / min(gf) < 1.02

    def test_small_workgroups_collapse(self):
        k = build_square_kernel()
        t1 = self.dev.kernel_cost(k, (100_000,), (1,)).total_ns
        t256 = self.dev.kernel_cost(k, (100_000,), (1000,)).total_ns
        assert t1 > 20 * t256

    def test_coalescing_degrades(self):
        """Figure 1's GPU collapse under work coalescing."""
        n = 1_000_000
        base = self.dev.kernel_cost(build_square_kernel(), (n,), (256,))
        co = self.dev.kernel_cost(
            build_square_kernel(100), (n // 100,), (250,),
            scalars={"n_per": 100},
        )
        # same total elements, must be much slower coalesced
        assert co.total_ns > 2 * base.total_ns

    def test_tlp_starvation_when_few_items(self):
        k = build_ilp_kernel(1)
        many = self.dev.kernel_cost(k, (96 * 1024,), (256,))
        few = self.dev.kernel_cost(k, (512,), (256,))
        per_item_many = many.total_ns / (96 * 1024)
        per_item_few = few.total_ns / 512
        assert per_item_few > 2 * per_item_many

    def test_null_local_size_policy(self):
        ls = self.dev.choose_local_size((100_000,), None)
        assert 100_000 % ls[0] == 0 and ls[0] <= 256

    def test_local_mem_reduces_occupancy(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32)
        s = kb.local_array("s", 12 * 1024, F32)  # 48KB: one wg per SM
        lid = kb.local_id(0)
        s[lid] = a[kb.global_id(0)]
        kb.barrier()
        a[kb.global_id(0)] = s[lid]
        c = self.dev.kernel_cost(kb.finish(), (4096,), (256,))
        assert c.occupancy.workgroups_per_sm == 1
        assert c.occupancy.limiter == "shared"


class TestTransfers:
    def setup_method(self):
        self.dev = GPUDeviceModel()

    def test_pcie_is_never_free(self):
        """Unlike the CPU device, mapping still crosses the link."""
        m = self.dev.transfer_cost(1 << 24, "map")
        assert m.moved_bytes == 1 << 24
        assert m.total_ns > 1e6  # 16MB over ~6GB/s

    def test_pinned_faster_than_pageable(self):
        pageable = self.dev.transfer_cost(1 << 24, "copy", pinned=False).total_ns
        pinned = self.dev.transfer_cost(1 << 24, "copy", pinned=True).total_ns
        assert pinned < pageable

    def test_latency_floor(self):
        t = self.dev.transfer_cost(4, "copy").total_ns
        assert t >= GTX580.pcie_latency_ns

    def test_unknown_api(self):
        with pytest.raises(ValueError):
            self.dev.transfer_cost(4, "warp")
