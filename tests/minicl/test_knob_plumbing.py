"""Tuner knob plumbing: build options reach kernels, device-knob writes
invalidate cached launch plans.

The two plumbing bugs these tests pin down: a ``build(coarsen=K)`` that
only reached kernels created *after* the build (so a tuner re-building a
cached program silently kept the heuristic), and device-model knob writes
(``vectorize_kernels``/``workitem_serialization``) that left stale launch
plans in the plan cache.
"""

import numpy as np

from repro import minicl as cl
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32
from repro.simcpu.device import CPUDeviceModel


def _scale_kernel(name="knob_scale"):
    kb = KernelBuilder(name)
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    gid = kb.global_id(0)
    out[gid] = a[gid] * 2.0
    return kb.finish()


def _program():
    ctx = cl.Context(cl.cpu_platform().devices)
    return ctx, ctx.create_program(_scale_kernel())


class TestCoarsenPlumbing:
    def test_build_reaches_previously_created_kernels(self):
        _, prog = _program()
        k = prog.create_kernel("knob_scale")  # created before the build
        assert k.coarsen is None
        prog.build(jit=False, coarsen=4)
        assert k.coarsen == 4

    def test_rebuild_without_arg_preserves_tuner_k(self):
        _, prog = _program()
        prog.build(jit=False, coarsen=8)
        prog.build(jit=False)  # plain re-build must not reset K
        assert prog.create_kernel("knob_scale").coarsen == 8

    def test_explicit_none_resets_to_heuristic(self):
        _, prog = _program()
        prog.build(jit=False, coarsen=8)
        prog.build(jit=False, coarsen=None)
        assert prog.create_kernel("knob_scale").coarsen is None

    def test_per_kernel_override_beats_program_default(self):
        _, prog = _program()
        prog.build(jit=False, coarsen=4)
        k = prog.create_kernel("knob_scale")
        k.coarsen = 2
        assert k.coarsen == 2
        # other kernel objects keep following the program
        assert prog.create_kernel("knob_scale").coarsen == 4

    def test_coarsen_changes_functional_result_shape(self):
        # end to end: a forced factor must still compute the right answer
        ctx = cl.Context(cl.cpu_platform().devices)
        prog = ctx.create_program(_scale_kernel("knob_e2e")).build(coarsen=2)
        k = prog.create_kernel("knob_e2e")
        n = 64
        a = np.arange(n, dtype=np.float32)
        buf_a = ctx.create_buffer(
            cl.mem_flags.READ_ONLY | cl.mem_flags.COPY_HOST_PTR, hostbuf=a
        )
        buf_o = ctx.create_buffer(
            cl.mem_flags.WRITE_ONLY | cl.mem_flags.COPY_HOST_PTR,
            hostbuf=np.zeros(n, np.float32),
        )
        k.set_args(buf_a, buf_o)
        q = ctx.create_command_queue()
        q.enqueue_nd_range_kernel(k, (n,), None)
        out = np.empty_like(a)
        q.enqueue_read_buffer(buf_o, out)
        q.finish()
        np.testing.assert_allclose(out, a * 2.0)


class TestDeviceKnobInvalidation:
    def _cost(self, model, kernel):
        return model.kernel_cost(
            kernel, (4096,), None, scalars={}, buffer_bytes={}
        ).total_ns

    def test_vectorize_toggle_invalidates_plans(self):
        model = CPUDeviceModel()
        calls = []
        orig = model.invalidate_plans
        model.invalidate_plans = lambda: (calls.append(1), orig())[1]
        model.vectorize_kernels = False
        assert calls, "knob write must invalidate cached launch plans"

    def test_same_value_write_is_a_no_op(self):
        model = CPUDeviceModel()
        calls = []
        orig = model.invalidate_plans
        model.invalidate_plans = lambda: (calls.append(1), orig())[1]
        model.vectorize_kernels = model.vectorize_kernels
        model.workitem_serialization = model.workitem_serialization
        assert not calls

    def test_stale_plans_never_served_after_toggle(self):
        kernel = _scale_kernel("knob_cost")
        model = CPUDeviceModel()
        vec_on = self._cost(model, kernel)
        # warm the plan cache, then flip the knob through the property
        assert self._cost(model, kernel) == vec_on
        model.vectorize_kernels = False
        vec_off = self._cost(model, kernel)
        assert vec_off != vec_on
        model.vectorize_kernels = True
        assert self._cost(model, kernel) == vec_on

    def test_workitem_serialization_toggle_changes_cost(self):
        kernel = _scale_kernel("knob_serial")
        model = CPUDeviceModel()
        base = self._cost(model, kernel)
        model.workitem_serialization = not model.workitem_serialization
        assert self._cost(model, kernel) != base
