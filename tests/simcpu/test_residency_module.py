"""Tests for the shared residency cost engine (simcpu.residency)."""

import numpy as np
import pytest

from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32
from repro.simcpu.cachemodel import MemoryCostModel
from repro.simcpu.residency import (
    contiguous_load_sites,
    residency_adjusted_mem,
    touch_contiguous,
)
from repro.simcpu.spec import XEON_E5645
from repro.simcpu.threads import CoreResidencyTracker


def two_load_kernel():
    kb = KernelBuilder("k")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[g] + b[g]
    return kb.finish()


@pytest.fixture
def setup():
    n = 262_144  # 1MB buffers: past L2, so the baseline streams from L3
    kernel = two_load_kernel()
    analysis = analyze_kernel(kernel, LaunchContext((n,), (64,)))
    mem_model = MemoryCostModel(XEON_E5645)
    buffer_bytes = {"a": 4 * n, "b": 4 * n, "o": 4 * n}
    base = mem_model.estimate(analysis, buffer_bytes)
    tracker = CoreResidencyTracker(XEON_E5645)
    ids = {"a": "ida", "b": "idb", "o": "ido"}
    return n, analysis, mem_model, base, tracker, buffer_bytes, ids


class TestSites:
    def test_only_contiguous_global_loads(self, setup):
        _, analysis, *_ = setup
        sites = contiguous_load_sites(analysis)
        assert {s.buffer for s in sites} == {"a", "b"}
        assert all(not s.is_store for s in sites)


class TestAdjustment:
    def test_cold_tracker_returns_baseline(self, setup):
        n, analysis, mm, base, tracker, bb, ids = setup
        adj = residency_adjusted_mem(
            mm, tracker, analysis, base, 0, (0, n), ids, bb
        )
        assert adj.amat_cycles == base.amat_cycles
        assert adj.l3_bytes == base.l3_bytes

    def test_private_residency_removes_traffic(self, setup):
        n, analysis, mm, base, tracker, bb, ids = setup
        tracker.touch(0, "ida", 0, 4 * n)
        tracker.touch(0, "idb", 0, 4 * n)
        adj = residency_adjusted_mem(
            mm, tracker, analysis, base, 0, (0, n), ids, bb
        )
        assert adj.l3_bytes < base.l3_bytes
        assert adj.amat_cycles <= base.amat_cycles

    def test_foreign_core_residency_costs_l3(self, setup):
        n, analysis, mm, base, tracker, bb, ids = setup
        tracker.touch(0, "ida", 0, 4 * n)
        home = residency_adjusted_mem(
            mm, tracker, analysis, base, 0, (0, n), ids, bb
        )
        away = residency_adjusted_mem(
            mm, tracker, analysis, base, 1, (0, n), ids, bb
        )
        assert away.amat_cycles > home.amat_cycles
        assert away.l3_bytes > home.l3_bytes

    def test_partial_range(self, setup):
        n, analysis, mm, base, tracker, bb, ids = setup
        tracker.touch(0, "ida", 0, 2 * n)  # only the first half resident
        full = residency_adjusted_mem(
            mm, tracker, analysis, base, 0, (0, n), ids, bb
        )
        first_half = residency_adjusted_mem(
            mm, tracker, analysis, base, 0, (0, n // 2), ids, bb
        )
        assert first_half.l3_bytes <= full.l3_bytes


class TestTouch:
    def test_touch_registers_all_contiguous_buffers(self, setup):
        n, analysis, mm, base, tracker, bb, ids = setup
        # a slice small enough for all three buffers to stay resident
        sl = 8192
        touch_contiguous(tracker, analysis, 3, (0, sl), ids)
        for bid in ("ida", "idb", "ido"):
            p, _ = tracker.residency_fraction(3, bid, 0, 4 * sl)
            assert p == 1.0

    def test_empty_range_is_noop(self, setup):
        n, analysis, mm, base, tracker, bb, ids = setup
        touch_contiguous(tracker, analysis, 0, (5, 5), ids)
        assert tracker.is_empty
