"""Reproduction of *OpenCL Performance Evaluation on Modern Multi Core CPUs*
(Lee, Patel, Nigania, Kim, Kim — IPPS 2013).

Subpackages
-----------
``repro.kernelir``
    SIMT kernel IR, lock-step numpy interpreter, static analyses, vectorizers.
``repro.simcpu``
    Out-of-order multicore CPU model (Xeon E5645-like): caches, cores,
    threads, workgroup scheduler, transfer model.
``repro.simgpu``
    GPU model (GTX 580-like): SMs, warps, occupancy, PCIe.
``repro.minicl``
    OpenCL-1.1-style runtime (platforms, contexts, queues, buffers, kernels,
    events) running on the simulated devices in deterministic virtual time.
``repro.openmp``
    Conventional parallel-programming baseline: fork-join ``parallel_for``
    with affinity and a classic loop auto-vectorizer.
``repro.suite``
    Every benchmark from the paper's Tables II and III plus the ILP and
    vectorization micro-benchmarks.
``repro.harness``
    The paper's timing methodology and one experiment module per
    table/figure.
"""

__version__ = "1.0.0"

from . import kernelir  # noqa: F401

__all__ = ["kernelir", "metrics", "__version__"]


def __getattr__(name):
    # lazy: metrics pulls in both device models
    if name == "metrics":
        from . import metrics

        return metrics
    raise AttributeError(name)
