"""The simple applications of the paper's Table II."""

from .square import SquareBenchmark, build_square_kernel
from .vectoradd import VectorAddBenchmark, build_vectoradd_kernel
from .matrixmul import (
    MatrixMulBenchmark,
    MatrixMulNaiveBenchmark,
    build_matrixmul_kernel,
    build_matrixmul_naive_kernel,
)
from .reduction import ReductionBenchmark, build_reduction_kernel
from .histogram import HistogramBenchmark, build_histogram_kernel
from .prefixsum import PrefixSumBenchmark, build_prefixsum_kernel
from .blackscholes import BlackScholesBenchmark, build_blackscholes_kernel
from .binomialoption import BinomialOptionBenchmark, build_binomialoption_kernel

__all__ = [
    "SquareBenchmark", "VectorAddBenchmark", "MatrixMulBenchmark",
    "MatrixMulNaiveBenchmark", "ReductionBenchmark", "HistogramBenchmark",
    "PrefixSumBenchmark", "BlackScholesBenchmark", "BinomialOptionBenchmark",
    "build_square_kernel", "build_vectoradd_kernel", "build_matrixmul_kernel",
    "build_matrixmul_naive_kernel", "build_reduction_kernel",
    "build_histogram_kernel", "build_prefixsum_kernel",
    "build_blackscholes_kernel", "build_binomialoption_kernel",
]
