"""repro.tune — auto-tuner / design-space explorer over virtual time.

``python -m repro tune`` searches the execution-configuration knob space
(workgroup size, thread-coarsening factor, workgroup placement, transfer
API) for configurations beating the paper defaults, with every measured
point persisted in a content-addressed sweep store and a per-kernel
cycle-accounting report steering the search.  See docs/TUNING.md.
"""

from .driver import (
    SCHEMA,
    reset_tune_stats,
    tune,
    tune_stats,
    tuned_comparison,
)
from .report import (
    EXPLAIN_SCHEMA,
    cycle_accounting,
    explain_doc,
    render_comparison,
    render_explain,
)
from .space import (
    KnobPoint,
    KnobSpace,
    default_point,
    default_space,
    suite_benchmarks,
)
from .store import TuneStore, model_version, point_key
from .strategies import STRATEGIES

__all__ = [
    "EXPLAIN_SCHEMA",
    "KnobPoint",
    "KnobSpace",
    "SCHEMA",
    "STRATEGIES",
    "TuneStore",
    "cycle_accounting",
    "default_point",
    "default_space",
    "explain_doc",
    "model_version",
    "point_key",
    "render_comparison",
    "render_explain",
    "reset_tune_stats",
    "suite_benchmarks",
    "tune",
    "tune_stats",
    "tuned_comparison",
]
