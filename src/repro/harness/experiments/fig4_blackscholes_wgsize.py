"""Figure 4 — Blackscholes with different workgroup size, CPU vs GPU.

The paper's outlier case: on the CPU the workgroup size barely matters
(per-workitem work dwarfs scheduling overhead), while on the GPU small
workgroups starve the SMs of warps.
"""

from __future__ import annotations

from typing import Dict

from ...suite import BlackScholesBenchmark
from ..report import ExperimentResult, Series
from ..runner import cpu_dut, gpu_dut, make_buffers, measure_kernel

__all__ = ["run", "CASES"]

CASES = {
    "base": (16, 16),
    "case_1": (1, 1),
    "case_2": (1, 2),
    "case_3": (2, 2),
    "case_4": (2, 4),
}


def run(fast: bool = False) -> ExperimentResult:
    sizes = [(128, 128)] if fast else [(1280, 1280), (2560, 2560)]
    duts = ((cpu_dut(), "CPU"), (gpu_dut(), "GPU"))
    series: Dict[str, Dict[str, float]] = {
        f"{lbl}({tag})": {} for lbl in CASES for _, tag in duts
    }
    bench = BlackScholesBenchmark()
    for i, gs in enumerate(sizes, start=1):
        x = f"blackscholes_{i}"
        for dut, tag in duts:
            buffers, scalars, _ = make_buffers(dut, bench, gs)
            base = None
            for lbl, ls in CASES.items():
                m = measure_kernel(
                    dut, bench, gs, ls, buffers=buffers, scalars=scalars
                )
                thr = m.throughput(float(gs[0] * gs[1]))
                if lbl == "base":
                    base = thr
                series[f"{lbl}({tag})"][x] = thr / base
    return ExperimentResult(
        experiment_id="fig4",
        title="Blackscholes with different workgroup size on CPUs and GPUs",
        series=[Series(k, v) for k, v in series.items()],
        notes=[
            "expected: CPU flat (long per-workitem workload), GPU strongly "
            "workgroup-size dependent (warp starvation)"
        ],
    )
