#!/usr/bin/env python
"""Option pricing application: Black-Scholes on the CPU device.

Demonstrates three of the paper's findings on a realistic workload:

1. map vs copy transfer APIs (Section III-D / Figure 7) — the application
   throughput of Equation (1) improves when buffers are mapped;
2. workgroup-size insensitivity on CPU (Figure 4) — per-option work is
   large, so scheduling overhead is negligible;
3. OpenCL vs OpenMP (Section III-F) — the same pricing loop through the
   conventional runtime.

Run:  python examples/blackscholes_pricing.py
"""

import numpy as np

from repro import minicl as cl
from repro.harness.runner import cpu_dut, measure_app_throughput, measure_kernel
from repro.openmp import OpenMPRuntime
from repro.suite import BlackScholesBenchmark


def section(title):
    print(f"\n== {title} ==")


def price_portfolio(n_side=256):
    """Functionally price a portfolio and sanity-check a known option."""
    bench = BlackScholesBenchmark()
    gs = (n_side, n_side)
    dut = cpu_dut(functional=True)
    ctx = dut.context
    rng = np.random.default_rng(7)
    host, scalars = bench.make_data(gs, rng)
    # pin one option we can check: S=100, X=95, T=1y
    host["price"][0], host["strike"][0], host["years"][0] = 100.0, 95.0, 1.0

    mf = cl.mem_flags
    bufs = {
        name: ctx.create_buffer(mf.READ_WRITE | mf.COPY_HOST_PTR, hostbuf=arr)
        for name, arr in host.items()
    }
    q = ctx.create_command_queue()
    k = ctx.create_program(bench.kernel()).build().create_kernel("blackScholes")
    k.set_args(*[
        bufs[p.name] if p.name in bufs else scalars[p.name]
        for p in k.kernel.params
    ])
    ev = q.enqueue_nd_range_kernel(k, gs, (16, 16))
    call0 = bufs["call"].array[0]
    put0 = bufs["put"].array[0]
    print(f"  priced {n_side * n_side} options in {ev.duration_ns / 1e6:.2f} "
          f"virtual ms")
    print(f"  S=100 X=95 T=1y r=2% vol~30%:  call={call0:.2f}  put={put0:.2f}")
    parity = call0 - put0 - (100.0 - 95.0 * np.exp(-0.02))
    print(f"  put-call parity residual: {parity:+.4f}")


def transfer_api_comparison():
    bench = BlackScholesBenchmark()
    gs = (512, 512)
    dut = cpu_dut()
    t_copy = measure_app_throughput(dut, bench, gs, (16, 16), transfer_api="copy")
    t_map = measure_app_throughput(dut, bench, gs, (16, 16), transfer_api="map")
    print(f"  app throughput (copy APIs): {t_copy:.4f} options/ns")
    print(f"  app throughput (map APIs) : {t_map:.4f} options/ns")
    print(f"  mapping wins by {t_map / t_copy:.2f}x (paper Figure 7)")


def workgroup_sweep():
    bench = BlackScholesBenchmark()
    gs = (512, 512)
    dut = cpu_dut()
    print("  local size -> normalized throughput (CPU: expect ~flat)")
    base = None
    for ls in ((16, 16), (1, 1), (2, 2), (4, 4), (8, 8)):
        m = measure_kernel(dut, bench, gs, ls)
        thr = m.throughput(gs[0] * gs[1])
        base = base or thr
        print(f"    {str(ls):10s} {thr / base:6.3f}")


def openmp_comparison():
    bench = BlackScholesBenchmark()
    n = 512 * 512
    rt = OpenMPRuntime(functional=False, env={"OMP_NUM_THREADS": "12"})
    host, scalars = bench.make_data((512, 512), np.random.default_rng(1))
    # OpenMP port: the 2-D NDRange flattens to one parallel loop
    kernel = bench.kernel()
    dut = cpu_dut()
    m = measure_kernel(dut, bench, (512, 512), (16, 16))
    r = rt.parallel_for(kernel, n, buffers=host, scalars=scalars)
    print(f"  OpenCL kernel time: {m.mean_ns / 1e6:8.2f} virtual ms")
    print(f"  OpenMP loop time  : {r.time_ns / 1e6:8.2f} virtual ms")
    print(f"  OpenMP vectorizer : {r.vectorization.explain()}")


def main():
    section("pricing a portfolio (functional)")
    price_portfolio()
    section("transfer APIs: map vs copy")
    transfer_api_comparison()
    section("workgroup-size sweep")
    workgroup_sweep()
    section("OpenCL vs OpenMP")
    openmp_comparison()


if __name__ == "__main__":
    main()
