"""Set-associative cache simulator and multi-level hierarchy.

This is the *exact* (per-access) model.  It is used where cache state across
kernels matters — the affinity experiment of Figure 9 tracks which core's
private caches hold which data — and by the locality unit/property tests.
Large-kernel timing uses the closed-form model in
:mod:`repro.simcpu.cachemodel` instead, because simulating 10M workitems'
accesses one by one is neither necessary nor feasible in Python.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

__all__ = ["Cache", "CacheStats", "CacheHierarchy", "AccessResult"]


@dataclasses.dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0  # dirty lines pushed down on eviction

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative, write-allocate, LRU cache.

    Addresses are byte addresses; the cache tracks line tags only (no data —
    data lives in the numpy buffers of the runtime).
    """

    def __init__(self, size_bytes: int, line_bytes: int, assoc: int, latency: int,
                 name: str = "cache"):
        if size_bytes % (line_bytes * assoc) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by line*assoc "
                f"({line_bytes}*{assoc})"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.latency = latency
        self.name = name
        self.num_sets = size_bytes // (line_bytes * assoc)
        # each set: OrderedDict tag -> dirty flag (LRU order: oldest first)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def probe(self, addr: int) -> bool:
        """Check residency without changing state or stats."""
        s, tag = self._locate(addr)
        return tag in self._sets[s]

    def _evict_one(self, st: OrderedDict) -> None:
        _, dirty = st.popitem(last=False)
        self.stats.evictions += 1
        if dirty:
            self.stats.writebacks += 1

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access one address; returns True on hit.  Misses allocate
        (write-allocate); writes mark the line dirty (write-back)."""
        s, tag = self._locate(addr)
        st = self._sets[s]
        self.stats.accesses += 1
        if tag in st:
            st.move_to_end(tag)
            if is_write:
                st[tag] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(st) >= self.assoc:
            self._evict_one(st)
        st[tag] = is_write
        return False

    def fill(self, addr: int, dirty: bool = False) -> None:
        """Install a line without counting an access (upper-level fill)."""
        s, tag = self._locate(addr)
        st = self._sets[s]
        if tag in st:
            st.move_to_end(tag)
            if dirty:
                st[tag] = True
            return
        if len(st) >= self.assoc:
            self._evict_one(st)
        st[tag] = dirty

    def invalidate_all(self) -> None:
        for st in self._sets:
            st.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(st) for st in self._sets)


@dataclasses.dataclass
class AccessResult:
    """Outcome of a hierarchy access: which level hit, and total latency."""

    level: str          # "L1" / "L2" / "L3" / "DRAM"
    latency: int        # cycles


class CacheHierarchy:
    """Private L1+L2 per core, shared L3 per socket, then DRAM.

    This mirrors the Westmere topology the paper ran on.  ``cores`` indexes
    *physical* cores; SMT siblings share one L1/L2 (the runtime maps logical
    cores onto physical ones before calling in).
    """

    def __init__(
        self,
        num_cores: int,
        *,
        l1_bytes: int = 64 * 1024,
        l2_bytes: int = 256 * 1024,
        l3_bytes: int = 12 * 1024 * 1024,
        line_bytes: int = 64,
        l1_assoc: int = 8,
        l2_assoc: int = 8,
        l3_assoc: int = 16,
        l1_latency: int = 4,
        l2_latency: int = 10,
        l3_latency: int = 40,
        dram_latency: int = 200,
        cores_per_socket: Optional[int] = None,
    ):
        self.num_cores = num_cores
        self.line_bytes = line_bytes
        self.dram_latency = dram_latency
        self.cores_per_socket = cores_per_socket or num_cores
        self.l1: List[Cache] = [
            Cache(l1_bytes, line_bytes, l1_assoc, l1_latency, f"L1[{c}]")
            for c in range(num_cores)
        ]
        self.l2: List[Cache] = [
            Cache(l2_bytes, line_bytes, l2_assoc, l2_latency, f"L2[{c}]")
            for c in range(num_cores)
        ]
        n_sockets = (num_cores + self.cores_per_socket - 1) // self.cores_per_socket
        self.l3: List[Cache] = [
            Cache(l3_bytes, line_bytes, l3_assoc, l3_latency, f"L3[{s}]")
            for s in range(n_sockets)
        ]
        self.dram_accesses = 0

    def _socket(self, core: int) -> int:
        return core // self.cores_per_socket

    def access(self, core: int, addr: int, is_write: bool = False) -> AccessResult:
        """One load/store by ``core`` at byte address ``addr``.

        Writes mark the L1 line dirty (write-back, write-allocate); dirty
        evictions surface in per-level ``stats.writebacks``.
        """
        if not (0 <= core < self.num_cores):
            raise IndexError(f"core {core} out of range")
        l1, l2 = self.l1[core], self.l2[core]
        l3 = self.l3[self._socket(core)]
        if l1.access(addr, is_write):
            return AccessResult("L1", l1.latency)
        if l2.access(addr):
            l1.fill(addr, dirty=is_write)
            return AccessResult("L2", l1.latency + l2.latency)
        if l3.access(addr):
            l2.fill(addr)
            l1.fill(addr, dirty=is_write)
            return AccessResult("L3", l1.latency + l2.latency + l3.latency)
        self.dram_accesses += 1
        l2.fill(addr)
        l1.fill(addr, dirty=is_write)
        return AccessResult(
            "DRAM", l1.latency + l2.latency + l3.latency + self.dram_latency
        )

    def access_range(self, core: int, start: int, nbytes: int) -> Dict[str, int]:
        """Stream a contiguous byte range; returns per-level line counts."""
        out = {"L1": 0, "L2": 0, "L3": 0, "DRAM": 0}
        first = start // self.line_bytes
        last = (start + max(nbytes, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            r = self.access(core, line * self.line_bytes)
            out[r.level] += 1
        return out

    def total_stats(self) -> Dict[str, CacheStats]:
        def merge(caches):
            s = CacheStats()
            for c in caches:
                s.accesses += c.stats.accesses
                s.hits += c.stats.hits
                s.misses += c.stats.misses
                s.evictions += c.stats.evictions
                s.writebacks += c.stats.writebacks
            return s

        return {"L1": merge(self.l1), "L2": merge(self.l2), "L3": merge(self.l3)}
