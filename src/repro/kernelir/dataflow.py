"""Unified dataflow framework over kernel IR: one abstract-interpretation
core shared by every static consumer in the runtime.

Historically the repo re-derived kernel memory facts four times:
:mod:`repro.kernelir.verify` had a private affine+interval engine,
:mod:`repro.kernelir.vectorize` re-scanned for divergence and strides,
:mod:`repro.kernelir.compile` re-checked fusion/chunk legality, and the
command scheduler asked the verifier again for chunk safety.  This module
is now the single home of those analyses:

* **Lattices** — :class:`Interval` (value ranges), :class:`StrideCongruence`
  (``x = rem (mod m)``, the coalescing/bounds domain), :class:`Divergence`
  (uniform vs per-workitem), and reaching-definition states
  (``def``/``maybe``/``undef``) with their ``join``/``widen`` operators.
* **The affine engine** — :class:`Aff`/:class:`Val`/:class:`Guards` and the
  fixpoint statement walk (:class:`_Analyzer`), moved verbatim from the
  verifier: every index is an affine form over workitem symbols
  ``("l", d)`` / ``("grp", d)`` plus an interval, guards refine symbol
  ranges, loops are unrolled when small and otherwise walked twice with an
  iteration symbol (a bounded widening).
* **Launch-shape facts** — :func:`analyze_launch` returns a cached
  :class:`KernelDataflow` holding the recorded accesses, barrier positions,
  race findings, dead-store/uninitialized-read findings, legacy
  vectorizer facts, and chunk-safety proofs.  Results are cached in
  ``LaunchPlanCache("kernelir.analysis")`` keyed on
  ``Kernel.fingerprint()`` + NDRange + analysis-relevant scalars.
* **Context-free facts** — :func:`kernel_reaching_defs` (cached on the
  fingerprint alone) powers the uninitialized-private-variable rule and
  the JIT's loop-invariant hoisting ban list.

Consumers: ``verify.py`` formats :class:`Finding` records as diagnostics,
``vectorize.py`` reads :attr:`KernelDataflow.control_divergent` and
:attr:`KernelDataflow.static_global_accesses`, ``compile.py`` consults
:func:`chunk_safety` and :meth:`ReachingDefs.variant_names`, and
``minicl.schedule`` counts chunk-eligible launches from the same proofs.
Everything stays *conservative in the reporting direction*: a finding is
only emitted when the analysis can argue the defect.
"""

from __future__ import annotations

import dataclasses
import math
import re
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from . import ast as ir
from ..plancache import LaunchPlanCache

__all__ = [
    "Access",
    "Aff",
    "AffineIndex",
    "ChunkSafety",
    "Divergence",
    "Finding",
    "Guards",
    "Interval",
    "KernelDataflow",
    "ReachingDefs",
    "StrideCongruence",
    "Val",
    "aff_bounds",
    "affine_index",
    "analysis_stats",
    "analyze_launch",
    "chunk_safety",
    "collect_global_accesses",
    "has_divergent_control_flow",
    "imul_bounds",
    "kernel_reaching_defs",
    "location_sort_key",
    "reset_analysis_stats",
    "site",
    "uniform_value",
]

_INF = math.inf

#: full unroll is attempted while (trips * enclosing unroll factor) stays
#: under this cap; beyond it a loop becomes symbolic (body walked twice)
_MAX_UNROLL_TOTAL = 256


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

_STATS: Dict[str, int] = {
    "kernels_analyzed": 0,
    "analysis_requests": 0,
    "analysis_disk_hits": 0,
    "reachdef_kernels": 0,
    "interval_iterations": 0,
    "divergence_iterations": 0,
    "stride_queries": 0,
    "reachdef_iterations": 0,
}

#: kernel fingerprints that went through a chunk-safety proof / passed it
_CHUNK_CHECKED: set = set()
_CHUNK_ELIGIBLE: set = set()


def analysis_stats() -> dict:
    """Counters for the shared analysis core, plus the analysis-cache hit
    rate and the chunk-eligible kernel fraction (distinct fingerprints).

    ``cache_hit_rate`` is the fraction of :func:`analyze_launch` requests
    that **skipped the fixpoint** — served from the in-memory LRU or the
    disk ``analysis`` partition; ``memory_hit_rate`` keeps the historical
    per-family LRU rate for comparison.
    """
    from .. import plancache

    out = dict(_STATS)
    req = _STATS["analysis_requests"]
    skipped = max(0, req - _STATS["kernels_analyzed"])
    out["cache_hit_rate"] = round(skipped / req, 4) if req else 0.0
    fam = plancache.cache_stats().get("kernelir.analysis")
    out["memory_hit_rate"] = fam["hit_rate"] if fam else 0.0
    out["chunk_checked"] = len(_CHUNK_CHECKED)
    out["chunk_eligible"] = len(_CHUNK_ELIGIBLE)
    out["chunk_eligible_fraction"] = (
        round(len(_CHUNK_ELIGIBLE) / len(_CHUNK_CHECKED), 4)
        if _CHUNK_CHECKED else 0.0
    )
    return out


def reset_analysis_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0
    _CHUNK_CHECKED.clear()
    _CHUNK_ELIGIBLE.clear()


# ---------------------------------------------------------------------------
# Lattices
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Interval:
    """Closed interval ``[lo, hi]`` over the extended reals.

    ``join`` is the convex hull, ``meet`` the intersection, ``widen`` the
    classic jump-to-infinity operator used to force termination of loop
    fixpoints (the statement walk applies a *bounded* variant: loop bounds
    clamp the widened direction before it escapes to infinity).
    """

    lo: float = -_INF
    hi: float = _INF

    @property
    def empty(self) -> bool:
        return self.lo > self.hi

    def join(self, o: "Interval") -> "Interval":
        if self.empty:
            return o
        if o.empty:
            return self
        return Interval(min(self.lo, o.lo), max(self.hi, o.hi))

    def meet(self, o: "Interval") -> "Interval":
        return Interval(max(self.lo, o.lo), min(self.hi, o.hi))

    def widen(self, o: "Interval") -> "Interval":
        """Standard widening: any bound that grew jumps to infinity."""
        if self.empty:
            return o
        if o.empty:
            return self
        return Interval(
            self.lo if o.lo >= self.lo else -_INF,
            self.hi if o.hi <= self.hi else _INF,
        )

    def __contains__(self, v: float) -> bool:
        return self.lo <= v <= self.hi

    @property
    def is_top(self) -> bool:
        return math.isinf(self.lo) and self.lo < 0 and math.isinf(self.hi)


Interval.TOP = Interval(-_INF, _INF)
Interval.BOTTOM = Interval(_INF, -_INF)


@dataclasses.dataclass(frozen=True)
class StrideCongruence:
    """Congruence ``x = rem (mod mod)`` over the integers.

    ``mod == 0`` denotes the single constant ``rem``; ``mod == 1`` is top
    (any integer).  ``join`` is the standard gcd rule; it is the domain
    behind coalescing facts ("adjacent workitems touch addresses 4 apart")
    and modular bounds reasoning.
    """

    mod: int
    rem: int

    @classmethod
    def make(cls, mod: int, rem: int) -> "StrideCongruence":
        mod = abs(int(mod))
        rem = int(rem) % mod if mod else int(rem)
        return cls(mod, rem)

    @classmethod
    def const(cls, v: int) -> "StrideCongruence":
        return cls.make(0, v)

    @classmethod
    def from_aff(cls, aff) -> "StrideCongruence":
        """Congruence of an affine form's value set: the coefficients'
        gcd is the modulus, the constant term the residue.  Non-integer
        coefficients fall to top."""
        _STATS["stride_queries"] += 1
        if not float(aff.const).is_integer():
            return cls.TOP
        g = 0
        for c in aff.coeffs.values():
            if not float(c).is_integer():
                return cls.TOP
            g = math.gcd(g, abs(int(c)))
        return cls.make(g, int(aff.const))

    @property
    def is_const(self) -> bool:
        return self.mod == 0

    @property
    def is_top(self) -> bool:
        return self.mod == 1

    def join(self, o: "StrideCongruence") -> "StrideCongruence":
        m = math.gcd(math.gcd(self.mod, o.mod), abs(self.rem - o.rem))
        if m == 0:  # equal constants
            return self
        return StrideCongruence.make(m, self.rem)

    def contains(self, v: int) -> bool:
        if self.mod == 0:
            return int(v) == self.rem
        return int(v) % self.mod == self.rem


StrideCongruence.TOP = StrideCongruence(1, 0)


@dataclasses.dataclass(frozen=True)
class Divergence:
    """Two-point lattice: UNIFORM (same value for every workitem of a
    workgroup) below VARYING."""

    varying: bool

    def join(self, o: "Divergence") -> "Divergence":
        return Divergence.VARYING if (self.varying or o.varying) else Divergence.UNIFORM


Divergence.UNIFORM = Divergence(False)
Divergence.VARYING = Divergence(True)

#: reaching-definition states for one variable, ordered by the join
#: ``def ⊔ undef = maybe`` (``maybe`` is top)
_RD_JOIN = {
    ("def", "def"): "def",
    ("undef", "undef"): "undef",
}


def _rd_join(a: str, b: str) -> str:
    return _RD_JOIN.get((a, b), "maybe")


# ---------------------------------------------------------------------------
# Affine index forms over id/loop symbols (the timing/vectorizer domain)
# ---------------------------------------------------------------------------

#: symbolic key types: ("g", d) / ("l", d) / ("grp", d) ids, ("loop", name)
Key = Tuple[str, object]


@dataclasses.dataclass
class AffineIndex:
    """``const + sum(coeff[k] * k)`` over id/loop symbols.

    Coefficients are concrete numbers (scalar kernel args and NDRange sizes
    have been substituted from the launch context).
    """

    const: float = 0.0
    coeffs: Dict[Key, float] = dataclasses.field(default_factory=dict)

    def coeff(self, key: Key) -> float:
        return self.coeffs.get(key, 0.0)

    @property
    def is_uniform(self) -> bool:
        """Same value for every workitem (may still vary per loop iteration)."""
        return all(k[0] == "loop" or c == 0 for k, c in self.coeffs.items())

    @property
    def vector_stride(self) -> float:
        """Index stride between *adjacent workitems in dimension 0*.

        Adjacent workitems inside one workgroup differ by +1 in both
        ``get_global_id(0)`` and ``get_local_id(0)``, so the packet stride a
        vectorizer sees is the sum of those coefficients.
        """
        return self.coeff(("g", 0)) + self.coeff(("l", 0))

    def loop_stride(self, var: str) -> float:
        return self.coeff(("loop", var))

    def _combine(self, other: "AffineIndex", sign: float) -> "AffineIndex":
        out = AffineIndex(self.const + sign * other.const, dict(self.coeffs))
        for k, c in other.coeffs.items():
            out.coeffs[k] = out.coeffs.get(k, 0.0) + sign * c
        out.coeffs = {k: c for k, c in out.coeffs.items() if c != 0}
        return out

    def __add__(self, o):
        return self._combine(o, 1.0)

    def __sub__(self, o):
        return self._combine(o, -1.0)

    def scale(self, k: float) -> "AffineIndex":
        return AffineIndex(self.const * k, {key: c * k for key, c in self.coeffs.items()})


def affine_index(
    e: ir.Expr,
    ctx,
    env: Optional[Dict[str, Optional[AffineIndex]]] = None,
) -> Optional[AffineIndex]:
    """Resolve ``e`` to an affine form over id/loop symbols, or None.

    ``env`` maps variable names to their affine forms (or None for opaque
    values such as loaded data).  ``ctx`` is a
    :class:`repro.kernelir.analysis.LaunchContext`.
    """
    env = env or {}
    if isinstance(e, ir.Const):
        if isinstance(e.value, bool) or not isinstance(e.value, (int, float)):
            return None
        return AffineIndex(float(e.value))
    if isinstance(e, ir.GlobalId):
        return AffineIndex(0.0, {("g", e.dim): 1.0})
    if isinstance(e, ir.LocalId):
        return AffineIndex(0.0, {("l", e.dim): 1.0})
    if isinstance(e, ir.GroupId):
        return AffineIndex(0.0, {("grp", e.dim): 1.0})
    if isinstance(e, ir.GlobalSize):
        return AffineIndex(float(ctx.global_size[e.dim] if e.dim < len(ctx.global_size) else 1))
    if isinstance(e, ir.LocalSize):
        return AffineIndex(float(ctx.local_size[e.dim] if e.dim < len(ctx.local_size) else 1))
    if isinstance(e, ir.NumGroups):
        return AffineIndex(float(ctx.num_groups[e.dim] if e.dim < len(ctx.num_groups) else 1))
    if isinstance(e, ir.Var):
        if e.name in env:
            return env[e.name]
        if e.name in ctx.scalars:
            v = ctx.scalars[e.name]
            try:
                return AffineIndex(float(v))
            except (TypeError, ValueError):
                return None
        return None
    if isinstance(e, ir.Cast):
        return affine_index(e.operand, ctx, env)
    if isinstance(e, ir.BinOp):
        a = affine_index(e.lhs, ctx, env)
        b = affine_index(e.rhs, ctx, env)
        if a is None or b is None:
            return None
        if e.op == "+":
            return a + b
        if e.op == "-":
            return a - b
        if e.op == "*":
            if not a.coeffs:
                return b.scale(a.const)
            if not b.coeffs:
                return a.scale(b.const)
            return None
        if e.op in ("/", "//"):
            # Division stays affine only when dividing a pure constant, or
            # when a constant divisor divides all coefficients exactly.
            if not b.coeffs and b.const != 0:
                d = b.const
                if not a.coeffs and float(a.const / d).is_integer():
                    return AffineIndex(a.const / d)
                if all(float(c / d).is_integer() for c in a.coeffs.values()) and float(
                    a.const / d
                ).is_integer():
                    return a.scale(1.0 / d)
            return None
        if e.op == "%":
            # gid % C is non-affine in general; uniform % uniform is fine.
            if not a.coeffs and not b.coeffs and b.const != 0:
                return AffineIndex(float(math.fmod(a.const, b.const)))
            return None
        if e.op == "<<" and not b.coeffs:
            return a.scale(float(2 ** int(b.const)))
        return None
    if isinstance(e, ir.UnOp) and e.op == "neg":
        a = affine_index(e.operand, ctx, env)
        return a.scale(-1.0) if a is not None else None
    return None


def uniform_value(e: ir.Expr, ctx, env) -> Optional[float]:
    """Concrete value of ``e`` when it is launch-uniform, else None."""
    a = affine_index(e, ctx, env)
    if a is None:
        return None
    if a.coeffs:
        return None
    return a.const


# ---------------------------------------------------------------------------
# Value domain of the statement walk: affine form + interval (+ divergence)
# ---------------------------------------------------------------------------

#: symbols: ("l", dim) / ("grp", dim) workitem ids, ("loop", token) iteration
Sym = Tuple[str, object]


class Aff:
    """``const + sum(coeff[s] * s)`` with concrete float coefficients."""

    __slots__ = ("const", "coeffs")

    def __init__(self, const: float = 0.0, coeffs: Optional[Dict[Sym, float]] = None):
        self.const = float(const)
        self.coeffs: Dict[Sym, float] = dict(coeffs or {})

    def _combine(self, other: "Aff", sign: float) -> "Aff":
        out = dict(self.coeffs)
        for s, c in other.coeffs.items():
            out[s] = out.get(s, 0.0) + sign * c
        return Aff(
            self.const + sign * other.const,
            {s: c for s, c in out.items() if c != 0.0},
        )

    def __add__(self, o: "Aff") -> "Aff":
        return self._combine(o, 1.0)

    def __sub__(self, o: "Aff") -> "Aff":
        return self._combine(o, -1.0)

    def scale(self, k: float) -> "Aff":
        if k == 0:
            return Aff(0.0)
        return Aff(self.const * k, {s: c * k for s, c in self.coeffs.items()})

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def congruence(self) -> StrideCongruence:
        """Stride/congruence abstraction of this form's value set."""
        return StrideCongruence.from_aff(self)


class Val:
    """An expression's abstract value: optional affine form + interval.

    The interval is held as raw ``lo``/``hi`` floats (this is the hot path
    of the verifier); :attr:`iv` and :attr:`divergence` expose the lattice
    views for consumers that want them.
    """

    __slots__ = ("aff", "lo", "hi", "wi")

    def __init__(self, aff: Optional[Aff] = None, lo: float = -_INF,
                 hi: float = _INF, wi: bool = False):
        self.aff = aff
        self.lo = lo
        self.hi = hi
        #: varies across workitems of one workgroup
        self.wi = wi

    @property
    def iv(self) -> Interval:
        return Interval(self.lo, self.hi)

    @property
    def divergence(self) -> Divergence:
        return Divergence.VARYING if self.wi else Divergence.UNIFORM


class Guards:
    """Active constraints: per-symbol ranges + linear (aff, lo, hi) bounds."""

    __slots__ = ("ranges", "lin")

    def __init__(self, ranges: Dict[Sym, Tuple[float, float]],
                 lin: Tuple[Tuple[Aff, float, float], ...] = ()):
        self.ranges = ranges
        self.lin = lin


def aff_bounds(aff: Aff, guards: Guards) -> Tuple[float, float, bool]:
    """Interval of ``aff`` under ``guards``; third item is False when some
    linear constraint could not be applied (bounds then over-approximate an
    already-guarded value)."""
    lo = hi = aff.const
    for s, c in aff.coeffs.items():
        slo, shi = guards.ranges.get(s, (-_INF, _INF))
        if c >= 0:
            lo += c * slo
            hi += c * shi
        else:
            lo += c * shi
            hi += c * slo
    applied_all = True
    for ga, glo, ghi in guards.lin:
        d = aff - ga
        if d.is_const:
            lo = max(lo, glo + d.const)
            hi = min(hi, ghi + d.const)
        else:
            applied_all = False
    return lo, hi, applied_all


def imul_bounds(alo, ahi, blo, bhi) -> Tuple[float, float]:
    cands = []
    for x in (alo, ahi):
        for y in (blo, bhi):
            if (x == 0 and math.isinf(y)) or (y == 0 and math.isinf(x)):
                cands.append(0.0)
            else:
                cands.append(x * y)
    return min(cands), max(cands)


@dataclasses.dataclass
class Access:
    """One recorded memory access with its evaluation context."""

    name: str
    kind: str  # "load" | "store" | "atomic"
    local: bool
    val: Val
    guards: Guards
    pos: int  # linearization position (barriers share the counter)
    loc: str


_ITER_MARK = re.compile(r"[=~][-\d]+")


def site(loc: str) -> str:
    """Location with unroll-iteration markers removed (for deduplication)."""
    return _ITER_MARK.sub("", loc)


_NAT_SPLIT = re.compile(r"(\d+)")


def location_sort_key(loc: str) -> Tuple:
    """Natural-order sort key for AST locations: numeric path components
    compare as integers, so ``body[2]`` sorts before ``body[10]``."""
    return tuple(
        (0, int(t)) if t.isdigit() else (1, t)
        for t in _NAT_SPLIT.split(loc)
        if t
    )


_NEG_OP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
_MIRROR_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Finding:
    """One structured analysis finding (kernel-name-free; the verifier
    attaches the kernel when formatting diagnostics)."""

    severity: str  # "error" | "warning" | "note"
    rule: str  # e.g. "R-RACE-GLOBAL"
    location: str  # AST path with unroll markers removed
    message: str
    hint: str = ""


class _Emitter:
    """Deduplicating sink for findings (same key semantics the verifier
    used: explicit key per rule, else (rule, severity, site, message))."""

    def __init__(self):
        self.findings: List[Finding] = []
        self._keys: set = set()

    def emit(self, severity: str, rule: str, loc: str, message: str,
             hint: str = "", key: object = None) -> None:
        k = (rule, key) if key is not None else (rule, severity, site(loc), message)
        if k in self._keys:
            return
        self._keys.add(k)
        self.findings.append(Finding(severity, rule, site(loc), message, hint))


# ---------------------------------------------------------------------------
# The statement walk (fixpoint abstract interpretation)
# ---------------------------------------------------------------------------


class _Analyzer:
    """Walks a kernel body once for a concrete launch shape, recording
    every memory access with its abstract index value and emitting the
    walk-time findings (divergent barriers, division by zero, shift
    range).  Rule methods over the recorded accesses live here too; the
    :class:`KernelDataflow` wrapper decides which to run and caches the
    results."""

    def __init__(self, kernel: ir.Kernel, ctx):
        self.kernel = kernel
        self.ctx = ctx
        self.em = _Emitter()
        self.accesses: List[Access] = []
        self.barriers: List[int] = []
        self.pos = 0
        self.used: set = set()
        self.wi_loops: set = set()
        self._loop_id = 0
        self._unroll_scale = 1

        self.base_ranges: Dict[Sym, Tuple[float, float]] = {}
        for d, g in enumerate(ctx.global_size):
            l = ctx.local_size[d] if d < len(ctx.local_size) else 1
            l = max(1, int(l))
            ngr = max(1, int(g) // l)
            self.base_ranges[("l", d)] = (0.0, float(l - 1))
            self.base_ranges[("grp", d)] = (0.0, float(ngr - 1))
        self.scalar_names = {p.name for p in kernel.scalar_params}
        self.local_sizes = {a.name: a.size for a in kernel.local_arrays}

    # -- value helpers ------------------------------------------------------
    def _wi_of_aff(self, aff: Aff) -> bool:
        for s, c in aff.coeffs.items():
            if c == 0:
                continue
            if s[0] == "l":
                lo, hi = self.base_ranges.get(s, (0.0, 0.0))
                if hi > lo:
                    return True
            elif s[0] == "loop" and s in self.wi_loops:
                return True
        return False

    def _val_from_aff(self, aff: Aff, guards: Guards) -> Val:
        lo, hi, _ = aff_bounds(aff, guards)
        return Val(aff, lo, hi, self._wi_of_aff(aff))

    @staticmethod
    def _union(a: Optional[Val], b: Optional[Val], extra_wi: bool) -> Val:
        if a is None and b is None:
            return Val(wi=extra_wi)
        if a is None or b is None:
            v = a if a is not None else b
            return Val(v.aff, v.lo, v.hi, v.wi or extra_wi)
        aff = None
        if (a.aff is not None and b.aff is not None
                and a.aff.const == b.aff.const and a.aff.coeffs == b.aff.coeffs):
            aff = a.aff
        j = a.iv.join(b.iv)
        return Val(aff, j.lo, j.hi, a.wi or b.wi or extra_wi)

    # -- expression evaluation ---------------------------------------------
    def _eval(self, e: ir.Expr, env: Dict[str, Val], guards: Guards,
              loc: str, record: bool = True) -> Val:
        # dispatch ordered by dynamic frequency: big kernels are mostly
        # BinOp/Const/Var leaves, the id/size queries are rare
        if isinstance(e, ir.BinOp):
            return self._eval_binop(e, env, guards, loc, record)
        if isinstance(e, ir.Const):
            if isinstance(e.value, bool):
                return Val(None, 0.0, 1.0)
            if isinstance(e.value, (int, float)):
                v = float(e.value)
                return Val(Aff(v), v, v)
            return Val()
        if isinstance(e, ir.Var):
            if e.name in self.scalar_names:
                self.used.add(e.name)
            if e.name in env:
                return env[e.name]
            if e.name in self.ctx.scalars:
                try:
                    v = float(self.ctx.scalars[e.name])
                except (TypeError, ValueError):
                    return Val()
                return Val(Aff(v), v, v)
            return Val()
        if isinstance(e, ir.GlobalId):
            d = e.dim
            if d >= len(self.ctx.global_size):
                return Val(Aff(0.0), 0.0, 0.0)
            l = self.ctx.local_size[d] if d < len(self.ctx.local_size) else 1
            aff = Aff(0.0, {("grp", d): float(max(1, l)), ("l", d): 1.0})
            return self._val_from_aff(aff, guards)
        if isinstance(e, ir.LocalId):
            if e.dim >= len(self.ctx.global_size):
                return Val(Aff(0.0), 0.0, 0.0)
            return self._val_from_aff(Aff(0.0, {("l", e.dim): 1.0}), guards)
        if isinstance(e, ir.GroupId):
            if e.dim >= len(self.ctx.global_size):
                return Val(Aff(0.0), 0.0, 0.0)
            return self._val_from_aff(Aff(0.0, {("grp", e.dim): 1.0}), guards)
        if isinstance(e, ir.GlobalSize):
            v = float(self.ctx.global_size[e.dim]) if e.dim < len(self.ctx.global_size) else 1.0
            return Val(Aff(v), v, v)
        if isinstance(e, ir.LocalSize):
            v = float(self.ctx.local_size[e.dim]) if e.dim < len(self.ctx.local_size) else 1.0
            return Val(Aff(v), v, v)
        if isinstance(e, ir.NumGroups):
            ng = self.ctx.num_groups
            v = float(ng[e.dim]) if e.dim < len(ng) else 1.0
            return Val(Aff(v), v, v)
        if isinstance(e, ir.Cast):
            v = self._eval(e.operand, env, guards, loc, record)
            if not e.dtype.is_float:
                lo = math.floor(v.lo) if math.isfinite(v.lo) else v.lo
                hi = math.ceil(v.hi) if math.isfinite(v.hi) else v.hi
                return Val(v.aff, lo, hi, v.wi)
            return v
        if isinstance(e, ir.UnOp):
            v = self._eval(e.operand, env, guards, loc, record)
            if e.op == "neg":
                return Val(v.aff.scale(-1.0) if v.aff is not None else None,
                           -v.hi, -v.lo, v.wi)
            return Val(None, 0.0, 1.0, v.wi)
        if isinstance(e, ir.Call):
            wi = False
            for a in e.args:
                wi = self._eval(a, env, guards, loc, record).wi or wi
            return Val(None, -_INF, _INF, wi)
        if isinstance(e, ir.Select):
            c = self._eval(e.cond, env, guards, loc, record)
            a = self._eval(e.if_true, env, guards, loc, record)
            b = self._eval(e.if_false, env, guards, loc, record)
            u = self._union(a, b, c.wi)
            return u
        if isinstance(e, ir.Load):
            idx = self._eval(e.index, env, guards, loc, record)
            if record:
                self.used.add(e.buffer)
                self._record(e.buffer, "load", False, idx, guards, loc)
            return Val(None, -_INF, _INF, idx.wi)
        if isinstance(e, ir.LoadLocal):
            idx = self._eval(e.index, env, guards, loc, record)
            if record:
                self._record(e.array, "load", True, idx, guards, loc)
            return Val(None, -_INF, _INF, idx.wi)
        return Val()

    def _eval_binop(self, e: ir.BinOp, env, guards, loc, record) -> Val:
        a = self._eval(e.lhs, env, guards, loc, record)
        b = self._eval(e.rhs, env, guards, loc, record)
        op = e.op
        wi = a.wi or b.wi
        if record:
            if op in ("/", "//", "%"):
                self._check_div_zero(e, b, loc)
            elif op in ("<<", ">>"):
                self._check_shift_range(e, b, loc)
        if op in ir.CMP_OPS or op in ("and", "or"):
            return Val(None, 0.0, 1.0, wi)
        if op == "+":
            aff = a.aff + b.aff if (a.aff is not None and b.aff is not None) else None
            if aff is not None:
                return self._val_from_aff(aff, guards)
            return Val(None, a.lo + b.lo, a.hi + b.hi, wi)
        if op == "-":
            aff = a.aff - b.aff if (a.aff is not None and b.aff is not None) else None
            if aff is not None:
                return self._val_from_aff(aff, guards)
            return Val(None, a.lo - b.hi, a.hi - b.lo, wi)
        if op == "*":
            if a.aff is not None and b.aff is not None:
                if a.aff.is_const:
                    return self._val_from_aff(b.aff.scale(a.aff.const), guards)
                if b.aff.is_const:
                    return self._val_from_aff(a.aff.scale(b.aff.const), guards)
            lo, hi = imul_bounds(a.lo, a.hi, b.lo, b.hi)
            return Val(None, lo, hi, wi)
        if op in ("/", "//"):
            if b.aff is not None and b.aff.is_const and b.aff.const != 0:
                k = b.aff.const
                if a.aff is not None:
                    scaled = a.aff.scale(1.0 / k)
                    if (float(scaled.const).is_integer()
                            and all(float(c).is_integer() for c in scaled.coeffs.values())):
                        return self._val_from_aff(scaled, guards)
                if e.dtype.is_float:
                    lo, hi = imul_bounds(a.lo, a.hi, 1.0 / k, 1.0 / k)
                    return Val(None, lo, hi, wi)
                if k > 0:
                    lo = math.floor(a.lo / k) if math.isfinite(a.lo) else a.lo
                    hi = math.floor(a.hi / k) if math.isfinite(a.hi) else a.hi
                    return Val(None, lo, hi, wi)
            return Val(None, -_INF, _INF, wi)
        if op == "%":
            if b.aff is not None and b.aff.is_const and b.aff.const > 0:
                k = b.aff.const
                hi = k - 1 if not e.dtype.is_float else k
                return Val(None, 0.0, hi, wi)
            return Val(None, -_INF, _INF, wi)
        if op == "min":
            aff = None
            if (a.aff is not None and b.aff is not None
                    and a.aff.const == b.aff.const and a.aff.coeffs == b.aff.coeffs):
                aff = a.aff
            return Val(aff, min(a.lo, b.lo), min(a.hi, b.hi), wi)
        if op == "max":
            aff = None
            if (a.aff is not None and b.aff is not None
                    and a.aff.const == b.aff.const and a.aff.coeffs == b.aff.coeffs):
                aff = a.aff
            return Val(aff, max(a.lo, b.lo), max(a.hi, b.hi), wi)
        if op == "&":
            for x, y in ((a, b), (b, a)):
                if y.aff is not None and y.aff.is_const and y.aff.const >= 0:
                    return Val(None, 0.0, y.aff.const, wi)
            return Val(None, -_INF, _INF, wi)
        if op in ("|", "^"):
            if a.lo >= 0 and b.lo >= 0:
                return Val(None, 0.0, _INF, wi)
            return Val(None, -_INF, _INF, wi)
        if op == "<<":
            if b.aff is not None and b.aff.is_const and b.aff.const >= 0:
                f = float(2 ** int(b.aff.const))
                if a.aff is not None:
                    return self._val_from_aff(a.aff.scale(f), guards)
                return Val(None, a.lo * f, a.hi * f, wi)
            return Val(None, -_INF, _INF, wi)
        if op == ">>":
            if b.aff is not None and b.aff.is_const and b.aff.const >= 0:
                f = float(2 ** int(b.aff.const))
                if a.aff is not None:
                    scaled = a.aff.scale(1.0 / f)
                    if (float(scaled.const).is_integer()
                            and all(float(c).is_integer() for c in scaled.coeffs.values())):
                        return self._val_from_aff(scaled, guards)
                lo = math.floor(a.lo / f) if math.isfinite(a.lo) else a.lo
                hi = math.floor(a.hi / f) if math.isfinite(a.hi) else a.hi
                return Val(None, lo, hi, wi)
            return Val(None, -_INF, _INF, wi)
        return Val(None, -_INF, _INF, wi)

    # -- dataflow-only value checks (R-DIV-ZERO / R-SHIFT-RANGE) ------------
    def _check_div_zero(self, e: ir.BinOp, b: Val, loc: str) -> None:
        opname = "modulo" if e.op == "%" else "division"
        certain = ((b.aff is not None and b.aff.is_const and b.aff.const == 0.0)
                   or (b.lo == 0.0 and b.hi == 0.0))
        if certain:
            self.em.emit(
                "error" if not e.dtype.is_float else "warning",
                "R-DIV-ZERO", loc,
                f"{opname} by zero: the divisor is always 0 at this launch",
                hint="guard the division or fix the divisor expression",
                key=("divzero", e.op, site(loc)),
            )
        elif (not e.dtype.is_float and b.lo <= 0.0 <= b.hi
              and (math.isfinite(b.lo) or math.isfinite(b.hi))):
            # only with actual interval evidence — a fully opaque divisor
            # stays silent (conservative in the reporting direction)
            lo = int(b.lo) if math.isfinite(b.lo) else b.lo
            hi = int(b.hi) if math.isfinite(b.hi) else b.hi
            self.em.emit(
                "warning", "R-DIV-ZERO", loc,
                f"integer {opname} divisor may be zero "
                f"(its range [{lo}, {hi}] contains 0)",
                hint="exclude 0 from the divisor's range (e.g. start the "
                     "loop at 1, or guard with an if)",
                key=("divzero", e.op, site(loc)),
            )

    def _check_shift_range(self, e: ir.BinOp, b: Val, loc: str) -> None:
        if e.dtype.is_float:
            return
        width = e.dtype.itemsize * 8
        if b.hi < 0 or b.lo >= width:
            self.em.emit(
                "warning", "R-SHIFT-RANGE", loc,
                f"shift amount is always outside [0, {width}) for this "
                f"{width}-bit operand (undefined behaviour in OpenCL C)",
                hint="mask the shift amount or widen the operand type",
                key=("shift", site(loc)),
            )
        elif ((b.lo < 0 and math.isfinite(b.lo))
              or (b.hi >= width and math.isfinite(b.hi))):
            self.em.emit(
                "note", "R-SHIFT-RANGE", loc,
                f"shift amount range [{b.lo:g}, {b.hi:g}] can leave [0, "
                f"{width}) for this {width}-bit operand",
                hint="mask the shift amount or tighten its bounds",
                key=("shift", site(loc)),
            )

    # -- guard refinement ---------------------------------------------------
    def _refine(self, guards: Guards, cond: ir.Expr, polarity: bool,
                env: Dict[str, Val]) -> Guards:
        ranges = dict(guards.ranges)
        lin = list(guards.lin)
        self._apply_cond(cond, polarity, env, guards, ranges, lin)
        return Guards(ranges, tuple(lin))

    def _apply_cond(self, cond, pol, env, guards, ranges, lin) -> None:
        if isinstance(cond, ir.UnOp) and cond.op == "not":
            self._apply_cond(cond.operand, not pol, env, guards, ranges, lin)
            return
        if isinstance(cond, ir.BinOp) and cond.op in ("and", "or"):
            # a conjunction (taken "and", or refuted "or") refines both sides
            if (cond.op == "and") == pol:
                self._apply_cond(cond.lhs, pol, env, guards, ranges, lin)
                self._apply_cond(cond.rhs, pol, env, guards, ranges, lin)
            return
        if not (isinstance(cond, ir.BinOp) and cond.op in ir.CMP_OPS):
            return
        op = cond.op if pol else _NEG_OP[cond.op]
        if op == "!=":
            return
        a = self._eval(cond.lhs, env, guards, "", record=False)
        b = self._eval(cond.rhs, env, guards, "", record=False)
        if a.aff is not None and not a.aff.is_const:
            if b.aff is not None and b.aff.is_const:
                self._constrain(a.aff, op, b.aff.const, b.aff.const, ranges, lin)
            elif b.aff is not None:
                self._constrain(a.aff - b.aff, op, 0.0, 0.0, ranges, lin)
            else:
                # affine vs interval: use the interval's endpoints
                self._constrain(a.aff, op, b.lo, b.hi, ranges, lin)
        elif b.aff is not None and not b.aff.is_const:
            m = _MIRROR_OP[op]
            if a.aff is not None and a.aff.is_const:
                self._constrain(b.aff, m, a.aff.const, a.aff.const, ranges, lin)
            else:
                self._constrain(b.aff, m, a.lo, a.hi, ranges, lin)

    def _constrain(self, aff: Aff, op: str, klo: float, khi: float,
                   ranges, lin) -> None:
        """Record ``aff op [klo, khi]`` as a bound ``lo <= aff <= hi``."""
        if op == "<":
            lo, hi = -_INF, khi - 1
        elif op == "<=":
            lo, hi = -_INF, khi
        elif op == ">":
            lo, hi = klo + 1, _INF
        elif op == ">=":
            lo, hi = klo, _INF
        elif op == "==":
            if klo != khi:
                return
            lo, hi = klo, khi
        else:
            return
        if len(aff.coeffs) == 1:
            (sym, c), = aff.coeffs.items()
            if c != 0:
                slo, shi = ranges.get(sym, (-_INF, _INF))
                l2 = (lo - aff.const) / c
                h2 = (hi - aff.const) / c
                if c < 0:
                    l2, h2 = h2, l2
                if math.isfinite(l2):
                    slo = max(slo, math.ceil(l2 - 1e-9))
                if math.isfinite(h2):
                    shi = min(shi, math.floor(h2 + 1e-9))
                ranges[sym] = (slo, shi)
                return
        lin.append((Aff(aff.const, aff.coeffs), lo, hi))

    # -- statement walk -----------------------------------------------------
    def run(self) -> None:
        env: Dict[str, Val] = {}
        guards = Guards(dict(self.base_ranges), ())
        self._walk_body(self.kernel.body, env, guards, "body", None)

    def _record(self, name, kind, local, idxval, guards, loc) -> None:
        self.accesses.append(Access(name, kind, local, idxval, guards, self.pos, loc))
        self.pos += 1

    def _walk_body(self, body, env, guards, path, div) -> None:
        for i, s in enumerate(body):
            self._walk_stmt(s, env, guards, f"{path}[{i}]", div)

    def _walk_stmt(self, s, env, guards, loc, div) -> None:
        if isinstance(s, ir.Assign):
            env[s.name] = self._eval(s.value, env, guards, loc)
        elif isinstance(s, (ir.Store, ir.AtomicAdd)):
            idx = self._eval(s.index, env, guards, loc)
            self._eval(s.value, env, guards, loc)
            self.used.add(s.buffer)
            kind = "store" if isinstance(s, ir.Store) else "atomic"
            self._record(s.buffer, kind, False, idx, guards, loc)
        elif isinstance(s, (ir.StoreLocal, ir.AtomicAddLocal)):
            idx = self._eval(s.index, env, guards, loc)
            self._eval(s.value, env, guards, loc)
            kind = "store" if isinstance(s, ir.StoreLocal) else "atomic"
            self._record(s.array, kind, True, idx, guards, loc)
        elif isinstance(s, ir.Barrier):
            if div == "loop":
                self.em.emit(
                    "error", "R-BARRIER-DIV", loc,
                    "barrier inside a loop whose trip count varies across "
                    "workitems of one workgroup (OpenCL undefined behaviour: "
                    "some workitems would execute fewer barriers)",
                    hint="hoist the barrier out of the divergent loop, or "
                         "make the loop bounds uniform per workgroup",
                )
            elif div:
                self.em.emit(
                    "error", "R-BARRIER-DIV", loc,
                    "barrier under control flow whose condition varies across "
                    "workitems of one workgroup (OpenCL undefined behaviour: "
                    "some workitems would skip the barrier)",
                    hint="hoist the barrier out of the divergent if/for, or "
                         "make the condition uniform per workgroup",
                )
            self.barriers.append(self.pos)
            self.pos += 1
        elif isinstance(s, ir.If):
            cond = self._eval(s.cond, env, guards, loc)
            if cond.wi:
                _STATS["divergence_iterations"] += 1
            g_then = self._refine(guards, s.cond, True, env)
            env_then = dict(env)
            self._walk_body(s.then_body, env_then, g_then, loc + "/then",
                            div or ("if" if cond.wi else None))
            env_else = dict(env)
            if s.else_body:
                g_else = self._refine(guards, s.cond, False, env)
                self._walk_body(s.else_body, env_else, g_else, loc + "/else",
                                div or ("if" if cond.wi else None))
            for name in set(env_then) | set(env_else):
                a = env_then.get(name, env.get(name))
                b = env_else.get(name, env.get(name))
                env[name] = self._union(a, b, cond.wi)
        elif isinstance(s, ir.For):
            self._walk_for(s, env, guards, loc, div)

    def _walk_for(self, s: ir.For, env, guards, loc, div) -> None:
        start = self._eval(s.start, env, guards, loc)
        stop = self._eval(s.stop, env, guards, loc)
        step = self._eval(s.step, env, guards, loc)
        wi_bounds = start.wi or stop.wi or step.wi
        if wi_bounds:
            _STATS["divergence_iterations"] += 1
        trips: Optional[int] = None
        c0 = c1 = st = 0.0
        if (start.aff is not None and start.aff.is_const
                and stop.aff is not None and stop.aff.is_const
                and step.aff is not None and step.aff.is_const
                and step.aff.const != 0):
            c0, c1, st = start.aff.const, stop.aff.const, step.aff.const
            if st > 0:
                trips = max(0, math.ceil((c1 - c0) / st))
            else:
                trips = max(0, math.ceil((c0 - c1) / -st))
            trips = int(trips)
        if trips == 0:
            return
        if trips is None and self._certainly_zero_trip(start, stop, step):
            # the bounds provably cross: the body is unreachable, so no
            # accesses are recorded and no diagnostics can fire inside it
            return
        saved = env.get(s.var)

        if trips is not None and trips * self._unroll_scale <= _MAX_UNROLL_TOTAL:
            self._unroll_scale *= trips
            _STATS["interval_iterations"] += trips
            for t in range(trips):
                v = c0 + t * st
                env[s.var] = Val(Aff(v), v, v, False)
                self._walk_body(s.body, env, guards,
                                f"{loc}/for[{s.var}={int(v)}]", div or ("loop" if wi_bounds else None))
            self._unroll_scale //= trips
        else:
            self._loop_id += 1
            sym: Sym = ("loop", f"{s.var}#{self._loop_id}")
            ranges = dict(guards.ranges)
            ranges[sym] = (0.0, self._iter_bound(trips, start, stop, step))
            g2 = Guards(ranges, guards.lin)
            if wi_bounds:
                self.wi_loops.add(sym)
            if (start.aff is not None and step.aff is not None
                    and step.aff.is_const and step.aff.const != 0):
                aff = start.aff + Aff(0.0, {sym: step.aff.const})
                var_val = self._val_from_aff(aff, g2)
                if wi_bounds:
                    var_val.wi = True
            else:
                var_val = self._loop_var_interval(s, start, stop, step, wi_bounds)
            env[s.var] = var_val
            reps = 1 if trips == 1 else 2
            self._unroll_scale *= reps
            _STATS["interval_iterations"] += reps
            for r in range(reps):
                self._walk_body(s.body, env, g2, f"{loc}/for[{s.var}~{r}]",
                                div or ("loop" if wi_bounds else None))
            self._unroll_scale //= reps
        if saved is not None:
            env[s.var] = saved
        else:
            env.pop(s.var, None)

    @staticmethod
    def _certainly_zero_trip(start: Val, stop: Val, step: Val) -> bool:
        """True when the loop provably runs zero times even though its
        bounds are not all constant (negative-stride and symbolic-bound
        loops used to widen to top and emit diagnostics for unreachable
        bodies)."""
        step_pos = step.lo > 0
        step_neg = step.hi < 0
        if start.aff is not None and stop.aff is not None:
            d = stop.aff - start.aff
            if d.is_const:
                if step_pos and d.const <= 0:
                    return True
                if step_neg and d.const >= 0:
                    return True
        if step_pos and start.lo >= stop.hi:
            return True
        if step_neg and start.hi <= stop.lo:
            return True
        return False

    @staticmethod
    def _iter_bound(trips: Optional[int], start: Val, stop: Val, step: Val) -> float:
        """Upper bound for the iteration symbol of a symbolic loop."""
        if trips is not None:
            return float(trips - 1)
        if step.aff is not None and step.aff.is_const and step.aff.const != 0:
            st = step.aff.const
            if st > 0 and math.isfinite(stop.hi) and math.isfinite(start.lo):
                return max(0.0, math.ceil((stop.hi - start.lo) / st) - 1)
            if st < 0 and math.isfinite(start.hi) and math.isfinite(stop.lo):
                return max(0.0, math.ceil((start.hi - stop.lo) / -st) - 1)
        return _INF

    @staticmethod
    def _loop_var_interval(s: ir.For, start: Val, stop: Val, step: Val,
                           wi_bounds: bool) -> Val:
        """Interval of a symbolic loop variable whose bounds have no affine
        form: a bounded widening clamped by the travel direction, instead
        of the old widen-to-top for any negative or unknown-sign step."""
        try:
            is_float = s.start.dtype.is_float or s.stop.dtype.is_float
        except AttributeError:  # pragma: no cover - exprs always carry dtypes
            is_float = False
        eps = 0.0 if is_float else 1.0
        if step.lo >= 0:  # counting up (the pre-existing rule)
            lo = start.lo
            hi = max(start.hi, stop.hi - eps)
        elif step.hi < 0:  # certainly counting down: var stays in (stop, start]
            lo = stop.lo + eps
            hi = start.hi
        else:  # unknown step sign: hull of both directions
            lo = min(start.lo, stop.lo)
            hi = max(start.hi, stop.hi)
        return Val(None, lo, hi, wi_bounds or start.wi or stop.wi)

    # -- race machinery -----------------------------------------------------
    def _sym_size(self, sym: Sym, guards: Guards) -> float:
        lo, hi = guards.ranges.get(sym, (-_INF, _INF))
        if math.isinf(lo) or math.isinf(hi):
            return _INF
        return max(0.0, hi - lo + 1)

    def _self_race(self, aff: Aff, guards: Guards, wi_kinds: Tuple[str, ...],
                   fixed_kinds: Tuple[str, ...] = ()) -> bool:
        """True when two *different* workitems can produce the same index."""
        for sym in self.base_ranges:
            if sym[0] not in wi_kinds:
                continue
            if self._sym_size(sym, guards) <= 1:
                continue
            if aff.coeffs.get(sym, 0.0) == 0.0:
                return True  # several active items share every index value
        entries = []
        for sym, c in aff.coeffs.items():
            if c == 0 or sym[0] in fixed_kinds:
                continue
            n = self._sym_size(sym, guards)
            if n <= 1:
                continue
            entries.append((abs(c), n, sym[0] in wi_kinds))
        entries.sort(key=lambda t: t[0])
        span = 0.0
        for c, n, is_wi in entries:
            if is_wi and span >= c:
                return True  # smaller terms can bridge the gap between items
            span = _INF if math.isinf(n) else span + c * (n - 1)
        return False

    def _union_guards(self, g1: Guards, g2: Guards) -> Guards:
        ranges = {}
        for sym in set(g1.ranges) | set(g2.ranges):
            l1, h1 = g1.ranges.get(sym, (-_INF, _INF))
            l2, h2 = g2.ranges.get(sym, (-_INF, _INF))
            ranges[sym] = (min(l1, l2), max(h1, h2))
        return Guards(ranges, ())

    def _pair_conflict(self, a: Access, b: Access,
                       wi_kinds: Tuple[str, ...],
                       fixed_kinds: Tuple[str, ...] = ()) -> bool:
        """Can workitem i's access ``a`` alias workitem j's access ``b``, i != j?"""
        fa, fb = a.val.aff, b.val.aff
        if fa is not None and fb is not None:
            d = fa - fb
            if d.is_const and d.const == 0.0:
                # identical index functions: aliasing needs non-injectivity
                return self._self_race(fa, self._union_guards(a.guards, b.guards),
                                       wi_kinds, fixed_kinds)
            # gcd feasibility of  f(i) - g(j) = 0  over independent symbol
            # copies (symbols of fixed kinds are shared between i and j and
            # enter via their coefficient difference)
            coeffs: List[float] = []
            shared: Dict[Sym, float] = {}
            feasible_test = True
            for src, sign in ((fa, 1.0), (fb, -1.0)):
                for sym, c in src.coeffs.items():
                    if sym[0] in fixed_kinds:
                        shared[sym] = shared.get(sym, 0.0) + sign * c
                    else:
                        coeffs.append(c)
            coeffs += [c for c in shared.values() if c != 0.0]
            ints = []
            for c in coeffs:
                if not float(c).is_integer():
                    feasible_test = False
                    break
                ints.append(abs(int(c)))
            delta = fb.const - fa.const
            if feasible_test and float(delta).is_integer() and ints:
                g = 0
                for c in ints:
                    g = math.gcd(g, c)
                if g > 1 and int(delta) % g != 0:
                    return False
        # interval disjointness under each access's own guards
        if a.val.hi < b.val.lo or b.val.hi < a.val.lo:
            return False
        return True

    def _barrier_between(self, p1: int, p2: int) -> bool:
        i = bisect_right(self.barriers, p1)
        return i < len(self.barriers) and self.barriers[i] < p2

    # -- rules over the recorded accesses ------------------------------------
    def rule_flags(self, em: _Emitter, buffer_flags: Dict[str, str]) -> None:
        for acc in self.accesses:
            if acc.local:
                continue
            flags = buffer_flags.get(acc.name)
            if flags is None:
                continue
            if acc.kind in ("store", "atomic") and "w" not in flags:
                em.emit(
                    "error", "R-FLAGS", acc.loc,
                    f"kernel writes buffer {acc.name!r} created with "
                    f"mem_flags.READ_ONLY",
                    hint="allocate the buffer READ_WRITE/WRITE_ONLY, or drop "
                         "the store",
                    key=(acc.name, "w"),
                )
            if acc.kind == "load" and "r" not in flags:
                em.emit(
                    "error", "R-FLAGS", acc.loc,
                    f"kernel reads buffer {acc.name!r} created with "
                    f"mem_flags.WRITE_ONLY",
                    hint="allocate the buffer READ_WRITE/READ_ONLY, or drop "
                         "the load",
                    key=(acc.name, "r"),
                )

    def rule_oob(self, em: _Emitter, buffer_sizes: Dict[str, int]) -> None:
        for acc in self.accesses:
            size = (self.local_sizes.get(acc.name) if acc.local
                    else buffer_sizes.get(acc.name))
            if size is None:
                continue
            lo, hi = acc.val.lo, acc.val.hi
            what = f"local array {acc.name!r}" if acc.local else f"buffer {acc.name!r}"
            if acc.val.aff is not None:
                _, _, exact = aff_bounds(acc.val.aff, acc.guards)
                if (exact and math.isfinite(lo) and math.isfinite(hi)
                        and (lo < 0 or hi >= size)):
                    em.emit(
                        "error", "R-OOB", acc.loc,
                        f"index range [{int(lo)}, {int(hi)}] of {what} escapes "
                        f"[0, {size}) at this launch size",
                        hint="guard the access with the buffer length or fix "
                             "the index arithmetic",
                        key=(acc.name, site(acc.loc)),
                    )
            elif hi < 0 or lo >= size:
                em.emit(
                    "error", "R-OOB", acc.loc,
                    f"index interval [{lo:g}, {hi:g}] of {what} lies entirely "
                    f"outside [0, {size})",
                    hint="fix the index arithmetic",
                    key=(acc.name, site(acc.loc)),
                )

    def rule_global_races(self, em: _Emitter) -> None:
        by_buf: Dict[str, List[Access]] = {}
        for a in self.accesses:
            if not a.local:
                by_buf.setdefault(a.name, []).append(a)
        wi = ("l", "grp")
        for buf, accs in by_buf.items():
            stores = [a for a in accs if a.kind == "store"]
            atomics = [a for a in accs if a.kind == "atomic"]
            loads = [a for a in accs if a.kind == "load"]
            for s in stores:
                if s.val.aff is None:
                    em.emit(
                        "warning", "R-RACE-GLOBAL", s.loc,
                        f"cannot prove the scatter store to {buf!r} race-free "
                        f"(data-dependent index)",
                        hint="use atomic_add, or ensure indices are distinct "
                             "per workitem by construction",
                        key=(buf, "scatter", site(s.loc)),
                    )
                elif self._self_race(s.val.aff, s.guards, wi):
                    em.emit(
                        "error", "R-RACE-GLOBAL", s.loc,
                        f"two workitems may store the same element of {buf!r} "
                        f"(index {s.val.aff.const:g}"
                        f"{'' if s.val.aff.is_const else ' + ...'} is not "
                        f"injective across workitems)",
                        hint="make the store index include get_global_id with "
                             "a dominating stride, guard it to one workitem, "
                             "or use atomic_add",
                        key=(buf, "self", site(s.loc)),
                    )
            for i, s1 in enumerate(stores):
                for s2 in stores[i + 1:]:
                    if s1.val.aff is None or s2.val.aff is None:
                        continue
                    if self._pair_conflict(s1, s2, wi):
                        em.emit(
                            "error", "R-RACE-GLOBAL", s1.loc,
                            f"stores to {buf!r} at {site(s1.loc)} and "
                            f"{site(s2.loc)} may hit the same element from "
                            f"different workitems",
                            hint="separate the index ranges or restructure so "
                                 "one workitem owns each element",
                            key=(buf, site(s1.loc), site(s2.loc)),
                        )
            for s in stores:
                for t in atomics:
                    if self._pair_conflict(s, t, wi):
                        em.emit(
                            "error", "R-RACE-GLOBAL", s.loc,
                            f"plain store and atomic_add on {buf!r} may hit "
                            f"the same element from different workitems",
                            hint="make both accesses atomic",
                            key=(buf, "mix", site(s.loc), site(t.loc)),
                        )
            for s in stores:
                if s.val.aff is None:
                    continue
                for l in loads:
                    if self._pair_conflict(s, l, wi):
                        em.emit(
                            "error", "R-RACE-GLOBAL", s.loc,
                            f"workitems read and write overlapping elements "
                            f"of {buf!r} ({site(l.loc)} vs {site(s.loc)}) "
                            f"with no ordering between workitems",
                            hint="double-buffer the data or split the kernel "
                                 "into two launches",
                            key=(buf, "rw", site(s.loc), site(l.loc)),
                        )
            for t in atomics:
                for l in loads:
                    if self._pair_conflict(t, l, wi):
                        em.emit(
                            "warning", "R-RACE-GLOBAL", l.loc,
                            f"read of {buf!r} may observe a concurrent "
                            f"atomic_add from another workitem",
                            hint="read the result in a second launch",
                            key=(buf, "atomic-read", site(t.loc), site(l.loc)),
                        )

    def rule_local_races(self, em: _Emitter) -> None:
        by_arr: Dict[str, List[Access]] = {}
        for a in self.accesses:
            if a.local:
                by_arr.setdefault(a.name, []).append(a)
        wi = ("l",)
        fixed = ("grp",)
        for arr, accs in by_arr.items():
            for s in accs:
                if s.kind != "store":
                    continue
                if s.val.aff is None:
                    em.emit(
                        "warning", "R-RACE-LOCAL", s.loc,
                        f"cannot prove the scatter store to local {arr!r} "
                        f"race-free (data-dependent index)",
                        hint="use atomic_add on the local array",
                        key=(arr, "scatter", site(s.loc)),
                    )
                elif self._self_race(s.val.aff, s.guards, wi, fixed):
                    em.emit(
                        "error", "R-RACE-LOCAL", s.loc,
                        f"two workitems of one workgroup may store the same "
                        f"element of local {arr!r} in the same barrier epoch",
                        hint="index the local array by get_local_id, or use "
                             "atomic_add",
                        key=(arr, "self", site(s.loc)),
                    )
            for i, a in enumerate(accs):
                # accesses are recorded in program order (ascending .pos), so
                # the first barrier after ``a`` separates it from every later
                # access at once — stop the inner scan there instead of
                # testing each pair
                bi = bisect_right(self.barriers, a.pos)
                epoch_end = (self.barriers[bi] if bi < len(self.barriers)
                             else math.inf)
                for b in accs[i + 1:]:
                    if b.pos > epoch_end:
                        break
                    if a.kind == "load" and b.kind == "load":
                        continue
                    if a.kind == "atomic" and b.kind == "atomic":
                        continue
                    if self._pair_conflict(a, b, wi, fixed):
                        em.emit(
                            "error", "R-RACE-LOCAL", a.loc,
                            f"accesses to local {arr!r} at {site(a.loc)} and "
                            f"{site(b.loc)} may touch the same element from "
                            f"different workitems with no barrier between "
                            f"them",
                            hint="insert barrier() between the producing "
                                 "store and the consuming access",
                            key=(arr, site(a.loc), site(b.loc)),
                        )

    def rule_uninit_local(self, em: _Emitter) -> None:
        first_store: Dict[str, int] = {}
        for a in self.accesses:
            if a.local and a.kind in ("store", "atomic"):
                p = first_store.get(a.name)
                if p is None or a.pos < p:
                    first_store[a.name] = a.pos
        for a in self.accesses:
            if not a.local or a.kind != "load":
                continue
            p = first_store.get(a.name)
            if p is None or p >= a.pos:
                em.emit(
                    "warning", "R-UNINIT-LOCAL", a.loc,
                    f"local array {a.name!r} is read before any workitem "
                    f"stores to it (contents are undefined in OpenCL)",
                    hint="initialize the local array (and barrier) before "
                         "the first read",
                    key=(a.name,),
                )

    def rule_unused_params(self, em: _Emitter) -> None:
        for p in self.kernel.params:
            if p.name not in self.used:
                kind = "buffer" if isinstance(p, ir.BufferParam) else "scalar"
                em.emit(
                    "warning", "R-UNUSED-PARAM", "signature",
                    f"{kind} parameter {p.name!r} is never referenced by the "
                    f"kernel body",
                    hint="drop the parameter or use it",
                    key=(p.name,),
                )

    def rule_dead_stores(self, em: _Emitter) -> None:
        """A store to a __global buffer that is provably overwritten by a
        later store with the identical index function and guards, with no
        intervening read/atomic of the buffer and no barrier, is dead —
        the liveness application of the reaching-definitions lattice."""
        by_buf: Dict[str, List[Access]] = {}
        for a in self.accesses:
            if not a.local:
                by_buf.setdefault(a.name, []).append(a)
        for buf, accs in by_buf.items():
            # "~" marks a symbolic-loop rep: such a store may execute once,
            # so a same-site successor is not a guaranteed overwrite
            stores = [a for a in accs if a.kind == "store"
                      and a.val.aff is not None and "~" not in a.loc]
            other_pos = sorted(a.pos for a in accs if a.kind != "store")
            for i, s1 in enumerate(stores):
                c1 = site(s1.loc).rsplit("[", 1)[0]
                for s2 in stores[i + 1:]:
                    f1, f2 = s1.val.aff, s2.val.aff
                    if f1.const != f2.const or f1.coeffs != f2.coeffs:
                        continue
                    if site(s2.loc).rsplit("[", 1)[0] != c1:
                        # stores in sibling branches (then vs else) are
                        # mutually exclusive, not sequential
                        continue
                    if not self._same_guards(s1.guards, s2.guards):
                        continue
                    j = bisect_right(other_pos, s1.pos)
                    if j < len(other_pos) and other_pos[j] < s2.pos:
                        break  # a read/atomic consumes the stored value
                    if self._barrier_between(s1.pos, s2.pos):
                        break
                    em.emit(
                        "warning", "R-DEAD-STORE", s1.loc,
                        f"store to {buf!r} is overwritten by the store at "
                        f"{site(s2.loc)} before any read (dead store)",
                        hint="drop the earlier store, or read the value "
                             "between the two stores",
                        key=(buf, "dead", site(s1.loc), site(s2.loc)),
                    )
                    break

    @staticmethod
    def _same_guards(g1: Guards, g2: Guards) -> bool:
        if g1.ranges != g2.ranges:
            return False
        if len(g1.lin) != len(g2.lin):
            return False
        for (a1, l1, h1), (a2, l2, h2) in zip(g1.lin, g2.lin):
            if (l1, h1) != (l2, h2) or a1.const != a2.const or a1.coeffs != a2.coeffs:
                return False
        return True


# ---------------------------------------------------------------------------
# Launch-shape facts: the cached analysis bundle
# ---------------------------------------------------------------------------


class KernelDataflow:
    """All dataflow facts for one (kernel, launch shape) pair.

    Instances are cached in ``LaunchPlanCache("kernelir.analysis")`` and
    treated as immutable by consumers; expensive fact groups (races,
    liveness, the legacy vectorizer facts) are computed lazily on first
    request and then retained.
    """

    def __init__(self, kernel: ir.Kernel, ctx):
        self.kernel = kernel
        self.ctx = ctx
        self._an = _Analyzer(kernel, ctx)
        self._an.run()
        self._race: Optional[List[Finding]] = None
        self._post: Optional[List[Finding]] = None
        self._div: Optional[bool] = None
        self._static_acc = None
        self._strides = None

    # -- raw walk results ----------------------------------------------------
    @property
    def accesses(self) -> List[Access]:
        return self._an.accesses

    @property
    def barriers(self) -> List[int]:
        return self._an.barriers

    @property
    def used_params(self) -> set:
        return self._an.used

    # -- findings ------------------------------------------------------------
    def walk_findings(self) -> List[Finding]:
        """Findings emitted during the statement walk (R-BARRIER-DIV,
        R-DIV-ZERO, R-SHIFT-RANGE)."""
        return self._an.em.findings

    def race_findings(self) -> List[Finding]:
        """R-RACE-GLOBAL / R-RACE-LOCAL findings (computed once)."""
        if self._race is None:
            em = _Emitter()
            self._an.rule_global_races(em)
            self._an.rule_local_races(em)
            self._race = em.findings
        return self._race

    def liveness_findings(self) -> List[Finding]:
        """R-UNINIT-LOCAL / R-UNUSED-PARAM / R-DEAD-STORE /
        R-UNINIT-PRIVATE findings (computed once)."""
        if self._post is None:
            em = _Emitter()
            self._an.rule_uninit_local(em)
            self._an.rule_unused_params(em)
            self._an.rule_dead_stores(em)
            rd = kernel_reaching_defs(self.kernel)
            for name, state, path in rd.uninit_reads:
                if state == "undef" and name not in rd.assigned_anywhere:
                    em.emit(
                        "error", "R-UNINIT-PRIVATE", path,
                        f"private variable {name!r} is read but never "
                        f"assigned anywhere in the kernel",
                        hint="assign the variable before its first use",
                        key=("uninit", name, path),
                    )
                elif state == "undef":
                    em.emit(
                        "warning", "R-UNINIT-PRIVATE", path,
                        f"private variable {name!r} is read before its "
                        f"first assignment (value is undefined)",
                        hint="move the assignment above the first use",
                        key=("uninit", name, path),
                    )
                else:
                    em.emit(
                        "warning", "R-UNINIT-PRIVATE", path,
                        f"private variable {name!r} may be read before "
                        f"assignment (it is assigned on only some "
                        f"control-flow paths to this use)",
                        hint="assign a default value on every path (e.g. "
                             "before the if/for)",
                        key=("uninit", name, path),
                    )
            self._post = em.findings
        return self._post

    def findings(self, buffer_sizes: Optional[Dict[str, int]] = None,
                 buffer_flags: Optional[Dict[str, str]] = None) -> List[Finding]:
        """Every finding for this launch.  R-OOB and R-FLAGS depend on the
        caller's buffer sizes/flags and are evaluated per call (cheap scans
        over the recorded accesses); everything else comes from the cached
        groups."""
        out = list(self.walk_findings())
        em = _Emitter()
        self._an.rule_flags(em, dict(buffer_flags or {}))
        self._an.rule_oob(em, dict(buffer_sizes or {}))
        out += em.findings
        out += self.race_findings()
        out += self.liveness_findings()
        return out

    # -- vectorizer facts (legacy semantics, shared + cached) -----------------
    @property
    def control_divergent(self) -> bool:
        """True when any If condition or For bound varies across workitems
        *under the affine-index analysis* (the vectorizers' historical
        divergence test, preserved bit-for-bit)."""
        if self._div is None:
            self._div = has_divergent_control_flow(self.kernel, self.ctx)
        return self._div

    @property
    def static_global_accesses(self):
        """Flattened (is_store, buffer, AffineIndex) for every global
        access — the vectorizers' historical static scan."""
        if self._static_acc is None:
            self._static_acc = collect_global_accesses(
                self.kernel.body, self.ctx, {}
            )
        return self._static_acc

    def stride_facts(self) -> List[Tuple[str, str, str, StrideCongruence]]:
        """(buffer, kind, site, congruence) for each affine global access —
        the architecture-independent coalescing features."""
        if self._strides is None:
            self._strides = [
                (a.name, a.kind, site(a.loc), a.val.aff.congruence())
                for a in self.accesses
                if not a.local and a.val.aff is not None
            ]
        return self._strides

    # -- persistence ----------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-ready replay form of every fact group (forces the lazy
        ones): what :class:`CachedDataflow` needs to answer every consumer
        without re-running the fixpoint."""
        accesses = []
        for a in self._an.accesses:
            if a.val.aff is not None:
                _, _, exact = aff_bounds(a.val.aff, a.guards)
                ax = 1 if exact else 0
            else:
                ax = None
            accesses.append([a.name, a.kind, 1 if a.local else 0,
                             site(a.loc), a.val.lo, a.val.hi, ax])
        static = []
        for is_store, buf, aff in self.static_global_accesses:
            form = None
            if aff is not None:
                form = [aff.const,
                        [[list(k), c] for k, c in
                         sorted(aff.coeffs.items(), key=repr)]]
            static.append([bool(is_store), buf, form])
        return {
            "walk": [list(dataclasses.astuple(f)) for f in self.walk_findings()],
            "race": [list(dataclasses.astuple(f)) for f in self.race_findings()],
            "liveness": [list(dataclasses.astuple(f))
                         for f in self.liveness_findings()],
            "accesses": accesses,
            "local_sizes": {k: int(v)
                            for k, v in self._an.local_sizes.items()},
            "control_divergent": bool(self.control_divergent),
            "static": static,
            "strides": [[n, kind, st, c.mod, c.rem]
                        for n, kind, st, c in self.stride_facts()],
            "barriers": [int(b) for b in self._an.barriers],
            "used_params": sorted(self._an.used),
        }


class CachedDataflow:
    """A :class:`KernelDataflow` replayed from a disk-cache payload.

    Serves every consumer surface — ``findings()`` (with the per-call
    R-FLAGS/R-OOB scans replayed from stored access rows, byte-identical
    messages and dedup keys), the vectorizer facts, stride facts — without
    constructing an :class:`_Analyzer`, so a warm process never runs the
    interval/divergence fixpoint at all.  Any malformed payload raises in
    ``__init__`` and the caller re-analyzes (the corruption contract).
    """

    def __init__(self, kernel: ir.Kernel, ctx, payload: dict):
        self.kernel = kernel
        self.ctx = ctx
        self._walk = [Finding(*r) for r in payload["walk"]]
        self._race = [Finding(*r) for r in payload["race"]]
        self._post = [Finding(*r) for r in payload["liveness"]]
        self._accesses = [
            (str(n), str(kind), bool(local), str(loc), float(lo), float(hi),
             None if ax is None else bool(ax))
            for n, kind, local, loc, lo, hi, ax in payload["accesses"]
        ]
        self.local_sizes = {str(k): int(v)
                            for k, v in payload["local_sizes"].items()}
        self._div = bool(payload["control_divergent"])
        self._static = [
            (bool(is_store), str(buf),
             None if form is None else AffineIndex(
                 float(form[0]),
                 {(k[0], k[1]): float(c) for k, c in form[1]},
             ))
            for is_store, buf, form in payload["static"]
        ]
        self._strides = [
            (str(n), str(kind), str(st), StrideCongruence(int(m), int(r)))
            for n, kind, st, m, r in payload["strides"]
        ]
        self.barriers = [int(b) for b in payload["barriers"]]
        self.used_params = set(payload["used_params"])

    def walk_findings(self) -> List[Finding]:
        return self._walk

    def race_findings(self) -> List[Finding]:
        return self._race

    def liveness_findings(self) -> List[Finding]:
        return self._post

    def findings(self, buffer_sizes: Optional[Dict[str, int]] = None,
                 buffer_flags: Optional[Dict[str, str]] = None) -> List[Finding]:
        out = list(self._walk)
        em = _Emitter()
        self._replay_flags(em, dict(buffer_flags or {}))
        self._replay_oob(em, dict(buffer_sizes or {}))
        out += em.findings
        out += self._race
        out += self._post
        return out

    def _replay_flags(self, em: _Emitter, buffer_flags: Dict[str, str]) -> None:
        for name, kind, local, loc, _lo, _hi, _ax in self._accesses:
            if local:
                continue
            flags = buffer_flags.get(name)
            if flags is None:
                continue
            if kind in ("store", "atomic") and "w" not in flags:
                em.emit(
                    "error", "R-FLAGS", loc,
                    f"kernel writes buffer {name!r} created with "
                    f"mem_flags.READ_ONLY",
                    hint="allocate the buffer READ_WRITE/WRITE_ONLY, or drop "
                         "the store",
                    key=(name, "w"),
                )
            if kind == "load" and "r" not in flags:
                em.emit(
                    "error", "R-FLAGS", loc,
                    f"kernel reads buffer {name!r} created with "
                    f"mem_flags.WRITE_ONLY",
                    hint="allocate the buffer READ_WRITE/READ_ONLY, or drop "
                         "the load",
                    key=(name, "r"),
                )

    def _replay_oob(self, em: _Emitter, buffer_sizes: Dict[str, int]) -> None:
        for name, kind, local, loc, lo, hi, ax in self._accesses:
            size = (self.local_sizes.get(name) if local
                    else buffer_sizes.get(name))
            if size is None:
                continue
            what = f"local array {name!r}" if local else f"buffer {name!r}"
            if ax is not None:
                if (ax and math.isfinite(lo) and math.isfinite(hi)
                        and (lo < 0 or hi >= size)):
                    em.emit(
                        "error", "R-OOB", loc,
                        f"index range [{int(lo)}, {int(hi)}] of {what} escapes "
                        f"[0, {size}) at this launch size",
                        hint="guard the access with the buffer length or fix "
                             "the index arithmetic",
                        key=(name, site(loc)),
                    )
            elif hi < 0 or lo >= size:
                em.emit(
                    "error", "R-OOB", loc,
                    f"index interval [{lo:g}, {hi:g}] of {what} lies entirely "
                    f"outside [0, {size})",
                    hint="fix the index arithmetic",
                    key=(name, site(loc)),
                )

    @property
    def control_divergent(self) -> bool:
        return self._div

    @property
    def static_global_accesses(self):
        return self._static

    def stride_facts(self) -> List[Tuple[str, str, str, StrideCongruence]]:
        return self._strides


def _scalar_key(v) -> object:
    try:
        return float(v)
    except (TypeError, ValueError):
        return repr(v)


_ANALYSIS_CACHE = LaunchPlanCache("kernelir.analysis", 4096)


def analyze_launch(kernel: ir.Kernel, ctx) -> KernelDataflow:
    """The shared entry point: dataflow facts for one launch shape.

    Three tiers, cheapest first: the in-memory LRU (same-object reuse
    within a process), the disk ``analysis`` partition (a replayed
    :class:`CachedDataflow` — warm processes skip the fixpoint entirely),
    then a fresh fixpoint whose verdict bundle is persisted for the next
    process.  The key restricts the scalar dict to names the kernel
    actually references (:func:`repro.kernelir.analysis.referenced_names`):
    the analysis resolves scalars by name only, so unreferenced scalars —
    which the harness passes around freely — cannot change any verdict.
    The NDRange stays in the key in full: even kernels that never read
    ``get_local_id`` decompose ``get_global_id`` over the workgroup shape,
    making interval precision local-size-dependent.
    """
    from .analysis import referenced_names

    refs = referenced_names(kernel)
    key = (
        kernel.fingerprint(),
        tuple(ctx.global_size),
        tuple(ctx.local_size),
        tuple(sorted((k, _scalar_key(v)) for k, v in ctx.scalars.items()
                     if k in refs)),
    )
    _STATS["analysis_requests"] += 1
    df = _ANALYSIS_CACHE.get(key)
    if df is not None:
        return df
    from .. import diskcache

    payload = diskcache.load_analysis(key)
    if payload is not None:
        try:
            df = CachedDataflow(kernel, ctx, payload)
            _STATS["analysis_disk_hits"] += 1
        except Exception:
            df = None  # corrupt entry: re-analyze (and overwrite) below
    if df is None:
        df = KernelDataflow(kernel, ctx)
        _STATS["kernels_analyzed"] += 1
        if diskcache.enabled():
            try:
                diskcache.store_analysis(key, df.to_payload())
            except Exception:
                pass  # persistence is an optimization, never a failure
    _ANALYSIS_CACHE.put(key, df)
    return df


# ---------------------------------------------------------------------------
# Chunk safety (multi-core chunked launches / fused plans)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ChunkSafety:
    """Whether a launch may be split across worker threads by global-size
    chunks, with the disqualifying reason when it may not."""

    eligible: bool
    reason: str = ""


_CHUNK_VERDICT_CACHE = LaunchPlanCache("kernelir.chunk_safety", 2048)


def chunk_safety(kernel: ir.Kernel, global_size, local_size,
                 scalars: Optional[Dict[str, object]] = None) -> ChunkSafety:
    """Prove (or refuse to prove) that chunking a launch across workers
    preserves semantics: no barriers/local memory/atomics, and no
    inter-workitem write hazard on any __global buffer.  The race facts
    come from the shared analysis cache, so the verifier, the JIT's fused
    plans and the scheduler all consult one proof.

    The verdict is additionally persisted through :mod:`repro.diskcache`
    (as a ``plans`` entry): the race proof is the dominant host-time cost
    of a warm suite run, and it is a pure function of the key below.
    """
    fp = kernel.fingerprint()
    if kernel.uses_barrier or kernel.local_arrays or kernel.uses_atomics:
        result = ChunkSafety(False, "kernel uses barriers/local memory/atomics")
    elif "R-RACE-GLOBAL" in frozenset(getattr(kernel, "suppressions", ()) or ()):
        # a suppressed race verdict must not silently become a parallel run
        result = ChunkSafety(False, "R-RACE-GLOBAL findings are suppressed")
    else:
        key = (
            "chunk", fp,
            tuple(int(g) for g in global_size),
            tuple(int(l) for l in local_size),
            tuple(sorted((k, _scalar_key(v))
                         for k, v in (scalars or {}).items())),
        )
        result = _CHUNK_VERDICT_CACHE.get(key)
        if result is None:
            from .. import diskcache

            payload = diskcache.load_plan(key)
            if payload is not None:
                result = ChunkSafety(bool(payload["parallel"]),
                                     str(payload.get("reason", "")))
            else:
                from .analysis import LaunchContext

                ctx = LaunchContext(
                    key[2], key[3],
                    scalars={k: v for k, v in (scalars or {}).items()},
                )
                races = [f for f in analyze_launch(kernel, ctx).race_findings()
                         if f.rule == "R-RACE-GLOBAL"]
                if races:
                    result = ChunkSafety(False, races[0].message)
                else:
                    result = ChunkSafety(True, "")
                diskcache.store_plan(
                    key, {"parallel": result.eligible, "reason": result.reason}
                )
            _CHUNK_VERDICT_CACHE.put(key, result)
    _CHUNK_CHECKED.add(fp)
    if result.eligible:
        _CHUNK_ELIGIBLE.add(fp)
    return result


# ---------------------------------------------------------------------------
# Reaching definitions (context-free, cached per kernel fingerprint)
# ---------------------------------------------------------------------------


class ReachingDefs:
    """Reaching-definition facts for one kernel (no launch context).

    * :attr:`uninit_reads` — ``(var, state, path)`` for every read of a
      private variable whose definition does not reach on all paths
      (``state`` is ``"maybe"`` or ``"undef"``);
    * :attr:`variant_by_path` — for every ``For`` statement (keyed by its
      structural path) the names whose definitions inside the loop body
      may reach its uses: exactly the set the JIT must not hoist;
    * :attr:`assigned_anywhere` — every name assigned by any statement.
    """

    def __init__(self, kernel: ir.Kernel):
        self.params = {p.name for p in kernel.params}
        self.uninit_reads: List[Tuple[str, str, str]] = []
        self.variant_by_path: Dict[str, frozenset] = {}
        self.assigned_anywhere: set = set()
        self.iterations = 0
        self._read_keys: set = set()
        self._maps: Dict[int, Dict[int, str]] = {}
        for st in ir.walk_stmts(kernel.body):
            if isinstance(st, ir.Assign):
                self.assigned_anywhere.add(st.name)
            elif isinstance(st, ir.For):
                self.assigned_anywhere.add(st.var)
        self._walk_body(kernel.body, {p: "def" for p in self.params}, "body")

    # -- the walk ------------------------------------------------------------
    def _read(self, e: ir.Expr, state: Dict[str, str], path: str) -> None:
        for x in ir.walk_exprs(e):
            if isinstance(x, ir.Var) and x.name not in self.params:
                st = state.get(x.name, "undef")
                if st != "def":
                    k = (x.name, path)
                    if k not in self._read_keys:
                        self._read_keys.add(k)
                        self.uninit_reads.append((x.name, st, path))

    def _walk_body(self, body, state: Dict[str, str], path: str) -> None:
        for i, s in enumerate(body):
            self._walk_stmt(s, state, f"{path}[{i}]")

    def _walk_stmt(self, s, state: Dict[str, str], path: str) -> None:
        if isinstance(s, ir.Assign):
            self._read(s.value, state, path)
            state[s.name] = "def"
        elif isinstance(s, (ir.Store, ir.StoreLocal, ir.AtomicAdd,
                            ir.AtomicAddLocal)):
            self._read(s.index, state, path)
            self._read(s.value, state, path)
        elif isinstance(s, ir.Barrier):
            pass
        elif isinstance(s, ir.If):
            self._read(s.cond, state, path)
            s_then = dict(state)
            s_else = dict(state)
            self._walk_body(s.then_body, s_then, path + "/then")
            self._walk_body(s.else_body, s_else, path + "/else")
            for name in set(s_then) | set(s_else):
                state[name] = _rd_join(
                    s_then.get(name, "undef"), s_else.get(name, "undef")
                )
        elif isinstance(s, ir.For):
            for b in (s.start, s.stop, s.step):
                self._read(b, state, path)
            self.variant_by_path[path] = frozenset(
                _assigned_in(s.body) | {s.var}
            )
            entry = dict(state)
            entry[s.var] = "def"
            body_state = dict(entry)
            self.iterations += 1
            _STATS["reachdef_iterations"] += 1
            self._walk_body(s.body, body_state, path + f"/for[{s.var}]")
            # one pass reaches the fixpoint for read reporting: iteration 1
            # sees exactly the pre-loop state, later iterations only add
            # definitions.  The exit state joins with the zero-trip path.
            for name in set(state) | set(body_state):
                state[name] = _rd_join(
                    state.get(name, "undef"), body_state.get(name, "undef")
                )

    # -- consumer API ---------------------------------------------------------
    def variant_names(self, kernel: ir.Kernel, stmt: ir.For) -> frozenset:
        """Names the JIT must not hoist out of ``stmt``'s body: everything
        (re)defined inside the loop, plus the induction variable.  The
        lookup maps the statement object to its structural path, so cached
        instances serve any structurally-equal kernel object."""
        m = self._maps.get(id(kernel))
        if m is None:
            m = _stmt_paths(kernel)
            self._maps[id(kernel)] = m
        path = m.get(id(stmt))
        if path is not None and path in self.variant_by_path:
            return self.variant_by_path[path]
        return frozenset(_assigned_in(stmt.body) | {stmt.var})


def _assigned_in(body) -> set:
    """Names assigned anywhere in a statement list (including nested)."""
    names = set()
    for s in ir.walk_stmts(body):
        if isinstance(s, ir.Assign):
            names.add(s.name)
        elif isinstance(s, ir.For):
            names.add(s.var)
    return names


def _stmt_paths(kernel: ir.Kernel) -> Dict[int, str]:
    out: Dict[int, str] = {}

    def walk(body, path):
        for i, s in enumerate(body):
            p = f"{path}[{i}]"
            out[id(s)] = p
            if isinstance(s, ir.If):
                walk(s.then_body, p + "/then")
                walk(s.else_body, p + "/else")
            elif isinstance(s, ir.For):
                walk(s.body, p + f"/for[{s.var}]")

    walk(kernel.body, "body")
    return out


def kernel_reaching_defs(kernel: ir.Kernel) -> ReachingDefs:
    """Context-free reaching definitions, cached on the fingerprint."""
    key = (kernel.fingerprint(), "reachdefs")
    rd = _ANALYSIS_CACHE.get(key)
    if rd is None:
        rd = ReachingDefs(kernel)
        _STATS["reachdef_kernels"] += 1
        _ANALYSIS_CACHE.put(key, rd)
    return rd


# ---------------------------------------------------------------------------
# Legacy vectorizer facts (historical semantics preserved bit-for-bit)
# ---------------------------------------------------------------------------


def collect_global_accesses(
    body, ctx, aenv: Dict[str, Optional[AffineIndex]]
) -> List[Tuple[bool, str, Optional[AffineIndex]]]:
    """Flatten (is_store, buffer, affine_index) for every global access.

    ``aenv`` is threaded through assignments so variable-held indices resolve.
    Loop bodies are entered with their induction variable bound to a loop
    symbol; If branches are both entered.
    """
    out: List[Tuple[bool, str, Optional[AffineIndex]]] = []

    def expr(e: ir.Expr, env):
        if isinstance(e, ir.Load):
            out.append((False, e.buffer, affine_index(e.index, ctx, env)))
        for c in e.children():
            expr(c, env)

    def stmts(body, env):
        for s in body:
            if isinstance(s, ir.Assign):
                expr(s.value, env)
                env[s.name] = affine_index(s.value, ctx, env)
            elif isinstance(s, ir.Store):
                expr(s.index, env)
                expr(s.value, env)
                out.append((True, s.buffer, affine_index(s.index, ctx, env)))
            elif isinstance(s, ir.StoreLocal):
                expr(s.index, env)
                expr(s.value, env)
            elif isinstance(s, (ir.AtomicAdd, ir.AtomicAddLocal)):
                expr(s.index, env)
                expr(s.value, env)
            elif isinstance(s, ir.For):
                expr(s.start, env)
                expr(s.stop, env)
                expr(s.step, env)
                env2 = dict(env)
                env2[s.var] = AffineIndex(0.0, {("loop", s.var): 1.0})
                stmts(s.body, env2)
            elif isinstance(s, ir.If):
                expr(s.cond, env)
                stmts(s.then_body, dict(env))
                stmts(s.else_body, dict(env))
    stmts(body, dict(aenv))
    return out


def has_divergent_control_flow(kernel: ir.Kernel, ctx) -> bool:
    """True when any If condition or For bound varies across workitems
    under the affine-index analysis (comparison results are opaque to it,
    so every data-dependent If counts as divergent — the conservative
    test both vectorizers have always used)."""

    def check(body, env) -> bool:
        for s in body:
            if isinstance(s, ir.Assign):
                env[s.name] = affine_index(s.value, ctx, env)
            elif isinstance(s, ir.If):
                a = affine_index(s.cond, ctx, env)
                if a is None or not a.is_uniform:
                    return True
                if check(s.then_body, dict(env)) or check(s.else_body, dict(env)):
                    return True
            elif isinstance(s, ir.For):
                for b in (s.start, s.stop, s.step):
                    a = affine_index(b, ctx, env)
                    if a is None or not a.is_uniform:
                        return True
                env2 = dict(env)
                env2[s.var] = AffineIndex(0.0, {("loop", s.var): 1.0})
                if check(s.body, env2):
                    return True
        return False

    return check(kernel.body, {})
