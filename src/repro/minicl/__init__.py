"""minicl — an OpenCL-1.1-style runtime over simulated devices.

Two APIs are offered:

* the **object API** (pyopencl-flavoured): ``get_platforms`` -> ``Context``
  -> ``CommandQueue`` / ``Buffer`` / ``Program`` / ``CLKernel``;
* the **flat C-style API** in :mod:`repro.minicl.api` (``clCreateBuffer``,
  ``clEnqueueMapBuffer``, ...), matching the paper's host-code narrative.

Both execute functionally on numpy and advance a deterministic virtual-time
clock using the device models in :mod:`repro.simcpu` / :mod:`repro.simgpu`.
"""

from .constants import (
    StatusCode,
    command_status,
    command_type,
    device_type,
    map_flags,
    mem_flags,
)
from .errors import (
    CLError,
    InvalidArgIndex,
    InvalidBufferSize,
    InvalidContext,
    InvalidDevice,
    InvalidKernelArgs,
    InvalidKernelName,
    InvalidMemObject,
    InvalidOperation,
    InvalidValue,
    InvalidWorkDimension,
    InvalidWorkGroupSize,
    InvalidWorkItemSize,
    KernelVerificationError,
    MemObjectAllocationFailure,
)
from .platform import Platform, cpu_platform, get_platforms, gpu_platform
from .device import Device
from .context import Context
from .buffer import Buffer
from .event import Event, EventProfile
from .program import CLKernel, Program
from .queue import CommandQueue
from .ext import EXTENSION_NAME, AffinityCommandQueue
from . import api

__all__ = [
    "mem_flags", "map_flags", "device_type", "command_type", "command_status",
    "StatusCode",
    "CLError", "InvalidValue", "InvalidDevice", "InvalidContext",
    "InvalidMemObject", "InvalidKernelName", "InvalidKernelArgs",
    "InvalidArgIndex", "InvalidWorkDimension", "InvalidWorkGroupSize",
    "InvalidWorkItemSize", "InvalidBufferSize", "InvalidOperation",
    "KernelVerificationError", "MemObjectAllocationFailure",
    "Platform", "get_platforms", "cpu_platform", "gpu_platform",
    "Device", "Context", "Buffer", "Event", "EventProfile",
    "Program", "CLKernel", "CommandQueue",
    "AffinityCommandQueue", "EXTENSION_NAME",
    "api",
]
