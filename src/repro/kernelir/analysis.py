"""Static analysis of kernels: operation counts, ILP, memory access patterns.

These analyses feed the CPU/GPU timing models:

* **Operation counts** (per workitem, loop-trip weighted) drive the compute
  term of the device models.
* **ILP** — the ratio of total latency-weighted work to the dependence-chain
  critical path — drives the out-of-order CPU issue model (the paper's
  Section II-B/III-C: dependent-instruction kernels run at ILP 1 and leave
  CPU pipelines idle; GPUs hide the latency with warps instead).
* **Access patterns** (stride of each load/store with respect to adjacent
  workitems) drive cache modelling and both vectorizers (the paper's
  Section III-F: non-contiguous access defeats loop vectorization).

All analyses are evaluated in a concrete :class:`LaunchContext` — scalar
argument values and NDRange sizes are known at launch, which lets trip counts
and strides resolve to numbers in almost every paper kernel.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import ast as ir
from .types import DType

__all__ = [
    "LatencyTable",
    "LaunchContext",
    "OpCounts",
    "AccessInfo",
    "KernelAnalysis",
    "analyze_kernel",
    "affine_index",
    "AffineIndex",
    "referenced_names",
]


#: per-fingerprint cache for :func:`referenced_names` (kernel IR is
#: immutable once fingerprinted, so the scan never goes stale)
_REFERENCED_NAMES: dict = {}


def referenced_names(kernel: "ir.Kernel") -> frozenset:
    """Every variable name the kernel's expressions can read.

    The static analyses resolve scalar kernel arguments by *name* lookups
    into ``LaunchContext.scalars`` — nothing else in the context's scalar
    dict can influence a verdict.  Cache keys built from launches therefore
    only need the scalars this set names: two launches differing in an
    unreferenced scalar (common in the harness, which passes every
    benchmark scalar to every kernel of a family) share one analysis.
    """
    fp = kernel.fingerprint()
    names = _REFERENCED_NAMES.get(fp)
    if names is None:
        found = set()
        for s in ir.walk_stmts(kernel.body):
            for root in ir.stmt_exprs(s):
                for e in ir.walk_exprs(root):
                    if isinstance(e, ir.Var):
                        found.add(e.name)
        names = frozenset(found)
        _REFERENCED_NAMES[fp] = names
    return names


@dataclasses.dataclass(frozen=True)
class LatencyTable:
    """Instruction latencies in cycles (Westmere-era SSE defaults).

    These set the *relative* cost of dependence chains; the CPU core model
    combines them with issue width and port counts.
    """

    int_op: float = 1.0
    fp_add: float = 3.0
    fp_mul: float = 4.0
    fp_div: float = 20.0
    fp_sqrt: float = 20.0
    fp_transcendental: float = 40.0  # exp/log/sin/cos/erf/pow
    load: float = 4.0  # L1 hit; the cache model adjusts for misses
    store: float = 1.0
    compare: float = 1.0

    def of_binop(self, op: str, dtype: DType) -> float:
        if op in ir.CMP_OPS or op in ("and", "or"):
            return self.compare
        if not dtype.is_float:
            return self.int_op
        if op in ("+", "-", "min", "max"):
            return self.fp_add
        if op == "*":
            return self.fp_mul
        if op in ("/", "//", "%"):
            return self.fp_div
        return self.fp_add

    def of_call(self, fn: str) -> float:
        if fn in ("mad", "fma"):
            return self.fp_mul + self.fp_add
        if fn in ("sqrt", "rsqrt"):
            return self.fp_sqrt
        if fn in ("fabs", "floor"):
            return self.fp_add
        return self.fp_transcendental


@dataclasses.dataclass
class LaunchContext:
    """Concrete launch parameters used to resolve uniform expressions."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    scalars: Dict[str, float] = dataclasses.field(default_factory=dict)
    latencies: LatencyTable = dataclasses.field(default_factory=LatencyTable)
    #: trip count assumed for loops whose bounds cannot be resolved
    default_trip: int = 1

    def __post_init__(self):
        if isinstance(self.global_size, int):
            self.global_size = (self.global_size,)
        if isinstance(self.local_size, int):
            self.local_size = (self.local_size,)
        self.global_size = tuple(int(g) for g in self.global_size)
        self.local_size = tuple(int(l) for l in self.local_size)

    @property
    def num_groups(self) -> Tuple[int, ...]:
        return tuple(g // l for g, l in zip(self.global_size, self.local_size))

    @property
    def total_workitems(self) -> int:
        return int(np.prod(self.global_size))

    @property
    def workgroup_size(self) -> int:
        return int(np.prod(self.local_size))

    @property
    def workgroup_count(self) -> int:
        return int(np.prod(self.num_groups))


@dataclasses.dataclass
class OpCounts:
    """Per-workitem dynamic operation counts (loop-trip weighted)."""

    flops: float = 0.0
    int_ops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    local_loads: float = 0.0
    local_stores: float = 0.0
    atomics: float = 0.0
    barriers: float = 0.0

    def scaled(self, k: float) -> "OpCounts":
        return OpCounts(
            *(getattr(self, f.name) * k for f in dataclasses.fields(self))
        )

    def __iadd__(self, o: "OpCounts") -> "OpCounts":
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(o, f.name))
        return self

    @property
    def arith_ops(self) -> float:
        return self.flops + self.int_ops

    @property
    def mem_ops(self) -> float:
        return self.loads + self.stores + self.local_loads + self.local_stores

    def total(self) -> float:
        return self.arith_ops + self.mem_ops + self.atomics


# ---------------------------------------------------------------------------
# Affine index analysis — the domain itself lives in the shared dataflow
# core (repro.kernelir.dataflow); re-exported here for compatibility since
# the timing walk and its tests have always imported it from this module.
# ---------------------------------------------------------------------------

from .dataflow import (  # noqa: E402  (re-export after LaunchContext deps)
    AffineIndex,
    affine_index,
    uniform_value as _uniform_value,
)

#: symbolic key types: ("g", d) / ("l", d) / ("grp", d) ids, ("loop", name)
Key = Tuple[str, object]


# ---------------------------------------------------------------------------
# Access info
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class AccessInfo:
    """One static load/store site, with its loop-trip-weighted count."""

    buffer: str
    is_store: bool
    is_local: bool
    count_per_item: float
    itemsize: int
    #: stride (in elements) between adjacent workitems; None = gather/scatter
    vector_stride: Optional[float]
    #: stride (in elements) per iteration of the innermost enclosing loop
    inner_loop_stride: Optional[float]
    #: True when the whole index is workitem-invariant
    uniform: bool

    @property
    def pattern(self) -> str:
        """``contiguous`` / ``uniform`` / ``strided`` / ``gather``."""
        if self.vector_stride is None:
            return "gather"
        if self.uniform:
            return "uniform"
        if abs(self.vector_stride) == 1.0:
            return "contiguous"
        if self.vector_stride == 0.0:
            return "uniform"
        return "strided"

    @property
    def bytes_per_item(self) -> float:
        return self.count_per_item * self.itemsize


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class _Analyzer:
    def __init__(self, kernel: ir.Kernel, ctx: LaunchContext):
        self.kernel = kernel
        self.ctx = ctx
        self.lat = ctx.latencies
        self.counts = OpCounts()
        self.accesses: List[AccessInfo] = []
        self.approximate = False
        self.divergent = False
        self._dtype_of_buffer = {p.name: p.dtype for p in kernel.buffer_params}
        self._dtype_of_local = {a.name: a.dtype for a in kernel.local_arrays}
        self._loop_stack: List[str] = []

    # expression walk: returns (ready_time, ops_counts_added_into_self)
    def _expr(self, e: ir.Expr, env: Dict[str, float], aenv, weight: float) -> float:
        if isinstance(e, (ir.Const, ir._IdBase)):
            return 0.0
        if isinstance(e, ir.Var):
            return env.get(e.name, 0.0)
        if isinstance(e, ir.Cast):
            return self._expr(e.operand, env, aenv, weight)
        if isinstance(e, ir.BinOp):
            t = max(
                self._expr(e.lhs, env, aenv, weight),
                self._expr(e.rhs, env, aenv, weight),
            )
            lat = self.lat.of_binop(e.op, e.dtype)
            if e.op not in ir.CMP_OPS and e.op not in ("and", "or"):
                if e.dtype.is_float:
                    self.counts.flops += weight
                else:
                    self.counts.int_ops += weight
            return t + lat
        if isinstance(e, ir.UnOp):
            t = self._expr(e.operand, env, aenv, weight)
            if e.op == "neg" and e.dtype.is_float:
                self.counts.flops += weight
            return t + (self.lat.fp_add if e.dtype.is_float else self.lat.int_op)
        if isinstance(e, ir.Call):
            t = max((self._expr(a, env, aenv, weight) for a in e.args), default=0.0)
            self.counts.flops += weight * (2 if e.fn in ("mad", "fma") else 1)
            return t + self.lat.of_call(e.fn)
        if isinstance(e, ir.Select):
            t = max(
                self._expr(e.cond, env, aenv, weight),
                self._expr(e.if_true, env, aenv, weight),
                self._expr(e.if_false, env, aenv, weight),
            )
            return t + self.lat.compare
        if isinstance(e, ir.Load):
            t = self._expr(e.index, env, aenv, weight)
            self.counts.loads += weight
            self._record_access(e.buffer, False, False, e.index, aenv, weight)
            return t + self.lat.load
        if isinstance(e, ir.LoadLocal):
            t = self._expr(e.index, env, aenv, weight)
            self.counts.local_loads += weight
            self._record_access(e.array, False, True, e.index, aenv, weight)
            return t + self.lat.load
        raise TypeError(f"unknown expr {type(e).__name__}")  # pragma: no cover

    def _record_access(self, name, is_store, is_local, index, aenv, weight):
        aff = affine_index(index, self.ctx, aenv)
        dt = (self._dtype_of_local if is_local else self._dtype_of_buffer)[name]
        if aff is None:
            vs, ls, uni = None, None, False
        else:
            vs = aff.vector_stride
            ls = aff.loop_stride(self._loop_stack[-1]) if self._loop_stack else 0.0
            uni = aff.is_uniform
        self.accesses.append(
            AccessInfo(
                buffer=name,
                is_store=is_store,
                is_local=is_local,
                count_per_item=weight,
                itemsize=dt.itemsize,
                vector_stride=vs,
                inner_loop_stride=ls,
                uniform=uni,
            )
        )

    def _body(self, body, env: Dict[str, float], aenv, t0: float, weight: float) -> float:
        """Process statements; returns the completion time of the sequence."""
        t_end = t0
        for s in body:
            t_end = max(t_end, self._stmt(s, env, aenv, weight))
        return t_end

    def _stmt(self, s: ir.Stmt, env, aenv, weight: float) -> float:
        if isinstance(s, ir.Assign):
            t = self._expr(s.value, env, aenv, weight)
            env[s.name] = t
            aenv[s.name] = affine_index(s.value, self.ctx, aenv)
            return t
        if isinstance(s, (ir.Store, ir.StoreLocal)):
            t = max(
                self._expr(s.index, env, aenv, weight),
                self._expr(s.value, env, aenv, weight),
            )
            if isinstance(s, ir.Store):
                self.counts.stores += weight
                self._record_access(s.buffer, True, False, s.index, aenv, weight)
            else:
                self.counts.local_stores += weight
                self._record_access(s.array, True, True, s.index, aenv, weight)
            return t + self.lat.store
        if isinstance(s, (ir.AtomicAdd, ir.AtomicAddLocal)):
            t = max(
                self._expr(s.index, env, aenv, weight),
                self._expr(s.value, env, aenv, weight),
            )
            self.counts.atomics += weight
            name = s.buffer if isinstance(s, ir.AtomicAdd) else s.array
            self._record_access(name, True, isinstance(s, ir.AtomicAddLocal), s.index, aenv, weight)
            return t + self.lat.load + self.lat.store  # RMW
        if isinstance(s, ir.Barrier):
            self.counts.barriers += weight
            return max(env.values(), default=0.0)
        if isinstance(s, ir.If):
            cond_aff = affine_index(s.cond, self.ctx, aenv)
            if cond_aff is None or not cond_aff.is_uniform:
                self.divergent = True
            t_c = self._expr(s.cond, env, aenv, weight)
            w_then = weight if not s.else_body else weight * 0.5
            w_else = weight * 0.5
            env_then = dict(env)
            t1 = self._body(s.then_body, env_then, dict(aenv), t_c, w_then)
            t2 = t_c
            env_else = dict(env)
            if s.else_body:
                t2 = self._body(s.else_body, env_else, dict(aenv), t_c, w_else)
            # merge: a variable's ready time is the worst across branches
            for k in set(env_then) | set(env_else):
                env[k] = max(env_then.get(k, 0.0), env_else.get(k, 0.0))
            return max(t1, t2)
        if isinstance(s, ir.For):
            return self._for(s, env, aenv, weight)
        raise TypeError(f"unknown stmt {type(s).__name__}")  # pragma: no cover

    def _trip_count(self, s: ir.For, aenv) -> float:
        start = _uniform_value(s.start, self.ctx, aenv)
        stop = _uniform_value(s.stop, self.ctx, aenv)
        step = _uniform_value(s.step, self.ctx, aenv)
        if start is None or stop is None or step is None or step == 0:
            # Per-workitem bounds: divergent; estimate with worst case if the
            # affine coefficients allow, otherwise fall back.
            self.divergent = True
            self.approximate = True
            return float(self.ctx.default_trip)
        if step > 0:
            return max(0.0, math.ceil((stop - start) / step))
        return max(0.0, math.ceil((start - stop) / -step))

    def _for(self, s: ir.For, env, aenv, weight: float) -> float:
        trips = self._trip_count(s, aenv)
        if trips <= 0:
            return max(env.values(), default=0.0)
        self._loop_stack.append(s.var)
        aenv_loop = dict(aenv)
        aenv_loop[s.var] = AffineIndex(0.0, {("loop", s.var): 1.0})

        # Pass 1 establishes per-iteration counts and the environment after
        # one iteration; pass 2 (counts and accesses discarded) measures the
        # steady-state critical-path growth of loop-carried variables.
        counts_before = dataclasses.replace(self.counts)
        acc_mark = len(self.accesses)
        env1 = dict(env)
        t1 = self._body(
            s.body, env1, dict(aenv_loop), max(env.values(), default=0.0), weight
        )
        counts_after = dataclasses.replace(self.counts)
        acc_pass1_end = len(self.accesses)

        saved_counts = dataclasses.replace(self.counts)
        env2 = dict(env1)
        self._body(s.body, env2, dict(aenv_loop), t1, weight)
        self.counts = saved_counts
        del self.accesses[acc_pass1_end:]

        # per-iteration critical-path growth via carried variables
        delta = 0.0
        for k in env2:
            d = env2[k] - env1.get(k, 0.0)
            if d > 0:
                delta = max(delta, d)
        if delta <= 0:
            # No loop-carried dependence: iterations are mutually independent;
            # the chain length is one body, the throughput work is trips*body.
            total_t = t1
        else:
            total_t = t1 + (trips - 1) * delta

        # scale the per-iteration counts to the full trip count
        for f in dataclasses.fields(OpCounts):
            before = getattr(counts_before, f.name)
            per_iter = getattr(counts_after, f.name) - before
            setattr(self.counts, f.name, before + per_iter * trips)
        # scale the access counts recorded during pass 1
        for acc in self.accesses[acc_mark:acc_pass1_end]:
            acc.count_per_item *= trips
        self._loop_stack.pop()

        # loop bookkeeping overhead (induction increment + compare)
        self.counts.int_ops += weight * trips * 2
        total_t += trips * self.lat.int_op

        # carried vars keep their grown ready-times
        for k in env2:
            d = env2[k] - env1.get(k, 0.0)
            env[k] = env1.get(k, 0.0) + max(0.0, d) * max(0.0, trips - 1)
            aenv[k] = None  # conservatively opaque after the loop
        return total_t


@dataclasses.dataclass
class KernelAnalysis:
    """Everything the timing models need to cost one workitem."""

    kernel_name: str
    per_item: OpCounts
    critical_path_cycles: float
    weighted_ops_cycles: float
    accesses: List[AccessInfo]
    divergent_flow: bool
    approximate: bool
    local_mem_bytes: int
    uses_barrier: bool
    uses_atomics: bool
    ctx: LaunchContext

    @property
    def ilp(self) -> float:
        """Independent-instruction parallelism of one workitem's stream."""
        if self.critical_path_cycles <= 0:
            return 1.0
        return max(1.0, self.weighted_ops_cycles / self.critical_path_cycles)

    @property
    def bytes_loaded_per_item(self) -> float:
        return sum(a.bytes_per_item for a in self.accesses if not a.is_store and not a.is_local)

    @property
    def bytes_stored_per_item(self) -> float:
        return sum(a.bytes_per_item for a in self.accesses if a.is_store and not a.is_local)

    @property
    def bytes_per_item(self) -> float:
        return self.bytes_loaded_per_item + self.bytes_stored_per_item

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of global traffic (roofline x-axis)."""
        b = self.bytes_per_item
        return self.per_item.flops / b if b > 0 else float("inf")

    @property
    def flops_per_item(self) -> float:
        return self.per_item.flops

    def gather_fraction(self) -> float:
        """Fraction of global accesses that are gathers/scatters."""
        tot = sum(a.count_per_item for a in self.accesses if not a.is_local)
        if tot == 0:
            return 0.0
        g = sum(
            a.count_per_item
            for a in self.accesses
            if not a.is_local and a.pattern == "gather"
        )
        return g / tot


def analyze_kernel(kernel: ir.Kernel, ctx: LaunchContext) -> KernelAnalysis:
    """Run all static analyses for one launch configuration."""
    a = _Analyzer(kernel, ctx)
    env: Dict[str, float] = {}
    aenv: Dict[str, Optional[AffineIndex]] = {}
    t_end = a._body(kernel.body, env, aenv, 0.0, 1.0)
    crit = max(t_end, max(env.values(), default=0.0))

    lat = ctx.latencies
    c = a.counts
    weighted = (
        c.flops * (lat.fp_mul + lat.fp_add) / 2.0
        + c.int_ops * lat.int_op
        + c.loads * lat.load
        + c.stores * lat.store
        + c.local_loads * lat.load
        + c.local_stores * lat.store
        + c.atomics * (lat.load + lat.store)
    )
    return KernelAnalysis(
        kernel_name=kernel.name,
        per_item=c,
        critical_path_cycles=max(crit, 1.0),
        weighted_ops_cycles=max(weighted, 1.0),
        accesses=a.accesses,
        divergent_flow=a.divergent,
        approximate=a.approximate,
        local_mem_bytes=kernel.local_mem_bytes,
        uses_barrier=kernel.uses_barrier,
        uses_atomics=kernel.uses_atomics,
        ctx=ctx,
    )
