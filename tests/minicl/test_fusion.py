"""Cross-launch producer->consumer fusion in the OOO scheduler.

Fusion is a pure scheduling optimization: memory, event profiles, and
dynamic behaviour must be indistinguishable from the unfused run — only
``scheduler_stats()["fused_launches"]`` may move.
"""

import numpy as np
import pytest

from repro import minicl as cl
from repro.kernelir import ast as ir
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32
from repro.minicl.schedule import reset_scheduler_stats, scheduler_stats


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_scheduler_stats()
    yield
    reset_scheduler_stats()


def _unary(name, src, dst, op, const):
    kb = KernelBuilder(name)
    s = kb.buffer(src, F32, access="r")
    d = kb.buffer(dst, F32, access="w")
    gid = kb.global_id(0)
    if op == "*":
        d[gid] = s[gid] * kb.f32(const)
    else:
        d[gid] = s[gid] + kb.f32(const)
    return kb.finish()


def _run_chain(out_of_order, n=2048, gsizes=None):
    """scale (t = a*2) -> addc (out = t+1); returns (out, profiles, events)."""
    ka = _unary("fscale", "a", "t", "*", 2.0)
    kb_ = _unary("faddc", "t", "out", "+", 1.0)
    a = np.arange(n, dtype=np.float32)

    ctx = cl.Context(cl.cpu_platform().devices)
    q = ctx.create_command_queue(out_of_order=out_of_order)
    prog = ctx.create_program([ka, kb_]).build()
    mf = cl.mem_flags
    ba = ctx.create_buffer(mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=a)
    bt = ctx.create_buffer(mf.READ_WRITE, size=n * 4, dtype=np.float32)
    bo = ctx.create_buffer(mf.WRITE_ONLY, size=n * 4, dtype=np.float32)
    cka = prog.create_kernel("fscale")
    cka.set_args(ba, bt)
    ckb = prog.create_kernel("faddc")
    ckb.set_args(bt, bo)
    g1, g2 = gsizes or ((n,), (n,))
    e1 = q.enqueue_nd_range_kernel(cka, g1)
    e2 = q.enqueue_nd_range_kernel(ckb, g2, wait_for=[e1])
    q.finish()
    out = np.zeros(n, np.float32)
    q.enqueue_read_buffer(bo, out)
    q.finish()
    return out, [(e.profile.start, e.profile.end) for e in (e1, e2)]


class TestProducerConsumerFusion:
    def test_raw_chain_fuses_once(self):
        before = scheduler_stats()["fused_launches"]
        out, _ = _run_chain(out_of_order=True)
        assert scheduler_stats()["fused_launches"] == before + 1
        np.testing.assert_array_equal(
            out, np.arange(2048, dtype=np.float32) * 2 + 1
        )

    def test_eager_queue_never_fuses(self):
        out, _ = _run_chain(out_of_order=False)
        assert scheduler_stats()["fused_launches"] == 0
        np.testing.assert_array_equal(
            out, np.arange(2048, dtype=np.float32) * 2 + 1
        )

    def test_fusion_is_observably_identical(self):
        ref, prof_ref = _run_chain(out_of_order=False)
        reset_scheduler_stats()
        got, prof_ooo = _run_chain(out_of_order=True)
        assert scheduler_stats()["fused_launches"] == 1
        np.testing.assert_array_equal(ref, got)
        # virtual event timestamps are computed at enqueue time from the
        # wait graph, so profiling output cannot reveal the fusion
        assert prof_ref == prof_ooo

    def test_intermediate_buffer_still_written(self):
        """The fused kernel keeps A's stores: t holds the same bytes."""
        n = 1024
        ka = _unary("fmid_a", "a", "t", "*", 2.0)
        kb_ = _unary("fmid_b", "t", "out", "+", 1.0)
        a = np.arange(n, dtype=np.float32)
        ctx = cl.Context(cl.cpu_platform().devices)
        q = ctx.create_command_queue(out_of_order=True)
        prog = ctx.create_program([ka, kb_]).build()
        mf = cl.mem_flags
        ba = ctx.create_buffer(mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=a)
        bt = ctx.create_buffer(mf.READ_WRITE, size=n * 4, dtype=np.float32)
        bo = ctx.create_buffer(mf.WRITE_ONLY, size=n * 4, dtype=np.float32)
        cka = prog.create_kernel("fmid_a")
        cka.set_args(ba, bt)
        ckb = prog.create_kernel("fmid_b")
        ckb.set_args(bt, bo)
        e1 = q.enqueue_nd_range_kernel(cka, (n,))
        q.enqueue_nd_range_kernel(ckb, (n,), wait_for=[e1])
        q.finish()
        assert scheduler_stats()["fused_launches"] == 1
        mid = np.zeros(n, np.float32)
        q.enqueue_read_buffer(bt, mid)
        q.finish()
        np.testing.assert_array_equal(mid, a * 2)

    def test_mismatched_ndrange_does_not_fuse(self):
        n = 2048
        out, _ = _run_chain(out_of_order=True, n=n, gsizes=((n,), (n // 2,)))
        assert scheduler_stats()["fused_launches"] == 0
        expect = np.zeros(n, np.float32)
        expect[: n // 2] = np.arange(n // 2, dtype=np.float32) * 2 + 1
        np.testing.assert_array_equal(out, expect)

    def test_consumer_with_two_deps_does_not_fuse(self):
        """Fusion requires the producer to be the consumer's only edge."""
        n = 1024
        ka = _unary("f2d_a", "a", "t", "*", 2.0)
        kx = _unary("f2d_x", "a", "u", "+", 3.0)
        kb2 = KernelBuilder("f2d_b")
        t = kb2.buffer("t", F32, access="r")
        u = kb2.buffer("u", F32, access="r")
        o = kb2.buffer("out", F32, access="w")
        gid = kb2.global_id(0)
        o[gid] = t[gid] + u[gid]
        kb_ = kb2.finish()

        a = np.arange(n, dtype=np.float32)
        ctx = cl.Context(cl.cpu_platform().devices)
        q = ctx.create_command_queue(out_of_order=True)
        prog = ctx.create_program([ka, kx, kb_]).build()
        mf = cl.mem_flags
        ba = ctx.create_buffer(mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=a)
        bt = ctx.create_buffer(mf.READ_WRITE, size=n * 4, dtype=np.float32)
        bu = ctx.create_buffer(mf.READ_WRITE, size=n * 4, dtype=np.float32)
        bo = ctx.create_buffer(mf.WRITE_ONLY, size=n * 4, dtype=np.float32)
        c1 = prog.create_kernel("f2d_a")
        c1.set_args(ba, bt)
        c2 = prog.create_kernel("f2d_x")
        c2.set_args(ba, bu)
        c3 = prog.create_kernel("f2d_b")
        c3.set_args(bt, bu, bo)
        e1 = q.enqueue_nd_range_kernel(c1, (n,))
        e2 = q.enqueue_nd_range_kernel(c2, (n,))
        q.enqueue_nd_range_kernel(c3, (n,), wait_for=[e1, e2])
        q.finish()
        assert scheduler_stats()["fused_launches"] == 0
        out = np.zeros(n, np.float32)
        q.enqueue_read_buffer(bo, out)
        q.finish()
        np.testing.assert_array_equal(out, a * 2 + a + 3)

    def test_chained_fusion(self):
        """A -> B -> C collapses via two fusions into one launch."""
        n = 1024
        k1 = _unary("fch_1", "a", "t1", "*", 2.0)
        k2 = _unary("fch_2", "t1", "t2", "+", 1.0)
        k3 = _unary("fch_3", "t2", "out", "*", 3.0)
        a = np.arange(n, dtype=np.float32)
        ctx = cl.Context(cl.cpu_platform().devices)
        q = ctx.create_command_queue(out_of_order=True)
        prog = ctx.create_program([k1, k2, k3]).build()
        mf = cl.mem_flags
        ba = ctx.create_buffer(mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=a)
        b1 = ctx.create_buffer(mf.READ_WRITE, size=n * 4, dtype=np.float32)
        b2 = ctx.create_buffer(mf.READ_WRITE, size=n * 4, dtype=np.float32)
        bo = ctx.create_buffer(mf.WRITE_ONLY, size=n * 4, dtype=np.float32)
        c1 = prog.create_kernel("fch_1")
        c1.set_args(ba, b1)
        c2 = prog.create_kernel("fch_2")
        c2.set_args(b1, b2)
        c3 = prog.create_kernel("fch_3")
        c3.set_args(b2, bo)
        e1 = q.enqueue_nd_range_kernel(c1, (n,))
        e2 = q.enqueue_nd_range_kernel(c2, (n,), wait_for=[e1])
        q.enqueue_nd_range_kernel(c3, (n,), wait_for=[e2])
        q.finish()
        assert scheduler_stats()["fused_launches"] == 2
        out = np.zeros(n, np.float32)
        q.enqueue_read_buffer(bo, out)
        q.finish()
        np.testing.assert_array_equal(out, (a * 2 + 1) * 3)

    def test_no_fuse_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FUSE", "1")
        out, _ = _run_chain(out_of_order=True)
        assert scheduler_stats()["fused_launches"] == 0
        np.testing.assert_array_equal(
            out, np.arange(2048, dtype=np.float32) * 2 + 1
        )
