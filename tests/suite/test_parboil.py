"""Functional validation of the Parboil kernels (Table III)."""

import numpy as np
import pytest

from repro.suite import (
    CPCenergyBenchmark,
    MriFhdFHBenchmark,
    MriFhdRhoPhiBenchmark,
    MriQComputeQBenchmark,
    MriQPhiMagBenchmark,
    all_parboil_benchmarks,
)


class TestTableIIIMetadata:
    def test_paper_configurations(self):
        by_name = {b.name: b for b in all_parboil_benchmarks()}
        assert by_name["CP: cenergy"].default_global_sizes == ((64, 512),)
        assert by_name["CP: cenergy"].default_local_size == (16, 8)
        assert by_name["MRI-Q: computePhiMag"].default_local_size == (512,)
        assert by_name["MRI-Q: computeQ"].default_global_sizes == ((32768,),)
        assert by_name["MRI-FHD: FH"].default_local_size == (256,)


class TestCP:
    def test_cenergy_matches_direct_sum(self):
        CPCenergyBenchmark(natoms=60).validate((16, 8), rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("c", [2, 4])
    def test_coalesced_equivalent(self, c):
        CPCenergyBenchmark(natoms=60).validate((16, 8), coalesce=c, rtol=1e-3, atol=1e-3)

    def test_energy_scales_with_charge(self):
        b = CPCenergyBenchmark(natoms=20)
        bufs, sc = b.make_data((8, 8), np.random.default_rng(0))
        ref1 = b.reference(bufs, sc, (8, 8))["energy"]
        bufs["atomq"] = bufs["atomq"] * 2
        ref2 = b.reference(bufs, sc, (8, 8))["energy"]
        np.testing.assert_allclose(ref2, 2 * ref1, rtol=1e-6)


class TestMriQ:
    def test_phimag(self):
        MriQPhiMagBenchmark().validate((1024,))

    def test_phimag_coalesced(self):
        MriQPhiMagBenchmark().validate((1024,), coalesce=4)

    def test_computeq(self):
        MriQComputeQBenchmark(num_k=48).validate((128,), rtol=2e-3, atol=2e-3)

    def test_computeq_coalesced(self):
        MriQComputeQBenchmark(num_k=48).validate(
            (128,), coalesce=2, rtol=2e-3, atol=2e-3
        )

    def test_phimag_nonnegative(self):
        b = MriQPhiMagBenchmark()
        bufs, sc = b.make_data((256,), np.random.default_rng(0))
        ref = b.reference(bufs, sc, (256,))
        assert (ref["phiMag"] >= 0).all()


class TestMriFhd:
    def test_rhophi(self):
        MriFhdRhoPhiBenchmark().validate((1024,))

    def test_rhophi_is_conjugate_product(self):
        """rRhoPhi + i*iRhoPhi == rho * conj(phi)... with the Parboil sign
        convention (phi^H rho)."""
        b = MriFhdRhoPhiBenchmark()
        bufs, sc = b.make_data((64,), np.random.default_rng(1))
        ref = b.reference(bufs, sc, (64,))
        rho = bufs["rRho"] + 1j * bufs["iRho"]
        phi = bufs["rPhi"] + 1j * bufs["iPhi"]
        prod = np.conj(rho) * phi
        np.testing.assert_allclose(ref["rRhoPhi"], prod.real, rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(ref["iRhoPhi"], prod.imag, rtol=1e-5, atol=1e-5)

    def test_fh(self):
        MriFhdFHBenchmark(num_k=48).validate((128,), rtol=2e-3, atol=2e-3)

    def test_fh_coalesced(self):
        MriFhdFHBenchmark(num_k=48).validate(
            (128,), coalesce=4, rtol=2e-3, atol=2e-3
        )
