"""Section III-D (text) — allocation location and access flags: no effect.

The paper verifies two null results on the CPU device:

* "allocation location does not have a major impact on performance...
  because device memory and host memory reference the same main memory";
* "we do not see a noticeable performance difference" from marking buffers
  read-only/write-only versus read-write.

This experiment measures application throughput (copy API) across the four
flag combinations and reports the max relative deviation — it should be
(near) zero.
"""

from __future__ import annotations

from typing import Dict

from ...suite import SquareBenchmark, VectorAddBenchmark, ReductionBenchmark
from ..report import ExperimentResult, Series
from ..runner import cpu_dut, measure_app_throughput
from .fig7_transfer_api import COMBOS, _flags_map

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    cpu = cpu_dut()
    benches = [
        (SquareBenchmark(), (100_000,) if fast else (1_000_000,)),
        (VectorAddBenchmark(), (110_000,) if fast else (1_100_000,)),
        (ReductionBenchmark(), (640_000,)),
    ]
    series: Dict[str, Dict[str, float]] = {label: {} for label, _, _ in COMBOS}
    notes = []
    for bench, gs in benches:
        vals = []
        for label, access_specific, host_alloc in COMBOS:
            fm = _flags_map(bench, access_specific, host_alloc)
            thr = measure_app_throughput(
                cpu, bench, gs, bench.default_local_size,
                transfer_api="copy", flags_map=fm,
            )
            series[label][bench.name] = thr
            vals.append(thr)
        dev = (max(vals) - min(vals)) / max(vals)
        notes.append(f"{bench.name}: max deviation across flags = {dev:.2%}")
    return ExperimentResult(
        experiment_id="flags",
        title="Allocation location / access flags have no effect (CPU, copy API)",
        series=[Series(k, v) for k, v in series.items()],
        value_name="app throughput (items/ns)",
        notes=notes,
    )
