"""Static kernel verifier: races, divergence, bounds and flag misuse.

Given a :class:`~repro.kernelir.ast.Kernel` and a concrete
:class:`~repro.kernelir.analysis.LaunchContext`, :func:`verify_launch` emits
structured :class:`Diagnostic` records for the correctness pitfalls that the
timing analyses in :mod:`repro.kernelir.analysis` silently assume away:

* **R-RACE-GLOBAL** — two workitems may write (or write/read) the same
  element of a ``__global`` buffer in one launch.
* **R-RACE-LOCAL** — a ``__local`` store and a conflicting access from
  another workitem are not separated by a ``Barrier``.
* **R-BARRIER-DIV** — a ``Barrier`` sits under control flow whose condition
  varies across workitems of one workgroup (OpenCL undefined behaviour).
* **R-OOB** — an index provably escapes ``[0, size)`` for the launch's
  buffer sizes.
* **R-FLAGS** — the kernel writes a buffer created ``mem_flags.READ_ONLY``
  or reads one created ``WRITE_ONLY``.
* **R-UNINIT-LOCAL** — a ``__local`` array is read before any store to it.
* **R-UNUSED-PARAM** — a kernel parameter is never referenced.
* **R-VEC** — notes explaining why :mod:`repro.kernelir.vectorize` bails
  (the paper's Figure 10/11 blockers), so a slow kernel is explainable.

The analysis models every index as an **affine form over workitem symbols**
``(l, d)`` / ``(grp, d)`` (``get_global_id`` is decomposed into
``grp*L + l``) **plus an integer interval**.  ``If`` guards refine symbol
ranges (``if (lid < stride)`` pins ``l0`` to ``[0, stride-1]``); loops with
small concrete trip counts are unrolled so per-iteration strides such as the
reduction tree's ``L >> (p+1)`` fold to constants; larger or symbolic loops
introduce an iteration symbol and their body is traversed twice so that
cross-iteration hazards are still observed.

Races are disproved with a mixed-radix injectivity argument (sorted by
coefficient magnitude, each workitem coefficient must dominate the span of
the smaller terms), a gcd feasibility test for pairs of distinct affine
forms, and guard-refined interval disjointness.  Everything here is
*conservative in the reporting direction*: a diagnostic is only emitted when
the analysis can actually argue the defect, so data-dependent (gather)
indices stay silent and are left to the interpreter's dynamic bounds checks.

Rules can be suppressed per kernel via ``Kernel.suppressions`` (see
``KernelBuilder.suppress``); suppressed findings are counted but dropped.
"""

from __future__ import annotations

import dataclasses
import math
import re
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import ast as ir
from .analysis import LaunchContext

__all__ = [
    "Diagnostic",
    "VerifyReport",
    "verify_launch",
    "RULES",
    "SEVERITIES",
]

#: rule id -> one-line catalogue entry (docs/LINT.md holds the long form)
RULES = {
    "R-RACE-GLOBAL": "inter-workitem data race on a __global buffer",
    "R-RACE-LOCAL": "__local access pair not separated by a barrier",
    "R-BARRIER-DIV": "barrier under workitem-divergent control flow",
    "R-OOB": "index provably out of bounds for the launch's buffer sizes",
    "R-FLAGS": "access violates the buffer's mem_flags",
    "R-UNINIT-LOCAL": "__local array read before any store",
    "R-UNUSED-PARAM": "kernel parameter is never referenced",
    "R-VEC": "why implicit vectorization bails (informational)",
}

SEVERITIES = ("error", "warning", "note")
_SEV_ORDER = {s: i for i, s in enumerate(SEVERITIES)}

_INF = math.inf

#: full unroll is attempted while (trips * enclosing unroll factor) stays
#: under this cap; beyond it a loop becomes symbolic (body walked twice)
_MAX_UNROLL_TOTAL = 256


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One structured finding."""

    severity: str  # "error" | "warning" | "note"
    rule: str  # e.g. "R-RACE-GLOBAL"
    kernel: str
    location: str  # AST path, e.g. "body[3]/for[p=2]/then[0]"
    message: str
    hint: str = ""

    def format(self) -> str:
        out = f"[{self.severity}] {self.rule} {self.kernel} @ {self.location}: {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out


@dataclasses.dataclass
class VerifyReport:
    """All diagnostics for one (kernel, launch) pair."""

    kernel: str
    diagnostics: List[Diagnostic] = dataclasses.field(default_factory=list)
    suppressed: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def notes(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "note"]

    @property
    def ok(self) -> bool:
        """No error-severity findings (launch would be allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No errors and no warnings (notes are informational)."""
        return not self.errors and not self.warnings

    def by_rule(self) -> Dict[str, List[Diagnostic]]:
        out: Dict[str, List[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule, []).append(d)
        return out

    def counts(self) -> Tuple[int, int, int]:
        return len(self.errors), len(self.warnings), len(self.notes)

    def render(self, show_notes: bool = True) -> str:
        lines = []
        for d in self.diagnostics:
            if d.severity == "note" and not show_notes:
                continue
            lines.append(d.format())
        if self.suppressed:
            lines.append(f"({self.suppressed} finding(s) suppressed)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Value domain: affine form over symbols + integer interval
# ---------------------------------------------------------------------------

#: symbols: ("l", dim) / ("grp", dim) workitem ids, ("loop", token) iteration
_Sym = Tuple[str, object]


class _Aff:
    """``const + sum(coeff[s] * s)`` with concrete float coefficients."""

    __slots__ = ("const", "coeffs")

    def __init__(self, const: float = 0.0, coeffs: Optional[Dict[_Sym, float]] = None):
        self.const = float(const)
        self.coeffs: Dict[_Sym, float] = dict(coeffs or {})

    def _combine(self, other: "_Aff", sign: float) -> "_Aff":
        out = dict(self.coeffs)
        for s, c in other.coeffs.items():
            out[s] = out.get(s, 0.0) + sign * c
        return _Aff(
            self.const + sign * other.const,
            {s: c for s, c in out.items() if c != 0.0},
        )

    def __add__(self, o: "_Aff") -> "_Aff":
        return self._combine(o, 1.0)

    def __sub__(self, o: "_Aff") -> "_Aff":
        return self._combine(o, -1.0)

    def scale(self, k: float) -> "_Aff":
        if k == 0:
            return _Aff(0.0)
        return _Aff(self.const * k, {s: c * k for s, c in self.coeffs.items()})

    @property
    def is_const(self) -> bool:
        return not self.coeffs


class _Val:
    """An expression's abstract value: optional affine form + interval."""

    __slots__ = ("aff", "lo", "hi", "wi")

    def __init__(self, aff: Optional[_Aff] = None, lo: float = -_INF,
                 hi: float = _INF, wi: bool = False):
        self.aff = aff
        self.lo = lo
        self.hi = hi
        #: varies across workitems of one workgroup
        self.wi = wi


class _Guards:
    """Active constraints: per-symbol ranges + linear (aff, lo, hi) bounds."""

    __slots__ = ("ranges", "lin")

    def __init__(self, ranges: Dict[_Sym, Tuple[float, float]],
                 lin: Tuple[Tuple[_Aff, float, float], ...] = ()):
        self.ranges = ranges
        self.lin = lin


def _aff_bounds(aff: _Aff, guards: _Guards) -> Tuple[float, float, bool]:
    """Interval of ``aff`` under ``guards``; third item is False when some
    linear constraint could not be applied (bounds then over-approximate an
    already-guarded value)."""
    lo = hi = aff.const
    for s, c in aff.coeffs.items():
        slo, shi = guards.ranges.get(s, (-_INF, _INF))
        if c >= 0:
            lo += c * slo
            hi += c * shi
        else:
            lo += c * shi
            hi += c * slo
    applied_all = True
    for ga, glo, ghi in guards.lin:
        d = aff - ga
        if d.is_const:
            lo = max(lo, glo + d.const)
            hi = min(hi, ghi + d.const)
        else:
            applied_all = False
    return lo, hi, applied_all


def _imul_bounds(alo, ahi, blo, bhi) -> Tuple[float, float]:
    cands = []
    for x in (alo, ahi):
        for y in (blo, bhi):
            if (x == 0 and math.isinf(y)) or (y == 0 and math.isinf(x)):
                cands.append(0.0)
            else:
                cands.append(x * y)
    return min(cands), max(cands)


@dataclasses.dataclass
class _Access:
    """One recorded memory access with its evaluation context."""

    name: str
    kind: str  # "load" | "store" | "atomic"
    local: bool
    val: _Val
    guards: _Guards
    pos: int  # linearization position (barriers share the counter)
    loc: str


_ITER_MARK = re.compile(r"[=~][-\d]+")


def _site(loc: str) -> str:
    """Location with unroll-iteration markers removed (for deduplication)."""
    return _ITER_MARK.sub("", loc)


_NEG_OP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
_MIRROR_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


class _Verifier:
    def __init__(self, kernel: ir.Kernel, ctx: LaunchContext,
                 buffer_sizes: Optional[Dict[str, int]],
                 buffer_flags: Optional[Dict[str, str]]):
        self.kernel = kernel
        self.ctx = ctx
        self.buffer_sizes = dict(buffer_sizes or {})
        self.buffer_flags = dict(buffer_flags or {})
        self.diags: List[Diagnostic] = []
        self._diag_keys: set = set()
        self.accesses: List[_Access] = []
        self.barriers: List[int] = []
        self.pos = 0
        self.used: set = set()
        self.wi_loops: set = set()
        self._loop_id = 0
        self._unroll_scale = 1

        self.base_ranges: Dict[_Sym, Tuple[float, float]] = {}
        for d, g in enumerate(ctx.global_size):
            l = ctx.local_size[d] if d < len(ctx.local_size) else 1
            l = max(1, int(l))
            ngr = max(1, int(g) // l)
            self.base_ranges[("l", d)] = (0.0, float(l - 1))
            self.base_ranges[("grp", d)] = (0.0, float(ngr - 1))
        self.scalar_names = {p.name for p in kernel.scalar_params}
        self.local_sizes = {a.name: a.size for a in kernel.local_arrays}

    # -- diagnostics --------------------------------------------------------
    def _diag(self, severity: str, rule: str, loc: str, message: str,
              hint: str = "", key: object = None) -> None:
        k = (rule, key) if key is not None else (rule, severity, _site(loc), message)
        if k in self._diag_keys:
            return
        self._diag_keys.add(k)
        self.diags.append(
            Diagnostic(severity, rule, self.kernel.name, _site(loc), message, hint)
        )

    # -- value helpers ------------------------------------------------------
    def _wi_of_aff(self, aff: _Aff) -> bool:
        for s, c in aff.coeffs.items():
            if c == 0:
                continue
            if s[0] == "l":
                lo, hi = self.base_ranges.get(s, (0.0, 0.0))
                if hi > lo:
                    return True
            elif s[0] == "loop" and s in self.wi_loops:
                return True
        return False

    def _val_from_aff(self, aff: _Aff, guards: _Guards) -> _Val:
        lo, hi, _ = _aff_bounds(aff, guards)
        return _Val(aff, lo, hi, self._wi_of_aff(aff))

    @staticmethod
    def _union(a: Optional[_Val], b: Optional[_Val], extra_wi: bool) -> _Val:
        if a is None and b is None:
            return _Val(wi=extra_wi)
        if a is None or b is None:
            v = a if a is not None else b
            return _Val(v.aff, v.lo, v.hi, v.wi or extra_wi)
        aff = None
        if (a.aff is not None and b.aff is not None
                and a.aff.const == b.aff.const and a.aff.coeffs == b.aff.coeffs):
            aff = a.aff
        return _Val(aff, min(a.lo, b.lo), max(a.hi, b.hi),
                    a.wi or b.wi or extra_wi)

    # -- expression evaluation ---------------------------------------------
    def _eval(self, e: ir.Expr, env: Dict[str, _Val], guards: _Guards,
              loc: str, record: bool = True) -> _Val:
        # dispatch ordered by dynamic frequency: big kernels are mostly
        # BinOp/Const/Var leaves, the id/size queries are rare
        if isinstance(e, ir.BinOp):
            return self._eval_binop(e, env, guards, loc, record)
        if isinstance(e, ir.Const):
            if isinstance(e.value, bool):
                return _Val(None, 0.0, 1.0)
            if isinstance(e.value, (int, float)):
                v = float(e.value)
                return _Val(_Aff(v), v, v)
            return _Val()
        if isinstance(e, ir.Var):
            if e.name in self.scalar_names:
                self.used.add(e.name)
            if e.name in env:
                return env[e.name]
            if e.name in self.ctx.scalars:
                try:
                    v = float(self.ctx.scalars[e.name])
                except (TypeError, ValueError):
                    return _Val()
                return _Val(_Aff(v), v, v)
            return _Val()
        if isinstance(e, ir.GlobalId):
            d = e.dim
            if d >= len(self.ctx.global_size):
                return _Val(_Aff(0.0), 0.0, 0.0)
            l = self.ctx.local_size[d] if d < len(self.ctx.local_size) else 1
            aff = _Aff(0.0, {("grp", d): float(max(1, l)), ("l", d): 1.0})
            return self._val_from_aff(aff, guards)
        if isinstance(e, ir.LocalId):
            if e.dim >= len(self.ctx.global_size):
                return _Val(_Aff(0.0), 0.0, 0.0)
            return self._val_from_aff(_Aff(0.0, {("l", e.dim): 1.0}), guards)
        if isinstance(e, ir.GroupId):
            if e.dim >= len(self.ctx.global_size):
                return _Val(_Aff(0.0), 0.0, 0.0)
            return self._val_from_aff(_Aff(0.0, {("grp", e.dim): 1.0}), guards)
        if isinstance(e, ir.GlobalSize):
            v = float(self.ctx.global_size[e.dim]) if e.dim < len(self.ctx.global_size) else 1.0
            return _Val(_Aff(v), v, v)
        if isinstance(e, ir.LocalSize):
            v = float(self.ctx.local_size[e.dim]) if e.dim < len(self.ctx.local_size) else 1.0
            return _Val(_Aff(v), v, v)
        if isinstance(e, ir.NumGroups):
            ng = self.ctx.num_groups
            v = float(ng[e.dim]) if e.dim < len(ng) else 1.0
            return _Val(_Aff(v), v, v)
        if isinstance(e, ir.Cast):
            v = self._eval(e.operand, env, guards, loc, record)
            if not e.dtype.is_float:
                lo = math.floor(v.lo) if math.isfinite(v.lo) else v.lo
                hi = math.ceil(v.hi) if math.isfinite(v.hi) else v.hi
                return _Val(v.aff, lo, hi, v.wi)
            return v
        if isinstance(e, ir.UnOp):
            v = self._eval(e.operand, env, guards, loc, record)
            if e.op == "neg":
                return _Val(v.aff.scale(-1.0) if v.aff is not None else None,
                            -v.hi, -v.lo, v.wi)
            return _Val(None, 0.0, 1.0, v.wi)
        if isinstance(e, ir.Call):
            wi = False
            for a in e.args:
                wi = self._eval(a, env, guards, loc, record).wi or wi
            return _Val(None, -_INF, _INF, wi)
        if isinstance(e, ir.Select):
            c = self._eval(e.cond, env, guards, loc, record)
            a = self._eval(e.if_true, env, guards, loc, record)
            b = self._eval(e.if_false, env, guards, loc, record)
            u = self._union(a, b, c.wi)
            return u
        if isinstance(e, ir.Load):
            idx = self._eval(e.index, env, guards, loc, record)
            if record:
                self.used.add(e.buffer)
                self._record(e.buffer, "load", False, idx, guards, loc)
            return _Val(None, -_INF, _INF, idx.wi)
        if isinstance(e, ir.LoadLocal):
            idx = self._eval(e.index, env, guards, loc, record)
            if record:
                self._record(e.array, "load", True, idx, guards, loc)
            return _Val(None, -_INF, _INF, idx.wi)
        return _Val()

    def _eval_binop(self, e: ir.BinOp, env, guards, loc, record) -> _Val:
        a = self._eval(e.lhs, env, guards, loc, record)
        b = self._eval(e.rhs, env, guards, loc, record)
        op = e.op
        wi = a.wi or b.wi
        if op in ir.CMP_OPS or op in ("and", "or"):
            return _Val(None, 0.0, 1.0, wi)
        if op == "+":
            aff = a.aff + b.aff if (a.aff is not None and b.aff is not None) else None
            if aff is not None:
                return self._val_from_aff(aff, guards)
            return _Val(None, a.lo + b.lo, a.hi + b.hi, wi)
        if op == "-":
            aff = a.aff - b.aff if (a.aff is not None and b.aff is not None) else None
            if aff is not None:
                return self._val_from_aff(aff, guards)
            return _Val(None, a.lo - b.hi, a.hi - b.lo, wi)
        if op == "*":
            if a.aff is not None and b.aff is not None:
                if a.aff.is_const:
                    return self._val_from_aff(b.aff.scale(a.aff.const), guards)
                if b.aff.is_const:
                    return self._val_from_aff(a.aff.scale(b.aff.const), guards)
            lo, hi = _imul_bounds(a.lo, a.hi, b.lo, b.hi)
            return _Val(None, lo, hi, wi)
        if op in ("/", "//"):
            if b.aff is not None and b.aff.is_const and b.aff.const != 0:
                k = b.aff.const
                if a.aff is not None:
                    scaled = a.aff.scale(1.0 / k)
                    if (float(scaled.const).is_integer()
                            and all(float(c).is_integer() for c in scaled.coeffs.values())):
                        return self._val_from_aff(scaled, guards)
                if e.dtype.is_float:
                    lo, hi = _imul_bounds(a.lo, a.hi, 1.0 / k, 1.0 / k)
                    return _Val(None, lo, hi, wi)
                if k > 0:
                    lo = math.floor(a.lo / k) if math.isfinite(a.lo) else a.lo
                    hi = math.floor(a.hi / k) if math.isfinite(a.hi) else a.hi
                    return _Val(None, lo, hi, wi)
            return _Val(None, -_INF, _INF, wi)
        if op == "%":
            if b.aff is not None and b.aff.is_const and b.aff.const > 0:
                k = b.aff.const
                hi = k - 1 if not e.dtype.is_float else k
                return _Val(None, 0.0, hi, wi)
            return _Val(None, -_INF, _INF, wi)
        if op == "min":
            aff = None
            if (a.aff is not None and b.aff is not None
                    and a.aff.const == b.aff.const and a.aff.coeffs == b.aff.coeffs):
                aff = a.aff
            return _Val(aff, min(a.lo, b.lo), min(a.hi, b.hi), wi)
        if op == "max":
            aff = None
            if (a.aff is not None and b.aff is not None
                    and a.aff.const == b.aff.const and a.aff.coeffs == b.aff.coeffs):
                aff = a.aff
            return _Val(aff, max(a.lo, b.lo), max(a.hi, b.hi), wi)
        if op == "&":
            for x, y in ((a, b), (b, a)):
                if y.aff is not None and y.aff.is_const and y.aff.const >= 0:
                    return _Val(None, 0.0, y.aff.const, wi)
            return _Val(None, -_INF, _INF, wi)
        if op in ("|", "^"):
            if a.lo >= 0 and b.lo >= 0:
                return _Val(None, 0.0, _INF, wi)
            return _Val(None, -_INF, _INF, wi)
        if op == "<<":
            if b.aff is not None and b.aff.is_const and b.aff.const >= 0:
                f = float(2 ** int(b.aff.const))
                if a.aff is not None:
                    return self._val_from_aff(a.aff.scale(f), guards)
                return _Val(None, a.lo * f, a.hi * f, wi)
            return _Val(None, -_INF, _INF, wi)
        if op == ">>":
            if b.aff is not None and b.aff.is_const and b.aff.const >= 0:
                f = float(2 ** int(b.aff.const))
                if a.aff is not None:
                    scaled = a.aff.scale(1.0 / f)
                    if (float(scaled.const).is_integer()
                            and all(float(c).is_integer() for c in scaled.coeffs.values())):
                        return self._val_from_aff(scaled, guards)
                lo = math.floor(a.lo / f) if math.isfinite(a.lo) else a.lo
                hi = math.floor(a.hi / f) if math.isfinite(a.hi) else a.hi
                return _Val(None, lo, hi, wi)
            return _Val(None, -_INF, _INF, wi)
        return _Val(None, -_INF, _INF, wi)

    # -- guard refinement ---------------------------------------------------
    def _refine(self, guards: _Guards, cond: ir.Expr, polarity: bool,
                env: Dict[str, _Val]) -> _Guards:
        ranges = dict(guards.ranges)
        lin = list(guards.lin)
        self._apply_cond(cond, polarity, env, guards, ranges, lin)
        return _Guards(ranges, tuple(lin))

    def _apply_cond(self, cond, pol, env, guards, ranges, lin) -> None:
        if isinstance(cond, ir.UnOp) and cond.op == "not":
            self._apply_cond(cond.operand, not pol, env, guards, ranges, lin)
            return
        if isinstance(cond, ir.BinOp) and cond.op in ("and", "or"):
            # a conjunction (taken "and", or refuted "or") refines both sides
            if (cond.op == "and") == pol:
                self._apply_cond(cond.lhs, pol, env, guards, ranges, lin)
                self._apply_cond(cond.rhs, pol, env, guards, ranges, lin)
            return
        if not (isinstance(cond, ir.BinOp) and cond.op in ir.CMP_OPS):
            return
        op = cond.op if pol else _NEG_OP[cond.op]
        if op == "!=":
            return
        a = self._eval(cond.lhs, env, guards, "", record=False)
        b = self._eval(cond.rhs, env, guards, "", record=False)
        if a.aff is not None and not a.aff.is_const:
            if b.aff is not None and b.aff.is_const:
                self._constrain(a.aff, op, b.aff.const, b.aff.const, ranges, lin)
            elif b.aff is not None:
                self._constrain(a.aff - b.aff, op, 0.0, 0.0, ranges, lin)
            else:
                # affine vs interval: use the interval's endpoints
                self._constrain(a.aff, op, b.lo, b.hi, ranges, lin)
        elif b.aff is not None and not b.aff.is_const:
            m = _MIRROR_OP[op]
            if a.aff is not None and a.aff.is_const:
                self._constrain(b.aff, m, a.aff.const, a.aff.const, ranges, lin)
            else:
                self._constrain(b.aff, m, a.lo, a.hi, ranges, lin)

    def _constrain(self, aff: _Aff, op: str, klo: float, khi: float,
                   ranges, lin) -> None:
        """Record ``aff op [klo, khi]`` as a bound ``lo <= aff <= hi``."""
        if op == "<":
            lo, hi = -_INF, khi - 1
        elif op == "<=":
            lo, hi = -_INF, khi
        elif op == ">":
            lo, hi = klo + 1, _INF
        elif op == ">=":
            lo, hi = klo, _INF
        elif op == "==":
            if klo != khi:
                return
            lo, hi = klo, khi
        else:
            return
        if len(aff.coeffs) == 1:
            (sym, c), = aff.coeffs.items()
            if c != 0:
                slo, shi = ranges.get(sym, (-_INF, _INF))
                l2 = (lo - aff.const) / c
                h2 = (hi - aff.const) / c
                if c < 0:
                    l2, h2 = h2, l2
                if math.isfinite(l2):
                    slo = max(slo, math.ceil(l2 - 1e-9))
                if math.isfinite(h2):
                    shi = min(shi, math.floor(h2 + 1e-9))
                ranges[sym] = (slo, shi)
                return
        lin.append((_Aff(aff.const, aff.coeffs), lo, hi))

    # -- statement walk -----------------------------------------------------
    def run(self) -> None:
        env: Dict[str, _Val] = {}
        guards = _Guards(dict(self.base_ranges), ())
        self._walk_body(self.kernel.body, env, guards, "body", False)
        self._rule_flags()
        self._rule_oob()
        self._rule_global_races()
        self._rule_local_races()
        self._rule_uninit_local()
        self._rule_unused_params()

    def _record(self, name, kind, local, idxval, guards, loc) -> None:
        self.accesses.append(_Access(name, kind, local, idxval, guards, self.pos, loc))
        self.pos += 1

    def _walk_body(self, body, env, guards, path, div) -> None:
        for i, s in enumerate(body):
            self._walk_stmt(s, env, guards, f"{path}[{i}]", div)

    def _walk_stmt(self, s, env, guards, loc, div) -> None:
        if isinstance(s, ir.Assign):
            env[s.name] = self._eval(s.value, env, guards, loc)
        elif isinstance(s, (ir.Store, ir.AtomicAdd)):
            idx = self._eval(s.index, env, guards, loc)
            self._eval(s.value, env, guards, loc)
            self.used.add(s.buffer)
            kind = "store" if isinstance(s, ir.Store) else "atomic"
            self._record(s.buffer, kind, False, idx, guards, loc)
        elif isinstance(s, (ir.StoreLocal, ir.AtomicAddLocal)):
            idx = self._eval(s.index, env, guards, loc)
            self._eval(s.value, env, guards, loc)
            kind = "store" if isinstance(s, ir.StoreLocal) else "atomic"
            self._record(s.array, kind, True, idx, guards, loc)
        elif isinstance(s, ir.Barrier):
            if div:
                self._diag(
                    "error", "R-BARRIER-DIV", loc,
                    "barrier under control flow whose condition varies across "
                    "workitems of one workgroup (OpenCL undefined behaviour: "
                    "some workitems would skip the barrier)",
                    hint="hoist the barrier out of the divergent if/for, or "
                         "make the condition uniform per workgroup",
                )
            self.barriers.append(self.pos)
            self.pos += 1
        elif isinstance(s, ir.If):
            cond = self._eval(s.cond, env, guards, loc)
            g_then = self._refine(guards, s.cond, True, env)
            env_then = dict(env)
            self._walk_body(s.then_body, env_then, g_then, loc + "/then",
                            div or cond.wi)
            env_else = dict(env)
            if s.else_body:
                g_else = self._refine(guards, s.cond, False, env)
                self._walk_body(s.else_body, env_else, g_else, loc + "/else",
                                div or cond.wi)
            for name in set(env_then) | set(env_else):
                a = env_then.get(name, env.get(name))
                b = env_else.get(name, env.get(name))
                env[name] = self._union(a, b, cond.wi)
        elif isinstance(s, ir.For):
            self._walk_for(s, env, guards, loc, div)

    def _walk_for(self, s: ir.For, env, guards, loc, div) -> None:
        start = self._eval(s.start, env, guards, loc)
        stop = self._eval(s.stop, env, guards, loc)
        step = self._eval(s.step, env, guards, loc)
        wi_bounds = start.wi or stop.wi or step.wi
        trips: Optional[int] = None
        c0 = c1 = st = 0.0
        if (start.aff is not None and start.aff.is_const
                and stop.aff is not None and stop.aff.is_const
                and step.aff is not None and step.aff.is_const
                and step.aff.const != 0):
            c0, c1, st = start.aff.const, stop.aff.const, step.aff.const
            if st > 0:
                trips = max(0, math.ceil((c1 - c0) / st))
            else:
                trips = max(0, math.ceil((c0 - c1) / -st))
            trips = int(trips)
        if trips == 0:
            return
        saved = env.get(s.var)

        if trips is not None and trips * self._unroll_scale <= _MAX_UNROLL_TOTAL:
            self._unroll_scale *= trips
            for t in range(trips):
                v = c0 + t * st
                env[s.var] = _Val(_Aff(v), v, v, False)
                self._walk_body(s.body, env, guards,
                                f"{loc}/for[{s.var}={int(v)}]", div or wi_bounds)
            self._unroll_scale //= trips
        else:
            self._loop_id += 1
            sym: _Sym = ("loop", f"{s.var}#{self._loop_id}")
            ranges = dict(guards.ranges)
            ranges[sym] = (0.0, float(trips - 1)) if trips is not None else (0.0, _INF)
            g2 = _Guards(ranges, guards.lin)
            if wi_bounds:
                self.wi_loops.add(sym)
            if (start.aff is not None and step.aff is not None
                    and step.aff.is_const and step.aff.const != 0):
                aff = start.aff + _Aff(0.0, {sym: step.aff.const})
                var_val = self._val_from_aff(aff, g2)
                if wi_bounds:
                    var_val.wi = True
            else:
                lo = start.lo
                hi = max(start.hi, stop.hi - 1) if step.lo >= 0 else _INF
                if step.lo < 0:
                    lo = -_INF
                var_val = _Val(None, lo, hi, wi_bounds or start.wi or stop.wi)
            env[s.var] = var_val
            reps = 1 if trips == 1 else 2
            self._unroll_scale *= reps
            for r in range(reps):
                self._walk_body(s.body, env, g2, f"{loc}/for[{s.var}~{r}]",
                                div or wi_bounds)
            self._unroll_scale //= reps
        if saved is not None:
            env[s.var] = saved
        else:
            env.pop(s.var, None)

    # -- race machinery -----------------------------------------------------
    def _sym_size(self, sym: _Sym, guards: _Guards) -> float:
        lo, hi = guards.ranges.get(sym, (-_INF, _INF))
        if math.isinf(lo) or math.isinf(hi):
            return _INF
        return max(0.0, hi - lo + 1)

    def _self_race(self, aff: _Aff, guards: _Guards, wi_kinds: Tuple[str, ...],
                   fixed_kinds: Tuple[str, ...] = ()) -> bool:
        """True when two *different* workitems can produce the same index."""
        for sym in self.base_ranges:
            if sym[0] not in wi_kinds:
                continue
            if self._sym_size(sym, guards) <= 1:
                continue
            if aff.coeffs.get(sym, 0.0) == 0.0:
                return True  # several active items share every index value
        entries = []
        for sym, c in aff.coeffs.items():
            if c == 0 or sym[0] in fixed_kinds:
                continue
            n = self._sym_size(sym, guards)
            if n <= 1:
                continue
            entries.append((abs(c), n, sym[0] in wi_kinds))
        entries.sort(key=lambda t: t[0])
        span = 0.0
        for c, n, is_wi in entries:
            if is_wi and span >= c:
                return True  # smaller terms can bridge the gap between items
            span = _INF if math.isinf(n) else span + c * (n - 1)
        return False

    def _union_guards(self, g1: _Guards, g2: _Guards) -> _Guards:
        ranges = {}
        for sym in set(g1.ranges) | set(g2.ranges):
            l1, h1 = g1.ranges.get(sym, (-_INF, _INF))
            l2, h2 = g2.ranges.get(sym, (-_INF, _INF))
            ranges[sym] = (min(l1, l2), max(h1, h2))
        return _Guards(ranges, ())

    def _pair_conflict(self, a: _Access, b: _Access,
                       wi_kinds: Tuple[str, ...],
                       fixed_kinds: Tuple[str, ...] = ()) -> bool:
        """Can workitem i's access ``a`` alias workitem j's access ``b``, i != j?"""
        fa, fb = a.val.aff, b.val.aff
        if fa is not None and fb is not None:
            d = fa - fb
            if d.is_const and d.const == 0.0:
                # identical index functions: aliasing needs non-injectivity
                return self._self_race(fa, self._union_guards(a.guards, b.guards),
                                       wi_kinds, fixed_kinds)
            # gcd feasibility of  f(i) - g(j) = 0  over independent symbol
            # copies (symbols of fixed kinds are shared between i and j and
            # enter via their coefficient difference)
            coeffs: List[float] = []
            shared: Dict[_Sym, float] = {}
            feasible_test = True
            for src, sign in ((fa, 1.0), (fb, -1.0)):
                for sym, c in src.coeffs.items():
                    if sym[0] in fixed_kinds:
                        shared[sym] = shared.get(sym, 0.0) + sign * c
                    else:
                        coeffs.append(c)
            coeffs += [c for c in shared.values() if c != 0.0]
            ints = []
            for c in coeffs:
                if not float(c).is_integer():
                    feasible_test = False
                    break
                ints.append(abs(int(c)))
            delta = fb.const - fa.const
            if feasible_test and float(delta).is_integer() and ints:
                g = 0
                for c in ints:
                    g = math.gcd(g, c)
                if g > 1 and int(delta) % g != 0:
                    return False
        # interval disjointness under each access's own guards
        if a.val.hi < b.val.lo or b.val.hi < a.val.lo:
            return False
        return True

    def _barrier_between(self, p1: int, p2: int) -> bool:
        i = bisect_right(self.barriers, p1)
        return i < len(self.barriers) and self.barriers[i] < p2

    # -- rules --------------------------------------------------------------
    def _rule_flags(self) -> None:
        for acc in self.accesses:
            if acc.local:
                continue
            flags = self.buffer_flags.get(acc.name)
            if flags is None:
                continue
            if acc.kind in ("store", "atomic") and "w" not in flags:
                self._diag(
                    "error", "R-FLAGS", acc.loc,
                    f"kernel writes buffer {acc.name!r} created with "
                    f"mem_flags.READ_ONLY",
                    hint="allocate the buffer READ_WRITE/WRITE_ONLY, or drop "
                         "the store",
                    key=(acc.name, "w"),
                )
            if acc.kind == "load" and "r" not in flags:
                self._diag(
                    "error", "R-FLAGS", acc.loc,
                    f"kernel reads buffer {acc.name!r} created with "
                    f"mem_flags.WRITE_ONLY",
                    hint="allocate the buffer READ_WRITE/READ_ONLY, or drop "
                         "the load",
                    key=(acc.name, "r"),
                )

    def _rule_oob(self) -> None:
        for acc in self.accesses:
            size = (self.local_sizes.get(acc.name) if acc.local
                    else self.buffer_sizes.get(acc.name))
            if size is None:
                continue
            lo, hi = acc.val.lo, acc.val.hi
            what = f"local array {acc.name!r}" if acc.local else f"buffer {acc.name!r}"
            if acc.val.aff is not None:
                _, _, exact = _aff_bounds(acc.val.aff, acc.guards)
                if (exact and math.isfinite(lo) and math.isfinite(hi)
                        and (lo < 0 or hi >= size)):
                    self._diag(
                        "error", "R-OOB", acc.loc,
                        f"index range [{int(lo)}, {int(hi)}] of {what} escapes "
                        f"[0, {size}) at this launch size",
                        hint="guard the access with the buffer length or fix "
                             "the index arithmetic",
                        key=(acc.name, _site(acc.loc)),
                    )
            elif hi < 0 or lo >= size:
                self._diag(
                    "error", "R-OOB", acc.loc,
                    f"index interval [{lo:g}, {hi:g}] of {what} lies entirely "
                    f"outside [0, {size})",
                    hint="fix the index arithmetic",
                    key=(acc.name, _site(acc.loc)),
                )

    def _rule_global_races(self) -> None:
        by_buf: Dict[str, List[_Access]] = {}
        for a in self.accesses:
            if not a.local:
                by_buf.setdefault(a.name, []).append(a)
        wi = ("l", "grp")
        for buf, accs in by_buf.items():
            stores = [a for a in accs if a.kind == "store"]
            atomics = [a for a in accs if a.kind == "atomic"]
            loads = [a for a in accs if a.kind == "load"]
            for s in stores:
                if s.val.aff is None:
                    self._diag(
                        "warning", "R-RACE-GLOBAL", s.loc,
                        f"cannot prove the scatter store to {buf!r} race-free "
                        f"(data-dependent index)",
                        hint="use atomic_add, or ensure indices are distinct "
                             "per workitem by construction",
                        key=(buf, "scatter", _site(s.loc)),
                    )
                elif self._self_race(s.val.aff, s.guards, wi):
                    self._diag(
                        "error", "R-RACE-GLOBAL", s.loc,
                        f"two workitems may store the same element of {buf!r} "
                        f"(index {s.val.aff.const:g}"
                        f"{'' if s.val.aff.is_const else ' + ...'} is not "
                        f"injective across workitems)",
                        hint="make the store index include get_global_id with "
                             "a dominating stride, guard it to one workitem, "
                             "or use atomic_add",
                        key=(buf, "self", _site(s.loc)),
                    )
            for i, s1 in enumerate(stores):
                for s2 in stores[i + 1:]:
                    if s1.val.aff is None or s2.val.aff is None:
                        continue
                    if self._pair_conflict(s1, s2, wi):
                        self._diag(
                            "error", "R-RACE-GLOBAL", s1.loc,
                            f"stores to {buf!r} at {_site(s1.loc)} and "
                            f"{_site(s2.loc)} may hit the same element from "
                            f"different workitems",
                            hint="separate the index ranges or restructure so "
                                 "one workitem owns each element",
                            key=(buf, _site(s1.loc), _site(s2.loc)),
                        )
            for s in stores:
                for t in atomics:
                    if self._pair_conflict(s, t, wi):
                        self._diag(
                            "error", "R-RACE-GLOBAL", s.loc,
                            f"plain store and atomic_add on {buf!r} may hit "
                            f"the same element from different workitems",
                            hint="make both accesses atomic",
                            key=(buf, "mix", _site(s.loc), _site(t.loc)),
                        )
            for s in stores:
                if s.val.aff is None:
                    continue
                for l in loads:
                    if self._pair_conflict(s, l, wi):
                        self._diag(
                            "error", "R-RACE-GLOBAL", s.loc,
                            f"workitems read and write overlapping elements "
                            f"of {buf!r} ({_site(l.loc)} vs {_site(s.loc)}) "
                            f"with no ordering between workitems",
                            hint="double-buffer the data or split the kernel "
                                 "into two launches",
                            key=(buf, "rw", _site(s.loc), _site(l.loc)),
                        )
            for t in atomics:
                for l in loads:
                    if self._pair_conflict(t, l, wi):
                        self._diag(
                            "warning", "R-RACE-GLOBAL", l.loc,
                            f"read of {buf!r} may observe a concurrent "
                            f"atomic_add from another workitem",
                            hint="read the result in a second launch",
                            key=(buf, "atomic-read", _site(t.loc), _site(l.loc)),
                        )

    def _rule_local_races(self) -> None:
        by_arr: Dict[str, List[_Access]] = {}
        for a in self.accesses:
            if a.local:
                by_arr.setdefault(a.name, []).append(a)
        wi = ("l",)
        fixed = ("grp",)
        for arr, accs in by_arr.items():
            for s in accs:
                if s.kind != "store":
                    continue
                if s.val.aff is None:
                    self._diag(
                        "warning", "R-RACE-LOCAL", s.loc,
                        f"cannot prove the scatter store to local {arr!r} "
                        f"race-free (data-dependent index)",
                        hint="use atomic_add on the local array",
                        key=(arr, "scatter", _site(s.loc)),
                    )
                elif self._self_race(s.val.aff, s.guards, wi, fixed):
                    self._diag(
                        "error", "R-RACE-LOCAL", s.loc,
                        f"two workitems of one workgroup may store the same "
                        f"element of local {arr!r} in the same barrier epoch",
                        hint="index the local array by get_local_id, or use "
                             "atomic_add",
                        key=(arr, "self", _site(s.loc)),
                    )
            for i, a in enumerate(accs):
                # accesses are recorded in program order (ascending .pos), so
                # the first barrier after ``a`` separates it from every later
                # access at once — stop the inner scan there instead of
                # testing each pair
                bi = bisect_right(self.barriers, a.pos)
                epoch_end = (self.barriers[bi] if bi < len(self.barriers)
                             else math.inf)
                for b in accs[i + 1:]:
                    if b.pos > epoch_end:
                        break
                    if a.kind == "load" and b.kind == "load":
                        continue
                    if a.kind == "atomic" and b.kind == "atomic":
                        continue
                    if self._pair_conflict(a, b, wi, fixed):
                        self._diag(
                            "error", "R-RACE-LOCAL", a.loc,
                            f"accesses to local {arr!r} at {_site(a.loc)} and "
                            f"{_site(b.loc)} may touch the same element from "
                            f"different workitems with no barrier between "
                            f"them",
                            hint="insert barrier() between the producing "
                                 "store and the consuming access",
                            key=(arr, _site(a.loc), _site(b.loc)),
                        )

    def _rule_uninit_local(self) -> None:
        first_store: Dict[str, int] = {}
        for a in self.accesses:
            if a.local and a.kind in ("store", "atomic"):
                p = first_store.get(a.name)
                if p is None or a.pos < p:
                    first_store[a.name] = a.pos
        for a in self.accesses:
            if not a.local or a.kind != "load":
                continue
            p = first_store.get(a.name)
            if p is None or p >= a.pos:
                self._diag(
                    "warning", "R-UNINIT-LOCAL", a.loc,
                    f"local array {a.name!r} is read before any workitem "
                    f"stores to it (contents are undefined in OpenCL)",
                    hint="initialize the local array (and barrier) before "
                         "the first read",
                    key=(a.name,),
                )

    def _rule_unused_params(self) -> None:
        for p in self.kernel.params:
            if p.name not in self.used:
                kind = "buffer" if isinstance(p, ir.BufferParam) else "scalar"
                self._diag(
                    "warning", "R-UNUSED-PARAM", "signature",
                    f"{kind} parameter {p.name!r} is never referenced by the "
                    f"kernel body",
                    hint="drop the parameter or use it",
                    key=(p.name,),
                )


_VEC_HINTS = {
    "atomics": "replace global atomics with a per-workgroup reduction",
    "divergent": "make barrier-reaching control flow uniform per workgroup",
    "scalar-only": "avoid erf-class builtins on the hot path",
    "smaller than SIMD": "launch workgroups of at least the SIMD width",
}


def _vec_hint(reason: str) -> str:
    for k, h in _VEC_HINTS.items():
        if k in reason:
            return h
    return ""


def verify_launch(
    kernel: ir.Kernel,
    ctx: LaunchContext,
    buffer_sizes: Optional[Dict[str, int]] = None,
    buffer_flags: Optional[Dict[str, str]] = None,
    include_vectorization: bool = True,
) -> VerifyReport:
    """Run all static rules for one launch configuration.

    ``buffer_sizes`` maps buffer param names to their element counts (enables
    R-OOB); ``buffer_flags`` maps them to the host allocation's effective
    access ("r", "w" or "rw" — from ``mem_flags``; enables R-FLAGS).
    """
    v = _Verifier(kernel, ctx, buffer_sizes, buffer_flags)
    v.run()
    diags = v.diags

    if include_vectorization:
        from .vectorize import OpenCLVectorizer

        rep = OpenCLVectorizer().vectorize(kernel, ctx)
        if not rep.vectorized:
            for reason in rep.reasons:
                diags.append(
                    Diagnostic(
                        "note", "R-VEC", kernel.name, "kernel",
                        f"implicit vectorization bails: {reason}",
                        _vec_hint(reason),
                    )
                )

    suppressions = frozenset(getattr(kernel, "suppressions", ()) or ())
    kept = [d for d in diags if d.rule not in suppressions]
    kept.sort(key=lambda d: _SEV_ORDER.get(d.severity, len(SEVERITIES)))
    return VerifyReport(
        kernel=kernel.name,
        diagnostics=kept,
        suppressed=len(diags) - len(kept),
    )
