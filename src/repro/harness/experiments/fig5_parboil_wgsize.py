"""Figure 5 — Parboil benchmarks with different workgroup size (CPU).

Workgroup size is swept 1x..16x (doubling), ending at each kernel's Table
III size; ``CP: cenergy`` is swept along both of its dimensions:
``cenergy(X)`` = 1x8 .. 16x8, ``cenergy(Y)`` = 16x1 .. 16x16.  The paper's
finding: throughput rises with workgroup size and saturates "when there is
enough computation inside the workgroup".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...suite import (
    CPCenergyBenchmark,
    MriFhdFHBenchmark,
    MriFhdRhoPhiBenchmark,
    MriQComputeQBenchmark,
    MriQPhiMagBenchmark,
)
from ..report import ExperimentResult, Series
from ..runner import cpu_dut, make_buffers, measure_kernel

__all__ = ["run", "SCALES"]

SCALES = (1, 2, 4, 8, 16)


def _sweeps(fast: bool) -> List[Tuple[str, object, tuple, List[tuple]]]:
    cp = CPCenergyBenchmark(natoms=200 if fast else 4000)
    phimag = MriQPhiMagBenchmark()
    computeq = MriQComputeQBenchmark(num_k=128 if fast else 3072)
    rhophi = MriFhdRhoPhiBenchmark()
    fh = MriFhdFHBenchmark(num_k=128 if fast else 3072)
    out = [
        ("CP: cenergy(X)", cp, (64, 512), [(s, 8) for s in SCALES]),
        ("CP: cenergy(Y)", cp, (64, 512), [(16, s) for s in SCALES]),
        ("MRI-Q: computePhiMag", phimag, (3072,), [(32 * s,) for s in SCALES]),
        ("MRI-Q: computeQ", computeq, (32768,), [(16 * s,) for s in SCALES]),
        ("MRI-FHD: RhoPhi", rhophi, (3072,), [(32 * s,) for s in SCALES]),
        ("MRI-FHD: FH", fh, (32768,), [(16 * s,) for s in SCALES]),
    ]
    return out


def run(fast: bool = False) -> ExperimentResult:
    cpu = cpu_dut()
    series: Dict[str, Dict[str, float]] = {}
    for label, bench, gs, locals_ in _sweeps(fast):
        buffers, scalars, _ = make_buffers(cpu, bench, gs)
        pts: Dict[str, float] = {}
        base = None
        for scale, ls in zip(SCALES, locals_):
            m = measure_kernel(cpu, bench, gs, ls, buffers=buffers, scalars=scalars)
            thr = m.throughput(float(gs[0]) * (gs[1] if len(gs) > 1 else 1))
            if base is None:
                base = thr
            pts[str(scale)] = thr / base
        series[label] = pts
    return ExperimentResult(
        experiment_id="fig5",
        title="Parboil benchmarks with different workgroup size on CPUs",
        series=[Series(k, v) for k, v in series.items()],
        notes=["x-axis: workgroup scale factor relative to the smallest size"],
    )
