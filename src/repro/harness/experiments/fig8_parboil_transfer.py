"""Figure 8 — Parboil data-transfer time, copy vs map, per direction.

Parboil kernels spend little time in transfer relative to compute, so the
paper reports raw transfer times rather than Equation-(1) throughput: the
host-to-device time for every kernel input, and the device-to-host time for
every kernel output, with each API.  Expected: mapping is faster in both
directions, because on a CPU device it only returns a pointer.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ... import minicl as cl
from ...suite import (
    CPCenergyBenchmark,
    MriFhdFHBenchmark,
    MriFhdRhoPhiBenchmark,
    MriQComputeQBenchmark,
    MriQPhiMagBenchmark,
)
from ..report import ExperimentResult, Series
from ..runner import cpu_dut, make_buffers

__all__ = ["run"]


def _apps(fast: bool):
    k = 256 if fast else 3072
    return {
        "CP": [CPCenergyBenchmark(natoms=200 if fast else 4000)],
        "MRI-Q": [MriQPhiMagBenchmark(), MriQComputeQBenchmark(num_k=k)],
        "MRI-FHD": [MriFhdRhoPhiBenchmark(), MriFhdFHBenchmark(num_k=k)],
    }


def run(fast: bool = False) -> ExperimentResult:
    cpu = cpu_dut()
    h2d: Dict[str, Dict[str, float]] = {"Copying": {}, "Mapping": {}}
    d2h: Dict[str, Dict[str, float]] = {"Copying": {}, "Mapping": {}}
    for app, benches in _apps(fast).items():
        times = {("Copying", "h2d"): 0.0, ("Mapping", "h2d"): 0.0,
                 ("Copying", "d2h"): 0.0, ("Mapping", "d2h"): 0.0}
        for bench in benches:
            gs = bench.default_global_sizes[0]
            buffers, scalars, host = make_buffers(cpu, bench, gs)
            kernel = bench.kernel()
            q = cpu.fresh_queue(functional=False)
            for p in kernel.buffer_params:
                buf = buffers[p.name]
                if "r" in p.access:
                    ev = q.enqueue_write_buffer(buf, host[p.name])
                    times[("Copying", "h2d")] += ev.duration_ns
                    view, ev = q.enqueue_map_buffer(buf, cl.map_flags.WRITE)
                    times[("Mapping", "h2d")] += ev.duration_ns
                    q.enqueue_unmap(buf, view)
                if "w" in p.access:
                    dst = np.empty_like(host[p.name])
                    ev = q.enqueue_read_buffer(buf, dst)
                    times[("Copying", "d2h")] += ev.duration_ns
                    view, ev = q.enqueue_map_buffer(buf, cl.map_flags.READ)
                    times[("Mapping", "d2h")] += ev.duration_ns
                    q.enqueue_unmap(buf, view)
        for api in ("Copying", "Mapping"):
            h2d[api][app] = times[(api, "h2d")] / 1e6  # ms
            d2h[api][app] = times[(api, "d2h")] / 1e6
    series = [
        Series("Copying (host to device)", h2d["Copying"]),
        Series("Mapping (host to device)", h2d["Mapping"]),
        Series("Copying (device to host)", d2h["Copying"]),
        Series("Mapping (device to host)", d2h["Mapping"]),
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Parboil data transfer time with different APIs (CPU)",
        series=series,
        value_name="transfer time (ms)",
    )
