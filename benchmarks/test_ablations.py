"""Ablation benches for the design choices DESIGN.md section 4 calls out.

Each ablation flips one modelling decision and checks the paper-shaped
result *depends on it* — i.e. the mechanism, not a coincidence, produces the
figure.
"""

import dataclasses

import numpy as np
import pytest

from repro.harness.experiments.fig9_affinity import CORES, build_consumer, build_producer
from repro.kernelir.analysis import LaunchContext
from repro.openmp import OpenMPRuntime
from repro.openmp.env import OmpEnv
from repro.simcpu.device import CPUDeviceModel
from repro.simcpu.scheduler import default_local_size
from repro.simcpu.spec import CPUSpec, XEON_E5645
from repro.simgpu.device import GPUDeviceModel
from repro.simgpu.spec import GPUSpec, GTX580
from repro.suite import MBENCHES
from repro.suite.simple.square import build_square_kernel


def _square_throughput(dev, n, wg=None, coalesce=1):
    k = build_square_kernel(coalesce)
    sc = {"n_per": coalesce} if coalesce > 1 else {}
    cost = dev.kernel_cost(k, (n // coalesce,), wg, scalars=sc,
                           buffer_bytes={"input": 4 * n, "output": 4 * n})
    return n / cost.total_ns


class TestA1NullPolicy:
    """A1: the NULL-local-size default must keep small NDRanges parallel."""

    def test_fixed_cap_starves_small_ndranges(self, benchmark):
        def run():
            naive = default_local_size((100,))               # cap-64 only
            tuned = default_local_size((100,), min_workgroups=48)
            return naive, tuned

        naive, tuned = benchmark(run)
        assert 100 // naive[0] < 24    # naive: fewer groups than threads
        assert 100 // tuned[0] >= 24   # tuned: every thread has work


class TestA2DispatchOverhead:
    """A2: per-workgroup dispatch cost drives the Figure 1 CPU gain."""

    @pytest.mark.parametrize("dispatch", [0.0, 600.0, 4800.0])
    def test_gain_tracks_dispatch_cost(self, benchmark, dispatch):
        spec = dataclasses.replace(XEON_E5645, workgroup_dispatch_cycles=dispatch)
        dev = CPUDeviceModel(spec)

        def gain():
            base = _square_throughput(dev, 1_000_000)
            co = _square_throughput(dev, 1_000_000, coalesce=1000)
            return co / base

        g = benchmark(gain)
        if dispatch == 0.0:
            assert g < 3.0
        if dispatch == 4800.0:
            assert g > 2.0

    def test_zero_dispatch_removes_most_of_the_effect(self):
        g0 = None
        gains = {}
        for dispatch in (0.0, 4800.0):
            spec = dataclasses.replace(
                XEON_E5645, workgroup_dispatch_cycles=dispatch
            )
            dev = CPUDeviceModel(spec)
            base = _square_throughput(dev, 1_000_000)
            co = _square_throughput(dev, 1_000_000, coalesce=1000)
            gains[dispatch] = co / base
        assert gains[4800.0] > gains[0.0]


class TestA3GpuLatencyHiding:
    """A3: the warp threshold drives the GPU's small-workgroup cliff."""

    @pytest.mark.parametrize("need", [2.0, 18.0])
    def test_cliff_depth_tracks_warp_threshold(self, benchmark, need):
        spec = dataclasses.replace(GTX580, warps_to_hide_latency=need)
        dev = GPUDeviceModel(spec)

        def cliff():
            tiny = _square_throughput(dev, 100_000, (1,))
            big = _square_throughput(dev, 100_000, (1000,))
            return big / tiny

        c = benchmark(cliff)
        if need == 18.0:
            assert c > 20
        else:
            assert c < 200  # shallower hardware hides with fewer warps

    def test_threshold_ordering(self):
        cliffs = {}
        for need in (2.0, 18.0):
            spec = dataclasses.replace(GTX580, warps_to_hide_latency=need)
            dev = GPUDeviceModel(spec)
            tiny = _square_throughput(dev, 100_000, (1,))
            big = _square_throughput(dev, 100_000, (1000,))
            cliffs[need] = big / tiny
        assert cliffs[18.0] > cliffs[2.0]


class TestA6RuntimeQuality:
    """A6 (paper Section II-A): "Better OpenCL implementation can have less
    overhead" — a SnuCL-style serializing runtime shrinks the coalescing
    effect without erasing it."""

    def test_serializing_runtime_shrinks_coalescing_gain(self, benchmark):
        def gains():
            out = {}
            for serialized in (False, True):
                dev = CPUDeviceModel(workitem_serialization=serialized)
                base = _square_throughput(dev, 1_000_000)
                co = _square_throughput(dev, 1_000_000, coalesce=1000)
                out[serialized] = co / base
            return out

        g = benchmark(gains)
        assert g[True] < g[False]       # less overhead -> smaller gain
        assert g[True] > 1.0            # but coalescing still pays

    def test_serializing_runtime_is_faster_at_base(self):
        ref = CPUDeviceModel()
        opt = CPUDeviceModel(workitem_serialization=True)
        assert _square_throughput(opt, 1_000_000) > _square_throughput(
            ref, 1_000_000
        )


class TestA4VectorizerFragility:
    """A4: the fragility rule creates Figure 10's chain-kernel asymmetry."""

    def test_fragility_off_recovers_openmp(self, benchmark):
        kernel = MBENCHES[0].kernel()  # chained triad
        n = 1 << 18
        host, scalars = MBENCHES[0].make_data((n,), np.random.default_rng(0))

        def run():
            fragile = OpenMPRuntime(functional=False).parallel_for(
                kernel, n, buffers=host, scalars=scalars
            )
            robust = OpenMPRuntime(
                functional=False, fragile_vectorizer=False
            ).parallel_for(kernel, n, buffers=host, scalars=scalars)
            return fragile, robust

        fragile, robust = benchmark(run)
        assert not fragile.vectorization.vectorized
        assert robust.vectorization.vectorized
        assert robust.time_ns < fragile.time_ns


class TestA5ResidencyTracking:
    """A5: cross-kernel cache residency is the mechanism behind Figure 9.

    With residency tracking active, the misaligned consumer pays shared-L3
    traffic and latency its aligned twin avoids.  Resetting the tracker
    between the kernels (= a runtime with no cross-kernel cache awareness,
    which is how OpenCL behaves) erases the difference entirely.
    """

    ENV = {
        "OMP_PROC_BIND": "true",
        "OMP_NUM_THREADS": str(CORES),
        "GOMP_CPU_AFFINITY": f"0-{CORES - 1}",
    }

    def _consumer_time(self, misaligned, reset_residency):
        n = 400_000
        rt = OpenMPRuntime(env=dict(self.ENV), functional=False)
        rng = np.random.default_rng(3)
        data = {
            "a": rng.random(n).astype(np.float32),
            "b": rng.random(n).astype(np.float32),
            "out": np.zeros(n, np.float32),
            "c": rng.random(n).astype(np.float32),
            "res": np.zeros(n, np.float32),
        }
        rt.parallel_for(build_producer(), n,
                        buffers={k: data[k] for k in ("a", "b", "out")})
        if reset_residency:
            rt.residency.reset()
        if misaligned:
            rt.env = OmpEnv.from_dict(
                {**self.ENV, "GOMP_CPU_AFFINITY":
                 " ".join(str((i + 1) % CORES) for i in range(CORES))}
            )
        return rt.parallel_for(
            build_consumer(), n,
            buffers={k: data[k] for k in ("out", "c", "res")},
        ).time_ns

    def test_tracking_produces_the_figure(self, benchmark):
        def slowdown():
            return self._consumer_time(True, False) / self._consumer_time(
                False, False
            )

        s = benchmark(slowdown)
        assert s > 1.1

    def test_no_tracking_erases_the_figure(self):
        aligned = self._consumer_time(False, True)
        misaligned = self._consumer_time(True, True)
        assert misaligned == pytest.approx(aligned, rel=0.02)
