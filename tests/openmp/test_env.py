"""Unit tests for the OpenMP environment parsing."""

import pytest

from repro.openmp.env import OmpEnv


class TestOmpEnv:
    def test_defaults(self):
        e = OmpEnv.from_dict({})
        assert e.num_threads is None
        assert e.schedule == "static" and e.chunk is None
        assert not e.affinity.proc_bind

    def test_num_threads(self):
        assert OmpEnv.from_dict({"OMP_NUM_THREADS": "8"}).num_threads == 8
        with pytest.raises(ValueError):
            OmpEnv.from_dict({"OMP_NUM_THREADS": "0"})

    def test_schedule_kinds(self):
        e = OmpEnv.from_dict({"OMP_SCHEDULE": "dynamic,16"})
        assert e.schedule == "dynamic" and e.chunk == 16
        e = OmpEnv.from_dict({"OMP_SCHEDULE": "guided"})
        assert e.schedule == "guided" and e.chunk is None

    def test_bad_schedule(self):
        with pytest.raises(ValueError):
            OmpEnv.from_dict({"OMP_SCHEDULE": "magic"})
        with pytest.raises(ValueError):
            OmpEnv.from_dict({"OMP_SCHEDULE": "static,0"})

    def test_affinity_wiring(self):
        e = OmpEnv.from_dict(
            {"OMP_PROC_BIND": "true", "GOMP_CPU_AFFINITY": "0-3"}
        )
        assert e.affinity.proc_bind
        assert e.affinity.cpu_list == [0, 1, 2, 3]
