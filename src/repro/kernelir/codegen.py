"""Source-code generation: kernel IR -> OpenCL C, and -> C + OpenMP.

The benchmark kernels are defined once as IR; this module emits them as

* **OpenCL C** (`to_opencl_c`) — a compilable ``__kernel`` function, so the
  suite can be taken to real hardware/drivers unchanged;
* **C with OpenMP** (`to_openmp_c`) — the Section III-F port: the NDRange
  collapses to a ``#pragma omp parallel for`` loop over ``gid0`` (only legal
  for kernels without workgroup constructs, mirroring
  ``OpenMPRuntime.parallel_for``'s own restriction).

Generation is purely syntactic; semantics stay with the interpreter.  The
tests check structural properties (balanced braces, declared-before-use,
every parameter present) and a few golden kernels.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional

from . import ast as ir
from .types import BOOL, DType, F32, F64, I64

__all__ = ["to_opencl_c", "to_openmp_c", "CodegenError"]


class CodegenError(ValueError):
    """Kernel cannot be expressed in the requested target."""


_C_TYPES = {
    "float": "float",
    "double": "double",
    "char": "char",
    "uchar": "uchar",
    "int": "int",
    "uint": "uint",
    "long": "long",
    "ulong": "ulong",
    "bool": "int",
}

_OMP_TYPES = dict(_C_TYPES)
_OMP_TYPES.update({"uchar": "unsigned char", "uint": "unsigned int",
                   "ulong": "unsigned long", "long": "long"})

_BINOPS = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "&": "&", "|": "|", "^": "^", "<<": "<<", ">>": ">>",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "!=": "!=",
    "and": "&&", "or": "||",
}


class _Emitter:
    def __init__(self, target: str):
        assert target in ("opencl", "openmp")
        self.target = target
        self.types = _C_TYPES if target == "opencl" else _OMP_TYPES
        self.out = io.StringIO()
        self.indent = 1
        self.declared: Dict[str, DType] = {}

    # -- expressions ------------------------------------------------------
    def expr(self, e: ir.Expr) -> str:
        if isinstance(e, ir.Const):
            if isinstance(e.value, bool):
                return "1" if e.value else "0"
            if e.dtype.is_float:
                s = repr(float(e.value))
                return f"{s}f" if e.dtype is F32 else s
            return str(int(e.value))
        if isinstance(e, ir.GlobalId):
            if self.target == "opencl":
                return f"get_global_id({e.dim})"
            return f"gid{e.dim}"  # derived from the flat loop index
        if isinstance(e, ir.LocalId):
            self._require_opencl("get_local_id")
            return f"get_local_id({e.dim})"
        if isinstance(e, ir.GroupId):
            self._require_opencl("get_group_id")
            return f"get_group_id({e.dim})"
        if isinstance(e, ir.GlobalSize):
            return (f"get_global_size({e.dim})" if self.target == "opencl"
                    else f"gs{e.dim}")
        if isinstance(e, ir.LocalSize):
            self._require_opencl("get_local_size")
            return f"get_local_size({e.dim})"
        if isinstance(e, ir.NumGroups):
            self._require_opencl("get_num_groups")
            return f"get_num_groups({e.dim})"
        if isinstance(e, ir.Var):
            return e.name
        if isinstance(e, ir.BinOp):
            if e.op in ("min", "max"):
                fn = e.op if e.dtype.is_float and self.target == "opencl" else e.op
                if self.target == "openmp" and e.dtype.is_float:
                    fn = "fminf" if e.op == "min" else "fmaxf"
                elif self.target == "openmp":
                    return (f"(({self.expr(e.lhs)}) {'<' if e.op == 'min' else '>'} "
                            f"({self.expr(e.rhs)}) ? ({self.expr(e.lhs)}) : "
                            f"({self.expr(e.rhs)}))")
                return f"{fn}({self.expr(e.lhs)}, {self.expr(e.rhs)})"
            if e.op == "//":
                return f"({self.expr(e.lhs)} / {self.expr(e.rhs)})"
            return f"({self.expr(e.lhs)} {_BINOPS[e.op]} {self.expr(e.rhs)})"
        if isinstance(e, ir.UnOp):
            op = "-" if e.op == "neg" else "!"
            return f"({op}{self.expr(e.operand)})"
        if isinstance(e, ir.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            fn = e.fn
            if self.target == "openmp":
                # single-precision libm spellings
                fn = {
                    "exp": "expf", "log": "logf", "sqrt": "sqrtf",
                    "rsqrt": "1.0f/sqrtf", "fabs": "fabsf", "sin": "sinf",
                    "cos": "cosf", "floor": "floorf", "erf": "erff",
                    "pow": "powf", "mad": "fmaf", "fma": "fmaf",
                }[fn]
                if fn == "1.0f/sqrtf":
                    return f"(1.0f/sqrtf({args}))"
            return f"{fn}({args})"
        if isinstance(e, ir.Load):
            return f"{e.buffer}[{self.expr(e.index)}]"
        if isinstance(e, ir.LoadLocal):
            self._require_opencl("__local arrays")
            return f"{e.array}[{self.expr(e.index)}]"
        if isinstance(e, ir.Select):
            return (f"(({self.expr(e.cond)}) ? ({self.expr(e.if_true)}) : "
                    f"({self.expr(e.if_false)}))")
        if isinstance(e, ir.Cast):
            return f"(({self.types[e.dtype.name]})({self.expr(e.operand)}))"
        raise CodegenError(f"cannot emit {type(e).__name__}")

    def _require_opencl(self, what: str) -> None:
        if self.target != "opencl":
            raise CodegenError(f"{what} has no OpenMP-port equivalent")

    # -- statements ---------------------------------------------------------
    def line(self, text: str) -> None:
        self.out.write("    " * self.indent + text + "\n")

    def stmt(self, s: ir.Stmt) -> None:
        if isinstance(s, ir.Assign):
            rhs = self.expr(s.value)
            dt = s.value.dtype
            if s.name not in self.declared:
                self.declared[s.name] = dt
                self.line(f"{self.types[dt.name]} {s.name} = {rhs};")
            else:
                self.line(f"{s.name} = {rhs};")
        elif isinstance(s, ir.Store):
            self.line(f"{s.buffer}[{self.expr(s.index)}] = {self.expr(s.value)};")
        elif isinstance(s, ir.StoreLocal):
            self._require_opencl("__local arrays")
            self.line(f"{s.array}[{self.expr(s.index)}] = {self.expr(s.value)};")
        elif isinstance(s, ir.AtomicAdd):
            if self.target == "opencl":
                self.line(
                    f"atomic_add(&{s.buffer}[{self.expr(s.index)}], "
                    f"{self.expr(s.value)});"
                )
            else:
                self.line("#pragma omp atomic")
                self.line(
                    f"{s.buffer}[{self.expr(s.index)}] += {self.expr(s.value)};"
                )
        elif isinstance(s, ir.AtomicAddLocal):
            self._require_opencl("__local atomics")
            self.line(
                f"atomic_add(&{s.array}[{self.expr(s.index)}], "
                f"{self.expr(s.value)});"
            )
        elif isinstance(s, ir.Barrier):
            self._require_opencl("barrier()")
            self.line("barrier(CLK_LOCAL_MEM_FENCE);")
        elif isinstance(s, ir.For):
            var = s.var
            self.line(
                f"for (long {var} = {self.expr(s.start)}; "
                + (f"{var} < {self.expr(s.stop)}; "
                   if not _is_negative_step(s) else
                   f"{var} > {self.expr(s.stop)}; ")
                + f"{var} += {self.expr(s.step)}) {{"
            )
            saved = dict(self.declared)
            self.declared[var] = I64
            self.indent += 1
            for b in s.body:
                self.stmt(b)
            self.indent -= 1
            self.declared = saved
            self.line("}")
        elif isinstance(s, ir.If):
            self.line(f"if ({self.expr(s.cond)}) {{")
            saved = dict(self.declared)
            self.indent += 1
            for b in s.then_body:
                self.stmt(b)
            self.indent -= 1
            # variables first assigned inside a branch stay branch-local in
            # C; re-declare at use outside (the builder's kernels never do
            # this, but keep scoping sound)
            self.declared = saved
            if s.else_body:
                self.line("} else {")
                self.indent += 1
                for b in s.else_body:
                    self.stmt(b)
                self.indent -= 1
                self.declared = saved
            self.line("}")
        else:  # pragma: no cover - defensive
            raise CodegenError(f"cannot emit {type(s).__name__}")


def _is_negative_step(s: ir.For) -> bool:
    return isinstance(s.step, ir.Const) and isinstance(s.step.value, (int, float)) \
        and s.step.value < 0


def to_opencl_c(kernel: ir.Kernel) -> str:
    """Emit the kernel as OpenCL C source."""
    em = _Emitter("opencl")
    params = []
    for p in kernel.params:
        if isinstance(p, ir.BufferParam):
            const = "const " if p.access == "r" else ""
            params.append(f"__global {const}{_C_TYPES[p.dtype.name]}* {p.name}")
        else:
            params.append(f"{_C_TYPES[p.dtype.name]} {p.name}")
            em.declared[p.name] = p.dtype
    head = f"__kernel void {kernel.name}({', '.join(params)})"
    body = io.StringIO()
    body.write(head + "\n{\n")
    for a in kernel.local_arrays:
        body.write(f"    __local {_C_TYPES[a.dtype.name]} {a.name}[{a.size}];\n")
    for s in kernel.body:
        em.stmt(s)
    body.write(em.out.getvalue())
    body.write("}\n")
    return body.getvalue()


def to_openmp_c(kernel: ir.Kernel, func_name: Optional[str] = None) -> str:
    """Emit the Section III-F OpenMP port: a parallel loop over ``gid0``.

    Raises :class:`CodegenError` for kernels using workgroup constructs —
    the same restriction `OpenMPRuntime.parallel_for` enforces.
    """
    if kernel.uses_barrier or kernel.uses_local_memory:
        raise CodegenError(
            f"kernel {kernel.name!r} uses workgroup constructs; it has no "
            f"OpenMP loop equivalent"
        )
    em = _Emitter("openmp")
    dims = kernel.work_dim
    params = [f"long gs{d}" for d in range(dims)]
    for p in kernel.params:
        if isinstance(p, ir.BufferParam):
            const = "const " if p.access == "r" else ""
            params.append(f"{const}{_OMP_TYPES[p.dtype.name]}* {p.name}")
        else:
            params.append(f"{_OMP_TYPES[p.dtype.name]} {p.name}")
            em.declared[p.name] = p.dtype
    name = func_name or f"{kernel.name}_omp"
    total = " * ".join(f"gs{d}" for d in range(dims))
    body = io.StringIO()
    body.write(f"void {name}({', '.join(params)})\n{{\n")
    body.write(f"    const long n_items = {total};\n")
    body.write("    #pragma omp parallel for\n")
    body.write("    for (long gid = 0; gid < n_items; ++gid) {\n")
    # derive per-dimension ids from the flat index (dim 0 fastest, matching
    # the interpreter's linearization)
    if dims == 1:
        body.write("        const long gid0 = gid;\n")
    else:
        body.write("        const long gid0 = gid % gs0;\n")
        if dims == 2:
            body.write("        const long gid1 = gid / gs0;\n")
        else:
            body.write("        const long gid1 = (gid / gs0) % gs1;\n")
            body.write("        const long gid2 = gid / (gs0 * gs1);\n")
    em.indent = 2
    for d in range(dims):
        em.declared[f"gid{d}"] = I64
    for s in kernel.body:
        em.stmt(s)
    body.write(em.out.getvalue())
    body.write("    }\n}\n")
    return body.getvalue()
