"""Command queues over deterministic virtual time, with a real engine.

Every enqueue *always* advances the queue's virtual clock by the device
model's cost estimate at enqueue time — event profiling timestamps behave
exactly like ``CL_QUEUE_PROFILING_ENABLE`` timestamps, are reproducible,
and are a pure function of enqueue order, costs and explicit wait lists.
They never depend on how (or when) the functional work runs, which keeps
``results/*.csv`` byte-identical across engines and worker counts.

The *functional* work (numpy copies / kernel execution) runs on one of two
engines:

* **eager** — inside the ``enqueue_*`` call, exactly the pre-scheduler
  behaviour.  Used by in-order queues by default, by timing-only queues
  (``functional=False``), and everywhere under ``REPRO_NO_OOO=1``.
* **DAG** — deferred into an event-dependency graph
  (:mod:`repro.minicl.schedule`) and retired through a worker pool.  Used
  by ``out_of_order=True`` queues and, for the harness, by any queue when
  ``REPRO_QUEUE=ooo``.  Explicit wait lists plus inferred same-buffer
  RAW/WAR/WAW hazards give the exact ordering in-order execution provides,
  so buffer state after :meth:`CommandQueue.finish` is identical; errors
  raised by deferred commands surface at ``finish()``/``Event.wait()``.

``functional=False`` turns off the numpy execution (timing-only mode); the
large parameter sweeps of the harness use it, while correctness tests and
the examples run fully functional.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

import repro
from .. import workers
from ..kernelir.analysis import LaunchContext
from ..kernelir.compile import launch_kernel
from ..kernelir.interp import Interpreter, KernelExecutionError
from ..kernelir.verify import verify_launch
from ..obs import tracer as obs_tracer
from ..plancache import LaunchPlanCache
from .buffer import Buffer
from .constants import command_type, map_flags, mem_flags
from .context import Context
from .device import Device
from .errors import (
    InvalidOperation,
    InvalidValue,
    InvalidWorkDimension,
    InvalidWorkGroupSize,
    InvalidWorkItemSize,
    KernelVerificationError,
)
from .event import Event
from .program import CLKernel

__all__ = ["CommandQueue"]

#: Memoized static-verifier reports.  A verify result is a pure function of
#: the kernel, launch shape, scalars, buffer sizes and buffer flags, so with
#: ``REPRO_VERIFY=1`` repeated enqueues of an identical launch shape (the
#: harness's ``repeat_to_target`` loop) stop re-verifying.  The cache is
#: registered lazily so runs that never enqueue with ``verify=`` do not
#: report a dead ``minicl.verify`` family in cache statistics.
_VERIFY_CACHE: Optional[LaunchPlanCache] = None


def _verify_cache() -> LaunchPlanCache:
    global _VERIFY_CACHE
    if _VERIFY_CACHE is None:
        _VERIFY_CACHE = LaunchPlanCache("minicl.verify", maxsize=2048)
    return _VERIFY_CACHE


class CommandQueue:
    """A command queue bound to one device (see module docstring)."""

    def __init__(
        self,
        context: Context,
        device: Optional[Device] = None,
        *,
        profiling: bool = True,
        functional: bool = True,
        out_of_order: bool = False,
    ):
        self.context = context
        self.device = device or context.device
        self.profiling = profiling
        self.functional = functional
        #: CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE: commands without explicit
        #: event dependencies may overlap in (virtual) time, and functional
        #: work retires through the DAG scheduler (hazard edges keep any
        #: same-buffer pair ordered, so buffer state matches in-order).
        self.out_of_order = out_of_order
        self._interp = Interpreter()
        #: VerifyReport of the most recent ``verify=`` kernel enqueue
        self.last_verify_report = None
        self.now_ns: float = 0.0
        #: earliest start time for new out-of-order commands (advanced by
        #: enqueue_barrier)
        self._floor_ns: float = 0.0
        self.events: list = []
        #: lazily-created DAG engine (:class:`CommandScheduler`)
        self._scheduler = None

    # -- engine selection --------------------------------------------------------
    def _deferred(self) -> bool:
        """Whether functional work goes through the DAG engine."""
        if not self.functional or not workers.ooo_enabled():
            return False
        return self.out_of_order or repro.env_value("REPRO_QUEUE") == "ooo"

    def _sched(self):
        if self._scheduler is None:
            from .schedule import CommandScheduler

            self._scheduler = CommandScheduler()
        return self._scheduler

    # -- internals --------------------------------------------------------------
    def _complete(
        self,
        ctype: command_type,
        cost_ns: float,
        info: dict,
        wait_for: Optional[Sequence[Event]] = None,
        *,
        action=None,
        reads: Sequence[Buffer] = (),
        writes: Sequence[Buffer] = (),
        barrier: bool = False,
        kernel_info=None,
    ) -> Event:
        """Advance virtual time and retire one command.

        The virtual schedule below is computed from the explicit wait list
        only — never from hazard edges or host execution — so simulated
        timestamps are identical on both engines and any worker count.
        ``action`` is the command's functional work: run inline on the
        eager engine, deferred to the DAG scheduler otherwise.
        """
        deps_end = max((e.profile.end for e in wait_for or ()), default=0.0)
        if self.out_of_order:
            queued = max(self._floor_ns, 0.0)
        else:
            queued = self.now_ns
        # SUBMIT: the runtime hands the command to the device once its
        # wait list has resolved; the simulated device is idle at that
        # point, so it starts immediately (SUBMIT == START, QUEUED <
        # SUBMIT whenever dependencies deferred the hand-off).
        submit = max(queued, deps_end)
        start = submit
        end = start + max(0.0, cost_ns)

        if self._deferred():
            ev = Event(ctype, queued, start, end, info, submit=submit)
            self._sched().add(
                action, ev, wait_for=wait_for or (), reads=reads,
                writes=writes, barrier=barrier,
                label=info.get("kernel") or ctype.value,
                kernel_info=kernel_info,
            )
        else:
            # eager engine: functional work happens inside the enqueue, and
            # an execution error propagates before the event exists (the
            # pre-scheduler contract the differential tests pin)
            if action is not None:
                action()
            ev = Event(ctype, queued, start, end, info, submit=submit)

        self.now_ns = max(self.now_ns, end)
        self.events.append(ev)
        tracer = obs_tracer.ACTIVE
        if tracer is not None:
            tracer.record_command(self, ev)
        return ev

    def _check_sizes(
        self, kernel: CLKernel, gsize, lsize
    ) -> Tuple[Tuple[int, ...], Optional[Tuple[int, ...]]]:
        if isinstance(gsize, int):
            gsize = (gsize,)
        gsize = tuple(int(g) for g in gsize)
        work_dim = kernel.kernel.work_dim
        if len(gsize) != work_dim or not (1 <= len(gsize) <= 3):
            raise InvalidWorkDimension(
                f"kernel {kernel.name!r} has work_dim={work_dim}, got {gsize}"
            )
        if any(g <= 0 for g in gsize):
            raise InvalidValue(f"global size must be positive: {gsize}")
        if lsize is None:
            return gsize, None
        if isinstance(lsize, int):
            lsize = (lsize,)
        lsize = tuple(int(l) for l in lsize)
        if len(lsize) != len(gsize):
            raise InvalidWorkItemSize(
                f"local rank {len(lsize)} != global rank {len(gsize)}"
            )
        if any(l <= 0 for l in lsize):
            raise InvalidWorkItemSize(f"local size must be positive: {lsize}")
        wg = int(np.prod(lsize))
        if wg > self.device.max_work_group_size:
            raise InvalidWorkGroupSize(
                f"workgroup of {wg} exceeds device limit "
                f"{self.device.max_work_group_size}"
            )
        for g, l in zip(gsize, lsize):
            if g % l != 0:
                raise InvalidWorkGroupSize(
                    f"global size {g} not divisible by local size {l}"
                )
        return gsize, lsize

    # -- kernel execution ------------------------------------------------------
    def enqueue_nd_range_kernel(
        self,
        kernel: CLKernel,
        global_size,
        local_size=None,
        *,
        global_work_offset=None,
        wait_for: Optional[Sequence[Event]] = None,
        verify: Optional[bool] = None,
    ) -> Event:
        """``clEnqueueNDRangeKernel``.

        Launch validation, cost modelling and (with ``verify=True`` or env
        ``REPRO_VERIFY=1``) static verification always happen here, at
        enqueue; error-severity findings raise
        :class:`~repro.minicl.errors.KernelVerificationError`
        (CL_INVALID_KERNEL_ARGS).  The functional execution runs eagerly or
        through the DAG engine depending on the queue (module docstring);
        deferred execution errors surface at :meth:`finish` /
        :meth:`Event.wait`.
        """
        gsize, lsize = self._check_sizes(kernel, global_size, local_size)
        buffers, scalars = kernel.collect_args()
        buffer_bytes = {name: b.nbytes for name, b in buffers.items()}

        cost = self.device.model.kernel_cost(
            kernel.kernel,
            gsize,
            lsize,
            scalars={k: float(v) for k, v in scalars.items()},
            buffer_bytes=buffer_bytes,
        )
        resolved_lsize = cost.local_size

        if kernel.kernel.uses_local_memory:
            if kernel.kernel.local_mem_bytes > self.device.local_mem_size:
                raise InvalidWorkGroupSize(
                    f"kernel needs {kernel.kernel.local_mem_bytes}B local memory; "
                    f"device has {self.device.local_mem_size}B"
                )

        if verify is None:
            verify = repro.env_flag("REPRO_VERIFY")
        readonly = writeonly = None
        if verify:
            flags = {
                name: ("r" if not b.kernel_writable
                       else "w" if not b.kernel_readable else "rw")
                for name, b in buffers.items()
            }
            buffer_sizes = {
                name: len(b) for name, b in buffers.items()
            }
            vkey = (
                kernel.kernel.fingerprint(),
                gsize,
                resolved_lsize,
                tuple(sorted((k, float(v)) for k, v in scalars.items())),
                tuple(sorted(buffer_sizes.items())),
                tuple(sorted(flags.items())),
            )
            vcache = _verify_cache()
            report = vcache.get(vkey)
            if report is None:
                report = verify_launch(
                    kernel.kernel,
                    LaunchContext(
                        gsize, resolved_lsize,
                        scalars={k: float(v) for k, v in scalars.items()},
                    ),
                    buffer_sizes=buffer_sizes,
                    buffer_flags=flags,
                )
                vcache.put(vkey, report)
            self.last_verify_report = report
            if report.errors:
                raise KernelVerificationError(
                    f"kernel {kernel.name!r} failed verification "
                    f"({len(report.errors)} error(s)):\n" + report.render(
                        show_notes=False),
                    report=report,
                )
            readonly = {n for n, f in flags.items() if f == "r"}
            writeonly = {n for n, f in flags.items() if f == "w"}

        action = None
        reads: list = []
        writes: list = []
        kernel_info = None
        if self.functional:
            arrays = {name: b.array for name, b in buffers.items()}
            for p in kernel.kernel.buffer_params:
                if "r" in p.access:
                    reads.append(buffers[p.name])
                if "w" in p.access:
                    writes.append(buffers[p.name])
            coarsen = kernel.coarsen

            def action(kk=kernel.kernel, interp=self._interp):
                launch_kernel(
                    kk, gsize, resolved_lsize, buffers=arrays,
                    scalars=scalars, global_offset=global_work_offset,
                    readonly=readonly, writeonly=writeonly,
                    interpreter=interp, coarsen=coarsen,
                )

            # launch facts for the DAG engine's cross-launch fusion pass
            kernel_info = {
                "kernel": kernel.kernel,
                "gsize": gsize,
                "lsize": resolved_lsize,
                "goffset": global_work_offset,
                "arrays": arrays,
                "scalars": scalars,
                "interp": self._interp,
                "readonly": readonly,
                "writeonly": writeonly,
            }

        # record the launch's chunk-safety verdict in the scheduler stats;
        # the proof is served from LaunchPlanCache("kernelir.analysis"), so
        # repeat launches of one shape do not re-run the analysis
        from ..kernelir.dataflow import chunk_safety
        from .schedule import note_kernel_launch

        note_kernel_launch(
            chunk_safety(
                kernel.kernel, gsize, resolved_lsize, scalars
            ).eligible
        )

        return self._complete(
            command_type.NDRANGE_KERNEL,
            cost.total_ns,
            {
                "kernel": kernel.name,
                "global_size": gsize,
                "local_size": resolved_lsize,
                "global_work_offset": global_work_offset,
                "cost": cost,
            },
            wait_for,
            action=action,
            reads=reads,
            writes=writes,
            kernel_info=kernel_info,
        )

    # -- explicit copies ----------------------------------------------------------
    def enqueue_write_buffer(
        self, buf: Buffer, src: np.ndarray, *, blocking: bool = True,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """``clEnqueueWriteBuffer``: host array -> buffer (a real copy).

        ``blocking=True`` (default) waits for the copy to retire before
        returning, so the host array may be reused immediately; a
        non-blocking deferred write reads ``src`` when its DAG node runs.
        """
        if src.nbytes != buf.nbytes:
            raise InvalidValue(
                f"write of {src.nbytes}B into buffer of {buf.nbytes}B"
            )
        cost = self.device.model.transfer_cost(
            buf.nbytes, "copy", "h2d", pinned=buf.pinned
        )

        def action():
            np.copyto(
                buf.array,
                src.reshape(buf.array.shape).astype(buf.dtype, copy=False),
            )

        ev = self._complete(
            command_type.WRITE_BUFFER, cost.total_ns,
            {"cost": cost, "bytes": buf.nbytes}, wait_for,
            action=action if self.functional else None, writes=(buf,),
        )
        if blocking:
            ev.wait()
        return ev

    def enqueue_read_buffer(
        self, buf: Buffer, dst: np.ndarray, *, blocking: bool = True,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """``clEnqueueReadBuffer``: buffer -> host array (a real copy).

        ``blocking=True`` (default) waits for the read to retire, so
        ``dst`` holds the data when this returns.
        """
        if dst.nbytes != buf.nbytes:
            raise InvalidValue(
                f"read of {buf.nbytes}B into host array of {dst.nbytes}B"
            )
        cost = self.device.model.transfer_cost(
            buf.nbytes, "copy", "d2h", pinned=buf.pinned
        )

        def action():
            np.copyto(
                dst.reshape(buf.array.shape),
                buf.array.astype(dst.dtype, copy=False),
            )

        ev = self._complete(
            command_type.READ_BUFFER, cost.total_ns,
            {"cost": cost, "bytes": buf.nbytes}, wait_for,
            action=action if self.functional else None, reads=(buf,),
        )
        if blocking:
            ev.wait()
        return ev

    def enqueue_copy_buffer(
        self, src: Buffer, dst: Buffer, *,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """``clEnqueueCopyBuffer``: device-side buffer-to-buffer copy.

        On the CPU device this is one memcpy within the shared DRAM; it
        never crosses to the host, so it costs a single copy regardless of
        allocation flags.
        """
        if src.nbytes != dst.nbytes:
            raise InvalidValue(
                f"copy of {src.nbytes}B into buffer of {dst.nbytes}B"
            )
        cost = self.device.model.transfer_cost(src.nbytes, "copy", "d2d")

        def action():
            dst.array.view(np.uint8)[:] = src.array.view(np.uint8)  # raw bytes

        return self._complete(
            command_type.COPY_BUFFER, cost.total_ns,
            {"cost": cost, "bytes": src.nbytes}, wait_for,
            action=action if self.functional else None,
            reads=(src,), writes=(dst,),
        )

    # -- mapping --------------------------------------------------------------
    def enqueue_map_buffer(
        self, buf: Buffer, flags: map_flags, *,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Tuple[np.ndarray, Event]:
        """``clEnqueueMapBuffer``: returns a pointer (numpy view), no copy.

        On the CPU device host and device memory are the same DRAM, so the
        view aliases the buffer directly and the cost is API bookkeeping
        only — the mechanism behind the paper's Figure 7/8 result.  On the
        GPU device the data crosses PCIe (pinned DMA) when mapped for read.
        Mapping is a synchronization point: any deferred command touching
        the buffer retires before the view is returned.
        """
        if not flags & (map_flags.READ | map_flags.WRITE):
            raise InvalidValue("map flags must include READ and/or WRITE")
        moved = buf.nbytes if (self.device.is_gpu and flags & map_flags.READ) else 0
        cost = self.device.model.transfer_cost(
            moved if self.device.is_gpu else buf.nbytes, "map", "d2h", pinned=True
        )
        view = buf.array.view()
        buf._mapped_views.append((view, flags))
        ev = self._complete(
            command_type.MAP_BUFFER, cost.total_ns,
            {"cost": cost, "bytes": buf.nbytes}, wait_for,
            reads=(buf,), writes=(buf,) if flags & map_flags.WRITE else (),
        )
        ev.wait()  # the host dereferences the pointer next
        return view, ev

    def enqueue_unmap(self, buf: Buffer, view: np.ndarray) -> Event:
        """``clEnqueueUnmapMemObject``."""
        entry = next(
            ((v, f) for v, f in buf._mapped_views if v is view), None
        )
        if entry is None:
            raise InvalidOperation("unmap of a pointer that was never mapped")
        buf._mapped_views.remove(entry)
        _, flags = entry
        moved = buf.nbytes if (self.device.is_gpu and flags & map_flags.WRITE) else 0
        if self.device.is_gpu and moved:
            cost_ns = self.device.model.transfer_cost(
                moved, "map", "h2d", pinned=True
            ).total_ns
        else:
            # release the mapping: bookkeeping only; the device spec owns
            # the constant (see CPUSpec/GPUSpec.unmap_overhead_ns)
            cost_ns = self.device.model.spec.unmap_overhead_ns
        return self._complete(
            command_type.UNMAP_MEM_OBJECT, cost_ns, {"bytes": moved},
            writes=(buf,) if flags & map_flags.WRITE else (),
        )

    # -- sync -----------------------------------------------------------------
    def enqueue_marker(
        self, wait_for: Optional[Sequence[Event]] = None
    ) -> Event:
        """``clEnqueueMarkerWithWaitList``: completes when its dependencies
        (or, with no list, everything enqueued so far) have completed.

        On the DAG engine the marker is a real graph node anchored to
        those dependencies — its event moves to COMPLETE only once they
        retire — rather than completing at enqueue.
        """
        if wait_for is None:
            wait_for = list(self.events)
        return self._complete(command_type.MARKER, 0.0, {}, wait_for)

    def enqueue_barrier(self) -> Event:
        """``clEnqueueBarrierWithWaitList`` (empty list): later commands may
        not start before everything enqueued so far has completed.

        Advances the virtual-time floor for later out-of-order commands
        and, on the DAG engine, inserts a node every later command depends
        on (so deferred execution respects the same fence).
        """
        wait_for = list(self.events)
        ev = self._complete(command_type.MARKER, 0.0, {}, wait_for,
                            barrier=True)
        self._floor_ns = max(self._floor_ns, ev.profile.end)
        return ev

    def finish(self) -> float:
        """``clFinish``: retire every enqueued command; returns the virtual
        clock.  On the DAG engine this drains the scheduler, re-raising the
        first deferred execution error (in enqueue order)."""
        if self._scheduler is not None:
            self._scheduler.drain()
        return self.now_ns

    def flush(self) -> None:
        """``clFlush``: submit pending DAG nodes to the worker pool without
        blocking (ready commands start executing; dependent ones start as
        their dependencies retire).  No-op on the eager engine, where every
        command already completed inside its enqueue call."""
        if self._scheduler is not None:
            self._scheduler.flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CommandQueue on {self.device.name!r} t={self.now_ns:.0f}ns>"
