"""Closed-form cache cost model for large-kernel timing.

Per-access simulation (``repro.simcpu.cache``) is exact but infeasible for
NDRanges of 10M workitems, so kernel timing uses this analytical model: each
static load/store site is classified by its access pattern (from
``kernelir.analysis``) and by the footprint of the buffer it touches, and
charged an average memory access time plus DRAM traffic.

The approximations (all standard in analytical CPU models):

* **contiguous** streams miss once per cache line and are prefetch-friendly —
  the DRAM latency is largely hidden, leaving an effective penalty of
  ``prefetch_hiding`` times the raw latency;
* **uniform** (workitem-invariant) accesses hit L1 after the first touch;
* **strided** accesses with stride >= one line miss every access and defeat
  adjacent-line prefetch (partial hiding only);
* **gather** accesses hit a given level with probability ``level_size /
  footprint`` and get no prefetch help.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..kernelir.analysis import AccessInfo, KernelAnalysis
from .spec import CPUSpec

__all__ = ["MemEstimate", "MemoryCostModel"]


@dataclasses.dataclass
class MemEstimate:
    """Memory cost of one workitem."""

    #: total load/store latency cycles per workitem (beyond issue slots)
    amat_cycles: float
    #: bytes that must come from DRAM per workitem (bandwidth term)
    dram_bytes: float
    #: bytes streamed from the shared L3 per workitem (bandwidth term)
    l3_bytes: float = 0.0
    #: per-site detail for diagnostics: buffer -> (pattern, amat, dram_bytes)
    sites: Dict[str, tuple] = dataclasses.field(default_factory=dict)


class MemoryCostModel:
    """Estimates AMAT and DRAM traffic for a kernel launch on a CPU."""

    #: fraction of the miss latency left visible on prefetched streams
    PREFETCH_HIDING_CONTIG = 0.25
    PREFETCH_HIDING_STRIDED = 0.7

    def __init__(self, spec: CPUSpec):
        self.spec = spec

    # -- helpers -------------------------------------------------------------
    def _source_latency(self, footprint: int) -> float:
        """Latency of the level a streaming access is served from."""
        s = self.spec
        if footprint <= s.l1d_bytes:
            return 0.0  # resident in L1 after warmup
        if footprint <= s.l2_bytes:
            return s.l2_latency
        if footprint <= s.l3_bytes:
            return s.l2_latency + s.l3_latency
        return s.l2_latency + s.l3_latency + s.dram_latency

    def _gather_amat(self, footprint: int) -> tuple:
        """(extra latency, dram bytes) for one random access."""
        s = self.spec
        remaining = 1.0
        amat = 0.0
        dram_bytes = 0.0
        for size, lat in (
            (s.l1d_bytes, 0.0),
            (s.l2_bytes, s.l2_latency),
            (s.l3_bytes, s.l2_latency + s.l3_latency),
        ):
            p_hit = min(1.0, size / max(footprint, 1)) * remaining
            amat += p_hit * lat
            remaining -= p_hit
        miss_lat = s.l2_latency + s.l3_latency + s.dram_latency
        amat += remaining * miss_lat
        dram_bytes += remaining * s.line_bytes
        return amat, dram_bytes

    def site_cost(self, a: AccessInfo, footprint: int) -> tuple:
        """Public alias of :meth:`_site_cost` for callers that re-cost
        individual sites (e.g. the OpenMP runtime's residency adjustment)."""
        return self._site_cost(a, footprint)

    def _site_cost(self, a: AccessInfo, footprint: int) -> tuple:
        """(amat_cycles, dram_bytes, l3_bytes) for one access of this site."""
        s = self.spec
        pattern = a.pattern
        if a.is_local:
            # __local arrays are small scratchpads that live in L1.
            return 0.0, 0.0, 0.0
        if pattern == "uniform":
            return 0.0, 0.0, 0.0
        # A per-item *sequential* walk (inner loop stride 1) is a prefetchable
        # stream no matter how far apart the items' base addresses sit — this
        # is exactly why work coalescing keeps the CPU's caches happy while
        # destroying coalescing on the GPU (Figures 1/2).
        if pattern == "strided" and a.inner_loop_stride == 1.0:
            pattern = "contiguous"
        if pattern == "contiguous":
            line_fraction = min(1.0, a.itemsize / s.line_bytes)
            src = self._source_latency(footprint)
            amat = line_fraction * src * self.PREFETCH_HIDING_CONTIG
            dram = a.itemsize if footprint > s.l3_bytes else 0.0
            l3 = a.itemsize if s.l2_bytes < footprint <= s.l3_bytes else 0.0
            return amat, dram, l3
        if pattern == "strided":
            stride_bytes = abs(a.vector_stride or 0.0) * a.itemsize
            line_fraction = min(1.0, stride_bytes / s.line_bytes)
            src = self._source_latency(footprint)
            amat = line_fraction * src * self.PREFETCH_HIDING_STRIDED
            dram = (
                min(s.line_bytes, stride_bytes) if footprint > s.l3_bytes else 0.0
            )
            l3 = (
                min(s.line_bytes, stride_bytes)
                if s.l2_bytes < footprint <= s.l3_bytes
                else 0.0
            )
            return amat, dram, l3
        # gather
        amat, dram = self._gather_amat(footprint)
        l3 = min(1.0, s.l3_bytes / max(footprint, 1)) * s.line_bytes
        return amat, dram, l3

    # -- per-workgroup working set ------------------------------------------
    #: fraction of the residual latency visible on loop-streamed tile reloads
    #: (row-jumping tile walks defeat the adjacent-line prefetcher partially)
    SPILL_VISIBILITY = 0.6
    #: cache fraction a resident workgroup can actually keep (the rest goes
    #: to stacks, runtime state, and the SMT sibling's workgroup)
    SHARE = 0.75

    def workgroup_footprint(self, analysis: KernelAnalysis) -> float:
        """Unique global bytes one workgroup streams through its caches.

        Workitem-varying accesses touch distinct elements per item (count x
        items); workitem-invariant (uniform) streams are shared by the whole
        workgroup and count once.
        """
        wg_items = analysis.ctx.workgroup_size
        fp = 0.0
        for a in analysis.accesses:
            if a.is_local:
                continue
            if a.uniform:
                fp += a.count_per_item * a.itemsize
            else:
                fp += a.count_per_item * a.itemsize * wg_items
        return fp

    def _spill_latency(self, wg_fp: float) -> float:
        """Latency of re-touching tile data given the workgroup's footprint.

        This is the mechanism behind the paper's CPU-vs-GPU Matrixmul
        optimum: workgroup size selects the tile, the tile's streamed
        working set competes for the SMT-shared private caches, and a
        spilled tile is re-read from L3 (or DRAM) on every reuse.
        """
        s = self.spec
        smt = max(1, s.smt)
        if wg_fp <= (s.l1d_bytes / smt) * self.SHARE:
            return 0.0
        if wg_fp <= (s.l2_bytes / smt) * self.SHARE:
            return float(s.l2_latency)
        if wg_fp <= s.l3_bytes / max(1, s.cores_per_socket):
            return float(s.l2_latency + s.l3_latency)
        return float(s.l2_latency + s.l3_latency + s.dram_latency)

    # -- public ---------------------------------------------------------------
    def estimate(
        self,
        analysis: KernelAnalysis,
        buffer_bytes: Optional[Dict[str, int]] = None,
    ) -> MemEstimate:
        """Cost the memory behaviour of one workitem.

        ``buffer_bytes`` maps buffer parameter names to their allocation
        sizes; unknown buffers are assumed DRAM-resident (worst case).
        """
        buffer_bytes = buffer_bytes or {}
        wg_fp = self.workgroup_footprint(analysis)
        spill_lat = self._spill_latency(wg_fp)
        amat = 0.0
        dram = 0.0
        l3 = 0.0
        sites: Dict[str, tuple] = {}
        smt = max(1, self.spec.smt)
        l2_share = (self.spec.l2_bytes / smt) * self.SHARE
        for a in analysis.accesses:
            fp = int(buffer_bytes.get(a.buffer, self.spec.l3_bytes * 4))
            site_amat, site_dram, site_l3 = self._site_cost(a, fp)
            if a.is_local and wg_fp > l2_share:
                # the workgroup's streamed tiles overflow the private caches
                # and keep displacing the __local arrays out of L1
                line_fraction = min(1.0, a.itemsize / self.spec.line_bytes)
                site_amat = (
                    self.spec.l2_latency * line_fraction * self.SPILL_VISIBILITY
                )
            if (
                not a.is_local
                and not a.uniform
                and a.count_per_item > 1.5
                and a.pattern in ("contiguous", "strided")
            ):
                # Loop-streamed tile data is served from wherever the
                # workgroup's working set fits; a spilled working set costs
                # more than the cold prefetched stream, never less.
                line_fraction = min(1.0, a.itemsize / self.spec.line_bytes)
                site_amat = max(
                    site_amat,
                    spill_lat * line_fraction * self.SPILL_VISIBILITY,
                )
            amat += site_amat * a.count_per_item
            dram += site_dram * a.count_per_item
            l3 += site_l3 * a.count_per_item
            key = f"{a.buffer}{'[store]' if a.is_store else '[load]'}"
            prev = sites.get(key, (a.pattern, 0.0, 0.0))
            sites[key] = (
                a.pattern,
                prev[1] + site_amat * a.count_per_item,
                prev[2] + site_dram * a.count_per_item,
            )
        return MemEstimate(
            amat_cycles=amat, dram_bytes=dram, l3_bytes=l3, sites=sites
        )
