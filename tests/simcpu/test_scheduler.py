"""Unit and property tests for the workgroup scheduler."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcpu.scheduler import (
    WorkgroupScheduler,
    default_local_size,
)
from repro.simcpu.spec import CPUSpec, XEON_E5645


class TestDefaultLocalSize:
    def test_divides_global(self):
        for n in (10_000, 100_000, 110_000, 11_445_000, 7, 1):
            ls = default_local_size((n,))
            assert n % ls[0] == 0
            assert ls[0] <= 64

    def test_multidim_uses_ones(self):
        assert default_local_size((800, 1600)) == (50, 1)

    def test_min_workgroups_tightens_cap(self):
        ls = default_local_size((100,), min_workgroups=48)
        assert ls[0] <= 100 // 48
        assert 100 % ls[0] == 0

    def test_prime_sizes_fall_back_to_one(self):
        assert default_local_size((101,)) == (101 // 101 or 1,) or True
        ls = default_local_size((997,))  # prime > 64
        assert ls == (1,)

    @given(n=st.integers(1, 10 ** 7))
    @settings(max_examples=50, deadline=None)
    def test_property_divisor(self, n):
        ls = default_local_size((n,))
        assert 1 <= ls[0] <= 64 and n % ls[0] == 0


class TestThreadSpeed:
    def setup_method(self):
        self.s = WorkgroupScheduler(XEON_E5645)

    def test_full_speed_up_to_physical(self):
        assert self.s.thread_speed(1) == 1.0
        assert self.s.thread_speed(12) == 1.0

    def test_smt_shares_pipelines(self):
        v = self.s.thread_speed(24)
        assert 0.5 < v < 1.0
        # aggregate throughput still improves with SMT
        assert 24 * v > 12 * 1.0


class TestMakespan:
    def setup_method(self):
        self.spec = XEON_E5645
        self.s = WorkgroupScheduler(self.spec)

    def test_single_workgroup(self):
        r = self.s.makespan(1, 1000.0)
        assert r.threads_used == 1
        assert r.makespan_cycles == self.spec.workgroup_dispatch_cycles + 1000.0

    def test_rounds_quantization(self):
        r = self.s.makespan(25, 1000.0, max_threads=24)
        assert r.rounds == 2

    def test_overhead_fraction(self):
        r = self.s.makespan(10, 0.0)
        assert r.scheduling_overhead_fraction == 1.0
        r2 = self.s.makespan(10, 1e9)
        assert r2.scheduling_overhead_fraction < 0.01

    def test_more_workgroups_same_total_work_is_slower(self):
        # fixed total work, split into many vs few workgroups
        total = 1_000_000.0
        few = self.s.makespan(24, total / 24)
        many = self.s.makespan(2400, total / 2400)
        assert many.makespan_cycles > few.makespan_cycles

    def test_hetero_equals_uniform_for_equal_costs(self):
        r1 = self.s.makespan(100, 500.0)
        r2 = self.s.makespan_hetero([500.0] * 100)
        assert r2.makespan_cycles == pytest.approx(r1.makespan_cycles, rel=0.05)

    def test_hetero_empty(self):
        r = self.s.makespan_hetero([])
        assert r.makespan_cycles == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        costs=st.lists(st.floats(0, 1e6), min_size=1, max_size=200),
    )
    def test_hetero_bounds(self, costs):
        """Greedy makespan is between the work lower bound and serial time."""
        r = self.s.makespan_hetero(costs)
        d = self.spec.workgroup_dispatch_cycles
        speed = self.s.thread_speed(r.threads_used)
        per_wg = [d + c / speed for c in costs]
        lower = max(max(per_wg), sum(per_wg) / r.threads_used)
        upper = sum(per_wg)
        assert lower - 1e-6 <= r.makespan_cycles <= upper + 1e-6
