"""ILP micro-benchmarks (paper Section III-C, Figure 6).

Each benchmark in the family has an *identical* number of memory accesses,
floating-point operations, and loop iterations; the only difference is how
many mutually independent dependence chains the operations are divided into
— the ILP.  With ILP=1 every multiply waits for the previous one; with ILP=k
the out-of-order CPU can keep k chains in flight.

Construction: ``TOTAL_OPS`` multiply-adds arranged as ``k`` chains, each
``TOTAL_OPS / k`` long, walked by a loop of ``TOTAL_OPS / (k * UNROLL)``
iterations with ``UNROLL`` chained ops per chain per iteration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..kernelir.ast import Kernel
from ..kernelir.builder import KernelBuilder
from ..kernelir.types import F32, I32
from .base import Benchmark

__all__ = ["IlpMicroBenchmark", "build_ilp_kernel", "ILP_LEVELS", "TOTAL_OPS"]

#: the ILP values of Figure 6's x axis
ILP_LEVELS = (1, 2, 3, 4, 5)
#: mads issued per loop iteration (divisible by every ILP level)
OPS_PER_ITER = 60
#: multiply-add operations per workitem, constant across the family
TOTAL_OPS = 1920  # = 32 loop iterations x OPS_PER_ITER


def build_ilp_kernel(ilp: int, total_ops: int = TOTAL_OPS) -> Kernel:
    """A kernel with ``ilp`` independent mad-chains and fixed total work.

    Loop trip count and total operation count are identical for every family
    member: each iteration issues ``OPS_PER_ITER`` mads, split into ``ilp``
    chains of ``OPS_PER_ITER / ilp`` *dependent* mads each.
    """
    if ilp <= 0 or OPS_PER_ITER % ilp != 0:
        raise ValueError(f"ilp must divide {OPS_PER_ITER}, got {ilp}")
    if total_ops % OPS_PER_ITER != 0:
        raise ValueError(f"total_ops must be a multiple of {OPS_PER_ITER}")
    trips = total_ops // OPS_PER_ITER
    per_chain = OPS_PER_ITER // ilp
    kb = KernelBuilder(f"ilp{ilp}")
    a = kb.buffer("data", F32)
    gid = kb.global_id(0)
    seed = kb.let("seed", a[gid])
    chains = [kb.let(f"c{i}", seed + kb.f32(float(i))) for i in range(ilp)]
    scale = kb.f32(0.9999)
    bump = kb.f32(1e-6)
    with kb.loop("t", 0, trips):
        for i in range(ilp):
            for _ in range(per_chain):
                chains[i] = kb.let(f"c{i}", kb.mad(chains[i], scale, bump))
    acc = chains[0]
    for c in chains[1:]:
        acc = acc + c
    # pad the prologue/epilogue so every family member executes *exactly*
    # the same number of operations (the paper: "identical number of memory
    # accesses, computations, and loop iterations")
    max_level = max(ILP_LEVELS)
    for _ in range(2 * (max_level - ilp)):
        acc = kb.let("acc", acc + kb.f32(0.0))
    a[gid] = acc
    return kb.finish()


def _chase_reference(seed: np.ndarray, ilp: int, total_ops: int) -> np.ndarray:
    chains = [
        (seed + np.float32(i)).astype(np.float32) for i in range(ilp)
    ]
    per_chain = total_ops // ilp
    scale, bump = np.float32(0.9999), np.float32(1e-6)
    for i in range(ilp):
        c = chains[i]
        for _ in range(per_chain):
            c = (c * scale + bump).astype(np.float32)
        chains[i] = c
    out = chains[0]
    for c in chains[1:]:
        out = (out + c).astype(np.float32)
    return out


class IlpMicroBenchmark(Benchmark):
    """One member of the ILP family (fixed ``ilp``)."""

    work_dim = 1
    default_local_size = (256,)
    supports_coalescing = False

    def __init__(self, ilp: int, n: int = 24 * 1024, total_ops: int = TOTAL_OPS):
        self.ilp = ilp
        self.total_ops = total_ops
        self.name = f"ILP-{ilp}"
        self.default_global_sizes = ((n,),)

    def cache_token(self):
        return (self.total_ops,)

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("the ILP family does not support coalescing")
        return build_ilp_kernel(self.ilp, self.total_ops)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        return ({"data": rng.random(n, dtype=np.float32)}, {})

    def reference(self, buffers, scalars, global_size):
        return {"data": _chase_reference(buffers["data"], self.ilp, self.total_ops)}
