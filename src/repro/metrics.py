"""Programmer-facing performance metrics — the paper's "guideline".

The paper's first stated contribution is "a guideline to understand the
performance of OpenCL applications... programmers can verify whether the
OpenCL kernel fully utilizes the computing resources".  This module turns the
models into that guideline: for a kernel and launch configuration it reports

* roofline position (arithmetic intensity vs the device's compute/bandwidth
  ceilings) on CPU and GPU;
* the CPU bottleneck (compute / memory / bandwidth / dependence-latency) and
  what the paper says to do about each;
* vectorization status with the compiler's reasons;
* scheduling overhead share and the workgroup-size headroom;
* GPU occupancy and its limiter.

`kernel_report` renders everything as text, the shape of the "performance
advisor" output tools like Intel's offline compiler produced.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Dict, Optional, Sequence, Tuple

from .kernelir.analysis import KernelAnalysis, LaunchContext, analyze_kernel
from .kernelir.ast import Kernel
from .simcpu.device import CPUDeviceModel, KernelCost
from .simcpu.spec import CPUSpec, XEON_E5645
from .simgpu.device import GPUDeviceModel, GPUKernelCost
from .simgpu.spec import GPUSpec, GTX580

__all__ = ["Roofline", "roofline", "KernelReport", "kernel_report"]


@dataclasses.dataclass(frozen=True)
class Roofline:
    """One device's roofline evaluated at a kernel's arithmetic intensity."""

    device: str
    peak_gflops: float
    peak_bandwidth_gbps: float
    arithmetic_intensity: float   # flop / byte
    attainable_gflops: float      # min(peak, AI * bandwidth)
    achieved_gflops: float

    @property
    def ridge_point(self) -> float:
        """AI where the device turns compute-bound (flop/byte)."""
        return self.peak_gflops / self.peak_bandwidth_gbps

    @property
    def memory_bound(self) -> bool:
        return self.arithmetic_intensity < self.ridge_point

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the attainable (not absolute) roof."""
        return (
            self.achieved_gflops / self.attainable_gflops
            if self.attainable_gflops > 0
            else 0.0
        )


def roofline(
    analysis: KernelAnalysis,
    achieved_gflops: float,
    *,
    peak_gflops: float,
    bandwidth_gbps: float,
    device: str,
) -> Roofline:
    """Place a kernel on a device's roofline."""
    ai = analysis.arithmetic_intensity
    attainable = (
        peak_gflops if ai == float("inf") else min(peak_gflops, ai * bandwidth_gbps)
    )
    return Roofline(
        device=device,
        peak_gflops=peak_gflops,
        peak_bandwidth_gbps=bandwidth_gbps,
        arithmetic_intensity=ai,
        attainable_gflops=attainable,
        achieved_gflops=achieved_gflops,
    )


_ADVICE = {
    "compute": (
        "compute-bound: the FP pipelines are the limit; check the "
        "vectorization report and consider wider workgroups only for "
        "scheduling amortization"
    ),
    "memory": (
        "memory-latency-bound: improve locality (contiguous per-item "
        "streams, smaller per-workgroup working sets)"
    ),
    "bandwidth": (
        "bandwidth-bound: the kernel streams more bytes than the shared "
        "L3/DRAM can carry; reduce traffic per item before anything else"
    ),
    "latency": (
        "dependence-latency-bound: the kernel has low ILP (paper Section "
        "III-C) — break long dependence chains into independent ones"
    ),
}


@dataclasses.dataclass
class KernelReport:
    """Everything the guideline derives for one kernel + configuration."""

    kernel_name: str
    global_size: Tuple[int, ...]
    local_size: Optional[Tuple[int, ...]]
    analysis: KernelAnalysis
    cpu_cost: KernelCost
    gpu_cost: GPUKernelCost
    cpu_roofline: Roofline
    gpu_roofline: Roofline

    # -- derived ------------------------------------------------------------
    @property
    def cpu_bottleneck(self) -> str:
        return self.cpu_cost.item.dominant()

    @property
    def cpu_advice(self) -> str:
        return _ADVICE[self.cpu_bottleneck]

    @property
    def scheduling_overhead(self) -> float:
        return self.cpu_cost.schedule.scheduling_overhead_fraction

    @property
    def faster_device(self) -> str:
        return "CPU" if self.cpu_cost.total_ns <= self.gpu_cost.total_ns else "GPU"

    def render(self) -> str:
        out = io.StringIO()
        a = self.analysis
        w = out.write
        w(f"kernel performance report: {self.kernel_name}\n")
        gs = " x ".join(map(str, self.global_size))
        ls = (
            "NULL" if self.local_size is None
            else " x ".join(map(str, self.local_size))
        )
        w(f"  NDRange: global {gs}, local {ls}\n")
        w("\n-- work per item --\n")
        w(f"  flops: {a.per_item.flops:.0f}   loads: {a.per_item.loads:.0f}"
          f"   stores: {a.per_item.stores:.0f}"
          f"   local ops: {a.per_item.local_loads + a.per_item.local_stores:.0f}\n")
        w(f"  ILP: {a.ilp:.2f}   arithmetic intensity: "
          f"{a.arithmetic_intensity:.3f} flop/byte\n")
        pats = sorted({x.pattern for x in a.accesses if not x.is_local})
        w(f"  global access patterns: {', '.join(pats) or 'none'}\n")
        w("\n-- CPU (Intel-like) --\n")
        vec = self.cpu_cost.vectorization
        w(f"  vectorization: {vec.explain()}\n")
        w(f"  time: {self.cpu_cost.total_ns / 1e6:.3f} ms   "
          f"achieved {self.cpu_cost.gflops:.1f} Gflop/s\n")
        r = self.cpu_roofline
        w(f"  roofline: attainable {r.attainable_gflops:.1f} Gflop/s "
          f"({'memory' if r.memory_bound else 'compute'} side of ridge "
          f"{r.ridge_point:.2f}), efficiency {r.efficiency:.0%}\n")
        w(f"  bottleneck: {self.cpu_bottleneck} -> {self.cpu_advice}\n")
        w(f"  scheduling overhead: {self.scheduling_overhead:.1%} of CPU time "
          f"({self.cpu_cost.schedule.threads_used} threads, "
          f"{self.cpu_cost.schedule.rounds} rounds)\n")
        w("\n-- GPU (GTX-580-like) --\n")
        occ = self.gpu_cost.occupancy
        w(f"  time: {self.gpu_cost.total_ns / 1e6:.3f} ms   "
          f"achieved {self.gpu_cost.gflops:.1f} Gflop/s\n")
        w(f"  occupancy: {occ.occupancy:.0%} "
          f"({occ.workgroups_per_sm} wg/SM, limiter: {occ.limiter}, "
          f"lane efficiency {occ.lane_efficiency:.0%})\n")
        w(f"  latency hiding: {self.gpu_cost.sm_cost.latency_hiding:.0%}\n")
        w(f"\n-- verdict: {self.faster_device} wins "
          f"({min(self.cpu_cost.total_ns, self.gpu_cost.total_ns) / 1e6:.3f} ms "
          f"vs {max(self.cpu_cost.total_ns, self.gpu_cost.total_ns) / 1e6:.3f} ms)"
          f" --\n")
        return out.getvalue()


def kernel_report(
    kernel: Kernel,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
    *,
    scalars: Optional[Dict[str, float]] = None,
    buffer_bytes: Optional[Dict[str, int]] = None,
    cpu_spec: CPUSpec = XEON_E5645,
    gpu_spec: GPUSpec = GTX580,
) -> KernelReport:
    """Build the full guideline report for one kernel and configuration."""
    cpu = CPUDeviceModel(cpu_spec)
    gpu = GPUDeviceModel(gpu_spec)
    cpu_cost = cpu.kernel_cost(
        kernel, global_size, local_size, scalars=scalars, buffer_bytes=buffer_bytes
    )
    gpu_cost = gpu.kernel_cost(
        kernel, global_size, local_size, scalars=scalars, buffer_bytes=buffer_bytes
    )
    analysis = cpu_cost.analysis
    return KernelReport(
        kernel_name=kernel.name,
        global_size=tuple(int(g) for g in global_size),
        local_size=None if local_size is None else tuple(int(l) for l in local_size),
        analysis=analysis,
        cpu_cost=cpu_cost,
        gpu_cost=gpu_cost,
        cpu_roofline=roofline(
            analysis, cpu_cost.gflops,
            peak_gflops=cpu_spec.peak_gflops_sp,
            bandwidth_gbps=cpu_spec.dram_bandwidth_gbps * cpu_spec.sockets,
            device="CPU",
        ),
        gpu_roofline=roofline(
            analysis, gpu_cost.gflops,
            peak_gflops=gpu_spec.peak_gflops_sp,
            bandwidth_gbps=gpu_spec.dram_bandwidth_gbps,
            device="GPU",
        ),
    )
