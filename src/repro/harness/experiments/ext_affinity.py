"""EXT — the paper's proposed OpenCL workgroup-affinity extension, realized.

Section III-E argues OpenCL should let the programmer pin workgroups to
cores so "data on different kernels can be shared without a memory request".
This experiment runs the Figure 9 producer/consumer pair entirely *inside
OpenCL* through :class:`repro.minicl.AffinityCommandQueue`, three ways:

* **stock**: no placement control (today's OpenCL) — arbitrary placement
  each launch, no dependable reuse;
* **pinned aligned**: both kernels pin workgroup *w* of chunk *w* to core
  ``w % 8`` — the consumer finds its input in the private caches;
* **pinned misaligned**: the consumer's placement is rotated by one core —
  the paper's worst case, everything comes from the shared L3.

Expected: aligned < stock ≈ misaligned, quantifying the headroom the paper
says the extension would unlock.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ... import minicl as cl
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32
from ..report import ExperimentResult, Series

__all__ = ["run", "producer_consumer_times"]

CORES = 8


def _vadd(name, in1, in2, out):
    kb = KernelBuilder(name)
    a = kb.buffer(in1, F32, access="r")
    b = kb.buffer(in2, F32, access="r")
    c = kb.buffer(out, F32, access="w")
    g = kb.global_id(0)
    c[g] = a[g] + b[g]
    return kb.finish()


def _vmul(name, in1, in2, out):
    kb = KernelBuilder(name)
    a = kb.buffer(in1, F32, access="r")
    b = kb.buffer(in2, F32, access="r")
    c = kb.buffer(out, F32, access="w")
    g = kb.global_id(0)
    c[g] = a[g] * b[g]
    return kb.finish()


def producer_consumer_times(
    n: int, mode: str, *, functional: bool = False
) -> Dict[str, float]:
    """(producer_ns, consumer_ns) for one of 'stock'/'aligned'/'misaligned'."""
    ctx = cl.Context(cl.cpu_platform().devices)
    queue = cl.AffinityCommandQueue(ctx, functional=functional)
    # Figure 9 layout generalized to the whole machine: every logical core
    # owns one contiguous slice of the data, expressed as WGS_PER_CORE
    # consecutive workgroups per core (a single workgroup is capped at 8192
    # items by the device), so all three modes use identical parallelism.
    n_cores = ctx.device.model.spec.logical_cores
    wgs_per_core = 8
    wg = n // (n_cores * wgs_per_core)
    num_wgs = n // wg

    rng = np.random.default_rng(11)
    host = {
        "a": rng.random(n).astype(np.float32),
        "b": rng.random(n).astype(np.float32),
        "out": np.zeros(n, np.float32),
        "c": rng.random(n).astype(np.float32),
        "res": np.zeros(n, np.float32),
    }
    mf = cl.mem_flags
    bufs = {
        k: ctx.create_buffer(mf.READ_WRITE | mf.COPY_HOST_PTR, hostbuf=v)
        for k, v in host.items()
    }

    prod = ctx.create_program(_vadd("produce", "a", "b", "out")).create_kernel(
        "produce"
    )
    prod.set_args(bufs["a"], bufs["b"], bufs["out"])
    cons = ctx.create_program(_vmul("consume", "out", "c", "res")).create_kernel(
        "consume"
    )
    cons.set_args(bufs["out"], bufs["c"], bufs["res"])

    identity = [w * n_cores // num_wgs for w in range(num_wgs)]
    rotated = [(c + 1) % n_cores for c in identity]
    p_place = None if mode == "stock" else identity
    c_place = {
        "stock": None,
        "aligned": identity,
        "misaligned": rotated,
    }[mode]

    ev1 = queue.enqueue_nd_range_kernel(
        prod, (n,), (wg,), workgroup_affinity=p_place
    )
    ev2 = queue.enqueue_nd_range_kernel(
        cons, (n,), (wg,), workgroup_affinity=c_place
    )
    if functional:
        np.testing.assert_allclose(
            bufs["res"].array,
            (host["a"] + host["b"]) * host["c"],
            rtol=1e-6,
        )
    return {"producer_ns": ev1.duration_ns, "consumer_ns": ev2.duration_ns}


def run(fast: bool = False) -> ExperimentResult:
    # Size the slices so one core's producer traffic (three float arrays)
    # fits its private L1+L2 — the regime Figure 9 exercises.  Bigger slices
    # thrash the private caches and the extension (correctly) stops paying.
    chunk = 24 * 8  # workgroup granularity (see producer_consumer_times)
    n = (96_000 // chunk) * chunk if fast else (288_000 // chunk) * chunk
    series = []
    totals = {}
    for mode in ("stock", "aligned", "misaligned"):
        t = producer_consumer_times(n, mode, functional=not fast)
        totals[mode] = t["producer_ns"] + t["consumer_ns"]
        series.append(
            Series(mode, {
                "producer (ms)": t["producer_ns"] / 1e6,
                "consumer (ms)": t["consumer_ns"] / 1e6,
                "total (ms)": totals[mode] / 1e6,
            })
        )
    return ExperimentResult(
        experiment_id="ext_affinity",
        title=(
            "Proposed extension: workgroup affinity in OpenCL "
            "(producer/consumer)"
        ),
        series=series,
        value_name="time (ms)",
        notes=[
            f"aligned vs stock speedup: {totals['stock'] / totals['aligned']:.3f}x",
            f"aligned vs misaligned speedup: "
            f"{totals['misaligned'] / totals['aligned']:.3f}x",
            "implements the paper's Section III-E proposal "
            f"({cl.EXTENSION_NAME})",
        ],
    )
