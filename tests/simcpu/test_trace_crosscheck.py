"""Cross-validation: the analytical cache model against the exact simulator.

For small launches we can both (a) estimate memory behaviour analytically
(``MemoryCostModel``) and (b) replay the real access trace through the
set-associative simulator.  The analytical model is a deliberate
simplification; these tests pin the *ordinal* agreements that the timing
results rely on — which access pattern is worse, when DRAM traffic appears —
not cycle equality.
"""

import numpy as np
import pytest

from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.trace import trace_kernel
from repro.kernelir.types import F32, I32
from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.cachemodel import MemoryCostModel
from repro.simcpu.spec import XEON_E5645


def _hierarchy():
    return CacheHierarchy(
        1,
        l1_bytes=XEON_E5645.l1d_bytes,
        l2_bytes=XEON_E5645.l2_bytes,
        l3_bytes=XEON_E5645.l3_bytes,
        cores_per_socket=1,
    )


def contiguous_kernel():
    kb = KernelBuilder("c")
    a = kb.buffer("a", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[g] * 2.0
    return kb.finish()


def strided_kernel(stride):
    kb = KernelBuilder("s")
    a = kb.buffer("a", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[g * stride] * 2.0
    return kb.finish()


def gather_kernel():
    kb = KernelBuilder("g")
    a = kb.buffer("a", F32, access="r")
    idx = kb.buffer("idx", I32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[idx[g]] * 2.0
    return kb.finish()


def _exact_miss_rate(kernel, buffers, n, lsize=64):
    t = trace_kernel(kernel, n, lsize, buffers=buffers)
    h = _hierarchy()
    counts = t.replay(h, {g: 0 for g in range(n // lsize)})
    total = sum(counts.values())
    return (total - counts["L1"]) / total


def _analytic_amat(kernel, buffers, n, lsize=64, scalars=None):
    ctx = LaunchContext((n,), (lsize,), scalars or {})
    an = analyze_kernel(kernel, ctx)
    m = MemoryCostModel(XEON_E5645)
    return m.estimate(an, {k: v.nbytes for k, v in buffers.items()})


class TestOrdinalAgreement:
    N = 4096

    def _bufs(self, elems_a):
        rng = np.random.default_rng(0)
        return {
            "a": rng.random(elems_a).astype(np.float32),
            "o": np.zeros(self.N, np.float32),
        }

    def test_contiguous_cheapest_both_ways(self):
        b_c = self._bufs(self.N)
        b_s = self._bufs(self.N * 16)
        exact_c = _exact_miss_rate(contiguous_kernel(), b_c, self.N)
        exact_s = _exact_miss_rate(strided_kernel(16), b_s, self.N)
        assert exact_c < exact_s

        amat_c = _analytic_amat(contiguous_kernel(), b_c, self.N).amat_cycles
        amat_s = _analytic_amat(strided_kernel(16), b_s, self.N).amat_cycles
        assert amat_c < amat_s

    def test_gather_worst_both_ways(self):
        rng = np.random.default_rng(1)
        big = 1 << 22  # 16MB gather target: beyond L3
        b_g = {
            "a": rng.random(big).astype(np.float32),
            "idx": rng.integers(0, big, self.N, dtype=np.int32),
            "o": np.zeros(self.N, np.float32),
        }
        b_c = self._bufs(self.N)
        # isolate the 'a' accesses: a big random gather misses virtually
        # every time; a contiguous walk misses once per line
        exact_gather_a = self._buffer_miss_rate(gather_kernel(), b_g, "a")
        exact_contig_a = self._buffer_miss_rate(contiguous_kernel(), b_c, "a")
        assert exact_gather_a > 0.9
        assert exact_contig_a < 0.15
        assert exact_gather_a > 3 * exact_contig_a

        amat_g = _analytic_amat(gather_kernel(), b_g, self.N).amat_cycles
        amat_c = _analytic_amat(contiguous_kernel(), b_c, self.N).amat_cycles
        assert amat_g > 3 * amat_c

    def _buffer_miss_rate(self, kernel, buffers, which):
        t = trace_kernel(kernel, self.N, 64, buffers=buffers)
        h = _hierarchy()
        hits = misses = 0
        for a in t.accesses:
            r = h.access(0, a.byte_address)
            if a.buffer == which:
                if r.level == "L1":
                    hits += 1
                else:
                    misses += 1
        return misses / (hits + misses)

    def test_l1_resident_footprint_hits_both_ways(self):
        small = 1024  # 4KB per buffer: L1-resident
        b = {
            "a": np.ones(small, np.float32),
            "o": np.zeros(small, np.float32),
        }
        # second pass over warm caches
        t = trace_kernel(contiguous_kernel(), small, 64, buffers=b)
        h = _hierarchy()
        t.replay(h, {g: 0 for g in range(small // 64)})
        warm = t.replay(h, {g: 0 for g in range(small // 64)})
        assert warm["L1"] == sum(warm.values())  # all hits

        est = _analytic_amat(contiguous_kernel(), b, small)
        assert est.amat_cycles == 0.0
        assert est.dram_bytes == 0.0

    def test_dram_traffic_appears_beyond_l3_both_ways(self):
        n = self.N
        # big logical footprint: the analytic model keys off buffer size
        big_elems = (XEON_E5645.l3_bytes // 4) * 2
        b = {
            "a": np.zeros(big_elems, np.float32),
            "o": np.zeros(n, np.float32),
        }
        est = _analytic_amat(contiguous_kernel(), b, n)
        assert est.dram_bytes > 0

        small_b = self._bufs(n)
        est_small = _analytic_amat(contiguous_kernel(), small_b, n)
        assert est_small.dram_bytes == 0.0


class TestExactStreamBehaviour:
    def test_cold_stream_misses_once_per_line(self):
        n = 4096
        b = {
            "a": np.zeros(n, np.float32),
            "o": np.zeros(n, np.float32),
        }
        t = trace_kernel(contiguous_kernel(), n, 64, buffers=b)
        h = _hierarchy()
        counts = t.replay(h, {g: 0 for g in range(n // 64)})
        misses = sum(v for k, v in counts.items() if k != "L1")
        # 4B elements, 64B lines: 1 miss per 16 accesses per stream
        expected = 2 * n / 16
        assert misses == pytest.approx(expected, rel=0.1)
