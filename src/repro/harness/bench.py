"""Wall-clock benchmark harness: ``python -m repro bench``.

Times the experiment suite (host wall-clock, not simulated time), reports
per-cache-family hit rates, runs a set of cache- and engine-sensitive
microbenchmarks, and — unless disabled — re-runs the suite with every
launch-plan cache bypassed to measure the end-to-end caching speedup.

With ``workers > 1`` the suite is timed across that many worker
*processes* (every experiment is deterministic in virtual time and shares
nothing, so this is the same fan-out as ``experiments --jobs``) and
``total_seconds`` becomes the suite's wall clock rather than the serial
sum; ``queue="ooo"`` additionally routes every functional command through
the DAG scheduler (``REPRO_QUEUE=ooo``) — results are byte-identical by
construction, only the wall clock moves.

Results serialize to JSON (``BENCH_2.json`` in the repo keeps the committed
baseline) as ``{"schema": 1, "runs": {mode: run}}`` with one run per mode
(``full``/``quick``).  :func:`compare` checks a fresh run against the
committed baseline of the *same* mode and flags wall-clock regressions
beyond a threshold — the CI bench smoke job fails on that.
"""

from __future__ import annotations

import cProfile
import contextlib
import io
import json
import os
import pathlib
import pstats
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .. import plancache

__all__ = ["SCHEMA", "compare", "load_baseline", "merge_run", "run_bench",
           "trend"]

SCHEMA = 1

#: per-experiment analysis counters summed into the suite aggregate
_ANALYSIS_KEYS = ("analysis_requests", "kernels_analyzed",
                  "analysis_disk_hits")
#: per-experiment shared-memory counters, aggregated the same way
_SHM_KEYS = ("published", "attach_hits", "attach_misses", "publish_races",
             "bytes_mapped")


def _timed_run(name: str, fast: bool) -> Tuple[str, float, dict]:
    """Module-level so worker processes can unpickle the task.

    Returns the analysis- and SHM-counter *deltas* of the run alongside
    the wall time: persistent pool workers accumulate process-wide
    counters across many tasks, so per-task deltas are the only numbers
    that sum cleanly into a suite-wide figure regardless of how tasks
    landed on workers.
    """
    from .. import shm
    from ..kernelir import dataflow
    from .registry import run_experiment

    before = dataflow.analysis_stats()
    shm_before = shm.shm_stats()
    t0 = time.perf_counter()
    run_experiment(name, fast=fast)
    dt = time.perf_counter() - t0
    after = dataflow.analysis_stats()
    shm_after = shm.shm_stats()
    delta = {k: after.get(k, 0) - before.get(k, 0) for k in _ANALYSIS_KEYS}
    for k in _SHM_KEYS:
        delta[k] = shm_after.get(k, 0) - shm_before.get(k, 0)
    return name, dt, delta


def _warm_worker(names: Sequence[str], fast: bool) -> Tuple[dict, dict]:
    """Run the whole suite inside one pool worker (broadcast warmup).

    Each worker executes every experiment once so the timed pass hits
    warm in-process caches no matter which worker a task lands on.
    Returns (per-name seconds, summed stat deltas) for LPT ordering and
    the suite-wide data-plane aggregate.
    """
    times: dict = {}
    agg = {k: 0 for k in _ANALYSIS_KEYS + _SHM_KEYS}
    for n in names:
        _, dt, delta = _timed_run(n, fast)
        times[n] = dt
        for k in agg:
            agg[k] += int(delta.get(k, 0))
    return times, agg


def _time_suite(
    names: Sequence[str], fast: bool, workers: int = 1
) -> Tuple[Dict[str, float], float, dict]:
    """(per-experiment seconds, suite wall-clock seconds, analysis agg).

    Serial (``workers <= 1``) runs in-process; otherwise experiments fan
    out over the repo's persistent worker pool (``registry.pool_map`` —
    batched dispatch, shared-memory datasets) and per-experiment numbers
    come back from the workers while the wall clock is measured here.
    The third element aggregates the per-task analysis-counter deltas, so
    the suite's fixpoint-skip rate is visible even when the work ran in
    worker processes.
    """
    from .registry import pool_map

    t0 = time.perf_counter()
    rows = pool_map(_timed_run, [(n, fast) for n in names], jobs=workers)
    wall = time.perf_counter() - t0
    out = {name: dt for name, dt, _ in rows}
    agg = {k: 0 for k in _ANALYSIS_KEYS + _SHM_KEYS}
    for _, _, delta in rows:
        for k in _ANALYSIS_KEYS + _SHM_KEYS:
            agg[k] += int(delta.get(k, 0))
    req = agg["analysis_requests"]
    agg["cache_hit_rate"] = (
        round(max(0, req - agg["kernels_analyzed"]) / req, 4) if req else 0.0
    )
    return out, wall, agg


@contextlib.contextmanager
def _profiled(label: str, enabled: bool, log):
    """cProfile one bench phase and log its top-20 cumulative frames.

    Profiles *this* process: with worker fan-out the suite phases mostly
    show pool supervision (the real work is in the workers — profile a
    serial run to see it), while the microbench phase always runs here.
    """
    if not enabled:
        yield
        return
    prof = cProfile.Profile()
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        buf = io.StringIO()
        pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(20)
        log(f"[bench] profile: {label} (top 20 by cumulative time)")
        for line in buf.getvalue().splitlines():
            if line.strip():
                log(f"[bench]   {line}")


def _microbench() -> Dict[str, dict]:
    """Per-call latency of the two hottest cached paths, hit vs. miss.

    Uses MBench1 (a pure-compute kernel with one launch shape) so numbers
    reflect cache behaviour rather than data-size effects.
    """
    import numpy as np

    from ..minicl.platform import cpu_platform
    from ..suite import mbench_by_name

    bench = mbench_by_name("MBench1")
    kernel = bench.kernel()
    gs = bench.default_global_sizes[0]
    ls = bench.default_local_size
    host, scalars = bench.make_data(gs, np.random.default_rng(0))
    buffer_bytes = {k: int(v.nbytes) for k, v in host.items()}

    model = cpu_platform().devices[0].model
    rounds = 50

    def per_call_us(fn, n: int) -> float:
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - t0) / n * 1e6

    def cost():
        model.kernel_cost(kernel, gs, ls, scalars=scalars,
                          buffer_bytes=buffer_bytes)

    cost()  # prime
    hit_us = per_call_us(cost, rounds)
    with plancache.caching_disabled():
        miss_us = per_call_us(cost, 5)

    from ..kernelir.interp import Interpreter

    small_gs, small_ls = (4096,), (256,)
    small_host, small_sc = bench.make_data(small_gs, np.random.default_rng(0))

    def interp():
        bufs = {k: v.copy() for k, v in small_host.items()}
        Interpreter().launch(kernel, small_gs, small_ls,
                             buffers=bufs, scalars=small_sc)

    interp()  # prime the id-grid cache
    interp_hit_us = per_call_us(interp, 10)
    with plancache.caching_disabled():
        interp_miss_us = per_call_us(interp, 10)

    # compiled engine vs tree-walk interpreter on the same launch
    from ..kernelir import compile as klcompile

    def compiled():
        bufs = {k: v.copy() for k, v in small_host.items()}
        ck = klcompile.get_compiled(kernel)
        if ck is None:  # pragma: no cover - MBench kernels always compile
            return interp()
        ck.launch(small_gs, small_ls, buffers=bufs, scalars=small_sc)

    compiled()  # prime the compile cache
    compiled_us = per_call_us(compiled, 10)

    out = {
        "engine_launch_us": {
            "compiled": round(compiled_us, 2),
            "interp": round(interp_hit_us, 2),
            "speedup": (
                round(interp_hit_us / compiled_us, 2)
                if compiled_us > 0 else 0.0
            ),
        },
        "kernel_cost_us": {
            "cached": round(hit_us, 2),
            "uncached": round(miss_us, 2),
            "speedup": round(miss_us / hit_us, 2) if hit_us > 0 else 0.0,
        },
        "interp_launch_us": {
            "cached": round(interp_hit_us, 2),
            "uncached": round(interp_miss_us, 2),
            "speedup": (
                round(interp_miss_us / interp_hit_us, 2)
                if interp_hit_us > 0 else 0.0
            ),
        },
    }
    out.update(_engine_microbench())
    return out


def _engine_microbench() -> Dict[str, dict]:
    """DAG-scheduler command overhead and chunked-launch latency rows.

    Two tables: per-command retirement cost of the eager engine vs the DAG
    scheduler at one and at the auto worker count, and per-launch latency
    of a 1M-lane chunk-safe kernel on the compiled engine at one vs auto
    workers (with the tree-walk interpreter as the reference row).
    """
    import numpy as np

    from .. import minicl as cl
    from .. import workers
    from ..kernelir import compile as klcompile
    from ..kernelir.interp import Interpreter
    from ..suite import mbench_by_name

    auto = max(1, min(4, os.cpu_count() or 1))
    ctx = cl.Context(cl.cpu_platform().devices)
    src = np.ones(1024, np.float32)
    rounds = 200

    def per_cmd_us(out_of_order: bool) -> float:
        q = ctx.create_command_queue(
            functional=True, out_of_order=out_of_order
        )
        bufs = [
            ctx.create_buffer(cl.mem_flags.READ_WRITE, hostbuf=src)
            for _ in range(8)
        ]
        t0 = time.perf_counter()
        for i in range(rounds):
            q.enqueue_write_buffer(bufs[i % 8], src, blocking=False)
        q.finish()
        return (time.perf_counter() - t0) / rounds * 1e6

    eager_us = per_cmd_us(False)
    workers.set_worker_count(1)
    try:
        dag_1w_us = per_cmd_us(True)
        workers.set_worker_count(auto)
        dag_auto_us = per_cmd_us(True)

        bench = mbench_by_name("MBench1")
        kernel = bench.kernel()
        gs, ls = bench.default_global_sizes[0], bench.default_local_size
        host, scalars = bench.make_data(gs, np.random.default_rng(0))
        bufs = {k: v.copy() for k, v in host.items()}

        def compiled_launch():
            klcompile.launch_kernel(
                kernel, gs, ls, buffers=bufs, scalars=scalars
            )

        def per_call_us(fn, n: int) -> float:
            t0 = time.perf_counter()
            for _ in range(n):
                fn()
            return (time.perf_counter() - t0) / n * 1e6

        compiled_launch()  # prime compile + fused-plan caches
        compiled_auto_us = per_call_us(compiled_launch, 10)
        workers.set_worker_count(1)
        compiled_1w_us = per_call_us(compiled_launch, 10)
        interp_us = per_call_us(
            lambda: Interpreter().launch(
                kernel, gs, ls, buffers=bufs, scalars=scalars
            ),
            3,
        )
    finally:
        workers.set_worker_count(None)

    return {
        "scheduler_cmd_us": {
            "eager": round(eager_us, 2),
            "dag_1_worker": round(dag_1w_us, 2),
            "dag_auto_workers": round(dag_auto_us, 2),
            "auto_workers": auto,
        },
        "parallel_launch_us": {
            "compiled_1_worker": round(compiled_1w_us, 2),
            "compiled_auto_workers": round(compiled_auto_us, 2),
            "speedup": (
                round(compiled_1w_us / compiled_auto_us, 2)
                if compiled_auto_us > 0 else 0.0
            ),
            "interp_1_worker": round(interp_us, 2),
            "auto_workers": auto,
        },
    }


def run_bench(
    mode: str = "full",
    experiments: Optional[Sequence[str]] = None,
    *,
    measure_speedup: bool = True,
    microbench: bool = True,
    workers: int = 1,
    queue: str = "inorder",
    tuned: Optional[str] = None,
    profile: bool = False,
    log=print,
) -> dict:
    """Run the wall-clock benchmark and return one JSON-ready *run* dict.

    ``workers`` > 1 fans the suite out over worker processes and makes
    ``total_seconds`` the suite's *wall clock* (the serial run keeps the
    per-experiment sum, which for one process is the same thing minus pool
    overhead).  ``queue="ooo"`` sets ``REPRO_QUEUE=ooo`` for the duration
    so every functional command retires through the DAG scheduler.
    ``tuned`` names a ``repro tune`` output file; the run dict then gains
    a ``tuned`` section comparing tuned vs paper-default virtual time per
    benchmark in the file (virtual time, so it composes with any mode).
    ``profile=True`` wraps each phase (warm suite, uncached suite,
    microbench) in cProfile and logs its top-20 cumulative frames.
    """
    from .registry import EXPERIMENTS

    if queue not in ("inorder", "ooo"):
        raise ValueError(f"unknown queue engine {queue!r}")
    fast = mode == "quick"
    names: List[str] = list(experiments) if experiments else list(EXPERIMENTS)

    from ..kernelir import compile as klcompile

    from ..kernelir import dataflow

    from .. import diskcache

    plancache.invalidate_all()
    plancache.reset_stats()
    klcompile.reset_compile_stats()
    dataflow.reset_analysis_stats()
    diskcache.reset_disk_cache_stats()
    try:
        from ..minicl import schedule as clschedule

        clschedule.reset_scheduler_stats()
    except ImportError:  # pragma: no cover - schedule always importable
        clschedule = None
    engine = "compiled" if klcompile.jit_enabled() else "interp"
    log(
        f"[bench] timing {len(names)} experiment(s), mode={mode}, "
        f"caches on, engine={engine}, workers={workers}, queue={queue}"
    )
    prev_queue = os.environ.get("REPRO_QUEUE")
    if queue == "ooo":
        os.environ["REPRO_QUEUE"] = "ooo"
    try:
        warmup_wall = None
        warmup_agg: dict = {}
        timed_names = names
        if workers > 1:
            # parallel mode measures steady-state pool throughput: an
            # untimed broadcast pass runs the whole suite in *every*
            # worker, warming each one's in-process caches (JIT plans,
            # datasets via shared memory, analysis LRU) so the timed pass
            # is warm no matter where a task lands; the timed pass then
            # runs longest-task-first (LPT) so the makespan is not
            # hostage to a long tail scheduled last
            from .registry import pool_map

            with _profiled("warmup suite", profile, log):
                t0 = time.perf_counter()
                warm_rows = pool_map(
                    _warm_worker, [(names, fast)] * workers, jobs=workers
                )
                warmup_wall = time.perf_counter() - t0
            warm_t: Dict[str, float] = {}
            warmup_agg = {k: 0 for k in _SHM_KEYS}
            for times, agg_part in warm_rows:
                for n, dt in times.items():
                    warm_t[n] = max(warm_t.get(n, 0.0), dt)
                for k in _SHM_KEYS:
                    warmup_agg[k] += int(agg_part.get(k, 0))
            timed_names = sorted(names, key=lambda n: -warm_t.get(n, 0.0))
            log(f"[bench] worker warmup: {warmup_wall:.2f}s")
        with _profiled("warm suite", profile, log):
            timings, wall, suite_analysis = _time_suite(
                timed_names, fast, workers
            )
        total = wall if workers > 1 else sum(timings.values())
        stats = plancache.cache_stats()
        jit = klcompile.compile_stats()
        log(f"[bench] cached suite: {total:.2f}s")
        if workers <= 1 and jit["unsupported"]:
            log(
                "[bench] JIT interpreter fallbacks: "
                + "; ".join(
                    f"{k}: {v}" for k, v in jit["unsupported"].items()
                )
            )

        run: dict = {
            "mode": mode,
            "workers": int(workers),
            "queue": queue,
            "experiments": {k: round(v, 4) for k, v in timings.items()},
            "total_seconds": round(total, 4),
            "cache_stats": stats,
            "jit": jit,
        }
        run["analysis"] = dataflow.analysis_stats()
        # cross-process aggregate of the warm suite's per-task deltas —
        # accurate whether the experiments ran here or in pool workers
        run["suite_analysis"] = {
            k: suite_analysis[k]
            for k in _ANALYSIS_KEYS + ("cache_hit_rate",)
        }
        log(
            f"[bench] warm-suite analysis: "
            f"{suite_analysis['analysis_requests']} request(s), "
            f"{suite_analysis['kernels_analyzed']} fixpoint run(s), "
            f"hit rate {suite_analysis['cache_hit_rate']}"
        )
        run["disk_cache"] = diskcache.disk_cache_stats()
        from .. import shm, workers as workers_mod

        # SHM counters live in whichever processes ran the tasks; the
        # per-task deltas (warmup + timed pass) aggregate them correctly
        suite_shm = {
            k: int(warmup_agg.get(k, 0)) + int(suite_analysis.get(k, 0))
            for k in _SHM_KEYS
        }
        run["data_plane"] = {
            "pool": workers_mod.pool_stats(),
            "shm": suite_shm,
        }
        if warmup_wall is not None:
            run["warmup_seconds"] = round(warmup_wall, 4)
        if clschedule is not None:
            run["scheduler"] = clschedule.scheduler_stats()
        if workers > 1:
            # stats above are in-process; the parallel suite ran in worker
            # processes, so record that they describe this process only
            # (suite_analysis is the cross-process exception)
            run["stats_scope"] = "main process (suite ran in workers)"

        if measure_speedup:
            plancache.invalidate_all()
            log(
                "[bench] re-running with caches disabled "
                "(REPRO_NO_CACHE mode)"
            )
            prev_nc = os.environ.get("REPRO_NO_CACHE")
            os.environ["REPRO_NO_CACHE"] = "1"  # reaches worker processes
            try:
                with plancache.caching_disabled(), _profiled(
                    "uncached suite", profile, log
                ):
                    uncached, uwall, _ = _time_suite(names, fast, workers)
            finally:
                if prev_nc is None:
                    os.environ.pop("REPRO_NO_CACHE", None)
                else:
                    os.environ["REPRO_NO_CACHE"] = prev_nc
            uncached_total = uwall if workers > 1 else sum(uncached.values())
            run["uncached_total_seconds"] = round(uncached_total, 4)
            run["speedup"] = (
                round(uncached_total / total, 2) if total > 0 else 0.0
            )
            log(
                f"[bench] uncached suite: {uncached_total:.2f}s "
                f"-> speedup {run['speedup']}x"
            )

        if microbench:
            with _profiled("microbench", profile, log):
                run["microbench"] = _microbench()
            # NB: run["analysis"] deliberately keeps the warm-suite
            # snapshot — re-snapshotting here used to fold the uncached
            # rerun's forced misses into the reported hit rate
            if clschedule is not None:
                # the microbench exercises the DAG engine, so re-snapshot
                run["scheduler"] = clschedule.scheduler_stats()

        if tuned:
            from ..tune import tuned_comparison

            log(f"[bench] tuned-vs-default comparison from {tuned}")
            run["tuned"] = tuned_comparison(tuned, log=log)
            for name, row in run["tuned"].items():
                log(
                    f"[bench]   {name}: {row['speedup']}x "
                    f"(default {row['default']} -> tuned {row['tuned']} "
                    f"{row['units']})"
                )
    finally:
        if prev_queue is None:
            os.environ.pop("REPRO_QUEUE", None)
        else:
            os.environ["REPRO_QUEUE"] = prev_queue
    return run


# -- baseline handling --------------------------------------------------------


def load_baseline(path) -> dict:
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {doc.get('schema')!r}"
        )
    return doc


def merge_run(doc: Optional[dict], run: dict) -> dict:
    """Insert ``run`` into a schema-1 document, replacing its mode's slot."""
    if not doc:
        doc = {"schema": SCHEMA, "runs": {}}
    doc.setdefault("runs", {})[run["mode"]] = run
    return doc


def trend(run: dict, baselines: Sequence, log=print) -> None:
    """Print the wall-clock trajectory across several committed baselines.

    ``baselines`` is a sequence of ``(label, document)`` pairs in the
    order given on the command line (oldest first by convention, e.g.
    ``--compare BENCH_2.json --compare BENCH_3.json``).  For the current
    run's mode, each baseline's total and its ratio to the current run
    are printed, so the perf trajectory across PRs is visible from the
    CLI.  Purely informational — gating stays with :func:`compare`.
    """
    mode = run["mode"]
    cur_total = float(run["total_seconds"])
    log(f"[bench] trend for mode {mode!r} (current: {cur_total:.2f}s):")
    prev: Optional[float] = None
    for label, doc in baselines:
        base_run = (doc.get("runs") or {}).get(mode)
        if base_run is None:
            log(f"[bench]   {label}: no {mode!r} run recorded")
            continue
        total = float(base_run["total_seconds"])
        vs_cur = cur_total / total if total > 0 else float("inf")
        step = ""
        if prev is not None and total > 0:
            step = f", {prev / total:.2f}x vs previous baseline"
        speedup = base_run.get("speedup")
        extra = f", caching speedup {speedup}x" if speedup else ""
        log(
            f"[bench]   {label}: {total:.2f}s "
            f"(current is {vs_cur:.2f}x of it{step}{extra})"
        )
        prev = total


def compare(run: dict, baseline: dict, threshold: float = 0.30,
            log=print) -> bool:
    """True if ``run`` is within ``threshold`` of the same-mode baseline.

    A baseline without this mode is a skip (returns True with a notice),
    so a quick CI run never gets judged against a full-mode number.
    """
    base_run = (baseline.get("runs") or {}).get(run["mode"])
    if base_run is None:
        log(f"[bench] baseline has no {run['mode']!r} run; comparison skipped")
        return True
    base_total = float(base_run["total_seconds"])
    cur_total = float(run["total_seconds"])
    limit = base_total * (1.0 + threshold)
    ratio = cur_total / base_total if base_total > 0 else float("inf")
    verdict = "OK" if cur_total <= limit else "REGRESSION"
    log(
        f"[bench] {run['mode']}: {cur_total:.2f}s vs baseline "
        f"{base_total:.2f}s ({ratio:.2f}x, limit {1.0 + threshold:.2f}x) "
        f"-> {verdict}"
    )
    if "speedup" in run:
        log(f"[bench] caching speedup this run: {run['speedup']}x")
    jit = run.get("jit")
    if jit:
        launches = jit.get("launches", {})
        log(
            f"[bench] engine={jit.get('engine')}: "
            f"{launches.get('compiled', 0)} compiled launch(es), "
            f"{launches.get('interp_fallback', 0)} fallback(s), "
            f"{launches.get('interp_forced', 0)} forced-interp, "
            f"{launches.get('coarsened', 0)} coarsened"
        )
    # the fused-plan cache and the scheduler's cross-launch fusions are
    # reported unconditionally — worker fan-out only changes which process
    # accumulated them, not whether they are part of the run
    fused = (run.get("cache_stats") or {}).get("kernelir.fused")
    if fused:
        log(
            f"[bench] fused-plan cache: {fused.get('hits', 0)} hit(s) / "
            f"{fused.get('misses', 0)} miss(es) "
            f"(hit rate {fused.get('hit_rate', 0.0)})"
        )
    sched = run.get("scheduler")
    if sched is not None:
        log(
            f"[bench] scheduler: {sched.get('fused_launches', 0)} "
            f"cross-launch fusion(s)"
        )
    disk = run.get("disk_cache")
    if disk:
        log(
            f"[bench] disk cache: {disk.get('kernel_hits', 0)} kernel / "
            f"{disk.get('plan_hits', 0)} plan / "
            f"{disk.get('verify_hits', 0)} verify hit(s), "
            f"{disk.get('kernel_stores', 0) + disk.get('plan_stores', 0) + disk.get('verify_stores', 0)} "
            f"store(s), {disk.get('errors', 0)} error(s)"
        )
    analysis = run.get("analysis")
    if analysis:
        log(
            f"[bench] dataflow analysis: cache hit rate "
            f"{analysis.get('cache_hit_rate', 0.0)}, chunk-eligible "
            f"{analysis.get('chunk_eligible', 0)}/"
            f"{analysis.get('chunk_checked', 0)} kernel(s) "
            f"(fraction {analysis.get('chunk_eligible_fraction', 0.0)})"
        )
    return cur_total <= limit
