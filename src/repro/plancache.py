"""Launch-plan caching: memoize per-launch compilation work across enqueues.

Real OpenCL CPU runtimes win performance exactly this way: pocl caches the
compiled work-group function of a kernel and reuses it for every later
``clEnqueueNDRangeKernel`` with the same launch shape, and Intel's runtime
keeps built program binaries around per context.  Our simulator used to
re-run the full static analysis + vectorizer pipeline on *every* enqueue,
even though ``repeat_to_target`` and the figure sweeps issue the same launch
dozens of times.

This module provides the one cache primitive every layer shares:

* :class:`LaunchPlanCache` — a small LRU mapping an immutable *launch key*
  (kernel fingerprint, NDRange shape, analysis-relevant scalars, buffer
  sizes) to the computed plan, with hit/miss counters and an explicit
  invalidation path;
* a process-wide stats registry, so ``python -m repro bench`` can report
  hit rates per cache family even when many short-lived model instances
  each own their own cache;
* a global kill switch — ``REPRO_NO_CACHE=1`` in the environment or the
  :func:`caching_disabled` context manager — used by the benchmark harness
  to measure the cache-off baseline and by tests to prove cache-on and
  cache-off agree bit-for-bit.

Cached values are treated as immutable by every consumer: device models
return the same ``KernelCost`` object for repeated identical launches, and
the interpreter marks cached id-grid arrays read-only.

Every instance is thread-safe: the experiment service (:mod:`repro.serve`)
shares one cache across tenants whose requests execute on concurrent
worker threads, so ``get``/``put``/``invalidate`` serialize on a per-cache
lock (uncontended in the single-threaded harness path).
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from collections import OrderedDict
from typing import Callable, Dict, Iterator, Optional

__all__ = [
    "LaunchPlanCache",
    "cache_stats",
    "caching_disabled",
    "caching_enabled",
    "invalidate_all",
    "reset_stats",
    "set_caching",
]

#: process-wide switch flipped by :func:`set_caching` / :func:`caching_disabled`
_enabled: bool = True

#: aggregate hit/miss counters per cache *name* (survive instance turnover)
_STATS: Dict[str, Dict[str, int]] = {}

#: live cache instances (weakly held), for :func:`invalidate_all`
_INSTANCES: "weakref.WeakSet[LaunchPlanCache]" = weakref.WeakSet()


def caching_enabled() -> bool:
    """True unless disabled via :func:`set_caching` or ``REPRO_NO_CACHE=1``."""
    if not _enabled:
        return False
    import repro

    return not repro.env_flag("REPRO_NO_CACHE")


def set_caching(on: bool) -> None:
    """Globally enable/disable every :class:`LaunchPlanCache` lookup."""
    global _enabled
    _enabled = bool(on)


@contextlib.contextmanager
def caching_disabled() -> Iterator[None]:
    """Run a block with all launch-plan caches bypassed (miss on every
    lookup, no insertion) — the measurement mode of ``repro bench`` and the
    cache-on/cache-off equivalence tests."""
    global _enabled
    prev = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = prev


class LaunchPlanCache:
    """LRU cache with per-family aggregate statistics.

    Keys must be hashable and fully describe the cached computation (the
    caller is responsible for including every input that can change the
    value).  ``None`` is not a legal value (it signals a miss).

    ``maxsize`` bounds the entry count; ``max_weight`` together with a
    ``weigher`` (value -> cost, e.g. nbytes) bounds total retained weight —
    used by the harness data cache so large host arrays cannot accumulate
    without limit.
    """

    def __init__(
        self,
        name: str,
        maxsize: Optional[int] = 1024,
        *,
        max_weight: Optional[int] = None,
        weigher: Optional[Callable[[object], int]] = None,
    ):
        self.name = name
        self.maxsize = maxsize
        self.max_weight = max_weight
        self.weigher = weigher
        self._data: "OrderedDict[object, object]" = OrderedDict()
        self._weight = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _STATS.setdefault(name, {"hits": 0, "misses": 0, "evictions": 0})
        # older entries (pickled stats from other processes) may predate
        # the evictions counter
        _STATS[name].setdefault("evictions", 0)
        _INSTANCES.add(self)

    # -- core -----------------------------------------------------------------
    def get(self, key):
        """Return the cached value or ``None``; counts a hit or a miss."""
        if not caching_enabled():
            self._miss()
            return None
        with self._lock:
            try:
                value = self._data[key]
            except (KeyError, TypeError):
                # TypeError: unhashable key — treated as a permanent miss
                self._miss()
                return None
            self._data.move_to_end(key)
            self.hits += 1
            _STATS[self.name]["hits"] += 1
            return value

    def put(self, key, value) -> None:
        """Insert (no-op while caching is disabled)."""
        if not caching_enabled() or value is None:
            return
        try:
            hash(key)
        except TypeError:
            return
        with self._lock:
            if key in self._data:
                self._weight -= self._weigh(self._data[key])
            self._data[key] = value
            self._data.move_to_end(key)
            self._weight += self._weigh(value)
            self._evict()

    def invalidate(self, key=None) -> None:
        """Drop one entry (or everything) — e.g. after a spec/model change."""
        with self._lock:
            if key is None:
                self._data.clear()
                self._weight = 0
            else:
                old = self._data.pop(key, None)
                if old is not None:
                    self._weight -= self._weigh(old)

    # -- bookkeeping ----------------------------------------------------------
    def _miss(self) -> None:
        self.misses += 1
        _STATS[self.name]["misses"] += 1

    def _weigh(self, value) -> int:
        return self.weigher(value) if self.weigher is not None else 0

    def _evict(self) -> None:
        while self.maxsize is not None and len(self._data) > self.maxsize:
            _, old = self._data.popitem(last=False)
            self._weight -= self._weigh(old)
            self._evicted()
        if self.max_weight is not None:
            while self._weight > self.max_weight and len(self._data) > 1:
                _, old = self._data.popitem(last=False)
                self._weight -= self._weigh(old)
                self._evicted()

    def _evicted(self) -> None:
        self.evictions += 1
        _STATS[self.name]["evictions"] += 1

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    @property
    def hit_rate(self) -> float:
        n = self.hits + self.misses
        return self.hits / n if n else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "entries": len(self._data),
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LaunchPlanCache {self.name!r} {len(self._data)} entries "
            f"{self.hits}h/{self.misses}m>"
        )


def cache_stats() -> Dict[str, dict]:
    """Aggregate hit/miss counters per cache family (process-wide)."""
    out = {}
    for name, c in sorted(_STATS.items()):
        total = c["hits"] + c["misses"]
        out[name] = {
            "hits": c["hits"],
            "misses": c["misses"],
            "hit_rate": round(c["hits"] / total, 4) if total else 0.0,
            "evictions": c.get("evictions", 0),
        }
    return out


def reset_stats() -> None:
    """Zero the aggregate counters (per-instance counters keep running)."""
    for c in _STATS.values():
        c["hits"] = 0
        c["misses"] = 0
        c["evictions"] = 0


def invalidate_all() -> None:
    """Empty every live cache instance (counters are kept)."""
    for cache in list(_INSTANCES):
        cache.invalidate()
