"""Persistent on-disk code cache (:mod:`repro.diskcache`).

Covers the four failure modes the cache must survive: corrupted and
truncated entries fall back to recompilation, concurrent writers never
publish a torn file (atomic rename), ``REPRO_NO_CACHE=1`` bypasses the
disk entirely, and a version-stamp mismatch invalidates an entry even
when it lands in the right directory.
"""

import json
import threading

import numpy as np
import pytest

from repro import diskcache, plancache
from repro.kernelir import compile as jit
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32


@pytest.fixture
def cache_root(tmp_path, monkeypatch):
    """A private cache root per test, with fresh stats."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    diskcache.reset_disk_cache_stats()
    jit.reset_compile_stats()
    yield tmp_path
    diskcache.reset_disk_cache_stats()
    jit.reset_compile_stats()


def _scale_kernel(name: str):
    kb = KernelBuilder(name)
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    c = kb.scalar("c", F32)
    gid = kb.global_id(0)
    out[gid] = a[gid] * c
    return kb.finish()


def _run(ck, n=64):
    a = np.arange(n, dtype=np.float32)
    out = np.zeros(n, np.float32)
    ck.launch((n,), None, buffers={"a": a, "out": out}, scalars={"c": 3.0})
    return a, out


class TestWarmStart:
    def test_second_compile_loads_from_disk(self, cache_root):
        k = _scale_kernel("dc_warm")
        ck = jit.get_compiled(k)
        assert ck is not None
        assert jit.compile_stats()["kernels_compiled"] == 1
        assert diskcache.disk_cache_stats()["kernel_stores"] == 1

        # a cold process is simulated by dropping the in-memory caches
        plancache.invalidate_all()
        jit.reset_compile_stats()
        ck2 = jit.get_compiled(k)
        assert ck2 is not None
        stats = jit.compile_stats()
        assert stats["kernels_compiled"] == 0
        assert stats["kernels_loaded_disk"] == 1
        a, out = _run(ck2)
        np.testing.assert_array_equal(out, a * np.float32(3.0))

    def test_plan_verdict_loads_from_disk(self, cache_root):
        k = _scale_kernel("dc_plan")
        ck = jit.get_compiled(k)
        plan = jit.get_fused_plan(ck, (256,))
        # two entries: the chunk-safety race verdict + the plan verdict
        assert diskcache.disk_cache_stats()["plan_stores"] == 2

        plancache.invalidate_all()
        jit.reset_compile_stats()
        ck2 = jit.get_compiled(k)
        plan2 = jit.get_fused_plan(ck2, (256,))
        assert jit.compile_stats()["plans_loaded_disk"] == 1
        assert plan2.parallel == plan.parallel


class TestCorruption:
    def test_corrupted_entry_recompiles(self, cache_root):
        k = _scale_kernel("dc_corrupt")
        assert jit.get_compiled(k) is not None
        files = list(cache_root.rglob("*.json"))
        assert files
        for f in files:
            f.write_text("{ this is not json", encoding="utf-8")

        plancache.invalidate_all()
        jit.reset_compile_stats()
        diskcache.reset_disk_cache_stats()
        ck = jit.get_compiled(k)
        assert ck is not None
        assert jit.compile_stats()["kernels_compiled"] == 1
        assert diskcache.disk_cache_stats()["errors"] >= 1
        a, out = _run(ck)
        np.testing.assert_array_equal(out, a * np.float32(3.0))

    def test_truncated_entry_recompiles(self, cache_root):
        k = _scale_kernel("dc_trunc")
        assert jit.get_compiled(k) is not None
        for f in cache_root.rglob("*.json"):
            raw = f.read_bytes()
            f.write_bytes(raw[: len(raw) // 2])

        plancache.invalidate_all()
        jit.reset_compile_stats()
        assert jit.get_compiled(k) is not None
        assert jit.compile_stats()["kernels_compiled"] == 1

    def test_wrong_shape_payload_is_a_miss(self, cache_root):
        diskcache.store_kernel(("shape",), {"source": "x = 1"})
        path = next(cache_root.rglob("*.json"))
        payload = json.loads(path.read_text())
        del payload["source"]
        path.write_text(json.dumps(payload))
        assert diskcache.load_kernel(("shape",)) is None


class TestVersioning:
    def test_stamp_mismatch_invalidates(self, cache_root):
        diskcache.store_kernel(("vkey",), {"source": "x = 1"})
        assert diskcache.load_kernel(("vkey",)) is not None
        path = next(cache_root.rglob("*.json"))
        payload = json.loads(path.read_text())
        payload["version"] = "0" * 40
        path.write_text(json.dumps(payload))
        assert diskcache.load_kernel(("vkey",)) is None

    def test_code_version_partitions_directories(self, cache_root,
                                                 monkeypatch):
        diskcache.store_kernel(("pkey",), {"source": "x = 1"})
        assert diskcache.load_kernel(("pkey",)) is not None
        monkeypatch.setattr(diskcache, "_code_version", "f" * 40)
        # same key, new code version: entry is simply not visible
        assert diskcache.load_kernel(("pkey",)) is None


class TestBypass:
    def test_no_cache_env_bypasses_disk(self, cache_root, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        diskcache.store_kernel(("nkey",), {"source": "x = 1"})
        assert not list(cache_root.rglob("*.json"))
        assert diskcache.load_kernel(("nkey",)) is None
        assert not diskcache.enabled()


class TestConcurrency:
    def test_concurrent_writers_never_publish_torn_entries(self, cache_root):
        key = ("conc",)
        payload = {"source": "s" * 4096}
        torn = []

        def writer():
            for _ in range(40):
                diskcache.store_kernel(key, payload)

        def reader():
            for _ in range(120):
                p = diskcache.load_kernel(key)
                if p is not None and p.get("source") != payload["source"]:
                    torn.append(p)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not torn
        assert diskcache.disk_cache_stats()["errors"] == 0
        # temp files are always renamed away, never left behind
        assert not list(cache_root.rglob("*.tmp"))
        assert diskcache.load_kernel(key)["source"] == payload["source"]


class TestMultiProcessConcurrency:
    """Two *processes* racing writers on one key (the serve-hot path).

    The thread test above shares one ``_tmp_counter``; separate processes
    do not, so this is the real atomic-rename contract: each writer loops
    publishing its own complete payload, a reader in the parent loads
    concurrently, and every load must be either a miss or one of the two
    complete payloads — never a torn or mixed entry.
    """

    def test_two_process_writers_race_one_key(self, cache_root):
        import subprocess
        import sys
        import textwrap

        key = ("mp-race",)
        script = textwrap.dedent("""
            import sys
            from repro import diskcache
            tag = sys.argv[1]
            payload = {"source": tag * 2000}
            for _ in range(150):
                diskcache.store_kernel(("mp-race",), payload)
        """)
        import os

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(cache_root)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen([sys.executable, "-c", script, tag], env=env)
            for tag in ("A", "B")
        ]
        valid = {"A" * 2000, "B" * 2000}
        torn = []
        while any(p.poll() is None for p in procs):
            p = diskcache.load_kernel(key)
            if p is not None and p.get("source") not in valid:
                torn.append(p)
        for p in procs:
            assert p.wait() == 0
        assert not torn
        final = diskcache.load_kernel(key)
        assert final is not None and final["source"] in valid
        assert not list(cache_root.rglob("*.tmp"))

    def test_sweep_stale_tmp_removes_only_old_orphans(self, cache_root):
        import os
        import time

        diskcache.store_kernel(("sweep",), {"source": "x = 1"})
        vdir = next(p for p in cache_root.iterdir() if p.is_dir())
        stale = vdir / "kernels" / ".dead.json.1.0.tmp"
        fresh = vdir / "kernels" / ".live.json.2.0.tmp"
        stale.write_text("{")
        fresh.write_text("{")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        assert diskcache.sweep_stale_tmp(max_age_seconds=3600) == 1
        assert not stale.exists()
        assert fresh.exists()  # an in-flight write is never swept
        # the published entry is untouched
        assert diskcache.load_kernel(("sweep",)) is not None


class TestMaintenance:
    def test_usage_and_clear(self, cache_root):
        diskcache.store_kernel(("u1",), {"source": "x = 1"})
        diskcache.store_plan(("u2",), {"parallel": False, "coarsen": 1})
        use = diskcache.usage()
        assert use["entries"] == 2
        assert use["bytes"] > 0
        assert diskcache.clear() == 2
        assert diskcache.usage()["entries"] == 0
        assert diskcache.clear() == 0  # idempotent on an empty root

    def test_cache_cli_stats_and_clear(self, cache_root, capsys):
        from repro.__main__ import main

        diskcache.store_kernel(("cli",), {"source": "x = 1"})
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(cache_root) in out
        assert "entries" in out
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert not list(cache_root.rglob("*.json"))
