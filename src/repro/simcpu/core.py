"""Out-of-order core timing model.

Cost of one workitem on one logical core, combining three bounds:

* **issue throughput** — ports and SIMD lanes limit how many operations
  retire per cycle;
* **memory** — AMAT latency (from the analytical cache model) and DRAM
  bandwidth limit memory-heavy kernels;
* **dependence latency** — the kernel's dependence critical path limits
  kernels with low ILP (the paper's Section III-C).  The out-of-order window
  can overlap *consecutive workitems* of the serialized workitem loop, but
  only as far as the reorder window reaches — a workitem whose body is larger
  than the window executes at the speed of its own dependence chain, which is
  exactly why the ILP microbenchmarks scale on the CPU.

Each bound is computed per workitem; the final per-item cost is their max.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..kernelir.analysis import KernelAnalysis
from ..kernelir.vectorize import VectorizationReport
from .cachemodel import MemEstimate
from .spec import CPUSpec

__all__ = ["ItemCost", "CoreModel"]


@dataclasses.dataclass
class ItemCost:
    """Per-workitem cycle cost with its constituent bounds (diagnostics)."""

    cycles: float
    compute_bound: float
    memory_bound: float
    bandwidth_bound: float
    latency_bound: float
    effective_vector_width: float

    def dominant(self) -> str:
        bounds = {
            "compute": self.compute_bound,
            "memory": self.memory_bound,
            "bandwidth": self.bandwidth_bound,
            "latency": self.latency_bound,
        }
        return max(bounds, key=bounds.get)


class CoreModel:
    """Per-workitem cost model for one logical CPU core."""

    def __init__(self, spec: CPUSpec):
        self.spec = spec

    def item_cycles(
        self,
        analysis: KernelAnalysis,
        vec: Optional[VectorizationReport],
        mem: MemEstimate,
        *,
        dram_share: float = 1.0,
    ) -> ItemCost:
        """Cycles for one workitem.

        Parameters
        ----------
        analysis:
            Static per-item counts and dependence critical path.
        vec:
            Vectorization outcome; ``None`` means scalar code.
        mem:
            Memory estimate from :class:`MemoryCostModel`.
        dram_share:
            Fraction of socket DRAM bandwidth available to this core
            (``1/cores_busy`` when every core streams).
        """
        s = self.spec
        c = analysis.per_item
        w = vec.effective_width if vec is not None else 1.0

        # --- issue-throughput bound ---------------------------------------
        fp_cycles = (c.flops / w) / s.fp_ports
        int_cycles = (c.int_ops / w) / s.int_ports
        mem_issue = (c.mem_ops / w) / s.mem_ports
        # atomics serialize: lock prefix costs ~20 cycles each
        atomic_cycles = c.atomics * 20.0
        compute_bound = max(
            fp_cycles + atomic_cycles,
            int_cycles,
            mem_issue,
            (c.total() / w) / s.issue_width,
        )

        # --- memory-latency bound ------------------------------------------
        # AMAT beyond L1 is charged once per access site; a vector load still
        # pays the full miss latency, so the latency term does not divide by
        # the vector width, but out-of-order MLP overlaps a few misses.
        mlp = 4.0  # memory-level parallelism the LSQ sustains
        memory_bound = mem_issue + mem.amat_cycles / mlp

        # --- bandwidth bounds (DRAM and the shared L3 ring) -----------------
        dram_bpc = s.dram_bandwidth_gbps * dram_share / s.frequency_ghz
        l3_bpc = s.l3_bandwidth_gbps * dram_share / s.frequency_ghz
        bandwidth_bound = max(
            mem.dram_bytes / dram_bpc if dram_bpc > 0 else 0.0,
            (mem.l3_bytes + mem.dram_bytes) / l3_bpc if l3_bpc > 0 else 0.0,
        )

        # --- dependence-latency bound ---------------------------------------
        # One SIMD packet carries w workitems through the same dependence
        # chain, and the out-of-order window overlaps consecutive packets as
        # far as it reaches.
        instrs_per_packet = max(c.total() / w, 1.0)
        packets_in_window = max(1.0, s.ooo_window / instrs_per_packet)
        latency_bound = analysis.critical_path_cycles / (w * packets_in_window)

        cycles = max(compute_bound, memory_bound, bandwidth_bound, latency_bound)
        return ItemCost(
            cycles=cycles,
            compute_bound=compute_bound,
            memory_bound=memory_bound,
            bandwidth_bound=bandwidth_bound,
            latency_bound=latency_bound,
            effective_vector_width=w,
        )
