"""GPU model (GTX 580-like, the paper's Table I): SMs, warps, occupancy,
transaction-based memory coalescing, and a PCIe link for transfers."""

from .spec import GPUSpec, GTX580
from .occupancy import Occupancy, compute_occupancy
from .sm import SMCost, SMModel
from .device import GPUDeviceModel, GPUKernelCost, GPUTransferCost

__all__ = [
    "GPUSpec", "GTX580",
    "Occupancy", "compute_occupancy",
    "SMModel", "SMCost",
    "GPUDeviceModel", "GPUKernelCost", "GPUTransferCost",
]
