"""Integration tests: programs, kernels, queues, events — full minicl paths."""

import numpy as np
import pytest

from repro import minicl as cl
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32, I32


def vadd_kernel():
    kb = KernelBuilder("vadd")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    c[g] = a[g] + b[g]
    return kb.finish()


def scale_kernel():
    kb = KernelBuilder("scale")
    x = kb.buffer("x", F32)
    s = kb.scalar("s", F32)
    g = kb.global_id(0)
    x[g] = x[g] * s
    return kb.finish()


@pytest.fixture
def cpu():
    ctx = cl.Context(cl.cpu_platform().devices)
    return ctx, ctx.create_command_queue()


@pytest.fixture
def gpu():
    ctx = cl.Context(cl.gpu_platform().devices)
    return ctx, ctx.create_command_queue()


class TestProgram:
    def test_build_log_reports_vectorization(self, cpu):
        ctx, _ = cpu
        prog = ctx.create_program(vadd_kernel()).build()
        assert "vectorized" in prog.build_log["vadd"]

    def test_unknown_kernel_name(self, cpu):
        ctx, _ = cpu
        prog = ctx.create_program(vadd_kernel())
        with pytest.raises(cl.InvalidKernelName):
            prog.create_kernel("nope")

    def test_duplicate_kernels_rejected(self, cpu):
        ctx, _ = cpu
        with pytest.raises(cl.InvalidValue):
            ctx.create_program([vadd_kernel(), vadd_kernel()])

    def test_kernel_names(self, cpu):
        ctx, _ = cpu
        prog = ctx.create_program([vadd_kernel(), scale_kernel()])
        assert prog.kernel_names == ["scale", "vadd"]


class TestSetArg:
    def _kernel(self, ctx):
        return ctx.create_program(vadd_kernel()).create_kernel("vadd")

    def test_missing_arg_detected_at_launch(self, cpu):
        ctx, q = cpu
        k = self._kernel(ctx)
        b = ctx.create_buffer(cl.mem_flags.READ_ONLY, size=16, dtype=np.float32)
        k.set_arg(0, b)
        with pytest.raises(cl.InvalidKernelArgs, match="not set"):
            q.enqueue_nd_range_kernel(k, (4,))

    def test_scalar_where_buffer_expected(self, cpu):
        ctx, _ = cpu
        k = self._kernel(ctx)
        with pytest.raises(cl.InvalidKernelArgs):
            k.set_arg(0, 3.0)

    def test_buffer_where_scalar_expected(self, cpu):
        ctx, _ = cpu
        k = ctx.create_program(scale_kernel()).create_kernel("scale")
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=16, dtype=np.float32)
        with pytest.raises(cl.InvalidKernelArgs):
            k.set_arg(1, b)

    def test_dtype_mismatch(self, cpu):
        ctx, _ = cpu
        k = self._kernel(ctx)
        b = ctx.create_buffer(cl.mem_flags.READ_ONLY, size=32, dtype=np.float64)
        with pytest.raises(cl.InvalidKernelArgs, match="dtype"):
            k.set_arg(0, b)

    def test_access_flag_enforced(self, cpu):
        ctx, _ = cpu
        k = self._kernel(ctx)
        wo = ctx.create_buffer(cl.mem_flags.WRITE_ONLY, size=16, dtype=np.float32)
        with pytest.raises(cl.InvalidKernelArgs, match="WRITE_ONLY"):
            k.set_arg(0, wo)  # kernel reads arg 0
        ro = ctx.create_buffer(cl.mem_flags.READ_ONLY, size=16, dtype=np.float32)
        with pytest.raises(cl.InvalidKernelArgs, match="READ_ONLY"):
            k.set_arg(2, ro)  # kernel writes arg 2

    def test_bad_index(self, cpu):
        ctx, _ = cpu
        k = self._kernel(ctx)
        with pytest.raises(cl.InvalidArgIndex):
            k.set_arg(7, 1.0)

    def test_set_args_count(self, cpu):
        ctx, _ = cpu
        k = self._kernel(ctx)
        with pytest.raises(cl.InvalidKernelArgs):
            k.set_args(1.0)


class TestExecution:
    @pytest.mark.parametrize("which", ["cpu", "gpu"])
    def test_end_to_end_correctness(self, which, cpu, gpu):
        ctx, q = cpu if which == "cpu" else gpu
        n = 1024
        rng = np.random.default_rng(1)
        ha, hb = (rng.random(n).astype(np.float32) for _ in range(2))
        mf = cl.mem_flags
        ba = ctx.create_buffer(mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=ha)
        bb = ctx.create_buffer(mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=hb)
        bc = ctx.create_buffer(mf.WRITE_ONLY, size=4 * n, dtype=np.float32)
        k = ctx.create_program(vadd_kernel()).build().create_kernel("vadd")
        k.set_args(ba, bb, bc)
        q.enqueue_nd_range_kernel(k, (n,), (64,))
        out = np.empty(n, np.float32)
        q.enqueue_read_buffer(bc, out)
        np.testing.assert_allclose(out, ha + hb, rtol=1e-6)

    def test_scalar_arg_applied(self, cpu):
        ctx, q = cpu
        h = np.ones(16, np.float32)
        b = ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        k = ctx.create_program(scale_kernel()).create_kernel("scale")
        k.set_args(b, 2.5)
        q.enqueue_nd_range_kernel(k, (16,))
        assert (b.array == 2.5).all()

    def test_null_local_size_resolved(self, cpu):
        ctx, q = cpu
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=4 * 1000, dtype=np.float32)
        k = ctx.create_program(scale_kernel()).create_kernel("scale")
        k.set_args(b, 1.0)
        ev = q.enqueue_nd_range_kernel(k, (1000,), None)
        ls = ev.info["local_size"]
        assert 1000 % ls[0] == 0

    def test_invalid_work_sizes(self, cpu):
        ctx, q = cpu
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=64, dtype=np.float32)
        k = ctx.create_program(scale_kernel()).create_kernel("scale")
        k.set_args(b, 1.0)
        with pytest.raises(cl.InvalidWorkGroupSize):
            q.enqueue_nd_range_kernel(k, (16,), (5,))
        with pytest.raises(cl.InvalidWorkDimension):
            q.enqueue_nd_range_kernel(k, (4, 4))
        with pytest.raises(cl.InvalidWorkGroupSize):
            q.enqueue_nd_range_kernel(k, (16,), (16 * 1024,))

    def test_timing_only_mode_skips_execution(self, cpu):
        ctx, _ = cpu
        q = ctx.create_command_queue(functional=False)
        h = np.ones(16, np.float32)
        b = ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        k = ctx.create_program(scale_kernel()).create_kernel("scale")
        k.set_args(b, 2.0)
        ev = q.enqueue_nd_range_kernel(k, (16,))
        assert (b.array == 1.0).all()  # data untouched
        assert ev.duration_ns > 0     # but time advanced


class TestEventsAndClock:
    def test_event_profile_monotone(self, cpu):
        ctx, q = cpu
        h = np.ones(64, np.float32)
        b = ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        e1 = q.enqueue_write_buffer(b, h)
        e2 = q.enqueue_read_buffer(b, np.empty_like(h))
        assert e1.profile.queued <= e1.profile.start <= e1.profile.end
        assert e1.profile.end == e2.profile.queued  # in-order queue
        assert q.finish() == e2.profile.end

    def test_wait_is_noop(self, cpu):
        ctx, q = cpu
        h = np.ones(4, np.float32)
        b = ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        ev = q.enqueue_write_buffer(b, h)
        ev.wait()
        assert ev.status == cl.command_status.COMPLETE


class TestTransfersFunctional:
    def test_write_read_roundtrip(self, cpu):
        ctx, q = cpu
        h = np.arange(32, dtype=np.float32)
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=128, dtype=np.float32)
        q.enqueue_write_buffer(b, h)
        out = np.empty(32, np.float32)
        q.enqueue_read_buffer(b, out)
        np.testing.assert_array_equal(out, h)

    def test_size_mismatch(self, cpu):
        ctx, q = cpu
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=128, dtype=np.float32)
        with pytest.raises(cl.InvalidValue):
            q.enqueue_write_buffer(b, np.zeros(4, np.float32))
        with pytest.raises(cl.InvalidValue):
            q.enqueue_read_buffer(b, np.zeros(4, np.float32))

    def test_map_aliases_on_cpu(self, cpu):
        ctx, q = cpu
        h = np.arange(16, dtype=np.float32)
        b = ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        view, ev = q.enqueue_map_buffer(b, cl.map_flags.READ | cl.map_flags.WRITE)
        assert np.shares_memory(view, b.array)
        view[0] = 42.0
        assert b.array[0] == 42.0
        q.enqueue_unmap(b, view)

    def test_map_cheaper_than_copy_on_cpu(self, cpu):
        ctx, q = cpu
        n = 1 << 20
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=4 * n, dtype=np.float32)
        h = np.zeros(n, np.float32)
        copy_ev = q.enqueue_write_buffer(b, h)
        view, map_ev = q.enqueue_map_buffer(b, cl.map_flags.WRITE)
        q.enqueue_unmap(b, view)
        assert map_ev.duration_ns < copy_ev.duration_ns / 5

    def test_unmap_of_unmapped_pointer(self, cpu):
        ctx, q = cpu
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=64, dtype=np.float32)
        with pytest.raises(cl.InvalidOperation):
            q.enqueue_unmap(b, np.zeros(16, np.float32))

    def test_bad_map_flags(self, cpu):
        ctx, q = cpu
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=64, dtype=np.float32)
        with pytest.raises(cl.InvalidValue):
            q.enqueue_map_buffer(b, cl.map_flags(0))


class TestFlatAPI:
    def test_c_style_host_program(self):
        api = cl.api
        platforms = api.clGetPlatformIDs()
        devices = api.clGetDeviceIDs(platforms[0], cl.device_type.CPU)
        ctx = api.clCreateContext(devices)
        q = api.clCreateCommandQueue(ctx, devices[0])
        n = 256
        ha = np.arange(n, dtype=np.float32)
        hb = np.ones(n, dtype=np.float32)
        mf = cl.mem_flags
        ba = api.clCreateBuffer(ctx, mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=ha)
        bb = api.clCreateBuffer(ctx, mf.READ_ONLY | mf.COPY_HOST_PTR, hostbuf=hb)
        bc = api.clCreateBuffer(ctx, mf.WRITE_ONLY, size=4 * n, dtype=np.float32)
        prog = api.clCreateProgram(ctx, vadd_kernel())
        k = api.clCreateKernel(prog, "vadd")
        for i, arg in enumerate((ba, bb, bc)):
            api.clSetKernelArg(k, i, arg)
        ev = api.clEnqueueNDRangeKernel(q, k, (n,), (64,))
        mapped, _ = api.clEnqueueMapBuffer(q, bc, cl.map_flags.READ)
        np.testing.assert_allclose(mapped, ha + hb)
        api.clEnqueueUnmapMemObject(q, bc, mapped)
        api.clFinish(q)
        prof = api.clGetEventProfilingInfo(ev)
        assert prof["CL_PROFILING_COMMAND_END"] > prof["CL_PROFILING_COMMAND_START"]
