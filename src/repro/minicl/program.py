"""Programs and kernel objects (``clBuildProgram``/``clCreateKernel``).

A :class:`Program` holds compiled kernel IR; building runs the device's
vectorizer once per kernel so the "compiler log" can be inspected, exactly
the way one reads Intel's vectorization report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..kernelir.analysis import LaunchContext
from ..kernelir.ast import BufferParam, Kernel, ScalarParam
from .buffer import Buffer
from .errors import (
    InvalidArgIndex,
    InvalidKernelArgs,
    InvalidKernelName,
    InvalidValue,
)

__all__ = ["Program", "CLKernel"]

_MISSING = object()


class Program:
    """A built program: a named collection of kernels."""

    def __init__(self, context, kernels: Union[Kernel, Sequence[Kernel]]):
        if isinstance(kernels, Kernel):
            kernels = [kernels]
        self.context = context
        self._kernels: Dict[str, Kernel] = {}
        for k in kernels:
            if k.name in self._kernels:
                raise InvalidValue(f"duplicate kernel name {k.name!r}")
            self._kernels[k.name] = k
        self.build_log: Dict[str, str] = {}
        #: per-kernel status of the functional kernel JIT (compiled vs
        #: interpreter fallback), filled by :meth:`build`
        self.jit_log: Dict[str, str] = {}
        #: build-time thread-coarsening request inherited by created
        #: kernels (None = static heuristic, 1 = off, K>=2 = forced)
        self.coarsen: Optional[int] = None
        self._built = False

    def build(self, *, jit: bool = True,
              coarsen=_MISSING) -> "Program":
        """Produce a per-kernel vectorization report (the "compiler log").

        Also runs the functional kernel JIT once per kernel (the
        clBuildProgram analogue) so later enqueues start on the compiled
        path; the outcome is recorded in :attr:`jit_log`.  ``jit=False``
        skips the eager compile — callers that only ever time launches
        (``functional=False`` queues) don't pay for codegen they never
        use; a functional launch still compiles lazily on first enqueue.

        ``coarsen`` is the build-time thread-coarsening request (the
        ``-cl-opt`` analogue): ``None`` leaves the per-launch heuristic in
        charge, ``1`` disables coarsening for kernels of this program, and
        ``K >= 2`` forces factor K where legal (illegal launches fall back
        transparently; see :mod:`repro.kernelir.coarsen`).  Omitting the
        argument on a re-build preserves the previous request — a plain
        ``build()`` must not silently reset a tuner-supplied K.
        """
        if coarsen is not _MISSING:
            self.coarsen = coarsen
        dev = self.context.device
        for name, k in self._kernels.items():
            if dev.is_gpu:
                self.build_log[name] = "SIMT codegen (warp-level execution)"
            else:
                # a representative context: one workgroup of the SIMD width
                w = dev.model.vectorizer.simd_width
                ctx = LaunchContext((max(w, 1),), (max(w, 1),))
                rep = dev.model.vectorizer.vectorize(k, ctx)
                self.build_log[name] = rep.explain()
            if jit:
                self.jit_log[name] = dev.model.prepare_kernel(k)
            else:
                self.jit_log[name] = (
                    "kernel JIT: deferred (compiles on first functional launch)"
                )
        self._built = True
        return self

    @property
    def kernel_names(self) -> List[str]:
        return sorted(self._kernels)

    def create_kernel(self, name: str) -> "CLKernel":
        if name not in self._kernels:
            raise InvalidKernelName(name)
        return CLKernel(self, self._kernels[name])


class CLKernel:
    """A kernel with bound arguments (``clSetKernelArg`` state)."""

    def __init__(self, program: Program, kernel: Kernel):
        self.program = program
        self.kernel = kernel
        self._coarsen = _MISSING
        self._args: List[object] = [_MISSING] * len(kernel.params)

    @property
    def coarsen(self) -> Optional[int]:
        """Per-kernel thread-coarsening request.

        Tracks the program's build option *live* — ``build(coarsen=K)``
        reaches kernel objects created before the (re)build, instead of
        each kernel snapshotting whatever the program held at
        ``create_kernel`` time.  Assigning to the attribute overrides the
        inherited value for this kernel object only.
        """
        if self._coarsen is _MISSING:
            return self.program.coarsen
        return self._coarsen

    @coarsen.setter
    def coarsen(self, value: Optional[int]) -> None:
        self._coarsen = value

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def num_args(self) -> int:
        return len(self.kernel.params)

    def set_arg(self, index: int, value) -> None:
        """``clSetKernelArg``: bind a Buffer or a scalar."""
        if not (0 <= index < len(self.kernel.params)):
            raise InvalidArgIndex(f"arg {index} of kernel {self.name!r}")
        p = self.kernel.params[index]
        if isinstance(p, BufferParam):
            if not isinstance(value, Buffer):
                raise InvalidKernelArgs(
                    f"arg {index} ({p.name}) of {self.name!r} expects a Buffer"
                )
            if value.dtype != p.dtype.np_dtype:
                raise InvalidKernelArgs(
                    f"arg {index} ({p.name}): buffer dtype {value.dtype} != "
                    f"kernel param type {p.dtype.np_dtype}"
                )
            if "r" in p.access and not value.kernel_readable:
                raise InvalidKernelArgs(
                    f"arg {index} ({p.name}): kernel reads a WRITE_ONLY buffer"
                )
            if "w" in p.access and not value.kernel_writable:
                raise InvalidKernelArgs(
                    f"arg {index} ({p.name}): kernel writes a READ_ONLY buffer"
                )
        else:
            assert isinstance(p, ScalarParam)
            if isinstance(value, Buffer):
                raise InvalidKernelArgs(
                    f"arg {index} ({p.name}) of {self.name!r} expects a scalar"
                )
            value = p.dtype.np_dtype.type(value)
        self._args[index] = value

    def set_args(self, *values) -> None:
        if len(values) != len(self.kernel.params):
            raise InvalidKernelArgs(
                f"{self.name!r} takes {len(self.kernel.params)} args, "
                f"got {len(values)}"
            )
        for i, v in enumerate(values):
            self.set_arg(i, v)

    # -- used by the queue -----------------------------------------------------
    def collect_args(self):
        """(buffers by param name, scalars by param name); validates binding."""
        buffers: Dict[str, Buffer] = {}
        scalars: Dict[str, object] = {}
        for p, v in zip(self.kernel.params, self._args):
            if v is _MISSING:
                raise InvalidKernelArgs(
                    f"arg {p.name!r} of kernel {self.name!r} is not set"
                )
            if isinstance(p, BufferParam):
                buffers[p.name] = v
            else:
                scalars[p.name] = v
        return buffers, scalars

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CLKernel {self.name!r}>"
