"""``Prefixsum`` — Hillis-Steele inclusive scan of one workgroup in
``__local`` memory.

Table II: global size 1024, local 1024 — a single workgroup scans the whole
array, which is why this benchmark is tiny and barrier-dominated.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32, I64
from ..base import Benchmark

__all__ = ["PrefixSumBenchmark", "build_prefixsum_kernel"]


def build_prefixsum_kernel(n: int = 1024) -> Kernel:
    """Inclusive scan over one workgroup of ``n`` items (power of two)."""
    if n <= 0 or n & (n - 1):
        raise ValueError("scan size must be a positive power of two")
    levels = int(math.log2(n))
    kb = KernelBuilder("prefixSum")
    src = kb.buffer("input", F32, access="r")
    dst = kb.buffer("output", F32, access="w")
    temp = kb.local_array("temp", n, F32)

    gid = kb.global_id(0)
    lid = kb.local_id(0)

    temp[lid] = src[gid]
    kb.barrier()
    with kb.loop("d", 0, levels) as d:
        offset = kb.let("offset", kb.cast(1, I64) << d)
        # barrier-safe formulation: read both operands, sync, then write.
        prev_idx = kb.let("prev_idx", kb.max(lid - offset, 0))
        addend = kb.let(
            "addend", kb.select(lid >= offset, temp[prev_idx], kb.f32(0.0))
        )
        mine = kb.let("mine", temp[lid])
        kb.barrier()
        temp[lid] = mine + addend
        kb.barrier()
    dst[gid] = temp[lid]
    return kb.finish()


class PrefixSumBenchmark(Benchmark):
    name = "Prefixsum"
    work_dim = 1
    default_global_sizes = ((1024,),)
    default_local_size = (1024,)
    supports_coalescing = False

    def __init__(self, n: int = 1024):
        self.n = n
        self.default_global_sizes = ((n,),)
        self.default_local_size = (n,)

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("Prefixsum does not support workitem coalescing")
        return build_prefixsum_kernel(self.n)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        if n != self.n:
            raise ValueError(f"this instance scans exactly {self.n} elements")
        return (
            # positive inputs: keeps the float32 scan well-conditioned so the
            # reference comparison is meaningful despite reassociation
            {
                "input": rng.random(n, dtype=np.float32),
                "output": np.zeros(n, dtype=np.float32),
            },
            {},
        )

    def reference(self, buffers, scalars, global_size):
        return {
            "output": np.cumsum(buffers["input"], dtype=np.float64).astype(
                np.float32
            )
        }
