"""``cl_repro_workgroup_affinity`` — the paper's proposed OpenCL extension.

Section III-E concludes: *"coupling logical threads with physical threads is
needed on OpenCL, especially for CPUs.  The granularity for the assignment
could be workgroup; in other words, the programmer can specify the core
where specific workgroup would be executed, so that data on different
kernels can be shared without a memory request."*

This module implements exactly that proposal on the simulated CPU device:

* :class:`AffinityCommandQueue` extends the ordinary queue with an optional
  ``workgroup_affinity`` argument on ``enqueue_nd_range_kernel`` — a mapping
  from the linearized workgroup id to a logical core;
* the queue carries a :class:`CoreResidencyTracker` across kernel launches,
  so a well-placed second kernel really does find the first kernel's data in
  the executing core's private caches (and a badly-placed one pays the
  shared-L3 cost), using the same residency cost engine as the OpenMP
  runtime;
* without the argument, workgroups land arbitrarily — stock OpenCL
  behaviour, which is the baseline the extension improves on.

Only 1-D NDRanges with contiguous access patterns get residency credit
(matching the scope of the OpenMP model); everything else falls back to the
standard cost model, so the extension is always safe to use.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from ..kernelir.analysis import LaunchContext, analyze_kernel
from ..kernelir.compile import launch_kernel
from ..simcpu.device import CPUDeviceModel, KernelCost
from ..simcpu.residency import (
    DEFAULT_MISS_VISIBILITY,
    residency_adjusted_mem,
    touch_contiguous,
)
from ..simcpu.threads import CoreResidencyTracker
from .constants import command_type
from .context import Context
from .device import Device
from .errors import InvalidOperation, InvalidValue
from .event import Event
from .program import CLKernel
from .queue import CommandQueue

__all__ = ["AffinityCommandQueue", "EXTENSION_NAME"]

EXTENSION_NAME = "cl_repro_workgroup_affinity"

Placement = Union[Sequence[int], Callable[[int], int]]


class AffinityCommandQueue(CommandQueue):
    """A command queue implementing the workgroup-affinity extension.

    Only meaningful on the CPU device (`InvalidOperation` otherwise): the
    GPU's hardware scheduler exposes no placement control, which is the
    paper's point.
    """

    def __init__(self, context: Context, device: Optional[Device] = None, **kw):
        super().__init__(context, device, **kw)
        if self.device.is_gpu:
            raise InvalidOperation(
                f"{EXTENSION_NAME} is a CPU-device extension"
            )
        model: CPUDeviceModel = self.device.model
        self.residency = CoreResidencyTracker(model.spec)
        self._unpinned_epoch = 0

    def _deferred(self) -> bool:
        """Always use the eager engine, even under ``REPRO_QUEUE=ooo``.

        The extension's placement cost model reads buffer contents'
        identity and runs the functional launch inline with the cost
        computation; deferring the surrounding command would let it run
        ahead of DAG-scheduled commands touching the same buffers.
        """
        return False

    # -- placement handling -------------------------------------------------
    def _resolve_placement(
        self, num_wgs: int, workgroup_affinity: Optional[Placement]
    ):
        cores = self.device.model.spec.logical_cores
        if workgroup_affinity is None:
            # stock OpenCL: arbitrary placement, different every launch —
            # cross-kernel reuse cannot be relied on
            self._unpinned_epoch += 1
            off = (self._unpinned_epoch * 7) % cores
            return [(off + w) % cores for w in range(num_wgs)]
        if callable(workgroup_affinity):
            placement = [int(workgroup_affinity(w)) for w in range(num_wgs)]
        else:
            placement = [int(c) for c in workgroup_affinity]
            if len(placement) != num_wgs:
                raise InvalidValue(
                    f"workgroup_affinity has {len(placement)} entries for "
                    f"{num_wgs} workgroups"
                )
        bad = [c for c in placement if not (0 <= c < cores)]
        if bad:
            raise InvalidValue(f"core ids out of range: {sorted(set(bad))}")
        return placement

    # -- the extended enqueue --------------------------------------------------
    def enqueue_nd_range_kernel(
        self,
        kernel: CLKernel,
        global_size,
        local_size=None,
        *,
        workgroup_affinity: Optional[Placement] = None,
    ) -> Event:
        gsize, lsize = self._check_sizes(kernel, global_size, local_size)
        buffers, scalars = kernel.collect_args()
        buffer_bytes = {name: b.nbytes for name, b in buffers.items()}
        buffer_ids = {name: id(b.array) for name, b in buffers.items()}

        model: CPUDeviceModel = self.device.model
        resolved_lsize = model.choose_local_size(gsize, lsize)
        ctx = LaunchContext(
            gsize, resolved_lsize,
            {k: float(v) for k, v in scalars.items()}, model.latencies,
        )
        analysis = analyze_kernel(kernel.kernel, ctx)
        vec = (
            model.vectorizer.vectorize(kernel.kernel, ctx, analysis.accesses)
            if model.vectorize_kernels
            else None
        )
        base_mem = model.mem_model.estimate(analysis, buffer_bytes)

        num_wgs = ctx.workgroup_count
        items_per_wg = ctx.workgroup_size
        placement = self._resolve_placement(num_wgs, workgroup_affinity)
        threads = min(model.spec.logical_cores, num_wgs)
        dram_share = 1.0 / max(1, min(threads, model.spec.physical_cores))

        # per-workgroup cost with residency-aware memory behaviour
        # (fast path: a cold tracker makes every workgroup identical)
        def wg_cost(core: int, lo: int, hi: int) -> float:
            mem = (
                base_mem
                if self.residency.is_empty
                else residency_adjusted_mem(
                    model.mem_model, self.residency, analysis, base_mem,
                    core, (lo, hi), buffer_ids, buffer_bytes,
                )
            )
            item = model.core_model.item_cycles(
                analysis, vec, mem, dram_share=dram_share
            )
            return items_per_wg * (
                item.cycles
                + model.spec.workitem_overhead_cycles
                / max(1.0, item.effective_vector_width)
            )

        if self.residency.is_empty:
            uniform = wg_cost(placement[0], 0, items_per_wg)
            wg_costs = [uniform] * num_wgs
        else:
            wg_costs = [
                wg_cost(placement[w], w * items_per_wg, (w + 1) * items_per_wg)
                for w in range(num_wgs)
            ]
        if workgroup_affinity is None:
            # unpinned: the runtime's work-stealing pool balances freely
            sched = model.scheduler.makespan_hetero(wg_costs)
        else:
            # pinned: each core serially runs exactly its workgroups
            sched = model.scheduler.makespan_pinned(wg_costs, placement)
        total_ns = (
            model.spec.cycles_to_ns(sched.makespan_cycles)
            + model.spec.kernel_launch_overhead_ns
        )

        # the launch warms the placed cores' caches for the next kernel
        for w in range(num_wgs):
            lo = w * items_per_wg
            touch_contiguous(
                self.residency, analysis, placement[w],
                (lo, lo + items_per_wg), buffer_ids,
            )

        if self.functional:
            arrays = {name: b.array for name, b in buffers.items()}
            launch_kernel(
                kernel.kernel, gsize, resolved_lsize,
                buffers=arrays, scalars=scalars,
                interpreter=self._interp,
            )

        return self._complete(
            command_type.NDRANGE_KERNEL,
            total_ns,
            {
                "kernel": kernel.name,
                "global_size": gsize,
                "local_size": resolved_lsize,
                "placement": placement,
                "extension": EXTENSION_NAME,
                "schedule": sched,
            },
        )
