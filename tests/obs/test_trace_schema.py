"""Trace export schema: the contract Perfetto / chrome://tracing rely on."""

import pathlib

import numpy as np
import pytest

import repro
from repro import minicl as cl
from repro import obs
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _square_kernel(ctx):
    kb = KernelBuilder("sq")
    x = kb.buffer("x", F32)
    x[kb.global_id(0)] = x[kb.global_id(0)] * 2.0
    return ctx.create_program(kb.finish()).create_kernel("sq")


def _drive_cpu(tracer, *, out_of_order=False):
    """Run a representative command mix on the CPU device under tracing."""
    ctx = cl.Context(cl.cpu_platform().devices)
    kern = _square_kernel(ctx)
    with obs.tracing(tracer):
        q = ctx.create_command_queue(out_of_order=out_of_order)
        n = 1 << 12
        buf = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=4 * n,
                                dtype=np.float32)
        host = np.ones(n, np.float32)
        q.enqueue_write_buffer(buf, host)
        kern.set_args(buf)
        q.enqueue_nd_range_kernel(kern, (n,), (64,))
        q.enqueue_read_buffer(buf, host)
        view, _ = q.enqueue_map_buffer(
            buf, cl.map_flags.READ | cl.map_flags.WRITE)
        q.enqueue_unmap(buf, view)
        q.enqueue_marker()
        q.finish()
    return ctx


def _drive_gpu(tracer):
    ctx = cl.Context(cl.gpu_platform().devices)
    kern = _square_kernel(ctx)
    with obs.tracing(tracer):
        q = ctx.create_command_queue()
        n = 1 << 12
        buf = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=4 * n,
                                dtype=np.float32)
        host = np.ones(n, np.float32)
        q.enqueue_write_buffer(buf, host)
        kern.set_args(buf)
        q.enqueue_nd_range_kernel(kern, (n,), (64,))
        q.enqueue_read_buffer(buf, host)
        q.finish()
    return ctx


@pytest.fixture
def cpu_doc():
    t = obs.Tracer()
    _drive_cpu(t)
    return obs.to_chrome_trace(t, obs.MetricsRegistry())


@pytest.fixture
def gpu_doc():
    t = obs.Tracer()
    _drive_gpu(t)
    return obs.to_chrome_trace(t, obs.MetricsRegistry())


class TestSchema:
    def test_cpu_trace_validates(self, cpu_doc):
        assert obs.validate_trace(cpu_doc) == []

    def test_gpu_trace_validates(self, gpu_doc):
        assert obs.validate_trace(gpu_doc) == []

    def test_out_of_order_trace_validates(self):
        t = obs.Tracer()
        _drive_cpu(t, out_of_order=True)
        doc = obs.to_chrome_trace(t, obs.MetricsRegistry())
        assert obs.validate_trace(doc) == []

    def test_required_keys_on_every_event(self, cpu_doc):
        for ev in cpu_doc["traceEvents"]:
            for field in ("name", "ph", "pid", "tid"):
                assert field in ev
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0

    def test_ts_monotonic_per_track(self, cpu_doc):
        last = {}
        for ev in cpu_doc["traceEvents"]:
            if ev["ph"] == "M":
                continue
            track = (ev["pid"], ev["tid"])
            assert ev["ts"] >= last.get(track, 0.0)
            last[track] = ev["ts"]

    def test_be_pairs_match(self, cpu_doc):
        stacks = {}
        for ev in cpu_doc["traceEvents"]:
            track = (ev["pid"], ev["tid"])
            if ev["ph"] == "B":
                stacks.setdefault(track, []).append(ev["name"])
            elif ev["ph"] == "E":
                assert stacks.get(track), f"E without B on {track}"
                assert stacks[track].pop() == ev["name"]
        assert all(not s for s in stacks.values())

    def test_validator_flags_broken_traces(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 5.0},
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 2.0},
        ]}
        assert any("backwards" in p for p in obs.validate_trace(bad))
        unclosed = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 1.0},
        ]}
        assert any("unclosed" in p for p in obs.validate_trace(unclosed))
        assert obs.validate_trace({}) == ["traceEvents missing or not a list"]


class TestTracks:
    def _names(self, doc, kind):
        return [
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == kind
        ]

    def test_queue_process_track_named(self, cpu_doc):
        procs = self._names(cpu_doc, "process_name")
        assert any(p.startswith("queue #") and "virtual ns" in p
                   for p in procs)

    def test_per_core_lanes_on_cpu(self, cpu_doc):
        threads = self._names(cpu_doc, "thread_name")
        assert "commands" in threads
        assert "core 0" in threads

    def test_per_sm_lanes_on_gpu(self, gpu_doc):
        threads = self._names(gpu_doc, "thread_name")
        assert "sm 0" in threads

    def test_commands_carry_all_four_timestamps(self, cpu_doc):
        cmds = [ev for ev in cpu_doc["traceEvents"]
                if ev["ph"] == "B" and ev.get("cat") == "command"]
        assert cmds
        for ev in cmds:
            args = ev["args"]
            assert args["queued_ns"] <= args["submit_ns"] \
                <= args["start_ns"] <= args["end_ns"]

    def test_cost_component_subspans_present(self, cpu_doc):
        cats = {ev.get("cat") for ev in cpu_doc["traceEvents"]}
        assert {"cost.schedule", "cost.execute",
                "cost.transfer", "cost.core"} <= cats

    def test_overlap_lanes_for_out_of_order(self):
        t = obs.Tracer()
        ctx = cl.Context(cl.cpu_platform().devices)
        with obs.tracing(t):
            q = ctx.create_command_queue(out_of_order=True)
            n = 1 << 16
            host = np.zeros(n, np.float32)
            for _ in range(3):  # independent commands run concurrently
                buf = ctx.create_buffer(cl.mem_flags.READ_WRITE,
                                        size=4 * n, dtype=np.float32)
                q.enqueue_write_buffer(buf, host)
        doc = obs.to_chrome_trace(t, obs.MetricsRegistry())
        assert obs.validate_trace(doc) == []
        threads = self._names(doc, "thread_name")
        assert any(name.startswith("commands (overlap") for name in threads)


class TestHostSide:
    def test_wall_spans_instants_counters(self):
        t = obs.Tracer()
        with t.wall_span("outer", "harness", {"k": 1}):
            with t.wall_span("inner", "jit"):
                pass
        t.instant("tick", "jit", {"n": 2})
        t.counter("cache", {"hits": 3})
        doc = obs.to_chrome_trace(t, obs.MetricsRegistry())
        assert obs.validate_trace(doc) == []
        phases = [ev["ph"] for ev in doc["traceEvents"]]
        assert "i" in phases and "C" in phases
        host = [ev for ev in doc["traceEvents"]
                if ev["pid"] == obs.tracer.HOST_PID and ev["ph"] != "M"]
        assert len(host) == 6  # 2 B + 2 E + i + C

    def test_plan_miss_recorded_as_wall_span(self):
        t = obs.Tracer()
        from repro import plancache

        plancache.invalidate_all()
        _drive_cpu(t)
        names = [ev["name"] for ev in t.events if ev["ph"] == "B"]
        assert any(n.startswith("cpu plan") for n in names)

    def test_record_command_never_raises(self):
        t = obs.Tracer()
        with obs.tracing(t):
            t.record_command(object(), object())  # garbage input
        assert t.dropped == 1

    def test_disabled_tracing_records_nothing(self):
        assert obs.tracer.ACTIVE is None
        _ = _drive_cpu.__name__  # no tracer installed outside obs.tracing
        ctx = cl.Context(cl.cpu_platform().devices)
        q = ctx.create_command_queue()
        buf = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=64,
                                dtype=np.float32)
        q.enqueue_write_buffer(buf, np.zeros(16, np.float32))
        assert obs.tracer.ACTIVE is None


class TestOtherData:
    def test_clock_domains_and_metrics_embedded(self, cpu_doc):
        other = cpu_doc["otherData"]
        assert other["generator"] == "repro.obs"
        assert str(obs.tracer.HOST_PID) in other["clock_domains"]
        assert {"counters", "gauges", "histograms"} <= set(other["metrics"])
        assert other["dropped_events"] == 0

    def test_write_load_roundtrip(self, tmp_path, cpu_doc):
        t = obs.Tracer()
        _drive_cpu(t)
        path = obs.write_trace(t, tmp_path / "t.json")
        doc = obs.load_trace(path)
        assert obs.validate_trace(doc) == []
        assert doc["traceEvents"]

    def test_load_rejects_non_trace_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            obs.load_trace(p)


class TestSummaries:
    def test_summarize_separates_clocks(self, cpu_doc):
        text = obs.summarize(cpu_doc)
        assert "virtual device time" in text
        assert "queue track" in text

    def test_diff_reports_deltas(self, cpu_doc, gpu_doc):
        text = obs.diff_traces(cpu_doc, gpu_doc)
        assert "delta" in text

    def test_rollup_self_time_excludes_children(self):
        t = obs.Tracer()
        clock = iter([0, 0, 1000, 3000, 10000]).__next__
        t2 = obs.Tracer(wall_clock=clock)
        with t2.wall_span("outer"):
            with t2.wall_span("inner"):
                pass
        rollup = obs.span_rollup(obs.to_chrome_trace(t2,
                                                     obs.MetricsRegistry()))
        outer = rollup[("wall", "outer")]
        inner = rollup[("wall", "inner")]
        assert outer["total_us"] == pytest.approx(10.0)
        assert inner["total_us"] == pytest.approx(2.0)
        assert outer["self_us"] == pytest.approx(8.0)
        del t


class TestResultsUnperturbed:
    def test_experiment_csv_identical_with_and_without_tracing(self):
        from repro.harness.registry import run_experiment

        plain = run_experiment("fig11", fast=True).to_csv()
        t = obs.Tracer()
        with obs.tracing(t):
            traced = run_experiment("fig11", fast=True).to_csv()
        assert traced == plain
        assert any(ev["ph"] == "B" for ev in t.events)


class TestEnvVars:
    def test_env_flag_single_rule(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not repro.env_flag("REPRO_VERIFY")
        for off in ("", "0"):
            monkeypatch.setenv("REPRO_VERIFY", off)
            assert not repro.env_flag("REPRO_VERIFY")
        for on in ("1", "yes", "whatever"):
            monkeypatch.setenv("REPRO_VERIFY", on)
            assert repro.env_flag("REPRO_VERIFY")

    def test_env_trace_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert obs.env_trace_path() is None
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert obs.env_trace_path() is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert obs.env_trace_path() == "trace.json"
        monkeypatch.setenv("REPRO_TRACE", "/tmp/my.json")
        assert obs.env_trace_path() == "/tmp/my.json"

    def test_readme_documents_every_env_var(self):
        readme = (ROOT / "README.md").read_text()
        for name in repro.ENV_VARS:
            assert f"`{name}`" in readme, name

    def test_observability_doc_exists_and_linked(self):
        doc = ROOT / "docs" / "OBSERVABILITY.md"
        assert doc.exists()
        text = doc.read_text()
        for needle in ("Perfetto", "trace", "clock"):
            assert needle in text
        assert "OBSERVABILITY.md" in (ROOT / "README.md").read_text()
