"""Result containers and fixed-width rendering for every experiment.

An experiment produces an :class:`ExperimentResult`: a set of labelled
series over a common set of x-labels (one series per line of the paper's
figure, one x-label per bar/point).  ``render()`` prints the same rows the
paper's figures plot; ``to_csv()`` feeds external plotting.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Dict, List, Optional, Sequence

__all__ = ["Series", "ExperimentResult"]


@dataclasses.dataclass
class Series:
    """One labelled line/bar-group: x-label -> value."""

    label: str
    points: Dict[str, float]

    def value(self, x: str) -> float:
        return self.points[x]


@dataclasses.dataclass
class ExperimentResult:
    """All series of one table/figure reproduction."""

    experiment_id: str      # e.g. "fig1"
    title: str
    series: List[Series]
    value_name: str = "normalized throughput"
    notes: List[str] = dataclasses.field(default_factory=list)

    # -- access -----------------------------------------------------------
    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    @property
    def x_labels(self) -> List[str]:
        seen: List[str] = []
        for s in self.series:
            for x in s.points:
                if x not in seen:
                    seen.append(x)
        return seen

    # -- rendering -----------------------------------------------------------
    def render(self, float_fmt: str = "{:10.4g}") -> str:
        xs = self.x_labels
        label_w = max([len("series")] + [len(s.label) for s in self.series]) + 2
        col_w = max([12] + [len(x) + 2 for x in xs])
        out = io.StringIO()
        out.write(f"== {self.experiment_id}: {self.title} ==\n")
        out.write(f"   ({self.value_name})\n")
        header = "series".ljust(label_w) + "".join(x.rjust(col_w) for x in xs)
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for s in self.series:
            row = s.label.ljust(label_w)
            for x in xs:
                v = s.points.get(x)
                row += (
                    float_fmt.format(v).rjust(col_w)
                    if v is not None
                    else "-".rjust(col_w)
                )
            out.write(row + "\n")
        for n in self.notes:
            out.write(f"note: {n}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        xs = self.x_labels
        lines = ["series," + ",".join(xs)]
        for s in self.series:
            lines.append(
                s.label
                + ","
                + ",".join(
                    "" if s.points.get(x) is None else repr(s.points[x]) for x in xs
                )
            )
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
