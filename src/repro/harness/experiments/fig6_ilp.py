"""Figure 6 — the ILP micro-benchmark family on CPU and GPU.

Identical memory accesses, computation and loop trip counts; only the number
of independent dependence chains varies.  Expected shapes:

* CPU throughput grows near-linearly with ILP and starts saturating — the
  out-of-order core needs independent instructions to fill its pipelines;
* GPU throughput is flat — warp-level TLP already hides all latency.

Like the paper's microbenchmark build, the CPU kernels run *scalar* (the
implicit vectorizer is disabled); vectorization multiplies both curves
without changing their shape (the ablation bench sweeps this).
"""

from __future__ import annotations

from typing import Dict

from ... import minicl as cl
from ...simcpu.device import CPUDeviceModel
from ...suite import ILP_LEVELS, IlpMicroBenchmark
from ..report import ExperimentResult, Series
from ..runner import DeviceUnderTest, gpu_dut, make_buffers, measure_kernel
from ..timing import repeat_to_target

__all__ = ["run"]


def _scalar_cpu_dut() -> DeviceUnderTest:
    model = CPUDeviceModel(vectorize=False)
    plat = cl.Platform("scalar CPU", "repro.simcpu", [cl.Device(model)])
    ctx = cl.Context(plat.devices)
    return DeviceUnderTest(ctx, ctx.create_command_queue(functional=False))


def run(fast: bool = False) -> ExperimentResult:
    n = 12 * 1024 if fast else 96 * 1024
    cpu = _scalar_cpu_dut()
    gpu = gpu_dut()
    cpu_pts: Dict[str, float] = {}
    gpu_pts: Dict[str, float] = {}
    for ilp in ILP_LEVELS:
        bench = IlpMicroBenchmark(ilp, n=n)
        gs = bench.default_global_sizes[0]
        flops = 2.0 * bench.total_ops * n  # mad = 2 flops
        for dut, pts in ((cpu, cpu_pts), (gpu, gpu_pts)):
            m = measure_kernel(dut, bench, gs, bench.default_local_size)
            pts[str(ilp)] = flops / m.mean_ns  # Gflop/s
    return ExperimentResult(
        experiment_id="fig6",
        title="ILP micro-benchmark: Gflop/s on CPU (scalar) and GPU",
        series=[Series("CPU", cpu_pts), Series("GPU", gpu_pts)],
        value_name="Gflop/s",
    )
