"""Figure 9 — performance impact of CPU affinity (OpenMP).

Two dependent kernels — Vector Addition producing data that Vector
Multiplication consumes — are distributed over eight cores with
``OMP_PROC_BIND``/``GOMP_CPU_AFFINITY``.  In the **aligned** case the
consumer's chunk lands on the core whose private caches the producer warmed;
in the **misaligned** case each chunk lands one core over (the paper's
Figure 9 layout), so every consumer load misses private cache and is served
by the shared L3.

Expected: misaligned runs ~15% longer.  OpenCL has no affinity control, so
this experiment runs on the OpenMP runtime — which is precisely the paper's
argument for adding affinity to OpenCL.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32
from ...openmp import OpenMPRuntime
from ...openmp.env import OmpEnv
from ..report import ExperimentResult, Series

__all__ = ["run", "build_producer", "build_consumer", "affinity_times"]

CORES = 8


def build_producer():
    """Vector Addition: out[i] = a[i] + b[i]."""
    kb = KernelBuilder("vector_addition")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g] = a[g] + b[g]
    return kb.finish()


def build_consumer():
    """Vector Multiplication of the produced data: res[i] = out[i] * c[i]."""
    kb = KernelBuilder("vector_multiplication")
    out = kb.buffer("out", F32, access="r")
    c = kb.buffer("c", F32, access="r")
    res = kb.buffer("res", F32, access="w")
    g = kb.global_id(0)
    res[g] = out[g] * c[g]
    return kb.finish()


def affinity_times(n: int, misaligned: bool, functional: bool = True):
    """(producer_ns, consumer_ns) for one aligned/misaligned run."""
    env = {
        "OMP_PROC_BIND": "true",
        "OMP_NUM_THREADS": str(CORES),
        "GOMP_CPU_AFFINITY": f"0-{CORES - 1}",
    }
    rt = OpenMPRuntime(env=env, functional=functional)
    rng = np.random.default_rng(7)
    data = {
        "a": rng.random(n).astype(np.float32),
        "b": rng.random(n).astype(np.float32),
        "out": np.zeros(n, np.float32),
        "c": rng.random(n).astype(np.float32),
        "res": np.zeros(n, np.float32),
    }
    r1 = rt.parallel_for(
        build_producer(), n,
        buffers={k: data[k] for k in ("a", "b", "out")},
    )
    if misaligned:
        # rotate the placement by one core: computation i of the second
        # kernel runs on core i+1 (the paper's misaligned layout)
        rotated = " ".join(str((i + 1) % CORES) for i in range(CORES))
        rt.env = OmpEnv.from_dict(
            {
                "OMP_PROC_BIND": "true",
                "OMP_NUM_THREADS": str(CORES),
                "GOMP_CPU_AFFINITY": rotated,
            }
        )
    r2 = rt.parallel_for(
        build_consumer(), n,
        buffers={k: data[k] for k in ("out", "c", "res")},
    )
    if functional:
        np.testing.assert_allclose(
            data["res"], (data["a"] + data["b"]) * data["c"], rtol=1e-6
        )
    return r1.time_ns, r2.time_ns


def run(fast: bool = False) -> ExperimentResult:
    n = 200_000 if fast else 800_000
    p_al, c_al = affinity_times(n, misaligned=False, functional=not fast)
    p_mis, c_mis = affinity_times(n, misaligned=True, functional=not fast)
    series = [
        Series("aligned", {
            "computation 1 (ms)": p_al / 1e6,
            "computation 2 (ms)": c_al / 1e6,
            "total (ms)": (p_al + c_al) / 1e6,
        }),
        Series("misaligned", {
            "computation 1 (ms)": p_mis / 1e6,
            "computation 2 (ms)": c_mis / 1e6,
            "total (ms)": (p_mis + c_mis) / 1e6,
        }),
    ]
    slowdown = (p_mis + c_mis) / (p_al + c_al)
    return ExperimentResult(
        experiment_id="fig9",
        title="Performance impact of CPU affinity (aligned vs misaligned)",
        series=series,
        value_name="time (ms)",
        notes=[
            f"misaligned / aligned total time = {slowdown:.3f} "
            f"(paper: misaligned runs ~15% longer)"
        ],
    )
