"""Tests for the ILP and MBench micro-benchmark families."""

import numpy as np
import pytest

from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.kernelir.vectorize import LoopVectorizer, OpenCLVectorizer
from repro.suite import (
    ILP_LEVELS,
    IlpMicroBenchmark,
    MBENCHES,
    MBench,
    build_ilp_kernel,
    mbench_by_name,
)
from repro.suite.ilp_micro import OPS_PER_ITER, TOTAL_OPS


class TestIlpFamily:
    def test_total_work_identical_across_family(self):
        """The defining property: same ops, same loads/stores, same trips."""
        ctx = LaunchContext((256,), (64,))
        stats = [analyze_kernel(build_ilp_kernel(k), ctx) for k in ILP_LEVELS]
        flops = {s.per_item.flops for s in stats}
        loads = {s.per_item.loads for s in stats}
        stores = {s.per_item.stores for s in stats}
        assert len(flops) == 1 and len(loads) == 1 and len(stores) == 1
        # mad = 2 flops, plus the fixed-size chain-combine epilogue
        epilogue = 2 * max(ILP_LEVELS) - 1
        assert flops.pop() == 2 * TOTAL_OPS + epilogue

    def test_measured_ilp_tracks_declared_ilp(self):
        ctx = LaunchContext((256,), (64,))
        ilps = [analyze_kernel(build_ilp_kernel(k), ctx).ilp for k in (1, 2, 4)]
        assert ilps[0] < ilps[1] < ilps[2]
        assert ilps[2] / ilps[0] == pytest.approx(4.0, rel=0.4)

    def test_levels_divide_ops_per_iter(self):
        for k in ILP_LEVELS:
            assert OPS_PER_ITER % k == 0

    def test_functional_result_independent_of_ilp(self):
        """Every family member computes the same chains, just interleaved."""
        outs = []
        for k in (1, 3, 5):
            b = IlpMicroBenchmark(k, n=64)
            bufs, sc = b.make_data((64,), np.random.default_rng(9))
            from repro.kernelir.interp import Interpreter

            Interpreter().launch(b.kernel(), (64,), (64,), buffers=bufs, scalars=sc)
            outs.append(bufs["data"].copy())
        # ILP=k sums k chains seeded differently, so equality only holds via
        # the reference; check each against its own reference instead
        for k in (1, 3, 5):
            IlpMicroBenchmark(k, n=64).validate((64,), rtol=1e-4, atol=1e-5)

    def test_bad_ilp_rejected(self):
        with pytest.raises(ValueError):
            build_ilp_kernel(7)  # does not divide OPS_PER_ITER
        with pytest.raises(ValueError):
            build_ilp_kernel(0)


class TestMBenchFamily:
    def test_eight_members_in_paper_order(self):
        assert [b.name for b in MBENCHES] == [f"MBench{i}" for i in range(1, 9)]

    def test_lookup(self):
        assert mbench_by_name("MBench3").name == "MBench3"
        with pytest.raises(KeyError):
            mbench_by_name("MBench9")

    @pytest.mark.parametrize("proto", MBENCHES, ids=lambda b: b.name)
    def test_functional_against_reference(self, proto):
        b = MBench(
            proto.name, proto._build, proto._make_data, proto._reference,
            proto.flops_per_item, n=256,
        )
        b.validate((256,), rtol=2e-3, atol=2e-4)

    @pytest.mark.parametrize("proto", MBENCHES, ids=lambda b: b.name)
    def test_opencl_vectorizes_every_member(self, proto):
        k = proto.kernel()
        ctx = LaunchContext((1024,), (256,),
                            {"alpha": 0.75, "off": 1024})
        assert OpenCLVectorizer(4).vectorize(k, ctx).vectorized

    @pytest.mark.parametrize("proto", MBENCHES, ids=lambda b: b.name)
    def test_loop_vectorizer_rejects_every_member(self, proto):
        """The paper's Figure 10 selection: OpenMP loses on all eight."""
        k = proto.kernel()
        ctx = LaunchContext((1024,), (256,),
                            {"alpha": 0.75, "off": 1024})
        rep = LoopVectorizer(4).vectorize(k, ctx)
        assert not rep.vectorized, proto.name

    def test_rejects_coalescing(self):
        with pytest.raises(ValueError):
            MBENCHES[0].kernel(coalesce=2)
