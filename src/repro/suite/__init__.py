"""The benchmark applications: Table II simple apps, Table III Parboil
kernels, the Figure 6 ILP family, and the Figure 10 MBench family."""

from .base import Benchmark, LaunchConfig, scale_global_size
from .simple import (
    BinomialOptionBenchmark,
    BlackScholesBenchmark,
    HistogramBenchmark,
    MatrixMulBenchmark,
    MatrixMulNaiveBenchmark,
    PrefixSumBenchmark,
    ReductionBenchmark,
    SquareBenchmark,
    VectorAddBenchmark,
)
from .parboil import (
    CPCenergyBenchmark,
    MriFhdFHBenchmark,
    MriFhdRhoPhiBenchmark,
    MriQComputeQBenchmark,
    MriQPhiMagBenchmark,
)
from .ilp_micro import ILP_LEVELS, IlpMicroBenchmark, build_ilp_kernel
from .mbench import MBENCHES, MBench, mbench_by_name

__all__ = [
    "Benchmark", "LaunchConfig", "scale_global_size",
    "SquareBenchmark", "VectorAddBenchmark", "MatrixMulBenchmark",
    "MatrixMulNaiveBenchmark", "ReductionBenchmark", "HistogramBenchmark",
    "PrefixSumBenchmark", "BlackScholesBenchmark", "BinomialOptionBenchmark",
    "CPCenergyBenchmark", "MriQPhiMagBenchmark", "MriQComputeQBenchmark",
    "MriFhdRhoPhiBenchmark", "MriFhdFHBenchmark",
    "IlpMicroBenchmark", "ILP_LEVELS", "build_ilp_kernel",
    "MBench", "MBENCHES", "mbench_by_name",
    "all_table2_benchmarks", "all_parboil_benchmarks",
]


def all_table2_benchmarks():
    """Fresh instances of every Table II benchmark, paper order."""
    return [
        SquareBenchmark(),
        VectorAddBenchmark(),
        MatrixMulBenchmark(),
        ReductionBenchmark(),
        HistogramBenchmark(),
        PrefixSumBenchmark(),
        BlackScholesBenchmark(),
        BinomialOptionBenchmark(),
        MatrixMulNaiveBenchmark(),
    ]


def all_parboil_benchmarks():
    """Fresh instances of every Table III kernel, paper order."""
    return [
        CPCenergyBenchmark(),
        MriQPhiMagBenchmark(),
        MriQComputeQBenchmark(),
        MriFhdRhoPhiBenchmark(),
        MriFhdFHBenchmark(),
    ]
