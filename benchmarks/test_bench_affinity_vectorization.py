"""Benchmarks regenerating the affinity and vectorization figures (F9-F11)."""

from repro.harness.experiments import (
    fig9_affinity,
    fig10_vectorization,
    fig11_dependence_example,
)


def test_fig9_affinity(benchmark):
    """Figure 9: misaligned pinning ~15% slower."""
    r = benchmark(fig9_affinity.run, True)
    al = r.get("aligned").points["total (ms)"]
    mis = r.get("misaligned").points["total (ms)"]
    assert 1.05 < mis / al < 1.45


def test_fig10_vectorization(benchmark):
    """Figure 10: OpenCL outperforms OpenMP on all eight MBenches."""
    r = benchmark(fig10_vectorization.run, True)
    for x in r.x_labels:
        assert r.get("OpenCL").points[x] > r.get("OpenMP").points[x], x


def test_fig11_dependence_example(benchmark):
    """Figure 11: the dependent-FMUL loop vectorizes only under OpenCL."""
    r = benchmark(fig11_dependence_example.run, True)
    assert r.get("OpenCL").points["vectorized"] == 1.0
    assert r.get("OpenMP").points["vectorized"] == 0.0
