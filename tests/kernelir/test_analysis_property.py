"""Property tests: the static analysis agrees with dynamic execution on
randomly generated *uniform* kernels (no divergence, so the counts must be
exact), and the OpenCL vectorizer accepts every such kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.interp import Interpreter
from repro.kernelir.types import F32
from repro.kernelir.vectorize import OpenCLVectorizer


# a uniform kernel = a random straight-line/loop program over two buffers
# with contiguous indexing and uniform trip counts
@st.composite
def uniform_kernel(draw):
    n_stmts = draw(st.integers(1, 4))
    trips = draw(st.integers(1, 6))
    use_loop = draw(st.booleans())
    ops = draw(
        st.lists(st.sampled_from(["mul", "add", "mad"]), min_size=1, max_size=4)
    )

    kb = KernelBuilder("gen")
    a = kb.buffer("a", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    v = kb.let("v", a[g])

    def body():
        nonlocal v
        for op in ops:
            if op == "mul":
                v = kb.let("v", v * 1.001)
            elif op == "add":
                v = kb.let("v", v + 0.5)
            else:
                v = kb.let("v", kb.mad(v, 0.999, 0.001))

    if use_loop:
        with kb.loop("t", 0, trips):
            body()
        expect_flops = trips * sum(2 if op == "mad" else 1 for op in ops)
    else:
        for _ in range(n_stmts):
            body()
        expect_flops = n_stmts * sum(2 if op == "mad" else 1 for op in ops)
    o[g] = v
    return kb.finish(), expect_flops


@settings(max_examples=40, deadline=None)
@given(data=uniform_kernel(), n=st.sampled_from([16, 64, 256]))
def test_static_flops_match_dynamic(data, n):
    kernel, expect_flops = data
    an = analyze_kernel(kernel, LaunchContext((n,), (16,)))
    assert an.per_item.flops == expect_flops
    assert an.per_item.loads == 1 and an.per_item.stores == 1

    bufs = {"a": np.ones(n, np.float32), "o": np.zeros(n, np.float32)}
    res = Interpreter().launch(kernel, n, 16, buffers=bufs, count_ops=True)
    assert res.counters.flops == expect_flops * n
    assert res.counters.loads == n and res.counters.stores == n


@settings(max_examples=40, deadline=None)
@given(data=uniform_kernel())
def test_uniform_kernels_always_vectorize(data):
    kernel, _ = data
    rep = OpenCLVectorizer(4).vectorize(kernel, LaunchContext((256,), (64,)))
    assert rep.vectorized


@settings(max_examples=40, deadline=None)
@given(data=uniform_kernel())
def test_ilp_at_least_one_and_finite(data):
    kernel, _ = data
    an = analyze_kernel(kernel, LaunchContext((256,), (64,)))
    assert 1.0 <= an.ilp < 1000
    assert an.critical_path_cycles >= 1.0
    assert not an.divergent_flow
