"""Contexts (``clCreateContext``)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .buffer import Buffer
from .constants import mem_flags
from .device import Device
from .errors import InvalidDevice

__all__ = ["Context"]


class Context:
    """An OpenCL context over one or more devices."""

    def __init__(self, devices: Sequence[Device]):
        if not devices:
            raise InvalidDevice("context needs at least one device")
        self.devices: List[Device] = list(devices)

    @property
    def device(self) -> Device:
        """Convenience accessor for single-device contexts."""
        return self.devices[0]

    # -- factory helpers (the pyopencl-style object API) ----------------------
    def create_buffer(
        self,
        flags: mem_flags,
        *,
        size: Optional[int] = None,
        hostbuf: Optional[np.ndarray] = None,
        dtype=None,
    ) -> Buffer:
        """``clCreateBuffer``."""
        return Buffer(self, flags, size=size, hostbuf=hostbuf, dtype=dtype)

    def create_command_queue(self, device: Optional[Device] = None, **kw):
        """``clCreateCommandQueue``; see :class:`repro.minicl.queue.CommandQueue`."""
        from .queue import CommandQueue

        return CommandQueue(self, device or self.device, **kw)

    def create_program(self, kernels):
        """``clCreateProgramWithSource`` + ``clBuildProgram`` analogue."""
        from .program import Program

        return Program(self, kernels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Context on {[d.name for d in self.devices]}>"
