"""Unit tests for the fluent KernelBuilder."""

import numpy as np
import pytest

from repro.kernelir import ast as ir
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.interp import Interpreter
from repro.kernelir.types import F32, I32, U32


def test_basic_kernel_shape():
    kb = KernelBuilder("k")
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    n = kb.scalar("n", I32)
    g = kb.global_id(0)
    x = kb.let("x", a[g])
    out[g] = x * x + n
    k = kb.finish()
    assert [p.name for p in k.params] == ["a", "out", "n"]
    assert len(k.body) == 2


def test_loop_appends_into_loop_body():
    kb = KernelBuilder("k")
    a = kb.buffer("a", F32)
    g = kb.global_id(0)
    with kb.loop("i", 0, 4) as i:
        kb.let("t", a[g] + i)
    k = kb.finish()
    assert isinstance(k.body[0], ir.For)
    assert len(k.body[0].body) == 1


def test_nested_scopes():
    kb = KernelBuilder("k")
    a = kb.buffer("a", F32)
    g = kb.global_id(0)
    with kb.loop("i", 0, 2):
        with kb.if_(g < 1):
            a[g] = 1.0
        with kb.else_():
            a[g] = 2.0
    k = kb.finish()
    loop = k.body[0]
    assert isinstance(loop.body[0], ir.If)
    assert len(loop.body[0].then_body) == 1
    assert len(loop.body[0].else_body) == 1


def test_else_without_if_raises():
    kb = KernelBuilder("k")
    kb.buffer("a", F32)
    with pytest.raises(RuntimeError, match="else_"):
        with kb.else_():
            pass


def test_unclosed_scope_detected():
    kb = KernelBuilder("k")
    kb.buffer("a", F32)
    cm = kb.loop("i", 0, 4)
    cm.__enter__()
    with pytest.raises(RuntimeError, match="unclosed"):
        kb.finish()


def test_emit_after_finish_rejected():
    kb = KernelBuilder("k")
    a = kb.buffer("a", F32)
    a[kb.global_id(0)] = 1.0
    kb.finish()
    with pytest.raises(RuntimeError):
        kb.let("x", 1.0)


def test_tmp_names_unique():
    kb = KernelBuilder("k")
    a = kb.buffer("a", F32)
    t1 = kb.tmp(a[kb.global_id(0)])
    t2 = kb.tmp(t1 + 1.0)
    assert t1.name != t2.name


def test_local_array_and_atomics():
    kb = KernelBuilder("k")
    data = kb.buffer("data", I32, access="r")
    hist = kb.buffer("hist", U32)
    lh = kb.local_array("lh", 8, U32)
    lid = kb.local_id(0)
    lh[lid] = kb.cast(0, U32)
    kb.barrier()
    lh.atomic_add(data[kb.global_id(0)], kb.cast(1, U32))
    kb.barrier()
    hist.atomic_add(lid, lh[lid])
    k = kb.finish()
    assert k.uses_atomics and k.uses_barrier and k.uses_local_memory

    # execute it: counts of values 0..7
    rng = np.random.default_rng(0)
    d = rng.integers(0, 8, 64, dtype=np.int32)
    bufs = {"data": d, "hist": np.zeros(8, np.uint32)}
    Interpreter().launch(k, 64, 8, buffers=bufs)
    np.testing.assert_array_equal(bufs["hist"], np.bincount(d, minlength=8))


def test_intrinsic_helpers_produce_calls():
    kb = KernelBuilder("k")
    x = kb.buffer("x", F32)
    g = kb.global_id(0)
    e = kb.mad(kb.exp(x[g]), kb.sqrt(x[g]), kb.fabs(x[g]))
    assert isinstance(e, ir.Call) and e.fn == "mad"
    assert isinstance(kb.select(g < 1, 1.0, 2.0), ir.Select)
    assert kb.min(g, 4).op == "min"
    assert kb.f32(2).dtype is F32
    assert kb.i32(2).dtype is I32


def test_f32_cast_of_expression():
    kb = KernelBuilder("k")
    g = kb.global_id(0)
    e = kb.f32(g)
    assert isinstance(e, ir.Cast) and e.dtype is F32
