"""``Square`` — the paper's smallest kernel: ``out[i] = a[i] * a[i]``.

Table II: global work sizes 10000, 100000, 1000000, 10000000; local NULL.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32
from ..base import Benchmark

__all__ = ["SquareBenchmark", "build_square_kernel"]


def build_square_kernel(coalesce: int = 1) -> Kernel:
    """``square`` kernel; ``coalesce`` > 1 folds that many items into a loop."""
    kb = KernelBuilder("square")
    a = kb.buffer("input", F32, access="r")
    out = kb.buffer("output", F32, access="w")
    gid = kb.global_id(0)
    if coalesce == 1:
        x = kb.let("x", a[gid])
        out[gid] = x * x
    else:
        n_per = kb.scalar("n_per", I32)
        with kb.loop("j", 0, n_per) as j:
            idx = kb.let("idx", gid * n_per + j)
            x = kb.let("x", a[idx])
            out[idx] = x * x
    return kb.finish()


class SquareBenchmark(Benchmark):
    name = "Square"
    work_dim = 1
    default_global_sizes = ((10_000,), (100_000,), (1_000_000,), (10_000_000,))
    default_local_size = None  # Table II: NULL

    def kernel(self, coalesce: int = 1) -> Kernel:
        return build_square_kernel(coalesce)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        buffers = {
            "input": rng.random(n, dtype=np.float32),
            "output": np.zeros(n, dtype=np.float32),
        }
        scalars: Dict[str, object] = {}
        return buffers, scalars

    def reference(self, buffers, scalars, global_size):
        return {"output": buffers["input"] * buffers["input"]}
