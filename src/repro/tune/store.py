"""Content-addressed result store for tuner sweeps.

Every evaluated sweep point persists under the ``tune`` partition of
:mod:`repro.diskcache`, addressed by *what was measured* rather than by
when or in which sweep:

* the **kernel identity** — ``Kernel.fingerprint()`` of the IR actually
  launched (which already folds in the coarsening factor, since coarsened
  variants are distinct kernels);
* the **knob point** — every knob value, including the virtual-time-
  neutral ones (:meth:`repro.tune.space.KnobPoint.key`);
* the **launch shape and objective** — global size and the objective kind
  (``kernel`` virtual time vs ``app`` end-to-end throughput);
* the **semantics hash** — :func:`model_version`, a digest over every
  module whose source defines the cost models the objective is computed
  from (on top of ``diskcache.code_version()``, which partitions the
  directory tree and covers the kernel-IR semantics).

Because the objective is deterministic virtual time, a cached value is
*the* value: a repeated identical sweep executes zero points, a widened
sweep executes only the delta, and serial vs ``--jobs N`` sweeps produce
byte-identical results.  Corrupt or torn entries load as misses (the
diskcache contract), so a damaged store re-measures instead of lying.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Sequence

from .. import diskcache
from ..suite.base import Benchmark
from .space import KnobPoint

__all__ = ["TuneStore", "model_version", "point_key"]

#: modules whose source defines the *objective* (cost models and the
#: measurement path); editing any of them invalidates stored sweep results
_MODEL_MODULES = (
    "repro.simcpu.device",
    "repro.simcpu.core",
    "repro.simcpu.cachemodel",
    "repro.simcpu.scheduler",
    "repro.simcpu.spec",
    "repro.simcpu.residency",
    "repro.simcpu.threads",
    "repro.minicl.queue",
    "repro.minicl.ext",
    "repro.harness.runner",
    "repro.harness.timing",
    "repro.suite.base",
)

_model_version: Optional[str] = None


def model_version() -> str:
    """Hash of every cost-model module's source (computed once)."""
    global _model_version
    if _model_version is None:
        import importlib

        h = hashlib.sha1()
        for modname in _MODEL_MODULES:
            mod = importlib.import_module(modname)
            try:
                h.update(Path(mod.__file__).read_bytes())
            except OSError:
                h.update(modname.encode())
        _model_version = h.hexdigest()
    return _model_version


def point_key(
    bench: Benchmark,
    global_size: Sequence[int],
    point: KnobPoint,
    objective: str,
    fingerprint: str,
) -> tuple:
    """The full content address of one sweep measurement."""
    return (
        "tune-v1",
        model_version(),
        bench.name,
        bench.cache_token(),
        objective,
        tuple(int(g) for g in global_size),
        fingerprint,
        point.key(),
    )


class TuneStore:
    """Sweep-scoped view of the persistent store, with hit/miss counters.

    The on-disk state is shared by every sweep (that is the point); this
    object tracks one sweep's traffic so the driver can report how many
    points were served from disk vs actually executed.
    """

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def get(self, key: tuple) -> Optional[dict]:
        payload = diskcache.load_tune(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, key: tuple, result: dict) -> None:
        self.stores += 1
        diskcache.store_tune(key, {"result": dict(result)})

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
