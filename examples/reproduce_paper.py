#!/usr/bin/env python
"""Regenerate every table and figure of the paper and print them.

Usage:
    python examples/reproduce_paper.py            # full configurations
    python examples/reproduce_paper.py --fast     # reduced sizes (seconds)
    python examples/reproduce_paper.py fig6 fig9  # a subset
    python examples/reproduce_paper.py --csv out/ # also write CSV files
    python examples/reproduce_paper.py --jobs 4   # parallel workers

The printed series are the same rows/lines the paper's figures plot; see
EXPERIMENTS.md for the paper-vs-measured comparison of each.
"""

import argparse
import pathlib
import sys
import time

from repro.harness.registry import EXPERIMENTS, run_many


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("experiments", nargs="*",
                    help=f"subset to run (default: all of {sorted(EXPERIMENTS)})")
    ap.add_argument("--fast", action="store_true",
                    help="reduced input sizes")
    ap.add_argument("--csv", metavar="DIR",
                    help="also write one CSV per experiment into DIR")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="run experiments across N worker processes")
    args = ap.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        ap.error(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")

    csv_dir = pathlib.Path(args.csv) if args.csv else None
    if csv_dir:
        csv_dir.mkdir(parents=True, exist_ok=True)

    t0 = time.time()
    for name, result in zip(names, run_many(names, args.fast, args.jobs)):
        print(result.render())
        if csv_dir:
            (csv_dir / f"{name}.csv").write_text(result.to_csv())
    print(f"done: {len(names)} experiments in {time.time() - t0:.1f}s host time")
    return 0


if __name__ == "__main__":
    sys.exit(main())
