"""Tests for OpenCL C / OpenMP C source generation."""

import re

import pytest

from repro.kernelir.codegen import CodegenError, to_opencl_c, to_openmp_c
from repro.suite import MBENCHES, all_parboil_benchmarks, all_table2_benchmarks
from repro.suite.simple.square import build_square_kernel
from repro.suite.simple.reduction import build_reduction_kernel
from repro.suite.simple.blackscholes import build_blackscholes_kernel


def _balanced(src: str) -> bool:
    return src.count("{") == src.count("}") and src.count("(") == src.count(")")


class TestOpenCLGeneration:
    def test_square_golden_shape(self):
        src = to_opencl_c(build_square_kernel())
        assert "__kernel void square(" in src
        assert "__global const float* input" in src
        assert "__global float* output" in src
        assert "get_global_id(0)" in src
        assert "output[get_global_id(0)] = (x * x);" in src
        assert _balanced(src)

    def test_coalesced_square_has_loop(self):
        src = to_opencl_c(build_square_kernel(100))
        assert re.search(r"for \(long j = 0; j < .*n_per.*\+= 1\)", src)

    def test_reduction_workgroup_constructs(self):
        src = to_opencl_c(build_reduction_kernel(64))
        assert "__local float scratch[64];" in src
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in src
        assert "get_local_id(0)" in src
        assert _balanced(src)

    def test_blackscholes_intrinsics(self):
        src = to_opencl_c(build_blackscholes_kernel())
        for fn in ("erf(", "exp(", "log(", "sqrt("):
            assert fn in src
        assert _balanced(src)

    @pytest.mark.parametrize(
        "bench",
        all_table2_benchmarks() + all_parboil_benchmarks() + list(MBENCHES),
        ids=lambda b: b.name,
    )
    def test_every_suite_kernel_emits(self, bench):
        src = to_opencl_c(bench.kernel())
        assert src.startswith("__kernel void ")
        assert _balanced(src)
        # every parameter appears in the source
        for p in bench.kernel().params:
            assert p.name in src

    def test_scalar_params_typed(self):
        src = to_opencl_c(build_square_kernel(10))
        assert re.search(r"\bint n_per\b", src)


class TestOpenMPGeneration:
    def test_square_port(self):
        src = to_openmp_c(build_square_kernel())
        assert "#pragma omp parallel for" in src
        assert "for (long gid = 0; gid < n_items; ++gid)" in src
        assert "const long gid0 = gid;" in src
        assert "output[gid0] = (x * x);" in src
        assert _balanced(src)

    def test_libm_spellings(self):
        src = to_openmp_c(build_blackscholes_kernel())
        for fn in ("erff(", "expf(", "logf(", "sqrtf("):
            assert fn in src

    def test_workgroup_kernels_rejected(self):
        with pytest.raises(CodegenError, match="workgroup constructs"):
            to_openmp_c(build_reduction_kernel(64))

    def test_custom_name(self):
        src = to_openmp_c(build_square_kernel(), func_name="my_square")
        assert src.startswith("void my_square(")

    def test_atomic_becomes_pragma(self):
        from repro.kernelir.builder import KernelBuilder
        from repro.kernelir.types import I32

        kb = KernelBuilder("h")
        h = kb.buffer("h", I32)
        h.atomic_add(kb.global_id(0) % 4, kb.i32(1))
        src = to_openmp_c(kb.finish())
        assert "#pragma omp atomic" in src
        assert "+=" in src

    @pytest.mark.parametrize("bench", list(MBENCHES), ids=lambda b: b.name)
    def test_mbenches_port(self, bench):
        src = to_openmp_c(bench.kernel())
        assert "#pragma omp parallel for" in src
        assert _balanced(src)


class TestDeclarationDiscipline:
    def test_variables_declared_once(self):
        src = to_opencl_c(build_square_kernel())
        assert src.count("float x =") == 1

    def test_reassignment_not_redeclared(self):
        from repro.kernelir.builder import KernelBuilder
        from repro.kernelir.types import F32

        kb = KernelBuilder("k")
        a = kb.buffer("a", F32)
        g = kb.global_id(0)
        v = kb.let("v", a[g])
        v = kb.let("v", v * 2.0)
        a[g] = v
        src = to_opencl_c(kb.finish())
        assert src.count("float v") == 1
        assert "v = (v * 2.0f);" in src

    def test_loop_body_declarations_scoped(self):
        src = to_opencl_c(build_square_kernel(10))
        # idx/x are declared inside the loop each emission run, once
        assert src.count("long idx =") == 1
