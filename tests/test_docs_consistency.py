"""Documentation-drift guards.

DESIGN.md promises a per-experiment index and EXPERIMENTS.md records
paper-vs-measured per artifact; these tests keep both in lock-step with the
actual registry so documentation cannot silently rot.
"""

import pathlib
import re

import pytest

from repro.harness.registry import EXPERIMENTS

ROOT = pathlib.Path(__file__).resolve().parent.parent

PAPER_ARTIFACTS = [
    "table1", "table2", "table3",
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "flags",
]


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_md():
    return (ROOT / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text()


class TestRegistryCoverage:
    def test_every_paper_artifact_has_an_experiment(self):
        for art in PAPER_ARTIFACTS:
            assert art in EXPERIMENTS, f"missing experiment for {art}"

    def test_every_figure_of_the_paper_is_covered(self):
        """The paper has figures 1-11 and tables I-V; every one maps to a
        regenerator (tables IV and V are folded into fig1/fig3)."""
        figs = {f"fig{i}" for i in range(1, 12)}
        assert figs <= set(EXPERIMENTS)


class TestDesignDoc:
    def test_design_indexes_every_figure(self, design):
        for i in range(1, 12):
            assert re.search(rf"\bF{i}\b", design) or f"Figure {i}" in design

    def test_design_confirms_paper_identity(self, design):
        assert "identity check" in design.lower() or "title-collision" not in design

    def test_design_lists_ablations(self, design):
        for a in ("A1", "A2", "A3", "A4", "A5", "A6"):
            assert f"**{a}**" in design


class TestExperimentsDoc:
    def test_every_artifact_has_a_section(self, experiments_md):
        for header in (
            "Table I", "Tables II & III", "Figure 1", "Figure 2", "Figure 3",
            "Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
            "Figure 9", "Figure 10", "Figure 11",
        ):
            assert header in experiments_md, header

    def test_known_deviations_recorded(self, experiments_md):
        assert "Known deviations" in experiments_md

    def test_calibration_table_present(self, experiments_md):
        assert "Calibration summary" in experiments_md
        for knob in ("workgroup dispatch", "kernel launch", "copy bandwidth"):
            assert knob in experiments_md


class TestReadme:
    def test_readme_names_every_experiment_id(self, readme):
        for name in EXPERIMENTS:
            assert f"`{name}`" in readme or name in readme, name

    def test_readme_links_docs(self, readme):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/MODELS.md"):
            assert doc in readme


class TestExamplesExist:
    def test_promised_examples_exist(self):
        for name in (
            "quickstart", "blackscholes_pricing", "matrixmul_tuning",
            "affinity_cache", "hetero_split", "reproduce_paper",
        ):
            assert (ROOT / "examples" / f"{name}.py").exists(), name
