"""GNU-OpenMP-style environment controls.

The paper's affinity experiment (Section III-E) drives thread placement with
``OMP_PROC_BIND`` and ``GOMP_CPU_AFFINITY``; this module parses the same
variables from a plain dict (never from the real process environment, so
experiments stay hermetic).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..simcpu.threads import AffinityPolicy, parse_cpu_affinity

__all__ = ["OmpEnv"]


@dataclasses.dataclass
class OmpEnv:
    """Parsed OpenMP environment."""

    num_threads: Optional[int] = None
    schedule: str = "static"
    chunk: Optional[int] = None
    affinity: AffinityPolicy = dataclasses.field(default_factory=AffinityPolicy)

    @classmethod
    def from_dict(cls, env: Optional[Dict[str, str]] = None) -> "OmpEnv":
        env = env or {}
        num = env.get("OMP_NUM_THREADS")
        num_threads = int(num) if num else None
        if num_threads is not None and num_threads <= 0:
            raise ValueError("OMP_NUM_THREADS must be positive")
        schedule, chunk = cls._parse_schedule(env.get("OMP_SCHEDULE", "static"))
        return cls(
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            affinity=AffinityPolicy.from_env(env),
        )

    @staticmethod
    def _parse_schedule(value: str) -> Tuple[str, Optional[int]]:
        kind, _, chunk_s = value.strip().partition(",")
        kind = kind.strip().lower()
        if kind not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown OMP_SCHEDULE kind {kind!r}")
        chunk = int(chunk_s) if chunk_s.strip() else None
        if chunk is not None and chunk <= 0:
            raise ValueError("schedule chunk must be positive")
        return kind, chunk
