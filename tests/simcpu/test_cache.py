"""Unit and property tests for the exact set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcpu.cache import Cache, CacheHierarchy


class TestCache:
    def make(self, size=1024, line=64, assoc=2, latency=4):
        return Cache(size, line, assoc, latency)

    def test_geometry(self):
        c = self.make()
        assert c.num_sets == 1024 // (64 * 2)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(1000, 64, 3, 4)

    def test_cold_miss_then_hit(self):
        c = self.make()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True  # same line
        assert c.access(64) is False  # next line

    def test_lru_eviction_within_set(self):
        c = self.make(size=256, line=64, assoc=2)  # 2 sets
        set_stride = c.num_sets * 64  # same-set addresses
        a, b, d = 0, set_stride, 2 * set_stride
        c.access(a)
        c.access(b)
        c.access(a)     # a is MRU
        c.access(d)     # evicts b (LRU)
        assert c.probe(a)
        assert not c.probe(b)
        assert c.probe(d)

    def test_probe_does_not_mutate(self):
        c = self.make()
        c.probe(0)
        assert c.stats.accesses == 0
        assert not c.probe(0)

    def test_fill_installs_silently(self):
        c = self.make()
        c.fill(128)
        assert c.probe(128)
        assert c.stats.accesses == 0

    def test_invalidate(self):
        c = self.make()
        c.access(0)
        c.invalidate_all()
        assert not c.probe(0)
        assert c.resident_lines == 0

    @settings(max_examples=30, deadline=None)
    @given(
        addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300),
    )
    def test_invariants(self, addrs):
        c = self.make(size=512, assoc=2)
        for a in addrs:
            c.access(a)
        s = c.stats
        assert s.hits + s.misses == s.accesses == len(addrs)
        assert c.resident_lines <= c.size_bytes // c.line_bytes
        assert 0.0 <= s.hit_rate <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
    def test_immediate_rereference_hits(self, addrs):
        c = self.make()
        for a in addrs:
            c.access(a)
            assert c.access(a)  # re-touch must hit


class TestHierarchy:
    def make(self, cores=4):
        return CacheHierarchy(
            cores,
            l1_bytes=1024,
            l2_bytes=4096,
            l3_bytes=16384,
            cores_per_socket=2,
        )

    def test_miss_goes_to_dram_then_hits_l1(self):
        h = self.make()
        r1 = h.access(0, 0)
        assert r1.level == "DRAM"
        r2 = h.access(0, 0)
        assert r2.level == "L1"
        assert r2.latency < r1.latency

    def test_fills_propagate_down(self):
        h = self.make()
        h.access(0, 0)
        assert h.l1[0].probe(0) and h.l2[0].probe(0)
        assert h.l3[0].probe(0)

    def test_private_caches_are_private(self):
        h = self.make()
        h.access(0, 0)
        r = h.access(1, 0)  # other core: misses private, hits shared L3
        assert r.level == "L3"

    def test_sockets_have_separate_l3(self):
        h = self.make()
        h.access(0, 0)       # socket 0
        r = h.access(2, 0)   # socket 1
        assert r.level == "DRAM"

    def test_core_range_check(self):
        h = self.make()
        with pytest.raises(IndexError):
            h.access(9, 0)

    def test_access_range_counts_lines(self):
        h = self.make()
        out = h.access_range(0, 0, 64 * 10)
        assert sum(out.values()) == 10
        out2 = h.access_range(0, 0, 64 * 10)
        assert out2["L1"] == 10

    def test_total_stats_merge(self):
        h = self.make()
        h.access(0, 0)
        h.access(1, 64)
        t = h.total_stats()
        assert t["L1"].accesses == 2
        assert t["L1"].misses == 2

    def test_write_marks_dirty_and_eviction_writes_back(self):
        h = self.make()
        c = h.l1[0]
        set_stride = c.num_sets * 64
        h.access(0, 0, is_write=True)          # dirty line
        h.access(0, set_stride)                # clean same-set line
        h.access(0, 2 * set_stride)            # same set
        h.access(0, 3 * set_stride)            # ...
        # keep filling the set until the dirty line is evicted
        k = 4
        while c.probe(0) and k < 64:
            h.access(0, k * set_stride)
            k += 1
        assert c.stats.writebacks >= 1

    def test_clean_evictions_do_not_write_back(self):
        h = self.make()
        for i in range(64):
            h.access(0, i * 64)  # read-only streaming through tiny L1
        assert h.l1[0].stats.writebacks == 0
        assert h.l1[0].stats.evictions > 0

    def test_writebacks_merged_in_totals(self):
        h = self.make()
        c = h.l1[0]
        set_stride = c.num_sets * 64
        h.access(0, 0, is_write=True)
        for k in range(1, 32):
            h.access(0, k * set_stride)
        assert h.total_stats()["L1"].writebacks >= 1

    def test_capacity_eviction_produces_l2_hits(self):
        h = self.make()
        # stream more than L1 (16 lines) but less than L2 (64 lines)
        for i in range(32):
            h.access(0, i * 64)
        # first line got evicted from L1 but lives in L2
        r = h.access(0, 0)
        assert r.level in ("L2", "L1")
