"""Benchmarks regenerating the thread-scheduling figures (F1-F5)."""

from repro.harness.experiments import (
    fig1_workitem_coalescing,
    fig2_parboil_coalescing,
    fig3_workgroup_size,
    fig4_blackscholes_wgsize,
    fig5_parboil_wgsize,
)


def test_fig1_workitem_coalescing(benchmark):
    """Figure 1 + Table IV: CPU gains from work coalescing, GPU collapses."""
    r = benchmark(fig1_workitem_coalescing.run, True)
    for x in r.x_labels:
        assert r.get("1000(CPU)").points[x] > 0.8
        assert r.get("1000(GPU)").points[x] < 0.3


def test_fig2_parboil_coalescing(benchmark):
    """Figure 2: Parboil gains on CPU; RhoPhi flat."""
    r = benchmark(fig2_parboil_coalescing.run, True)
    assert r.get("2X").points["CP: cenergy"] > 1.05
    assert abs(r.get("4X").points["MRI-FHD: RhoPhi"] - 1.0) < 0.15


def test_fig3_workgroup_size(benchmark):
    """Figure 3 + Table V: three behaviour groups."""
    r = benchmark(fig3_workgroup_size.run, True)
    assert r.get("case_4(CPU)").points["Square"] > 3 * r.get("case_1(CPU)").points["Square"]
    assert r.get("case_1(GPU)").points["Matrixmul"] < 0.1
    assert 0.85 < r.get("case_1(CPU)").points["Blackscholes"] < 1.15


def test_fig4_blackscholes_wgsize(benchmark):
    """Figure 4: Blackscholes flat on CPU, cliff on GPU."""
    r = benchmark(fig4_blackscholes_wgsize.run, True)
    cpu_vals = [v for s in r.series if "(CPU)" in s.label for v in s.points.values()]
    assert max(cpu_vals) / min(cpu_vals) < 1.4
    gpu_case1 = r.get("case_1(GPU)").points
    assert all(v < 0.2 for v in gpu_case1.values())


def test_fig5_parboil_wgsize(benchmark):
    """Figure 5: workgroup-size sweep on CPU saturates."""
    r = benchmark(fig5_parboil_wgsize.run, True)
    for s in r.series:
        assert s.points["8"] >= 0.85 * s.points["1"]
