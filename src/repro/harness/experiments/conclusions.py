"""Section V — the paper's five conclusions, auto-verified.

    1) Large workgroup size is helpful for better performance on CPUs.
    2) Large ILP helps performance on CPUs.
    3) On CPUs, Mapping APIs perform superior compared to explicit data
       transfer APIs.  Memory allocation flags do not change performance.
    4) Adding affinity support to OpenCL may help performance in some cases.
    5) Programming model can have possible effect on compiler-supported
       vectorization.

This experiment re-derives each conclusion from the corresponding
reproduction and reports the measured evidence and a PASS/FAIL verdict —
a one-shot referee check of the whole repository.
"""

from __future__ import annotations

from typing import Dict, List

from ..report import ExperimentResult, Series
from . import (
    ext_affinity,
    fig1_workitem_coalescing,
    fig3_workgroup_size,
    fig6_ilp,
    fig7_transfer_api,
    fig10_vectorization,
    flags_no_effect,
)

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentResult:
    verdicts: Dict[str, float] = {}
    notes: List[str] = []

    # 1) large workgroups help on CPUs
    f3 = fig3_workgroup_size.run(fast)
    gain = (
        f3.get("case_4(CPU)").points["Square"]
        / f3.get("case_1(CPU)").points["Square"]
    )
    ok = gain > 3
    verdicts["1: large workgroups help (CPU)"] = float(ok)
    notes.append(
        f"(1) Square wg=1000 vs wg=1 on CPU: {gain:.1f}x "
        f"-> {'PASS' if ok else 'FAIL'}"
    )

    # 2) large ILP helps on CPUs
    f6 = fig6_ilp.run(fast)
    slope = f6.get("CPU").points["4"] / f6.get("CPU").points["1"]
    gpu_flat = (
        max(f6.get("GPU").points.values()) / min(f6.get("GPU").points.values())
    )
    ok = slope > 2.5 and gpu_flat < 1.05
    verdicts["2: large ILP helps (CPU)"] = float(ok)
    notes.append(
        f"(2) ILP-4/ILP-1 on CPU: {slope:.2f}x (GPU flat within "
        f"{(gpu_flat - 1) * 100:.1f}%) -> {'PASS' if ok else 'FAIL'}"
    )

    # 3) mapping superior; allocation flags irrelevant
    f7 = fig7_transfer_api.run(fast)
    min_ratio = min(v for s in f7.series for v in s.points.values())
    fl = flags_no_effect.run(fast)
    max_dev = max(
        (max(vals) - min(vals)) / max(vals)
        for vals in (
            [s.points[x] for s in fl.series] for x in fl.x_labels
        )
    )
    ok = min_ratio > 1.0 and max_dev < 0.01
    verdicts["3: map > copy; flags irrelevant"] = float(ok)
    notes.append(
        f"(3) min map/copy ratio {min_ratio:.2f} (>1), max flag deviation "
        f"{max_dev:.2%} -> {'PASS' if ok else 'FAIL'}"
    )

    # 4) affinity support would help
    ea = ext_affinity.run(fast)
    totals = {s.label: s.points["total (ms)"] for s in ea.series}
    speedup = totals["stock"] / totals["aligned"]
    ok = speedup > 1.02
    verdicts["4: affinity support helps"] = float(ok)
    notes.append(
        f"(4) aligned pinning vs stock OpenCL: {speedup:.3f}x "
        f"-> {'PASS' if ok else 'FAIL'}"
    )

    # 5) programming model affects vectorization
    f10 = fig10_vectorization.run(fast)
    wins = sum(
        1
        for x in f10.x_labels
        if f10.get("OpenCL").points[x] > f10.get("OpenMP").points[x]
    )
    ok = wins == len(f10.x_labels)
    verdicts["5: model affects vectorization"] = float(ok)
    notes.append(
        f"(5) OpenCL beats OpenMP on {wins}/{len(f10.x_labels)} MBenches "
        f"-> {'PASS' if ok else 'FAIL'}"
    )

    return ExperimentResult(
        experiment_id="conclusions",
        title="Section V: the paper's five conclusions, auto-verified",
        series=[Series("verified (1=PASS)", verdicts)],
        value_name="PASS=1 / FAIL=0",
        notes=notes,
    )
