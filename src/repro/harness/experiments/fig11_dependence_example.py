"""Figure 11 — the dependence-chain example: OpenCL vectorizes, OpenMP not.

Reproduces the paper's code example (a j-loop whose body is six truly
dependent FMULs) and shows both compilers' verdicts plus the resulting
speedup.  ``MBench3`` is exactly this kernel; this experiment surfaces the
*why*, not just the throughput bar.
"""

from __future__ import annotations

from ...kernelir.analysis import LaunchContext
from ...kernelir.vectorize import LoopVectorizer, OpenCLVectorizer, dependence_chain_length
from ...openmp import OpenMPRuntime
from ...suite import mbench_by_name, MBench
from ..report import ExperimentResult, Series
from ..runner import bench_data, cpu_dut, measure_kernel

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    n = 1 << (16 if fast else 20)
    proto = mbench_by_name("MBench3")
    bench = MBench(
        proto.name, proto._build, proto._make_data, proto._reference,
        proto.flops_per_item, n=n,
    )
    kernel = bench.kernel()
    ctx = LaunchContext((n,), (256,))

    ocl_report = OpenCLVectorizer(4).vectorize(kernel, ctx)
    omp_report = LoopVectorizer(4).vectorize(kernel, ctx)
    chain = dependence_chain_length(kernel.body, ctx)

    cpu = cpu_dut()
    m = measure_kernel(cpu, bench, (n,), (256,))
    omp = OpenMPRuntime(functional=False, env={"OMP_NUM_THREADS": "12"})
    host, scalars = bench_data(bench, (n,))
    r = omp.parallel_for(kernel, n, buffers=host, scalars=scalars)

    flops = bench.flops_per_item * n * 1.0
    ocl_gf = flops / m.mean_ns
    omp_gf = flops / r.time_ns
    return ExperimentResult(
        experiment_id="fig11",
        title="Vectorization on OpenCL vs. OpenMP (dependent-FMUL loop)",
        series=[
            Series("OpenCL", {"Gflop/s": ocl_gf, "vectorized": float(ocl_report.vectorized)}),
            Series("OpenMP", {"Gflop/s": omp_gf, "vectorized": float(omp_report.vectorized)}),
        ],
        value_name="Gflop/s / vectorized flag",
        notes=[
            f"true dependence chain length in loop body: {chain}",
            f"OpenCL compiler: {ocl_report.explain()} (lanes are independent "
            f"workitems; no dependence check needed)",
            f"OpenMP compiler: {omp_report.explain()}",
            f"OpenCL / OpenMP speedup: {ocl_gf / omp_gf:.2f}x",
        ],
    )
