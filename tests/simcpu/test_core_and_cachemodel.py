"""Unit tests for the analytical cache model and the OoO core model."""

import dataclasses

import pytest

from repro.kernelir.analysis import (
    AccessInfo,
    LaunchContext,
    OpCounts,
    analyze_kernel,
)
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32, I32
from repro.kernelir.vectorize import OpenCLVectorizer, VectorizationReport
from repro.simcpu.cachemodel import MemoryCostModel
from repro.simcpu.core import CoreModel
from repro.simcpu.spec import CPUSpec, XEON_E5645


def access(pattern_stride, count=1.0, is_store=False, loop_stride=0.0,
           uniform=False, itemsize=4):
    return AccessInfo(
        buffer="b",
        is_store=is_store,
        is_local=False,
        count_per_item=count,
        itemsize=itemsize,
        vector_stride=pattern_stride,
        inner_loop_stride=loop_stride,
        uniform=uniform,
    )


def elementwise_analysis(n=1 << 20, lsize=64):
    kb = KernelBuilder("e")
    a = kb.buffer("a", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[g] * 2.0
    return analyze_kernel(kb.finish(), LaunchContext((n,), (lsize,)))


class TestSiteCosts:
    def setup_method(self):
        self.m = MemoryCostModel(XEON_E5645)

    def test_uniform_is_free(self):
        assert self.m.site_cost(access(0.0, uniform=True), 1 << 30) == (0, 0, 0)

    def test_local_is_free(self):
        a = access(1.0)
        a = dataclasses.replace(a, is_local=True)
        assert self.m.site_cost(a, 1 << 30)[0] == 0.0

    def test_gather_worse_than_contiguous(self):
        fp = 1 << 30  # DRAM-sized footprint
        contig_amat = self.m.site_cost(access(1.0), fp)[0]
        gather_amat = self.m.site_cost(access(None), fp)[0]
        assert gather_amat > contig_amat

    def test_contiguous_l1_resident_is_free(self):
        amat, dram, l3 = self.m.site_cost(access(1.0), 16 * 1024)
        assert amat == 0.0 and dram == 0.0 and l3 == 0.0

    def test_footprint_grades_latency(self):
        sizes = [16 << 10, 128 << 10, 4 << 20, 1 << 30]
        amats = [self.m.site_cost(access(1.0), s)[0] for s in sizes]
        assert amats == sorted(amats)
        assert amats[-1] > amats[0]

    def test_dram_traffic_only_beyond_l3(self):
        assert self.m.site_cost(access(1.0), 4 << 20)[1] == 0.0
        assert self.m.site_cost(access(1.0), 1 << 30)[1] == 4.0

    def test_l3_traffic_between_l2_and_l3(self):
        _, dram, l3 = self.m.site_cost(access(1.0), 4 << 20)
        assert l3 == 4.0 and dram == 0.0

    def test_loop_sequential_strided_treated_as_stream(self):
        """A stride-1000 access that walks sequentially per item (coalesced
        kernel) costs like a contiguous stream, not like a strided one."""
        seq = self.m.site_cost(access(1000.0, loop_stride=1.0), 1 << 30)[0]
        hop = self.m.site_cost(access(1000.0, loop_stride=0.0), 1 << 30)[0]
        assert seq < hop


class TestWorkgroupFootprint:
    def setup_method(self):
        self.m = MemoryCostModel(XEON_E5645)

    def test_uniform_counts_once(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("i", 0, 100) as i:
            acc = kb.let("acc", acc + a[i])  # same for all items
        o[g] = acc
        an = analyze_kernel(kb.finish(), LaunchContext((256,), (64,)))
        fp = self.m.workgroup_footprint(an)
        # 100 loads x 4B shared + per-item store 4B x 64 items
        assert fp == pytest.approx(100 * 4 + 64 * 4)

    def test_spill_latency_grades(self):
        m = self.m
        assert m._spill_latency(1 << 10) == 0.0
        mid = m._spill_latency(60 << 10)
        big = m._spill_latency(1 << 20)
        huge = m._spill_latency(1 << 28)
        assert 0 < mid < big < huge


class TestCoreModel:
    def setup_method(self):
        self.core = CoreModel(XEON_E5645)
        self.mem_model = MemoryCostModel(XEON_E5645)

    def _cost(self, analysis, vec=None, buffer_bytes=None):
        mem = self.mem_model.estimate(analysis, buffer_bytes)
        return self.core.item_cycles(analysis, vec, mem)

    def test_vectorization_speeds_up_compute(self):
        an = elementwise_analysis()
        scalar = self._cost(an, None)
        vec = self._cost(an, VectorizationReport(True, 4, [], contiguous_ops=2))
        assert vec.cycles < scalar.cycles

    def test_ilp_scaling_is_monotone(self):
        def chain_kernel(k):
            kb = KernelBuilder("c")
            a = kb.buffer("a", F32)
            g = kb.global_id(0)
            vs = [kb.let(f"v{i}", a[g] + float(i)) for i in range(k)]
            with kb.loop("t", 0, 64):
                for i in range(k):
                    for _ in range(8 // k):
                        vs[i] = kb.let(f"v{i}", vs[i] * 1.0001)
            acc = vs[0]
            for v in vs[1:]:
                acc = acc + v
            a[g] = acc
            return kb.finish()

        ctx = LaunchContext((4096,), (256,))
        costs = [
            self._cost(analyze_kernel(chain_kernel(k), ctx)).cycles
            for k in (1, 2, 4)
        ]
        assert costs[0] > costs[1] > costs[2]

    def test_bandwidth_bound_kicks_in_for_dram_streams(self):
        an = elementwise_analysis()
        c = self._cost(an, None, {"a": 1 << 30, "o": 1 << 30})
        assert c.bandwidth_bound > 0
        assert c.dominant() in ("bandwidth", "memory")

    def test_l1_resident_kernel_is_compute_or_issue_bound(self):
        an = elementwise_analysis()
        c = self._cost(an, None, {"a": 8 << 10, "o": 8 << 10})
        assert c.bandwidth_bound == 0.0

    def test_dram_share_scales_bandwidth(self):
        an = elementwise_analysis()
        mem = self.mem_model.estimate(an, {"a": 1 << 30, "o": 1 << 30})
        full = self.core.item_cycles(an, None, mem, dram_share=1.0)
        shared = self.core.item_cycles(an, None, mem, dram_share=1 / 12)
        assert shared.bandwidth_bound == pytest.approx(
            full.bandwidth_bound * 12
        )

    def test_atomics_serialize(self):
        kb = KernelBuilder("h")
        h = kb.buffer("h", I32)
        h.atomic_add(kb.global_id(0) % 4, kb.i32(1))
        an = analyze_kernel(kb.finish(), LaunchContext((1024,), (64,)))
        c = self._cost(an)
        assert c.compute_bound >= 20.0
