"""Functional validation of every Table II application against its numpy
reference, plus Table II metadata checks."""

import numpy as np
import pytest

from repro.suite import (
    BinomialOptionBenchmark,
    BlackScholesBenchmark,
    HistogramBenchmark,
    MatrixMulBenchmark,
    MatrixMulNaiveBenchmark,
    PrefixSumBenchmark,
    ReductionBenchmark,
    SquareBenchmark,
    VectorAddBenchmark,
    all_table2_benchmarks,
)


class TestTableIIMetadata:
    def test_paper_configurations(self):
        by_name = {b.name: b for b in all_table2_benchmarks()}
        assert by_name["Square"].default_global_sizes == (
            (10_000,), (100_000,), (1_000_000,), (10_000_000,)
        )
        assert by_name["Vectoraddition"].default_global_sizes[-1] == (11_445_000,)
        assert by_name["Matrixmul"].default_local_size == (16, 16)
        assert by_name["Blackscholes"].default_global_sizes == (
            (1280, 1280), (2560, 2560)
        )
        assert by_name["Binomialoption"].default_local_size == (255,)
        assert by_name["Prefixsum"].default_global_sizes == ((1024,),)
        assert by_name["Square"].default_local_size is None  # NULL

    def test_launch_configs_render(self):
        cfg = SquareBenchmark().launch_configs()[0]
        assert cfg.pretty() == "global=10000 local=NULL"
        assert cfg.total_workitems == 10_000


class TestSquare:
    def test_correct(self):
        SquareBenchmark().validate((2048,))

    @pytest.mark.parametrize("c", [10, 100])
    def test_coalesced_variants_equivalent(self, c):
        SquareBenchmark().validate((2000,), coalesce=c)

    def test_coalesce_must_divide(self):
        with pytest.raises(ValueError):
            SquareBenchmark().validate((1001,), coalesce=10)


class TestVectorAdd:
    def test_correct(self):
        VectorAddBenchmark().validate((4096,))

    def test_coalesced(self):
        VectorAddBenchmark().validate((4400,), coalesce=4)


class TestMatrixMul:
    @pytest.mark.parametrize("block", [2, 4, 8])
    def test_blocked_matches_numpy(self, block):
        MatrixMulBenchmark(block=block).validate((32, 16))

    def test_naive_matches_numpy(self):
        MatrixMulNaiveBenchmark().validate((24, 16), local_size=(4, 4))

    def test_blocked_equals_naive(self):
        rng = np.random.default_rng(5)
        gs = (32, 16)
        blocked = MatrixMulBenchmark(block=4)
        naive = MatrixMulNaiveBenchmark()
        naive.k_div = blocked.k_div
        b1, s1 = blocked.make_data(gs, np.random.default_rng(5))
        b2, s2 = naive.make_data(gs, np.random.default_rng(5))
        np.testing.assert_array_equal(b1["A"], b2["A"])
        from repro.kernelir.interp import Interpreter

        Interpreter().launch(blocked.kernel(), gs, (4, 4), buffers=b1, scalars=s1)
        Interpreter().launch(naive.kernel(), gs, (4, 4), buffers=b2, scalars=s2)
        np.testing.assert_allclose(b1["C"], b2["C"], rtol=2e-4, atol=1e-4)

    def test_rejects_coalescing(self):
        with pytest.raises(ValueError):
            MatrixMulBenchmark().kernel(coalesce=2)

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ValueError):
            MatrixMulBenchmark(block=6).kernel()


class TestReduction:
    @pytest.mark.parametrize("wg", [4, 64, 256])
    def test_tree_reduction(self, wg):
        ReductionBenchmark(wg_size=wg).validate((wg * 16,))

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            ReductionBenchmark(wg_size=24).kernel()

    def test_rejects_indivisible_global(self):
        with pytest.raises(ValueError):
            ReductionBenchmark(wg_size=64).make_data(
                (1000,), np.random.default_rng(0)
            )


class TestHistogram:
    def test_counts_every_element(self):
        HistogramBenchmark().validate((4096,))

    def test_total_preserved(self):
        b = HistogramBenchmark()
        bufs, sc = b.make_data((2048,), np.random.default_rng(0))
        from repro.kernelir.interp import Interpreter

        Interpreter().launch(b.kernel(), (2048,), (256,), buffers=bufs, scalars=sc)
        assert bufs["hist"].sum() == 2048

    def test_rejects_small_workgroup(self):
        with pytest.raises(ValueError):
            HistogramBenchmark(wg_size=64).kernel()


class TestPrefixSum:
    @pytest.mark.parametrize("n", [8, 256, 1024])
    def test_inclusive_scan(self, n):
        PrefixSumBenchmark(n).validate((n,))

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            PrefixSumBenchmark(100).kernel()

    def test_rejects_other_sizes(self):
        with pytest.raises(ValueError):
            PrefixSumBenchmark(256).make_data((512,), np.random.default_rng(0))


class TestBlackScholes:
    def test_prices_match_closed_form(self):
        BlackScholesBenchmark().validate((16, 8), rtol=5e-4, atol=5e-4)

    def test_put_call_parity_holds(self):
        b = BlackScholesBenchmark()
        bufs, sc = b.make_data((8, 8), np.random.default_rng(2))
        from repro.kernelir.interp import Interpreter

        Interpreter().launch(b.kernel(), (8, 8), (4, 4), buffers=bufs, scalars=sc)
        s, x, t = bufs["price"], bufs["strike"], bufs["years"]
        lhs = bufs["call"] - bufs["put"]
        rhs = s - x * np.exp(-sc["riskfree"] * t)
        np.testing.assert_allclose(lhs, rhs, rtol=5e-3, atol=5e-3)


class TestBinomialOption:
    @pytest.mark.parametrize("steps", [15, 63, 255])
    def test_lattice_pricing(self, steps):
        BinomialOptionBenchmark(steps=steps).validate((steps * 4,), rtol=1e-3, atol=1e-3)

    def test_converges_to_blackscholes(self):
        """Deep lattices approach the closed-form price."""
        from repro.suite.simple.binomialoption import (
            RISK_FREE,
            VOLATILITY,
            YEARS,
            _binomial_reference,
        )
        from scipy.special import erf

        s0 = np.array([100.0])
        x0 = np.array([95.0])
        lattice = _binomial_reference(s0, x0, 512, RISK_FREE, VOLATILITY, YEARS)
        d1 = (np.log(s0 / x0) + (RISK_FREE + 0.5 * VOLATILITY ** 2) * YEARS) / (
            VOLATILITY * np.sqrt(YEARS)
        )
        d2 = d1 - VOLATILITY * np.sqrt(YEARS)
        cnd = lambda d: 0.5 * (1 + erf(d / np.sqrt(2)))  # noqa: E731
        bs = s0 * cnd(d1) - x0 * np.exp(-RISK_FREE * YEARS) * cnd(d2)
        assert abs(lattice[0] - bs[0]) / bs[0] < 0.01

    def test_rejects_oversized_steps(self):
        with pytest.raises(ValueError):
            BinomialOptionBenchmark(steps=2048)
