"""Differential harness: compiled kernels vs the lock-step interpreter.

Every suite benchmark plus targeted divergence/atomic/negative-step
kernels run through both engines; buffers and dynamic counters must be
bit-identical, and every diagnostic (out-of-bounds, mem-flags, zero-step,
loop overflow) must carry the same message text.
"""

import dataclasses

import numpy as np
import pytest

from repro.kernelir import (
    F32,
    I32,
    I64,
    Interpreter,
    KernelBuilder,
    KernelExecutionError,
    compile_kernel,
    get_compiled,
    launch_kernel,
)
from repro.kernelir.compile import UnsupportedKernelError
from repro.suite import (
    BinomialOptionBenchmark,
    BlackScholesBenchmark,
    CPCenergyBenchmark,
    HistogramBenchmark,
    IlpMicroBenchmark,
    MatrixMulBenchmark,
    MatrixMulNaiveBenchmark,
    MBENCHES,
    MriFhdFHBenchmark,
    MriFhdRhoPhiBenchmark,
    MriQComputeQBenchmark,
    MriQPhiMagBenchmark,
    PrefixSumBenchmark,
    ReductionBenchmark,
    SquareBenchmark,
    VectorAddBenchmark,
    scale_global_size,
)
from repro.suite.base import _largest_divisor_at_most


def run_both(kernel, gs, ls, buffers, scalars, *, count_ops=True,
             global_offset=None, readonly=None, writeonly=None):
    """Launch on both engines, assert bit-identical effects, return results."""
    bufs_i = {k: v.copy() for k, v in buffers.items()}
    bufs_c = {k: v.copy() for k, v in buffers.items()}
    res_i = Interpreter().launch(
        kernel, gs, ls, buffers=bufs_i, scalars=dict(scalars),
        count_ops=count_ops, global_offset=global_offset,
        readonly=readonly, writeonly=writeonly,
    )
    ck = get_compiled(kernel, count_ops=count_ops)
    assert ck is not None, f"kernel {kernel.name} unexpectedly unsupported"
    res_c = ck.launch(
        gs, ls, buffers=bufs_c, scalars=dict(scalars),
        global_offset=global_offset, readonly=readonly, writeonly=writeonly,
    )
    for name in bufs_i:
        assert bufs_i[name].dtype == bufs_c[name].dtype, name
        np.testing.assert_array_equal(
            bufs_i[name], bufs_c[name],
            err_msg=f"kernel {kernel.name}: buffer {name!r} diverged",
        )
    if count_ops:
        assert dataclasses.asdict(res_i.counters) == dataclasses.asdict(
            res_c.counters
        ), f"kernel {kernel.name}: dynamic counters diverged"
    assert res_i.global_size == res_c.global_size
    assert res_i.local_size == res_c.local_size
    assert res_i.num_groups == res_c.num_groups
    return bufs_i, bufs_c


def both_raise(kernel, gs, ls, buffers, scalars, **kw):
    """Both engines must raise KernelExecutionError with identical text."""
    with pytest.raises(KernelExecutionError) as ei:
        Interpreter().launch(
            kernel, gs, ls,
            buffers={k: v.copy() for k, v in buffers.items()},
            scalars=dict(scalars), **kw,
        )
    ck = get_compiled(kernel)
    assert ck is not None
    with pytest.raises(KernelExecutionError) as ec:
        ck.launch(
            gs, ls,
            buffers={k: v.copy() for k, v in buffers.items()},
            scalars=dict(scalars), **kw,
        )
    assert str(ei.value) == str(ec.value)
    return str(ei.value)


# ---------------------------------------------------------------------------
# Every suite benchmark (small launch shapes from the suite's own tests)
# ---------------------------------------------------------------------------

SUITE_CASES = [
    (SquareBenchmark(), (2048,), 1),
    (SquareBenchmark(), (2000,), 4),
    (VectorAddBenchmark(), (4096,), 1),
    (VectorAddBenchmark(), (4400,), 4),
    (MatrixMulBenchmark(), (32, 16), 1),
    (MatrixMulNaiveBenchmark(), (24, 16), 1),
    (ReductionBenchmark(wg_size=64), (64 * 16,), 1),
    (HistogramBenchmark(), (4096,), 1),
    (PrefixSumBenchmark(256), (256,), 1),
    (BlackScholesBenchmark(), (16, 8), 1),
    (BinomialOptionBenchmark(steps=16), (16 * 4,), 1),
    (CPCenergyBenchmark(natoms=60), (16, 8), 1),
    (CPCenergyBenchmark(natoms=60), (16, 8), 4),
    (MriQPhiMagBenchmark(), (1024,), 1),
    (MriQPhiMagBenchmark(), (1024,), 4),
    (MriQComputeQBenchmark(num_k=48), (128,), 1),
    (MriFhdRhoPhiBenchmark(), (1024,), 1),
    (MriFhdFHBenchmark(num_k=48), (128,), 1),
    (IlpMicroBenchmark(1, n=64), (64,), 1),
    (IlpMicroBenchmark(4, n=64), (64,), 1),
] + [(mb, (1024,), 1) for mb in MBENCHES]


def _case_id(case):
    bench, gs, coalesce = case
    return f"{bench.name}-{'x'.join(map(str, gs))}-c{coalesce}"


@pytest.mark.parametrize("case", SUITE_CASES, ids=_case_id)
def test_suite_benchmark_differential(case):
    bench, gs, coalesce = case
    kernel = bench.kernel(coalesce)
    buffers, scalars = bench.make_data(gs, np.random.default_rng(7))
    scalars = {**scalars, **bench.scalars_for(coalesce)}
    launch_gs = scale_global_size(gs, coalesce)
    ls = bench.default_local_size
    if ls is not None:
        ls = tuple(min(int(l), g) for l, g in zip(ls, launch_gs))
        ls = tuple(_largest_divisor_at_most(g, l) for g, l in zip(launch_gs, ls))
    # count_ops=True checks the counting variant; count_ops=False also
    # exercises loop-invariant hoisting (disabled under counters).
    run_both(kernel, launch_gs, ls, buffers, scalars, count_ops=True)
    run_both(kernel, launch_gs, ls, buffers, scalars, count_ops=False)


# ---------------------------------------------------------------------------
# Targeted control-flow / memory kernels
# ---------------------------------------------------------------------------


def _divergent_kernel():
    """Data-dependent If nesting with else branches."""
    kb = KernelBuilder("diverge")
    src = kb.buffer("src", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    x = kb.let("x", src[g])
    with kb.if_(x > 0.0):
        with kb.if_((g % 3).eq(0)):
            kb.store(out, g, x * 2.0)
        with kb.else_():
            kb.store(out, g, x + 1.0)
    with kb.else_():
        kb.store(out, g, -x)
    return kb.finish()


def test_divergent_if_else():
    k = _divergent_kernel()
    n = 777
    rng = np.random.default_rng(3)
    bufs = {
        "src": rng.standard_normal(n).astype(np.float32),
        "out": np.zeros(n, dtype=np.float32),
    }
    run_both(k, (n,), (7,), bufs, {})


def test_atomics_with_duplicate_indices():
    kb = KernelBuilder("atomic_dup")
    out = kb.buffer("hist", I32, access="rw")
    g = kb.global_id(0)
    out.atomic_add(g % 7, kb.i32(1))
    k = kb.finish()
    bufs = {"hist": np.zeros(16, dtype=np.int32)}
    run_both(k, (501,), (3,), bufs, {})


def test_divergent_loop_negative_step():
    """Per-lane trip counts walking downward."""
    kb = KernelBuilder("negstep")
    out = kb.buffer("out", I64, access="rw")
    g = kb.global_id(0)
    acc = kb.let("acc", kb.cast(0, I64))
    with kb.loop("i", g, 0, -2) as i:
        acc = kb.let("acc", acc + i)
    kb.store(out, g, acc)
    k = kb.finish()
    bufs = {"out": np.zeros(33, dtype=np.int64)}
    run_both(k, (33,), (11,), bufs, {})


def test_uniform_loop_negative_step_and_zero_trip():
    kb = KernelBuilder("negstep_uniform")
    out = kb.buffer("out", I64, access="rw")
    n = kb.scalar("n", I32)
    g = kb.global_id(0)
    acc = kb.let("acc", kb.cast(0, I64))
    with kb.loop("i", n, 0, -3) as i:
        acc = kb.let("acc", acc + i)
    # zero-trip uniform loop: body must never execute
    with kb.loop("j", 5, 5) as j:
        acc = kb.let("acc", acc + 1000 + j)
    kb.store(out, g, acc)
    k = kb.finish()
    for nval in (10, 0, -4):
        bufs = {"out": np.zeros(8, dtype=np.int64)}
        run_both(k, (8,), (4,), bufs, {"n": nval})


def test_zero_step_message_parity():
    kb = KernelBuilder("zstep")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    with kb.loop("i", 0, 4, 0):
        kb.store(out, g, 1.0)
    k = kb.finish()
    bufs = {"out": np.zeros(8, dtype=np.float32)}
    msg = both_raise(k, (8,), (4,), bufs, {})
    assert msg == "loop i: zero step"


def test_loop_overflow_message_parity():
    kb = KernelBuilder("overflow")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    with kb.loop("i", 0, 1000) as i:
        kb.store(out, g, kb.f32(i))
    k = kb.finish()
    bufs = {"out": np.zeros(4, dtype=np.float32)}
    interp = Interpreter(max_loop_iters=10)
    with pytest.raises(KernelExecutionError) as ei:
        interp.launch(k, (4,), (2,), buffers={n: b.copy() for n, b in bufs.items()})
    ck = compile_kernel(k, max_loop_iters=10)
    with pytest.raises(KernelExecutionError) as ec:
        ck.launch((4,), (2,), buffers={n: b.copy() for n, b in bufs.items()})
    assert str(ei.value) == str(ec.value) == "loop i exceeded 10 iterations"
    # exactly at the limit: no overflow on either engine
    interp2 = Interpreter(max_loop_iters=1000)
    interp2.launch(k, (4,), (2,), buffers={n: b.copy() for n, b in bufs.items()})
    compile_kernel(k, max_loop_iters=1000).launch(
        (4,), (2,), buffers={n: b.copy() for n, b in bufs.items()}
    )


def test_induction_variable_shadowing_restore():
    """The loop variable must be restored (or undefined) after the loop."""
    kb = KernelBuilder("shadow")
    out = kb.buffer("out", I64, access="w")
    g = kb.global_id(0)
    i0 = kb.let("i", g * 100)
    with kb.loop("i", 0, 3):
        kb.barrier()  # loop body is lock-step no-op; only shadowing matters
    kb.store(out, g, i0)
    k = kb.finish()
    bufs = {"out": np.zeros(6, dtype=np.int64)}
    run_both(k, (6,), (3,), bufs, {})


def test_out_of_bounds_message_parity():
    kb = KernelBuilder("oob")
    src = kb.buffer("a", F32, access="r")
    out = kb.buffer("b", F32, access="w")
    g = kb.global_id(0)
    kb.store(out, g, src[g + 100])
    k = kb.finish()
    bufs = {
        "a": np.ones(8, dtype=np.float32),
        "b": np.zeros(8, dtype=np.float32),
    }
    msg = both_raise(k, (8,), (4,), bufs, {})
    assert msg == (
        "out-of-bounds access on buffer 'a': index range [100, 107] vs size 8"
    )


def test_mem_flags_message_parity():
    kb = KernelBuilder("flags")
    a = kb.buffer("a", F32, access="rw")
    b = kb.buffer("b", F32, access="rw")
    g = kb.global_id(0)
    kb.store(b, g, a[g])
    k = kb.finish()
    bufs = {
        "a": np.ones(4, dtype=np.float32),
        "b": np.zeros(4, dtype=np.float32),
    }
    msg = both_raise(k, (4,), (2,), bufs, {}, writeonly={"a"})
    assert msg == "read from buffer 'a' allocated with mem_flags.WRITE_ONLY"
    msg = both_raise(k, (4,), (2,), bufs, {}, readonly={"b"})
    assert msg == "write to buffer 'b' allocated with mem_flags.READ_ONLY"


def test_two_dim_with_global_offset():
    kb = KernelBuilder("offset2d", work_dim=2)
    out = kb.buffer("out", I64, access="w")
    g0 = kb.global_id(0)
    g1 = kb.global_id(1)
    kb.store(out, (g0 - 3) * 8 + (g1 - 2), g0 * 1000 + g1)
    k = kb.finish()
    bufs = {"out": np.zeros(64, dtype=np.int64)}
    run_both(k, (8, 8), (4, 2), bufs, {}, global_offset=(3, 2))


def test_masked_first_assignment_zero_fill():
    """First assignment under divergence: inactive lanes keep zero-init."""
    kb = KernelBuilder("maskinit")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    with kb.if_((g % 2).eq(0)):
        t = kb.let("t", kb.f32(g) * 2.0)
        kb.store(out, g, t)
    k = kb.finish()
    bufs = {"out": np.zeros(16, dtype=np.float32)}
    run_both(k, (16,), (4,), bufs, {})


def test_unsupported_kernel_falls_back():
    """Read of a conditionally-defined variable: JIT declines, dispatch
    falls back to the interpreter and still computes the right answer."""
    kb = KernelBuilder("fallback")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    with kb.if_(g < 100):  # always true for our launch: runtime-defined
        t = kb.let("t", kb.f32(g))
    kb.store(out, g, t)
    k = kb.finish()
    assert get_compiled(k) is None
    with pytest.raises(UnsupportedKernelError):
        compile_kernel(k)
    bufs = {"out": np.zeros(8, dtype=np.float32)}
    res = launch_kernel(k, (8,), (4,), buffers=bufs, scalars={})
    np.testing.assert_array_equal(bufs["out"], np.arange(8, dtype=np.float32))
    assert res.global_size == (8,)


def test_barrier_and_counters():
    """Barrier counting and per-statement op counters under divergence."""
    kb = KernelBuilder("ctrs")
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    scratch = kb.local_array("tile", 4, F32)
    g = kb.global_id(0)
    lid = kb.local_id(0)
    scratch[lid] = a[g] * 2.0
    kb.barrier()
    with kb.if_(lid < 2):
        kb.store(out, g, scratch[lid] + 1.0)
    k = kb.finish()
    rng = np.random.default_rng(0)
    bufs = {
        "a": rng.standard_normal(16).astype(np.float32),
        "out": np.zeros(16, dtype=np.float32),
    }
    run_both(k, (16,), (4,), bufs, {})


def test_experiment_csv_identical_across_engines(monkeypatch):
    """A fast-mode experiment's CSV is byte-identical with the JIT on/off."""
    from repro import plancache
    from repro.harness.registry import run_experiment

    plancache.invalidate_all()
    monkeypatch.delenv("REPRO_NO_JIT", raising=False)
    with_jit = run_experiment("fig11", fast=True).to_csv()
    monkeypatch.setenv("REPRO_NO_JIT", "1")
    plancache.invalidate_all()
    without_jit = run_experiment("fig11", fast=True).to_csv()
    assert with_jit == without_jit


def test_program_build_populates_jit_log(monkeypatch):
    """clBuildProgram warms the JIT and records per-kernel status."""
    from repro import minicl as cl

    monkeypatch.delenv("REPRO_NO_JIT", raising=False)
    bench = SquareBenchmark()
    ctx = cl.Context(cl.cpu_platform().devices)
    program = ctx.create_program(bench.kernel()).build()
    (line,) = program.jit_log.values()
    assert "compiled to fused NumPy" in line

    monkeypatch.setenv("REPRO_NO_JIT", "1")
    program2 = ctx.create_program(bench.kernel()).build()
    (line2,) = program2.jit_log.values()
    assert "disabled" in line2
