"""Unit tests for the shared experiment runner helpers."""

import numpy as np
import pytest

from repro import minicl as cl
from repro.harness.runner import (
    cpu_dut,
    gpu_dut,
    make_buffers,
    measure_app_throughput,
    measure_kernel,
)
from repro.suite import SquareBenchmark, VectorAddBenchmark


class TestDut:
    def test_cpu_gpu_duts(self):
        assert not cpu_dut().is_gpu
        assert gpu_dut().is_gpu

    def test_fresh_queue_starts_at_zero(self):
        dut = cpu_dut()
        q1 = dut.fresh_queue()
        assert q1.now_ns == 0.0


class TestMakeBuffers:
    def test_default_flags_follow_kernel_access(self):
        dut = cpu_dut()
        bufs, scalars, host = make_buffers(dut, VectorAddBenchmark(), (1024,))
        assert not bufs["a"].kernel_writable   # READ_ONLY input
        assert not bufs["c"].kernel_readable   # WRITE_ONLY output
        assert bufs["a"].nbytes == 4096

    def test_flags_map_override(self):
        dut = cpu_dut()
        fm = {"a": cl.mem_flags.READ_WRITE | cl.mem_flags.ALLOC_HOST_PTR}
        bufs, _, _ = make_buffers(
            dut, VectorAddBenchmark(), (256,), flags_map=fm
        )
        assert bufs["a"].pinned and bufs["a"].kernel_writable

    def test_buffers_snapshot_host_data(self):
        dut = cpu_dut()
        bufs, _, host = make_buffers(dut, SquareBenchmark(), (256,))
        np.testing.assert_array_equal(bufs["input"].array, host["input"])


class TestMeasureKernel:
    def test_returns_positive_mean(self):
        m = measure_kernel(cpu_dut(), SquareBenchmark(), (10_000,))
        assert m.mean_ns > 0 and m.invocations >= 1

    def test_coalesce_injects_scalar(self):
        m = measure_kernel(
            cpu_dut(), SquareBenchmark(), (10_000,), coalesce=10
        )
        assert m.mean_ns > 0

    def test_deterministic(self):
        m1 = measure_kernel(cpu_dut(), SquareBenchmark(), (10_000,))
        m2 = measure_kernel(cpu_dut(), SquareBenchmark(), (10_000,))
        assert m1.mean_ns == m2.mean_ns


class TestMeasureAppThroughput:
    def test_map_beats_copy_on_cpu(self):
        dut = cpu_dut()
        t_copy = measure_app_throughput(
            dut, SquareBenchmark(), (100_000,), transfer_api="copy"
        )
        t_map = measure_app_throughput(
            dut, SquareBenchmark(), (100_000,), transfer_api="map"
        )
        assert t_map > t_copy > 0

    def test_app_throughput_below_kernel_throughput(self):
        """Equation (1): adding transfer time can only lower throughput."""
        dut = cpu_dut()
        m = measure_kernel(dut, SquareBenchmark(), (100_000,))
        kernel_thr = m.throughput(100_000)
        app_thr = measure_app_throughput(
            dut, SquareBenchmark(), (100_000,), transfer_api="copy"
        )
        assert app_thr < kernel_thr
