"""Events with virtual-time profiling (``CL_QUEUE_PROFILING_ENABLE``)."""

from __future__ import annotations

import dataclasses
from typing import Optional

from .constants import command_status, command_type

__all__ = ["Event", "EventProfile"]


@dataclasses.dataclass(frozen=True)
class EventProfile:
    """The four OpenCL profiling timestamps, in virtual nanoseconds.

    ``queued`` is when the host enqueued the command, ``submit`` is when
    the runtime handed it to the device (its wait list had resolved),
    ``start``/``end`` bracket device execution.  On this simulator the
    device is idle at hand-off, so SUBMIT and START coincide; QUEUED and
    SUBMIT separate whenever a wait list (or an out-of-order queue's
    dependency tracking) held the command back after enqueue.
    """

    queued: float
    submit: float
    start: float
    end: float

    @property
    def duration_ns(self) -> float:
        """CL_PROFILING_COMMAND_END - CL_PROFILING_COMMAND_START."""
        return self.end - self.start

    @property
    def queue_delay_ns(self) -> float:
        """CL_PROFILING_COMMAND_SUBMIT - CL_PROFILING_COMMAND_QUEUED."""
        return self.submit - self.queued


class Event:
    """Completion/profiling handle returned by every enqueue call."""

    def __init__(self, ctype: command_type, queued: float, start: float, end: float,
                 info: Optional[dict] = None, *, submit: Optional[float] = None):
        self.command_type = ctype
        self._profile = EventProfile(
            queued=queued,
            submit=queued if submit is None else submit,
            start=start,
            end=end,
        )
        self.status = command_status.COMPLETE  # in-order blocking simulation
        #: model diagnostics (KernelCost / TransferCost) for the harness
        self.info = info or {}

    @property
    def profile(self) -> EventProfile:
        return self._profile

    @property
    def duration_ns(self) -> float:
        return self._profile.duration_ns

    def wait(self) -> None:
        """No-op: the in-order virtual-time queue completes synchronously."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Event {self.command_type.value} "
            f"[{self._profile.start:.0f}..{self._profile.end:.0f}ns]>"
        )
