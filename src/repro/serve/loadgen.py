"""Load generator / replay client for the experiment service.

Drives a service — either in-process (an :class:`ExperimentService`) or
over HTTP (a base URL) — with a *batch*: a JSON document expanded into
many concurrent tenant requests.  Used three ways:

* ``python -m repro serve --replay BATCH`` — start a daemon, replay the
  batch against it over real HTTP, verify, print a summary (CI's
  ``serve-smoke`` job);
* the soak test (``tests/serve/test_soak.py``) — >=1000 requests across
  >=8 tenants, asserting zero dropped/duplicated responses and
  byte-identical CSVs against serial execution;
* ad-hoc capacity probing of a running daemon.

Batch schema (``"schema": 1``)::

    {"schema": 1,
     "tenants": 8,                # int (t0..tN-1) or explicit name list
     "repeat": 2,                 # whole-batch repetitions (default 1)
     "requests": [                # tenant-less request documents
        {"kind": "experiment", "name": "fig1"},
        {"kind": "launch", "benchmark": "Square", "coalesce": 2}]}

Expansion is deterministic: repetition-major, then tenant, then request,
with ``request_id`` assigned ``r00000, r00001, ...`` in that order — so a
replay is reproducible and every response is correlatable.
"""

from __future__ import annotations

import concurrent.futures as cf
import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Union

from .protocol import ExperimentRequest, RequestError, parse_request
from .service import (
    BackpressureError,
    ExecutionError,
    ExperimentService,
    ServiceClosedError,
)

__all__ = [
    "default_batch",
    "expand_batch",
    "replay",
    "serial_csv",
    "summarize_report",
    "verify_replay",
]


def default_batch(tenants: int = 8, repeat: int = 2) -> dict:
    """The canned batch CI replays: the cheapest real experiments plus a
    spread of launches, with deliberate cross-tenant duplication so the
    dedupe/cache counters must move."""
    return {
        "schema": 1,
        "tenants": tenants,
        "repeat": repeat,
        "requests": [
            {"kind": "experiment", "name": "fig1"},
            {"kind": "experiment", "name": "table1"},
            {"kind": "launch", "benchmark": "Square"},
            {"kind": "launch", "benchmark": "Vectoraddition", "coalesce": 2},
        ],
    }


def expand_batch(spec: dict) -> List[dict]:
    """Expand one batch document into concrete request documents."""
    if not isinstance(spec, dict) or spec.get("schema") != 1:
        raise ValueError(
            f"batch must be an object with \"schema\": 1, got "
            f"{spec.get('schema') if isinstance(spec, dict) else spec!r}"
        )
    tenants = spec.get("tenants", 8)
    if isinstance(tenants, int):
        if tenants < 1:
            raise ValueError(f"'tenants' must be >= 1, got {tenants}")
        tenants = [f"t{i}" for i in range(tenants)]
    if (not isinstance(tenants, list) or not tenants
            or not all(isinstance(t, str) for t in tenants)):
        raise ValueError(f"'tenants' must be an int or a list of names")
    repeat = spec.get("repeat", 1)
    if not isinstance(repeat, int) or repeat < 1:
        raise ValueError(f"'repeat' must be an integer >= 1, got {repeat!r}")
    base = spec.get("requests")
    if not isinstance(base, list) or not base:
        raise ValueError("'requests' must be a non-empty list")
    out: List[dict] = []
    for _ in range(repeat):
        for tenant in tenants:
            for req in base:
                doc = dict(req)
                doc["tenant"] = tenant
                doc["request_id"] = f"r{len(out):05d}"
                out.append(doc)
    return out


# -- transport --------------------------------------------------------------


def _post_http(url: str, doc: dict, timeout: float = 120.0) -> dict:
    """POST one request document; error statuses return their JSON body."""
    data = json.dumps(doc).encode("utf-8")
    req = urllib.request.Request(
        url.rstrip("/") + "/v1/submit", data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as e:
        body = e.read().decode("utf-8", errors="replace")
        try:
            out = json.loads(body)
        except ValueError:
            out = {"ok": False, "error": f"http_{e.code}", "message": body}
        if e.code == 429 and "retry_after_s" not in out:
            out["retry_after_s"] = float(e.headers.get("Retry-After", 0.25))
        return out


def _submit_one(target: Union[str, ExperimentService], doc: dict,
                max_attempts: int) -> dict:
    """Submit with bounded backpressure retries; never raises."""
    delay = 0.0
    for attempt in range(max_attempts):
        if delay:
            time.sleep(delay)
        if isinstance(target, str):
            out = _post_http(target, doc)
            if out.get("ok") or out.get("error") != "backpressure":
                return out
            delay = min(2.0, max(0.02, float(out.get("retry_after_s", 0.25))))
        else:
            try:
                return target.submit(doc)
            except BackpressureError as e:
                delay = min(2.0, max(0.02, e.retry_after_s))
            except RequestError as e:
                return {"ok": False, "error": "bad_request",
                        "message": str(e)}
            except ServiceClosedError as e:
                return {"ok": False, "error": "closing", "message": str(e)}
            except ExecutionError as e:
                return {"ok": False, "error": "execution", "message": str(e)}
    return {"ok": False, "error": "backpressure_exhausted",
            "message": f"still throttled after {max_attempts} attempts",
            "request_id": doc.get("request_id")}


def replay(target: Union[str, ExperimentService], requests: List[dict],
           concurrency: int = 16, max_attempts: int = 50) -> List[dict]:
    """Fire every request concurrently; responses in request order.

    ``target`` is a base URL (real HTTP) or a service instance
    (in-process).  429s are retried with the server's Retry-After hint,
    so a correctly-provisioned replay drops nothing.
    """
    with cf.ThreadPoolExecutor(max_workers=max(1, concurrency),
                               thread_name_prefix="loadgen") as pool:
        futures = [
            pool.submit(_submit_one, target, doc, max_attempts)
            for doc in requests
        ]
        return [f.result() for f in futures]


# -- verification -----------------------------------------------------------


def _group_key(doc: dict) -> tuple:
    """Client-side dedupe-group identity of one request document."""
    req = parse_request(doc)
    if isinstance(req, ExperimentRequest):
        return req.work_key()
    return ("launch", req.benchmark, req.global_size, req.local_size,
            req.coalesce, req.device)


def verify_replay(requests: List[dict], responses: List[dict],
                  expected: Optional[Dict[tuple, str]] = None) -> dict:
    """The exactly-once + determinism contract, checked.

    * every request got exactly one ok response, correlated by
      ``request_id`` (nothing dropped, nothing duplicated);
    * within each dedupe group, every response's CSV is byte-identical;
    * when ``expected`` maps group keys to reference CSVs (e.g. from a
      serial run), each group matches its reference byte-for-byte.
    """
    want = {doc["request_id"] for doc in requests}
    got: Dict[str, int] = {}
    failed = []
    for resp in responses:
        rid = resp.get("request_id")
        if rid is not None:
            got[rid] = got.get(rid, 0) + 1
        if not resp.get("ok"):
            failed.append(resp)
    groups: Dict[tuple, List[dict]] = {}
    for doc, resp in zip(requests, responses):
        if resp.get("ok"):
            groups.setdefault(_group_key(doc), []).append(resp)
    mismatched = []
    for key, members in groups.items():
        csvs = {m["csv"] for m in members}
        if len(csvs) != 1:
            mismatched.append({"group": list(map(str, key)),
                               "distinct_csvs": len(csvs)})
        elif expected is not None and key in expected:
            if next(iter(csvs)) != expected[key]:
                mismatched.append({"group": list(map(str, key)),
                                   "distinct_csvs": "!= serial reference"})
    dedupe_counts: Dict[str, int] = {}
    for resp in responses:
        label = resp.get("dedupe")
        if label:
            dedupe_counts[label] = dedupe_counts.get(label, 0) + 1
    report = {
        "requests": len(requests),
        "ok": len(responses) - len(failed),
        "failed": len(failed),
        "failures": failed[:10],
        "dropped": sorted(want - set(got)),
        "duplicated": sorted(r for r, n in got.items() if n > 1),
        "groups": len(groups),
        "mismatched_groups": mismatched,
        "dedupe": dedupe_counts,
    }
    report["passed"] = (
        not failed and not report["dropped"] and not report["duplicated"]
        and not mismatched
    )
    return report


def serial_csv(doc: dict) -> str:
    """What a one-shot serial CLI run returns for this request document.

    Experiments call :func:`~repro.harness.registry.run_experiment`
    directly; launches measure on a *fresh private* DUT — the equivalence
    oracle the soak test compares service responses against.
    """
    from ..harness.registry import run_experiment
    from ..harness.runner import cpu_dut, gpu_dut, measure_kernel
    from .protocol import known_benchmarks, launch_csv

    req = parse_request(doc)
    if isinstance(req, ExperimentRequest):
        return run_experiment(req.name, req.fast).to_csv()
    bench = known_benchmarks()[req.benchmark]
    gs = req.global_size or tuple(bench.default_global_sizes[0])
    dut = cpu_dut() if req.device == "cpu" else gpu_dut()
    m = measure_kernel(dut, bench, gs, req.local_size, coalesce=req.coalesce)
    return launch_csv(req, m)


def summarize_report(report: dict) -> str:
    dd = report["dedupe"]
    shared = dd.get("shared", 0) + dd.get("cached", 0)
    lines = [
        f"requests:  {report['requests']} "
        f"({report['ok']} ok, {report['failed']} failed)",
        f"delivery:  {len(report['dropped'])} dropped, "
        f"{len(report['duplicated'])} duplicated",
        f"dedupe:    {dd.get('leader', 0)} executed, {shared} shared "
        f"({shared / max(1, report['requests']):.0%} saved), "
        f"groups: {report['groups']}",
        f"identity:  {len(report['mismatched_groups'])} mismatched group(s)",
        f"verdict:   {'PASS' if report['passed'] else 'FAIL'}",
    ]
    for m in report["mismatched_groups"][:5]:
        lines.append(f"  mismatch: {m}")
    for f in report.get("failures", [])[:5]:
        lines.append(f"  failure: {f.get('error')}: {f.get('message')}")
    return "\n".join(lines)
