"""Workgroup-to-thread scheduling on the multicore CPU.

The OpenCL CPU runtime executes each workgroup as one task on a pool of
worker threads (one per logical core).  Dispatching a workgroup costs a
context switch (the paper's Section II-A: "Workload size per workgroup that
is too small makes the workgroup scheduling overhead more significant in
total execution time on CPUs since the thread context switching overhead
becomes larger").

`makespan` is an event-driven longest-processing-time simulation so that
heterogeneous workgroup costs (divergent kernels) are handled; the common
uniform case reduces to simple round arithmetic, which the property tests
check against.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Iterable, List, Optional, Sequence

from .spec import CPUSpec

__all__ = ["ScheduleResult", "WorkgroupScheduler", "default_local_size"]


def _largest_divisor_at_most(n: int, cap: int) -> int:
    """Largest divisor of ``n`` that is <= ``cap`` (>= 1)."""
    best = 1
    d = 1
    while d * d <= n:
        if n % d == 0:
            for cand in (d, n // d):
                if cand <= cap:
                    best = max(best, cand)
        d += 1
    return best


def default_local_size(
    global_size: Sequence[int],
    cap: int = 64,
    min_workgroups: Optional[int] = None,
) -> tuple:
    """The runtime's NULL-local-size policy.

    Mirrors the conservative behaviour the paper observes: the implementation
    picks a modest workgroup — the largest divisor of the dim-0 extent not
    exceeding ``cap`` — which for large NDRanges creates many workgroups, and
    therefore more scheduling overhead than a well-chosen explicit size
    (Figure 3: "performance achieved with NULL workgroup size is less than
    the peak performance").  For *small* NDRanges the cap is tightened so at
    least ``min_workgroups`` groups exist and every worker thread has work.
    """
    gs = tuple(int(g) for g in global_size)
    if min_workgroups:
        cap = max(1, min(cap, gs[0] // min_workgroups))
    return (_largest_divisor_at_most(gs[0], cap),) + (1,) * (len(gs) - 1)


@dataclasses.dataclass
class ScheduleResult:
    """Outcome of scheduling all workgroups of one kernel launch."""

    makespan_cycles: float
    threads_used: int
    rounds: int
    dispatch_cycles_total: float
    busy_cycles_total: float

    @property
    def scheduling_overhead_fraction(self) -> float:
        total = self.dispatch_cycles_total + self.busy_cycles_total
        return self.dispatch_cycles_total / total if total > 0 else 0.0


class WorkgroupScheduler:
    """Greedy scheduler of workgroups onto logical cores."""

    def __init__(self, spec: CPUSpec):
        self.spec = spec

    def thread_speed(self, threads: int) -> float:
        """Per-thread throughput factor under SMT sharing.

        Up to one thread per physical core runs at full speed; beyond that,
        SMT pairs share pipelines with a modest aggregate yield.
        """
        s = self.spec
        if threads <= s.physical_cores:
            return 1.0
        smt_yield = 1.25  # 2 SMT threads ~ 1.25x one thread's throughput
        return s.physical_cores * smt_yield / threads

    def makespan(
        self,
        num_workgroups: int,
        wg_cycles: float,
        *,
        max_threads: Optional[int] = None,
    ) -> ScheduleResult:
        """Uniform-cost fast path: all workgroups cost ``wg_cycles``."""
        s = self.spec
        threads = min(
            max_threads or s.logical_cores, s.logical_cores, max(1, num_workgroups)
        )
        speed = self.thread_speed(threads)
        per_wg = s.workgroup_dispatch_cycles + wg_cycles / speed
        rounds = math.ceil(num_workgroups / threads)
        return ScheduleResult(
            makespan_cycles=rounds * per_wg,
            threads_used=threads,
            rounds=rounds,
            dispatch_cycles_total=num_workgroups * s.workgroup_dispatch_cycles,
            busy_cycles_total=num_workgroups * wg_cycles / speed,
        )

    def makespan_pinned(
        self,
        wg_cycle_list: Iterable[float],
        placement: Sequence[int],
    ) -> ScheduleResult:
        """Makespan when every workgroup is pinned to a given logical core.

        Used by the ``cl_repro_workgroup_affinity`` extension: no stealing,
        each core serially executes exactly the workgroups pinned to it.
        """
        costs = list(wg_cycle_list)
        if len(costs) != len(placement):
            raise ValueError("placement length must match workgroup count")
        if not costs:
            return ScheduleResult(0.0, 0, 0, 0.0, 0.0)
        s = self.spec
        threads = len(set(placement))
        speed = self.thread_speed(threads)
        per_core: dict = {}
        busy = 0.0
        for core, c in zip(placement, costs):
            work = s.workgroup_dispatch_cycles + c / speed
            per_core[core] = per_core.get(core, 0.0) + work
            busy += c / speed
        return ScheduleResult(
            makespan_cycles=max(per_core.values()),
            threads_used=threads,
            rounds=math.ceil(len(costs) / threads),
            dispatch_cycles_total=len(costs) * s.workgroup_dispatch_cycles,
            busy_cycles_total=busy,
        )

    def makespan_hetero(
        self,
        wg_cycle_list: Iterable[float],
        *,
        max_threads: Optional[int] = None,
    ) -> ScheduleResult:
        """Event-driven simulation for per-workgroup costs."""
        costs = list(wg_cycle_list)
        if not costs:
            return ScheduleResult(0.0, 0, 0, 0.0, 0.0)
        s = self.spec
        threads = min(max_threads or s.logical_cores, s.logical_cores, len(costs))
        speed = self.thread_speed(threads)
        heap: List[float] = [0.0] * threads
        heapq.heapify(heap)
        busy = 0.0
        for c in costs:
            t = heapq.heappop(heap)
            work = s.workgroup_dispatch_cycles + c / speed
            busy += c / speed
            heapq.heappush(heap, t + work)
        return ScheduleResult(
            makespan_cycles=max(heap),
            threads_used=threads,
            rounds=math.ceil(len(costs) / threads),
            dispatch_cycles_total=len(costs) * s.workgroup_dispatch_cycles,
            busy_cycles_total=busy,
        )
