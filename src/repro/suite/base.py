"""Common protocol for the benchmark applications of Tables II and III.

Every benchmark provides:

* a **kernel factory** — IR for its OpenCL kernel, parameterized by the
  work-coalescing factor used in the Figure 1/2 experiments (``coalesce`` > 1
  folds that many logical workitems into one via an inner loop, exactly the
  transformation the paper describes in Section III-B1);
* **data generation** — realistic inputs sized from the Table II/III global
  work sizes;
* a **numpy reference** — the ground truth the functional tests check
  against;
* its **default NDRange configuration** from the paper's tables.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..kernelir.ast import Kernel

__all__ = ["Benchmark", "LaunchConfig", "scale_global_size"]


@dataclasses.dataclass(frozen=True)
class LaunchConfig:
    """One (global, local) NDRange configuration."""

    global_size: Tuple[int, ...]
    local_size: Optional[Tuple[int, ...]] = None

    @property
    def total_workitems(self) -> int:
        return int(np.prod(self.global_size))

    def pretty(self) -> str:
        g = " X ".join(str(x) for x in self.global_size)
        l = (
            "NULL"
            if self.local_size is None
            else " X ".join(str(x) for x in self.local_size)
        )
        return f"global={g} local={l}"


def scale_global_size(
    global_size: Sequence[int], coalesce: int
) -> Tuple[int, ...]:
    """Shrink dimension 0 by the coalescing factor (total work constant)."""
    gs = tuple(int(g) for g in global_size)
    if gs[0] % coalesce != 0:
        raise ValueError(
            f"global size {gs[0]} not divisible by coalesce factor {coalesce}"
        )
    return (gs[0] // coalesce,) + gs[1:]


class Benchmark(abc.ABC):
    """Abstract benchmark; see module docstring."""

    #: short name as used in the paper's tables
    name: str = "?"
    #: NDRange rank
    work_dim: int = 1
    #: Table II/III default global sizes (one entry per input set)
    default_global_sizes: Sequence[Tuple[int, ...]] = ()
    #: Table II/III default local size (None = the paper's NULL)
    default_local_size: Optional[Tuple[int, ...]] = None
    #: whether the kernel supports the coalescing transformation
    supports_coalescing: bool = True

    # -- to implement ---------------------------------------------------------
    @abc.abstractmethod
    def kernel(self, coalesce: int = 1) -> Kernel:
        """Build the kernel IR (with the given work-coalescing factor)."""

    @abc.abstractmethod
    def make_data(
        self, global_size: Sequence[int], rng: np.random.Generator
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """(buffers, scalars) for one launch at this NDRange."""

    @abc.abstractmethod
    def reference(
        self,
        buffers: Dict[str, np.ndarray],
        scalars: Dict[str, object],
        global_size: Sequence[int],
    ) -> Dict[str, np.ndarray]:
        """Expected contents of the output buffers after one launch."""

    # -- provided ------------------------------------------------------------
    def cache_token(self) -> Tuple:
        """Extra identity for harness-level caches.

        Subclasses whose kernel IR or generated data depend on constructor
        parameters not reflected in :attr:`name` (e.g. a tile size) must
        return those parameters here, or distinct instances would share
        cached plans.
        """
        return ()

    def scalars_for(self, coalesce: int) -> Dict[str, object]:
        """Extra scalar args the coalesced kernel variant needs."""
        return {"n_per": coalesce} if coalesce > 1 else {}

    def launch_configs(self) -> Tuple[LaunchConfig, ...]:
        return tuple(
            LaunchConfig(gs, self.default_local_size)
            for gs in self.default_global_sizes
        )

    def output_names(self, buffers, scalars, global_size) -> Tuple[str, ...]:
        """Buffers checked by the functional tests."""
        return tuple(self.reference(buffers, scalars, global_size).keys())

    def validate(
        self,
        global_size: Sequence[int],
        *,
        coalesce: int = 1,
        local_size: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
        rtol: float = 2e-4,
        atol: float = 1e-5,
    ) -> None:
        """Run functionally and assert against the numpy reference."""
        from ..kernelir.interp import Interpreter

        rng = rng or np.random.default_rng(0)
        gs = tuple(int(g) for g in global_size)
        buffers, scalars = self.make_data(gs, rng)
        scalars = {**scalars, **self.scalars_for(coalesce)}
        expected = self.reference(
            {k: v.copy() for k, v in buffers.items()}, scalars, gs
        )
        launch_gs = scale_global_size(gs, coalesce)
        k = self.kernel(coalesce)
        ls = local_size or self.default_local_size
        if ls is not None:
            ls = tuple(
                min(int(l), g) for l, g in zip(ls, launch_gs)
            )
            # shrink to a divisor if coalescing broke divisibility
            ls = tuple(_largest_divisor_at_most(g, l) for g, l in zip(launch_gs, ls))
        Interpreter().launch(k, launch_gs, ls, buffers=buffers, scalars=scalars)
        for name, exp in expected.items():
            got = buffers[name]
            np.testing.assert_allclose(
                got, exp, rtol=rtol, atol=atol,
                err_msg=f"{self.name}: buffer {name!r} mismatch",
            )

    def resolved_launch(
        self,
        global_size: Optional[Sequence[int]] = None,
        *,
        coalesce: int = 1,
        local_size: Optional[Sequence[int]] = None,
        kernel: Optional[Kernel] = None,
    ) -> Tuple[Kernel, Tuple[int, ...], Tuple[int, ...]]:
        """(kernel IR, launch global size, resolved local size) for a sweep
        point — the same resolution :meth:`validate`/:meth:`verify` apply
        (coalesce scaling, the NULL-local-size policy, divisor shrinking).

        Harness caches key on this resolved identity rather than on the raw
        sweep parameters, so e.g. an explicit local size that resolves to
        the NULL-policy choice shares one cache entry.

        ``kernel`` supplies an already-built IR for this ``coalesce``
        (:func:`repro.harness.runner.kernel_ir` keeps one cached) so sweep
        loops don't rebuild the AST per point.
        """
        gs = tuple(
            int(g) for g in (global_size or self.default_global_sizes[0])
        )
        launch_gs = scale_global_size(gs, coalesce)
        if kernel is None:
            kernel = self.kernel(coalesce)
        ls = local_size or self.default_local_size
        if ls is None:
            ls = tuple(_largest_divisor_at_most(g, 256) for g in launch_gs)
        else:
            ls = tuple(min(int(l), g) for l, g in zip(ls, launch_gs))
            ls = tuple(
                _largest_divisor_at_most(g, l) for g, l in zip(launch_gs, ls)
            )
        return kernel, launch_gs, ls

    def verify(
        self,
        global_size: Optional[Sequence[int]] = None,
        *,
        coalesce: int = 1,
        local_size: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
        data: Optional[Tuple[Dict[str, np.ndarray], Dict[str, object]]] = None,
        kernel: Optional[Kernel] = None,
    ):
        """Run the static kernel verifier at this benchmark's launch shape.

        Buffer sizes come from :meth:`make_data` and the flag map mirrors
        how the harness allocates buffers (``access="r"`` params become
        ``mem_flags.READ_ONLY``, ``"w"`` becomes ``WRITE_ONLY``).  Returns
        a :class:`repro.kernelir.verify.VerifyReport`.

        ``data`` supplies precomputed ``(buffers, scalars)`` so callers that
        already hold this launch's inputs (the harness keeps them cached)
        don't regenerate them just for the sizes; only shapes and scalar
        values are read.
        """
        from ..kernelir.analysis import LaunchContext
        from ..kernelir.verify import verify_launch

        gs = tuple(
            int(g) for g in (global_size or self.default_global_sizes[0])
        )
        if data is not None:
            buffers, scalars = data
        else:
            rng = rng or np.random.default_rng(0)
            buffers, scalars = self.make_data(gs, rng)
        scalars = {**scalars, **self.scalars_for(coalesce)}
        kernel, launch_gs, ls = self.resolved_launch(
            gs, coalesce=coalesce, local_size=local_size, kernel=kernel
        )
        ctx = LaunchContext(
            launch_gs, ls,
            scalars={k: float(v) for k, v in scalars.items()},
        )
        return verify_launch(
            kernel,
            ctx,
            buffer_sizes={k: int(v.shape[0]) for k, v in buffers.items()},
            buffer_flags={p.name: p.access for p in kernel.buffer_params},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Benchmark {self.name}>"


def _largest_divisor_at_most(n: int, cap: int) -> int:
    best = 1
    d = 1
    while d * d <= n:
        if n % d == 0:
            for cand in (d, n // d):
                if cand <= cap:
                    best = max(best, cand)
        d += 1
    return best
