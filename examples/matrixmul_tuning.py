#!/usr/bin/env python
"""Matrix-multiply tuning walkthrough: naive vs blocked, tile sweep, CPU vs
GPU crossover.

Reproduces the Section III-B2 narrative interactively: workgroup size selects
the ``__local`` tile, the optimal tile differs between devices, and tiny
workgroups are much worse on the GPU than on the CPU.

Run:  python examples/matrixmul_tuning.py
"""

import numpy as np

from repro.harness.runner import cpu_dut, gpu_dut, make_buffers, measure_kernel
from repro.kernelir.interp import Interpreter
from repro.suite import MatrixMulBenchmark, MatrixMulNaiveBenchmark


def correctness_check():
    """Blocked and naive kernels agree with numpy on a small problem."""
    gs = (32, 16)
    blocked = MatrixMulBenchmark(block=4)
    blocked.validate(gs)
    naive = MatrixMulNaiveBenchmark()
    naive.validate(gs, local_size=(4, 4))
    print("  blocked and naive kernels verified against numpy")


def naive_vs_blocked(gs=(800, 1600)):
    cpu = cpu_dut()
    naive = MatrixMulNaiveBenchmark()
    blocked = MatrixMulBenchmark(block=16)
    mn = measure_kernel(cpu, naive, gs, (16, 16))
    mb = measure_kernel(cpu, blocked, gs, (16, 16))
    print(f"  naive  : {mn.mean_ns / 1e6:9.2f} virtual ms")
    print(f"  blocked: {mb.mean_ns / 1e6:9.2f} virtual ms "
          f"({mn.mean_ns / mb.mean_ns:.2f}x)")


def tile_sweep(gs=(800, 1600)):
    print("  tile     CPU (ms)    GPU (ms)")
    cpu, gpu = cpu_dut(), gpu_dut()
    rows = []
    for block in (1, 2, 4, 8, 16):
        bench = MatrixMulBenchmark(block=block)
        tc = measure_kernel(cpu, bench, gs, (block, block)).mean_ns / 1e6
        tg = measure_kernel(gpu, bench, gs, (block, block)).mean_ns / 1e6
        rows.append((block, tc, tg))
        print(f"  {block:2d}x{block:<2d} {tc:10.2f}  {tg:10.2f}")
    best_cpu = min(rows, key=lambda r: r[1])[0]
    best_gpu = min(rows, key=lambda r: r[2])[0]
    print(f"  optimal tile: CPU {best_cpu}x{best_cpu}, GPU {best_gpu}x{best_gpu} "
          f"(paper: CPU 8x8, GPU 16x16 for inputs 1-2)")


def device_crossover():
    """Small problems favour the CPU (launch/transfer overheads); large ones
    the GPU (raw flops)."""
    print("  size          CPU (ms)    GPU (ms)   winner")
    cpu, gpu = cpu_dut(), gpu_dut()
    for gs in ((64, 64), (160, 160), (800, 1600), (1600, 3200)):
        bench = MatrixMulBenchmark(block=16)
        if gs[0] % 16 or gs[1] % 16:
            continue
        tc = measure_kernel(cpu, bench, gs, (16, 16)).mean_ns / 1e6
        tg = measure_kernel(gpu, bench, gs, (16, 16)).mean_ns / 1e6
        who = "CPU" if tc < tg else "GPU"
        print(f"  {str(gs):14s}{tc:9.3f}  {tg:10.3f}   {who}")


def main():
    print("== correctness ==")
    correctness_check()
    print("\n== naive vs blocked (CPU, input 1) ==")
    naive_vs_blocked()
    print("\n== workgroup/tile sweep (Figure 3's Matrixmul columns) ==")
    tile_sweep()
    print("\n== CPU/GPU crossover ==")
    device_crossover()


if __name__ == "__main__":
    main()
