"""Tests for the wall-clock bench harness and the parallel runner."""

import json

import pytest

from repro.harness import bench as bench_mod
from repro.harness.registry import run_many


def _quiet(*args, **kwargs):
    pass


class TestRunBench:
    def test_run_structure_and_speedup_fields(self):
        run = bench_mod.run_bench(
            "quick", ["table1", "fig11"], microbench=False, log=_quiet
        )
        assert run["mode"] == "quick"
        assert set(run["experiments"]) == {"table1", "fig11"}
        assert run["total_seconds"] > 0
        assert run["uncached_total_seconds"] > 0
        assert run["speedup"] > 0
        assert "cpu.kernel_cost" in run["cache_stats"]

    def test_no_speedup_skips_reference_run(self):
        run = bench_mod.run_bench(
            "quick", ["table1"], measure_speedup=False, microbench=False,
            log=_quiet,
        )
        assert "uncached_total_seconds" not in run
        assert "speedup" not in run

    def test_workers_and_queue_are_recorded(self):
        run = bench_mod.run_bench(
            "quick", ["table1"], measure_speedup=False, microbench=False,
            workers=2, queue="ooo", log=_quiet,
        )
        assert run["workers"] == 2
        assert run["queue"] == "ooo"
        # may round to 0.0 when in-process caches are already warm
        assert run["total_seconds"] >= 0
        assert "table1" in run["experiments"]
        assert "scheduler" in run

    def test_unknown_queue_engine_rejected(self):
        with pytest.raises(ValueError):
            bench_mod.run_bench("quick", ["table1"], queue="bogus",
                                log=_quiet)

    def test_verify_cache_hit_rate_regression_gate(self):
        """Repeated sweep points must be real verify-cache hits.

        BENCH_3 recorded a 0.36 hit rate because the tally's per-raw-key
        memo bypassed the report cache instead of consulting it; the
        full-suite rate must stay above 0.7 now that repeats count as
        hits.  fig3+fig4 sweep the same kernels at repeated shapes, so
        even this subset must show a healthy rate (the full 19-experiment
        suite reaches > 0.7 through cross-experiment reuse — see the
        committed BENCH_4.json; with the old memo bug this subset sat
        near 0.2).
        """
        run = bench_mod.run_bench(
            "full", ["fig3", "fig4"], measure_speedup=False,
            microbench=False, log=_quiet,
        )
        verify = run["cache_stats"].get("harness.verify")
        assert verify is not None
        assert verify["hits"] + verify["misses"] > 0
        assert verify["hit_rate"] > 0.5, verify


class TestBaseline:
    def _run(self, mode="quick", total=1.0):
        return {"mode": mode, "experiments": {}, "total_seconds": total,
                "cache_stats": {}}

    def test_merge_and_load_roundtrip(self, tmp_path):
        doc = bench_mod.merge_run(None, self._run("quick", 1.5))
        doc = bench_mod.merge_run(doc, self._run("full", 9.0))
        assert set(doc["runs"]) == {"quick", "full"}
        p = tmp_path / "bench.json"
        p.write_text(json.dumps(doc))
        loaded = bench_mod.load_baseline(p)
        assert loaded["runs"]["full"]["total_seconds"] == 9.0

    def test_load_rejects_unknown_schema(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": 99, "runs": {}}))
        with pytest.raises(ValueError):
            bench_mod.load_baseline(p)

    def test_compare_within_threshold_passes(self):
        base = bench_mod.merge_run(None, self._run(total=1.0))
        assert bench_mod.compare(self._run(total=1.2), base,
                                 threshold=0.30, log=_quiet)

    def test_compare_regression_fails(self):
        base = bench_mod.merge_run(None, self._run(total=1.0))
        assert not bench_mod.compare(self._run(total=1.4), base,
                                     threshold=0.30, log=_quiet)

    def test_compare_missing_mode_skips(self):
        base = bench_mod.merge_run(None, self._run("full", 1.0))
        assert bench_mod.compare(self._run("quick", 100.0), base,
                                 threshold=0.30, log=_quiet)


class TestParallelRunner:
    def test_jobs_matches_serial(self):
        names = ["table1", "fig11"]
        serial = run_many(names, fast=True, jobs=1)
        parallel = run_many(names, fast=True, jobs=2)
        assert [r.experiment_id for r in parallel] == \
               [r.experiment_id for r in serial]
        assert [r.to_csv() for r in parallel] == \
               [r.to_csv() for r in serial]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_many(["nope"], fast=True)
