"""Unit and property tests for the IR scalar type system."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernelir.types import (
    ALL_TYPES,
    BOOL,
    F32,
    F64,
    I32,
    I64,
    U8,
    U32,
    common_type,
    dtype_of_value,
    from_numpy,
    promote,
)


class TestBasics:
    def test_itemsize(self):
        assert F32.itemsize == 4
        assert F64.itemsize == 8
        assert I32.itemsize == 4
        assert U8.itemsize == 1

    def test_predicates(self):
        assert F32.is_float and not F32.is_integer
        assert I32.is_integer and not I32.is_float
        assert BOOL.is_bool and not BOOL.is_integer

    def test_str(self):
        assert str(F32) == "float"
        assert str(I32) == "int"

    def test_from_numpy_roundtrip(self):
        for t in ALL_TYPES:
            assert from_numpy(t.np_dtype) is t

    def test_from_numpy_rejects_unsupported(self):
        with pytest.raises(TypeError):
            from_numpy(np.dtype("complex64"))


class TestPromotion:
    def test_float_dominates_int(self):
        assert promote(F32, I64) is F32
        assert promote(I64, F32) is F32

    def test_f64_dominates_f32(self):
        assert promote(F32, F64) is F64

    def test_int_rank(self):
        assert promote(I32, I64) is I64
        assert promote(U8, I32) is I32

    def test_identity(self):
        for t in ALL_TYPES:
            assert promote(t, t) is t

    @given(st.sampled_from(ALL_TYPES), st.sampled_from(ALL_TYPES))
    def test_commutative_result_type(self, a, b):
        # promotion is symmetric up to equal rank ties
        ra, rb = promote(a, b), promote(b, a)
        assert (ra.is_float, ra.rank >= min(a.rank, b.rank)) == (
            rb.is_float,
            rb.rank >= min(a.rank, b.rank),
        )

    @given(
        st.sampled_from(ALL_TYPES),
        st.sampled_from(ALL_TYPES),
        st.sampled_from(ALL_TYPES),
    )
    def test_associative(self, a, b, c):
        assert promote(promote(a, b), c) is promote(a, promote(b, c))

    @given(st.sampled_from(ALL_TYPES), st.sampled_from(ALL_TYPES))
    def test_float_closure(self, a, b):
        if a.is_float or b.is_float:
            assert promote(a, b).is_float

    def test_common_type(self):
        assert common_type(I32, I64, F32) is F32
        assert common_type(I32) is I32
        with pytest.raises(ValueError):
            common_type()


class TestInference:
    def test_python_scalars(self):
        assert dtype_of_value(True) is BOOL
        assert dtype_of_value(3) is I64
        assert dtype_of_value(3.5) is F64

    def test_rejects_other(self):
        with pytest.raises(TypeError):
            dtype_of_value("x")
