"""Search strategies against a synthetic oracle (no simulator runs)."""

import pytest

from repro.tune.space import KnobPoint, KnobSpace
from repro.tune.strategies import STRATEGIES


class FakeOracle:
    """Scores points by a known convex-ish function; counts evaluations."""

    def __init__(self, rungs=((4096,), (16384,))):
        self.rungs = list(rungs)
        self.calls = 0

    def evaluate(self, points, *, fidelity=-1):
        self.calls += len(points)
        out = []
        for p in points:
            ls = 0 if p.local_size is None else p.local_size[0]
            # optimum at local=128, coalesce=4
            score = abs(ls - 128) + 10 * abs(p.coalesce - 4)
            out.append({"value": float(score), "units": "ns",
                        "score": float(score)})
        return out


def _space():
    return KnobSpace(
        local_sizes=(None, (32,), (64,), (128,), (256,)),
        coalesce_factors=(1, 2, 4, 8),
    )


DEFAULT = KnobPoint(local_size=None, coalesce=1)


# shalving is exempt: halving may cull the default before the final rung
# (the driver re-measures the default at full fidelity regardless)
@pytest.mark.parametrize("name", ["grid", "random", "hillclimb"])
def test_every_strategy_visits_the_default(name):
    oracle = FakeOracle()
    results = STRATEGIES[name](_space(), oracle, DEFAULT, None, seed=0)
    assert DEFAULT in dict(results)


@pytest.mark.parametrize("name", ["grid", "random", "hillclimb"])
def test_budget_caps_evaluations(name):
    oracle = FakeOracle()
    results = STRATEGIES[name](_space(), oracle, DEFAULT, 5, seed=0)
    assert len(results) <= 5


def test_grid_is_exhaustive_without_budget():
    oracle = FakeOracle()
    results = STRATEGIES["grid"](_space(), oracle, DEFAULT, None, seed=0)
    assert len(results) == _space().size()  # the default is in the space


def test_grid_finds_the_optimum():
    results = STRATEGIES["grid"](_space(), FakeOracle(), DEFAULT, None, 0)
    best, res = min(results, key=lambda pr: pr[1]["score"])
    assert best == KnobPoint(local_size=(128,), coalesce=4)
    assert res["score"] == 0.0


def test_hillclimb_descends_to_the_optimum():
    # the fake objective is unimodal along each axis, so greedy single-knob
    # moves from the default must reach the global optimum
    results = STRATEGIES["hillclimb"](
        _space(), FakeOracle(), DEFAULT, None, 0
    )
    best = min(results, key=lambda pr: pr[1]["score"])[0]
    assert best == KnobPoint(local_size=(128,), coalesce=4)


def test_random_is_seed_deterministic():
    a = STRATEGIES["random"](_space(), FakeOracle(), DEFAULT, 6, seed=7)
    b = STRATEGIES["random"](_space(), FakeOracle(), DEFAULT, 6, seed=7)
    c = STRATEGIES["random"](_space(), FakeOracle(), DEFAULT, 6, seed=8)
    assert [p for p, _ in a] == [p for p, _ in b]
    assert [p for p, _ in a] != [p for p, _ in c]


def test_shalving_halves_survivors_per_rung():
    oracle = FakeOracle(rungs=[(1024,), (2048,), (16384,)])
    results = STRATEGIES["shalving"](_space(), oracle, DEFAULT, None, 0)
    n = _space().size()  # the default dedupes into the space
    # two halving rungs before the full-size rung
    expected_final = max(1, (max(1, (n + 1) // 2) + 1) // 2)
    assert len(results) == expected_final
    # the known optimum survives every rung
    assert KnobPoint(local_size=(128,), coalesce=4) in dict(results)


def test_neighbors_move_one_knob_at_a_time():
    space = _space()
    point = KnobPoint(local_size=(64,), coalesce=2)
    for n in space.neighbors(point):
        changed = sum(
            1 for f in ("local_size", "coalesce", "affinity", "transfer_api")
            if getattr(n, f) != getattr(point, f)
        )
        assert changed == 1
