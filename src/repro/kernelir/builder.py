"""Fluent builder for kernel IR.

Benchmark kernels are written against this builder so they read close to the
OpenCL C they reproduce::

    kb = KernelBuilder("square")
    a = kb.buffer("input", F32, access="r")
    out = kb.buffer("output", F32, access="w")
    gid = kb.global_id(0)
    x = kb.let("x", a[gid])
    out[gid] = x * x          # via kb.store / BufferHandle.__setitem__
    kernel = kb.finish()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Union

from . import ast as ir
from .types import DType, F32, I32, I64

__all__ = ["KernelBuilder", "BufferHandle", "LocalHandle"]


class BufferHandle:
    """Indexable proxy for a ``__global`` buffer parameter."""

    def __init__(self, builder: "KernelBuilder", param: ir.BufferParam):
        self._b = builder
        self.param = param

    @property
    def name(self) -> str:
        return self.param.name

    @property
    def dtype(self) -> DType:
        return self.param.dtype

    def __getitem__(self, index) -> ir.Load:
        return ir.Load(self.param.name, ir.as_expr(index), self.param.dtype)

    def __setitem__(self, index, value) -> None:
        self._b.emit(ir.Store(self.param.name, ir.as_expr(index), ir.as_expr(value)))

    def atomic_add(self, index, value) -> None:
        self._b.emit(ir.AtomicAdd(self.param.name, ir.as_expr(index), ir.as_expr(value)))


class LocalHandle:
    """Indexable proxy for a ``__local`` array."""

    def __init__(self, builder: "KernelBuilder", decl: ir.LocalArray):
        self._b = builder
        self.decl = decl

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def dtype(self) -> DType:
        return self.decl.dtype

    def __getitem__(self, index) -> ir.LoadLocal:
        return ir.LoadLocal(self.decl.name, ir.as_expr(index), self.decl.dtype)

    def __setitem__(self, index, value) -> None:
        self._b.emit(ir.StoreLocal(self.decl.name, ir.as_expr(index), ir.as_expr(value)))

    def atomic_add(self, index, value) -> None:
        self._b.emit(
            ir.AtomicAddLocal(self.decl.name, ir.as_expr(index), ir.as_expr(value))
        )


class KernelBuilder:
    """Builds a :class:`repro.kernelir.ast.Kernel` statement by statement."""

    def __init__(self, name: str, work_dim: int = 1):
        self.name = name
        self.work_dim = work_dim
        self._params: List[Union[ir.BufferParam, ir.ScalarParam]] = []
        self._locals: List[ir.LocalArray] = []
        self._body: List[ir.Stmt] = []
        self._stack: List[List[ir.Stmt]] = [self._body]
        self._tmp = 0
        self._finished = False
        self._suppressions: List[str] = []

    # -- signature --------------------------------------------------------
    def buffer(self, name: str, dtype: DType = F32, access: str = "rw") -> BufferHandle:
        """Declare a ``__global`` buffer parameter."""
        p = ir.BufferParam(name, dtype, access)
        self._params.append(p)
        return BufferHandle(self, p)

    def scalar(self, name: str, dtype: DType = I32) -> ir.Var:
        """Declare a scalar (by-value) parameter; returns a usable expression."""
        p = ir.ScalarParam(name, dtype)
        self._params.append(p)
        return ir.Var(name, dtype)

    def local_array(self, name: str, size: int, dtype: DType = F32) -> LocalHandle:
        """Declare a per-workgroup ``__local`` array."""
        a = ir.LocalArray(name, dtype, int(size))
        self._locals.append(a)
        return LocalHandle(self, a)

    # -- NDRange queries ---------------------------------------------------
    def global_id(self, dim: int = 0) -> ir.GlobalId:
        return ir.GlobalId(dim)

    def local_id(self, dim: int = 0) -> ir.LocalId:
        return ir.LocalId(dim)

    def group_id(self, dim: int = 0) -> ir.GroupId:
        return ir.GroupId(dim)

    def global_size(self, dim: int = 0) -> ir.GlobalSize:
        return ir.GlobalSize(dim)

    def local_size(self, dim: int = 0) -> ir.LocalSize:
        return ir.LocalSize(dim)

    def num_groups(self, dim: int = 0) -> ir.NumGroups:
        return ir.NumGroups(dim)

    # -- statements ---------------------------------------------------------
    def emit(self, stmt: ir.Stmt) -> None:
        if self._finished:
            raise RuntimeError("kernel already finished")
        self._stack[-1].append(stmt)

    def let(self, name: str, value) -> ir.Var:
        """Assign a named per-workitem variable and return a reference."""
        value = ir.as_expr(value)
        self.emit(ir.Assign(name, value))
        return ir.Var(name, value.dtype)

    def tmp(self, value) -> ir.Var:
        """Assign an auto-named temporary."""
        self._tmp += 1
        return self.let(f"_t{self._tmp}", value)

    def store(self, buf: BufferHandle, index, value) -> None:
        buf[index] = value

    def barrier(self) -> None:
        self.emit(ir.Barrier())

    # -- structured control flow -------------------------------------------
    @contextlib.contextmanager
    def loop(self, var: str, start, stop, step=1) -> Iterator[ir.Var]:
        """``for var in [start, stop) step step`` as a context manager."""
        body: List[ir.Stmt] = []
        stmt = ir.For(var, ir.as_expr(start), ir.as_expr(stop), ir.as_expr(step), body)
        self.emit(stmt)
        self._stack.append(body)
        try:
            yield ir.Var(var, I64)
        finally:
            self._stack.pop()

    @contextlib.contextmanager
    def if_(self, cond) -> Iterator[None]:
        body: List[ir.Stmt] = []
        stmt = ir.If(ir.as_expr(cond), body, [])
        self.emit(stmt)
        self._stack.append(body)
        try:
            yield
        finally:
            self._stack.pop()

    @contextlib.contextmanager
    def else_(self) -> Iterator[None]:
        """Open the else-branch of the most recently emitted ``If``."""
        scope = self._stack[-1]
        if not scope or not isinstance(scope[-1], ir.If):
            raise RuntimeError("else_() must directly follow an if_() block")
        stmt = scope[-1]
        self._stack.append(stmt.else_body)
        try:
            yield
        finally:
            self._stack.pop()

    # -- intrinsics ----------------------------------------------------------
    @staticmethod
    def call(fn: str, *args) -> ir.Call:
        return ir.Call(fn, tuple(ir.as_expr(a) for a in args))

    @staticmethod
    def exp(x) -> ir.Call:
        return ir.Call("exp", (ir.as_expr(x),))

    @staticmethod
    def log(x) -> ir.Call:
        return ir.Call("log", (ir.as_expr(x),))

    @staticmethod
    def sqrt(x) -> ir.Call:
        return ir.Call("sqrt", (ir.as_expr(x),))

    @staticmethod
    def rsqrt(x) -> ir.Call:
        return ir.Call("rsqrt", (ir.as_expr(x),))

    @staticmethod
    def fabs(x) -> ir.Call:
        return ir.Call("fabs", (ir.as_expr(x),))

    @staticmethod
    def sin(x) -> ir.Call:
        return ir.Call("sin", (ir.as_expr(x),))

    @staticmethod
    def cos(x) -> ir.Call:
        return ir.Call("cos", (ir.as_expr(x),))

    @staticmethod
    def erf(x) -> ir.Call:
        return ir.Call("erf", (ir.as_expr(x),))

    @staticmethod
    def floor(x) -> ir.Call:
        return ir.Call("floor", (ir.as_expr(x),))

    @staticmethod
    def pow(x, y) -> ir.Call:
        return ir.Call("pow", (ir.as_expr(x), ir.as_expr(y)))

    @staticmethod
    def mad(a, b, c) -> ir.Call:
        return ir.Call("mad", (ir.as_expr(a), ir.as_expr(b), ir.as_expr(c)))

    @staticmethod
    def select(cond, if_true, if_false) -> ir.Select:
        return ir.Select(ir.as_expr(cond), ir.as_expr(if_true), ir.as_expr(if_false))

    @staticmethod
    def min(a, b) -> ir.BinOp:
        return ir.BinOp("min", ir.as_expr(a), ir.as_expr(b))

    @staticmethod
    def max(a, b) -> ir.BinOp:
        return ir.BinOp("max", ir.as_expr(a), ir.as_expr(b))

    @staticmethod
    def cast(x, dtype: DType) -> ir.Cast:
        return ir.Cast(ir.as_expr(x), dtype)

    @staticmethod
    def f32(x) -> ir.Expr:
        """Float32 literal or cast."""
        if isinstance(x, (int, float)) and not isinstance(x, bool):
            return ir.Const(float(x), F32)
        return ir.Cast(ir.as_expr(x), F32)

    @staticmethod
    def i32(x) -> ir.Expr:
        if isinstance(x, int) and not isinstance(x, bool):
            return ir.Const(x, I32)
        return ir.Cast(ir.as_expr(x), I32)

    # -- verifier suppressions -------------------------------------------------
    def suppress(self, *rule_ids: str) -> "KernelBuilder":
        """Silence verifier rules (e.g. ``"R-RACE-GLOBAL"``) for this kernel.

        Use sparingly, for findings that are intentional (a benchmark that
        *measures* contended atomics, say).  See ``docs/LINT.md``.
        """
        self._suppressions.extend(rule_ids)
        return self

    # -- completion -----------------------------------------------------------
    def finish(self) -> ir.Kernel:
        """Validate and return the finished kernel."""
        if len(self._stack) != 1:
            raise RuntimeError("unclosed loop()/if_() scope at finish()")
        self._finished = True
        return ir.Kernel(
            name=self.name,
            params=list(self._params),
            local_arrays=list(self._locals),
            body=list(self._body),
            work_dim=self.work_dim,
            suppressions=tuple(dict.fromkeys(self._suppressions)),
        )
