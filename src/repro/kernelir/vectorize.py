"""The two vectorization strategies the paper contrasts (Sections II-E, III-F).

**OpenCL implicit vectorization** (`OpenCLVectorizer`): the kernel compiler
packs W *adjacent workitems* into one SIMD instruction stream.  Lanes belong
to different workitems, which are independent by the SIMT contract, so *no
dependence analysis is required* — this is the paper's explanation for why
the OpenCL compiler vectorizes kernels whose OpenMP ports do not vectorize
(Figure 11).  What can still defeat it, mirroring the Intel OpenCL SDK of the
era: barriers combined with divergent control flow, atomics, and
non-affine (gather) addressing making packing unprofitable.

**Loop auto-vectorization** (`LoopVectorizer`): the classic compiler
transform the Intel C compiler applies to OpenMP loops.  Its legality rules
come straight from the paper and [Intel's auto-vectorization guide]:
the loop must be countable with single entry/single exit and straight-line
control flow; memory access must be contiguous (unit stride); and there must
be no data dependence that vectorization's reordering would violate.  We also
implement the paper's observed *fragility*: a true dependence chain inside
the loop body (Figure 11's back-to-back dependent FMULs) makes the compiler
give up even when cross-iteration independence would permit vectorization.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from . import ast as ir
from .analysis import AffineIndex, LaunchContext

__all__ = [
    "VectorizationReport",
    "OpenCLVectorizer",
    "LoopVectorizer",
    "dependence_chain_length",
]


@dataclasses.dataclass
class VectorizationReport:
    """Outcome of a vectorization attempt."""

    vectorized: bool
    width: int
    reasons: List[str] = dataclasses.field(default_factory=list)
    #: loop-trip-weighted memory operations by vector-lane addressing class
    gather_ops: float = 0.0
    contiguous_ops: float = 0.0
    strided_ops: float = 0.0

    @property
    def effective_width(self) -> float:
        """Speedup factor the timing model applies to the compute stream.

        Gathers are emulated with scalar element inserts on SSE-class
        hardware, so they claw back most of the vector win on memory ops;
        the blended effective width reflects that.
        """
        if not self.vectorized:
            return 1.0
        mem = self.gather_ops + self.contiguous_ops + self.strided_ops
        if mem == 0:
            return float(self.width)
        # contiguous: full width; strided: half win; gather: no win.
        good = self.contiguous_ops + 0.5 * self.strided_ops
        mem_factor = (good / mem) if mem else 1.0
        return 1.0 + (self.width - 1) * max(0.1, mem_factor)

    def explain(self) -> str:
        if self.vectorized:
            return f"vectorized (width {self.width})"
        return "not vectorized: " + "; ".join(self.reasons)


def _launch_facts(kernel: ir.Kernel, ctx: LaunchContext):
    """The shared dataflow bundle for this launch (cached per shape).

    Both vectorizers read their control-divergence verdict and the static
    global-access scan from :func:`repro.kernelir.dataflow.analyze_launch`
    instead of re-walking the kernel — same facts the verifier and the
    scheduler's chunk-safety proofs consume.
    """
    from .dataflow import analyze_launch

    return analyze_launch(kernel, ctx)


#: builtins with no vector (SVML-era) implementation: a call forces the
#: packet apart, so the kernel compiler falls back to scalar codegen.  This
#: is what keeps the paper's erf-based Blackscholes scalar — and therefore
#: insensitive to workgroup size on the CPU (Figure 4).
UNVECTORIZABLE_CALLS = frozenset({"erf"})


class OpenCLVectorizer:
    """Implicit cross-workitem vectorization (Intel OpenCL SDK style).

    Parameters
    ----------
    simd_width:
        Hardware lanes for the kernel's dominant float width (4 for SSE 4.2
    and single precision, as in the paper's Table I).
    """

    def __init__(self, simd_width: int = 4):
        self.simd_width = int(simd_width)

    def vectorize(
        self,
        kernel: ir.Kernel,
        ctx: LaunchContext,
        accesses=None,
    ) -> VectorizationReport:
        """``accesses`` (optional): loop-trip-weighted ``AccessInfo`` records
        from :func:`analyze_kernel`; when given, the gather/contiguous blend
        is weighted by dynamic access counts instead of static sites."""
        reasons: List[str] = []
        # Lanes are separate workitems — dependences between instructions of
        # one workitem do NOT block packing (the Figure 11 point).
        if kernel.uses_atomics:
            reasons.append("kernel uses atomics")
        # the dataflow fixpoint is only needed for the divergence verdict
        # (barrier kernels) or the static access scan (no ``accesses``
        # given); barrier-free calls with dynamic access records — the
        # timing model's hot path — skip it entirely
        facts = None
        if kernel.uses_barrier:
            facts = _launch_facts(kernel, ctx)
            if facts.control_divergent:
                reasons.append("barrier under divergent control flow")
        scalar_calls = sorted(
            {
                e.fn
                for s in ir.walk_stmts(kernel.body)
                for root in ir.stmt_exprs(s)
                for e in ir.walk_exprs(root)
                if isinstance(e, ir.Call) and e.fn in UNVECTORIZABLE_CALLS
            }
        )
        if scalar_calls:
            reasons.append(
                f"calls scalar-only builtins: {', '.join(scalar_calls)}"
            )
        wg = ctx.workgroup_size
        if wg < self.simd_width:
            reasons.append(
                f"workgroup size {wg} smaller than SIMD width {self.simd_width}"
            )

        gather = contig = strided = 0.0
        if accesses is not None:
            for a in accesses:
                if a.is_local:
                    continue
                w = a.count_per_item
                if a.vector_stride is None:
                    gather += w
                elif abs(a.vector_stride) <= 1.0:
                    contig += w  # includes uniform (broadcast) accesses
                elif abs(a.vector_stride) <= 8.0:
                    strided += w
                else:
                    gather += w
        else:
            if facts is None:
                facts = _launch_facts(kernel, ctx)
            for _is_store, _buf, aff in facts.static_global_accesses:
                if aff is None:
                    gather += 1
                else:
                    vs = abs(aff.vector_stride)
                    if vs <= 1.0:
                        contig += 1  # includes uniform (broadcast) accesses
                    elif vs <= 8.0:
                        strided += 1
                    else:
                        # lanes land in unrelated cache lines: the codegen
                        # falls back to element inserts — a gather in all
                        # but name
                        gather += 1

        if reasons:
            return VectorizationReport(False, 1, reasons)
        return VectorizationReport(
            True,
            self.simd_width,
            [],
            gather_ops=gather,
            contiguous_ops=contig,
            strided_ops=strided,
        )


def dependence_chain_length(body, ctx: LaunchContext) -> int:
    """Longest chain of *truly dependent* floating-point operations in a
    single iteration of ``body`` (unit-latency, register dataflow only).

    This is the quantity the paper's Figure 11 example maximizes: six
    dependent FMULs on the same operands.
    """

    def expr_chain(e: ir.Expr, env: Dict[str, int]) -> int:
        if isinstance(e, ir.Var):
            return env.get(e.name, 0)
        base = max((expr_chain(c, env) for c in e.children()), default=0)
        if isinstance(e, ir.BinOp) and e.op in ir.ARITH_OPS and e.dtype.is_float:
            return base + 1
        if isinstance(e, ir.Call):
            return base + (2 if e.fn in ("mad", "fma") else 1)
        return base

    def walk(body, env: Dict[str, int]) -> int:
        longest = 0
        for s in body:
            if isinstance(s, ir.Assign):
                d = expr_chain(s.value, env)
                env[s.name] = d
                longest = max(longest, d)
            elif isinstance(s, (ir.Store, ir.StoreLocal)):
                longest = max(longest, expr_chain(s.value, env))
            elif isinstance(s, (ir.AtomicAdd, ir.AtomicAddLocal)):
                longest = max(longest, expr_chain(s.value, env) + 1)
            elif isinstance(s, ir.For):
                longest = max(longest, walk(s.body, env))
            elif isinstance(s, ir.If):
                e1, e2 = dict(env), dict(env)
                longest = max(longest, walk(s.then_body, e1), walk(s.else_body, e2))
                for k in set(e1) | set(e2):
                    env[k] = max(e1.get(k, 0), e2.get(k, 0))
        return longest

    return walk(body, {})


class LoopVectorizer:
    """Classic loop auto-vectorization with the paper's legality rules.

    The OpenMP runtime hands this the kernel body where ``get_global_id(0)``
    plays the role of the (parallel) loop induction variable; vectorizing the
    loop means packing W *consecutive iterations*, i.e. W consecutive values
    of gid0.
    """

    #: dependence chains at least this long trigger the fragility bail-out
    #: (Figure 11's inner body has a chain of 6).
    FRAGILITY_CHAIN = 4

    def __init__(self, simd_width: int = 4, fragile: bool = True):
        self.simd_width = int(simd_width)
        #: model the era-accurate compiler fragility; ablation A4 turns this
        #: off to show Figure 10's asymmetry disappearing.
        self.fragile = bool(fragile)

    def vectorize(self, kernel: ir.Kernel, ctx: LaunchContext) -> VectorizationReport:
        reasons: List[str] = []

        facts = _launch_facts(kernel, ctx)

        # Rule 1: single entry/single exit, straight-line control flow.
        if facts.control_divergent:
            reasons.append("control flow varies across iterations (not straight-line)")

        # OpenMP has no workgroups: local memory/barriers are not expressible.
        if kernel.uses_barrier or kernel.uses_local_memory:
            reasons.append("uses workgroup constructs with no loop equivalent")

        accesses = facts.static_global_accesses

        # Rule 2: contiguous (unit-stride) access.
        gather = contig = strided = 0
        for _is_store, _buf, aff in accesses:
            if aff is None:
                gather += 1
            else:
                vs = abs(aff.vector_stride)
                if vs <= 1.0:
                    contig += 1
                else:
                    strided += 1
        if gather:
            reasons.append("non-affine (indirect) memory access")
        if strided:
            reasons.append("noncontiguous memory access (non-unit stride)")

        # Rule 3: no cross-iteration data dependence.  Conservative test: a
        # buffer both read and written where the read and write indices have
        # different gid-coefficients or offsets may alias across iterations.
        written: Dict[str, List[Optional[AffineIndex]]] = {}
        read: Dict[str, List[Optional[AffineIndex]]] = {}
        for is_store, buf, aff in accesses:
            (written if is_store else read).setdefault(buf, []).append(aff)
        for buf in set(written) & set(read):
            for w in written[buf]:
                for r in read[buf]:
                    if w is None or r is None:
                        reasons.append(
                            f"possible loop-carried dependence on {buf!r} "
                            f"(unanalyzable subscript)"
                        )
                        break
                    diff = w - r
                    if diff.coeffs or diff.const != 0:
                        reasons.append(
                            f"loop-carried dependence on {buf!r} "
                            f"(write and read subscripts differ)"
                        )
                        break
                else:
                    continue
                break

        # Rule 4 (fragility): a true dependence chain inside the body makes
        # the era's compiler bail even when the loop is formally vectorizable.
        if self.fragile:
            chain = dependence_chain_length(kernel.body, ctx)
            if chain >= self.FRAGILITY_CHAIN:
                reasons.append(
                    f"true data dependence chain of length {chain} inside the "
                    f"loop body (compiler gives up reordering)"
                )

        if kernel.uses_atomics:
            reasons.append("atomic update in loop body")

        scalar_calls = sorted(
            {
                e.fn
                for s in ir.walk_stmts(kernel.body)
                for root in ir.stmt_exprs(s)
                for e in ir.walk_exprs(root)
                if isinstance(e, ir.Call) and e.fn in UNVECTORIZABLE_CALLS
            }
        )
        if scalar_calls:
            reasons.append(
                f"calls scalar-only math functions: {', '.join(scalar_calls)}"
            )

        # deduplicate, preserve order
        seen = set()
        reasons = [r for r in reasons if not (r in seen or seen.add(r))]

        if reasons:
            return VectorizationReport(False, 1, reasons)
        return VectorizationReport(
            True,
            self.simd_width,
            [],
            gather_ops=gather,
            contiguous_ops=contig,
            strided_ops=strided,
        )
