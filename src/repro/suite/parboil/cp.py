"""Parboil ``CP`` — Coulombic Potential (kernel ``cenergy``).

Table III: global 64 x 512, local 16 x 8.  Each workitem computes the
electrostatic potential at one lattice point of a 2-D slice by summing the
contribution of every atom (the classic direct-summation kernel).

The Figure 2 experiment folds 2 or 4 x-adjacent lattice points into one
workitem (``coalesce``), the same transformation the original CUDA kernel
calls "unrolling".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32
from ..base import Benchmark

__all__ = ["CPCenergyBenchmark", "build_cenergy_kernel"]

GRID_SPACING = 0.1


def build_cenergy_kernel(coalesce: int = 1) -> Kernel:
    kb = KernelBuilder("cenergy", work_dim=2)
    atomx = kb.buffer("atomx", F32, access="r")
    atomy = kb.buffer("atomy", F32, access="r")
    atomz2 = kb.buffer("atomz2", F32, access="r")  # z offsets squared
    atomq = kb.buffer("atomq", F32, access="r")
    energy = kb.buffer("energy", F32, access="w")
    natoms = kb.scalar("natoms", I32)
    spacing = kb.scalar("spacing", F32)
    width = kb.scalar("width", I32)  # full (uncoalesced) row width

    gid0 = kb.global_id(0)
    gid1 = kb.global_id(1)
    y = kb.let("y", spacing * kb.cast(gid1, F32))

    def point(xi):
        x = kb.let("x", spacing * kb.cast(xi, F32))
        e = kb.let("e", kb.f32(0.0))
        with kb.loop("n", 0, natoms) as n:
            dx = kb.let("dx", x - atomx[n])
            dy = kb.let("dy", y - atomy[n])
            r2 = kb.let("r2", dx * dx + dy * dy + atomz2[n])
            e = kb.let("e", kb.mad(atomq[n], kb.rsqrt(r2), e))
        energy[gid1 * width + xi] = e

    if coalesce == 1:
        point(gid0)
    else:
        n_per = kb.scalar("n_per", I32)
        with kb.loop("j", 0, n_per) as j:
            xi = kb.let("xi", gid0 * n_per + j)
            point(xi)
    return kb.finish()


class CPCenergyBenchmark(Benchmark):
    name = "CP: cenergy"
    work_dim = 2
    default_global_sizes = ((64, 512),)
    default_local_size = (16, 8)

    def __init__(self, natoms: int = 4000):
        self.natoms = natoms

    def kernel(self, coalesce: int = 1) -> Kernel:
        return build_cenergy_kernel(coalesce)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        w, h = int(global_size[0]), int(global_size[1])
        z = (rng.random(self.natoms, dtype=np.float32) * 2.0 - 1.0)
        return (
            {
                "atomx": (rng.random(self.natoms, dtype=np.float32) * w * GRID_SPACING),
                "atomy": (rng.random(self.natoms, dtype=np.float32) * h * GRID_SPACING),
                # store z^2 + softening so r2 never vanishes
                "atomz2": (z * z + 0.05).astype(np.float32),
                "atomq": (rng.random(self.natoms, dtype=np.float32) * 2.0 - 1.0),
                "energy": np.zeros(w * h, dtype=np.float32),
            },
            {
                "natoms": self.natoms,
                "spacing": GRID_SPACING,
                "width": w,
            },
        )

    def reference(self, buffers, scalars, global_size):
        w, h = int(global_size[0]), int(global_size[1])
        sp = float(scalars["spacing"])
        x = (np.arange(w, dtype=np.float64) * sp)[None, :, None]
        y = (np.arange(h, dtype=np.float64) * sp)[:, None, None]
        ax = buffers["atomx"].astype(np.float64)[None, None, :]
        ay = buffers["atomy"].astype(np.float64)[None, None, :]
        az2 = buffers["atomz2"].astype(np.float64)[None, None, :]
        q = buffers["atomq"].astype(np.float64)[None, None, :]
        r2 = (x - ax) ** 2 + (y - ay) ** 2 + az2
        e = (q / np.sqrt(r2)).sum(axis=2)
        return {"energy": e.astype(np.float32).ravel()}
