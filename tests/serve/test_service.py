"""The experiment service core (:mod:`repro.serve.service`).

Covers the four properties the service layer adds over the engine:
request validation (protocol), cross-tenant dedupe (one execution per
identity, leader/shared/cached labels), fair round-robin scheduling
(no tenant starves another), and admission control (bounded queues,
retry-after, clean shutdown).  Stubbed-execution services make the
scheduling tests deterministic; a final section runs real requests and
asserts byte-identity against serial execution.
"""

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    BackpressureError,
    ExperimentRequest,
    ExperimentService,
    RequestError,
    ServeConfig,
    ServiceClosedError,
    parse_request,
    reset_serve_stats,
    serve_stats,
)
from repro.serve.protocol import LaunchRequest, launch_csv


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_serve_stats()
    yield
    reset_serve_stats()


class GatedService(ExperimentService):
    """Execution replaced by a gate + recorder: scheduling tests only."""

    def __init__(self, config):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.executions = []
        self._exec_lock = threading.Lock()
        super().__init__(config, registry=MetricsRegistry())

    def _execute_request(self, req, session):
        self.started.set()
        assert self.gate.wait(timeout=30), "test gate never opened"
        with self._exec_lock:
            self.executions.append((req.tenant, req.name))
        return {"csv": f"csv-for-{req.name}\n", "notes": [], "title": req.name}


def _submit_async(svc, req):
    """Fire submit_request on a thread; returns (thread, box-of-result)."""
    box = {}

    def run():
        try:
            box["resp"] = svc.submit_request(req)
        except Exception as e:  # noqa: BLE001 - surfaced via box
            box["err"] = e

    t = threading.Thread(target=run, daemon=True)
    t.start()
    return t, box


def _wait_depth(svc, depth, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if svc.health()["queue_depth"] == depth:
            return
        time.sleep(0.005)
    raise AssertionError(
        f"queue depth never reached {depth} "
        f"(now {svc.health()['queue_depth']})"
    )


class TestProtocol:
    def test_rejects_bad_kind_and_tenant(self):
        with pytest.raises(RequestError, match="kind"):
            parse_request({"kind": "nope", "tenant": "a"})
        with pytest.raises(RequestError, match="tenant"):
            parse_request({"kind": "experiment", "tenant": "bad tenant!",
                           "name": "fig1"})
        with pytest.raises(RequestError, match="JSON object"):
            parse_request([1, 2])

    def test_unknown_names_list_known(self):
        with pytest.raises(RequestError, match="known:.*fig1"):
            parse_request({"kind": "experiment", "tenant": "a",
                           "name": "fig99"})
        with pytest.raises(RequestError, match="known:.*Square"):
            parse_request({"kind": "launch", "tenant": "a",
                           "benchmark": "NoSuchBench"})

    def test_launch_validation(self):
        req = parse_request({"kind": "launch", "tenant": "a",
                             "benchmark": "Square", "coalesce": 2,
                             "request_id": "r1"})
        assert isinstance(req, LaunchRequest)
        assert req.request_id == "r1"
        with pytest.raises(RequestError, match="divisible"):
            parse_request({"kind": "launch", "tenant": "a",
                           "benchmark": "Square", "global_size": [30],
                           "coalesce": 7})
        with pytest.raises(RequestError, match="global_size"):
            parse_request({"kind": "launch", "tenant": "a",
                           "benchmark": "Square", "global_size": [0]})
        with pytest.raises(RequestError, match="device"):
            parse_request({"kind": "launch", "tenant": "a",
                           "benchmark": "Square", "device": "tpu"})

    def test_work_key_excludes_tenant_and_request_id(self):
        a = ExperimentRequest(tenant="t1", name="fig1", request_id="x")
        b = ExperimentRequest(tenant="t2", name="fig1", request_id="y")
        assert a.work_key() == b.work_key()

    def test_launch_csv_shape(self):
        class M:
            mean_ns = 123.5
            invocations = 7
            total_virtual_ns = 864.5

        req = LaunchRequest(tenant="a", benchmark="Square")
        text = launch_csv(req, M())
        header, row, tail = text.split("\n")
        assert tail == ""
        assert header.startswith("benchmark,device,global_size")
        assert row == "Square,cpu,default,NULL,1,123.5,7,864.5"


class TestDedupe:
    def test_concurrent_identical_requests_execute_once(self):
        svc = GatedService(ServeConfig(workers=2))
        try:
            reqs = [ExperimentRequest(tenant=f"t{i}", name="same")
                    for i in range(8)]
            pending = [_submit_async(svc, r) for r in reqs]
            svc.started.wait(timeout=10)
            # all 8 are in (leader executing, followers parked on the job)
            deadline = time.monotonic() + 10
            while serve_stats()["requests"] < 8:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            svc.gate.set()
            for t, _ in pending:
                t.join(timeout=30)
            resps = [box["resp"] for _, box in pending]
            assert len(svc.executions) == 1
            labels = sorted(r["dedupe"] for r in resps)
            assert labels.count("leader") == 1
            assert labels.count("shared") == 7
            assert {r["csv"] for r in resps} == {"csv-for-same\n"}
            # a later identical request is served from the result cache
            again = svc.submit_request(
                ExperimentRequest(tenant="t9", name="same"))
            assert again["dedupe"] == "cached"
            assert again["csv"] == "csv-for-same\n"
            assert len(svc.executions) == 1
            s = serve_stats()
            assert s["executed"] == 1
            assert s["dedupe_leader"] == 1
            assert s["dedupe_shared"] == 7
            assert s["dedupe_cached"] == 1
        finally:
            svc.gate.set()
            svc.close()

    def test_distinct_requests_all_execute(self):
        svc = GatedService(ServeConfig(workers=4))
        svc.gate.set()
        try:
            names = [f"exp{i}" for i in range(5)]
            for n in names:
                svc.submit_request(ExperimentRequest(tenant="t0", name=n))
            assert sorted(n for _, n in svc.executions) == names
        finally:
            svc.close()


class TestFairness:
    def test_round_robin_interleaves_tenants(self):
        svc = GatedService(ServeConfig(workers=1))
        try:
            # occupy the single worker, then stack 3 jobs per tenant
            blocker = ExperimentRequest(tenant="z", name="blocker")
            pending = [_submit_async(svc, blocker)]
            assert svc.started.wait(timeout=10)
            for i in range(3):
                for tenant in ("alpha", "beta"):
                    pending.append(_submit_async(
                        svc,
                        ExperimentRequest(tenant=tenant, name=f"{tenant}{i}"),
                    ))
            _wait_depth(svc, 6)
            svc.gate.set()
            for t, _ in pending:
                t.join(timeout=30)
            tenants = [t for t, _ in svc.executions]
            assert tenants[0] == "z"
            # round-robin: the two backlogged tenants strictly alternate
            tail = tenants[1:]
            assert sorted(tail) == ["alpha"] * 3 + ["beta"] * 3
            for a, b in zip(tail, tail[1:]):
                assert a != b, f"tenant {a} ran twice in a row: {tenants}"
        finally:
            svc.gate.set()
            svc.close()


class TestAdmission:
    def test_tenant_queue_limit_rejects_with_retry_after(self):
        svc = GatedService(ServeConfig(workers=1, tenant_queue_limit=2,
                                       global_queue_limit=100))
        try:
            pending = [_submit_async(
                svc, ExperimentRequest(tenant="hog", name="blocker"))]
            assert svc.started.wait(timeout=10)
            for i in range(2):
                pending.append(_submit_async(
                    svc, ExperimentRequest(tenant="hog", name=f"q{i}")))
            _wait_depth(svc, 2)
            with pytest.raises(BackpressureError) as ei:
                svc.submit_request(
                    ExperimentRequest(tenant="hog", name="overflow"))
            assert ei.value.scope == "tenant"
            assert ei.value.retry_after_s > 0
            # another tenant is unaffected by the hog's full queue
            pending.append(_submit_async(
                svc, ExperimentRequest(tenant="quiet", name="fine")))
            _wait_depth(svc, 3)
            assert serve_stats()["rejected"] == 1
            svc.gate.set()
            for t, box in pending:
                t.join(timeout=30)
                assert "resp" in box
        finally:
            svc.gate.set()
            svc.close()

    def test_global_queue_limit(self):
        svc = GatedService(ServeConfig(workers=1, tenant_queue_limit=100,
                                       global_queue_limit=2))
        try:
            pending = [_submit_async(
                svc, ExperimentRequest(tenant="a", name="blocker"))]
            assert svc.started.wait(timeout=10)
            for tenant in ("b", "c"):
                pending.append(_submit_async(
                    svc, ExperimentRequest(tenant=tenant, name=tenant)))
            _wait_depth(svc, 2)
            with pytest.raises(BackpressureError) as ei:
                svc.submit_request(ExperimentRequest(tenant="d", name="d"))
            assert ei.value.scope == "global"
            svc.gate.set()
            for t, _ in pending:
                t.join(timeout=30)
        finally:
            svc.gate.set()
            svc.close()

    def test_close_drains_then_rejects(self):
        svc = GatedService(ServeConfig(workers=2))
        svc.gate.set()
        resp = svc.submit_request(ExperimentRequest(tenant="a", name="x"))
        assert resp["ok"]
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit_request(ExperimentRequest(tenant="a", name="y"))


class TestMetrics:
    def test_per_tenant_isolation(self):
        svc = GatedService(ServeConfig(workers=2))
        svc.gate.set()
        try:
            for _ in range(3):
                svc.submit_request(ExperimentRequest(tenant="tA", name="n1"))
            svc.submit_request(ExperimentRequest(tenant="tB", name="n2"))
            reg = svc.registry
            assert reg.counter("serve.tenant.tA.requests").value == 3
            assert reg.counter("serve.tenant.tB.requests").value == 1
            # tA's repeats were cache hits; tB executed fresh
            assert reg.counter("serve.tenant.tA.dedupe_hits").value == 2
            assert reg.counter("serve.tenant.tB.dedupe_hits").value == 0
            assert reg.histogram("serve.tenant.tA.latency_ms").count == 3
            assert reg.histogram("serve.tenant.tB.latency_ms").count == 1
        finally:
            svc.close()

    def test_snapshot_and_health_shape(self):
        svc = GatedService(ServeConfig(workers=1))
        svc.gate.set()
        try:
            svc.submit_request(ExperimentRequest(tenant="t", name="n"))
            h = svc.health()
            assert h["status"] == "ok"
            assert h["workers"] == 1
            assert h["tenants"] == 1
            assert h["stats"]["requests"] == 1
            snap = svc.metrics_snapshot()
            assert snap["schema"] == 1
            assert snap["serve"]["executed"] == 1
            assert "serve.requests" in snap["metrics"]["counters"]
            assert snap["metrics"]["gauges"]["serve.totals.requests"] == 1
        finally:
            svc.close()


class TestRealExecution:
    """Unstubbed requests: service responses match serial execution."""

    def test_launch_matches_serial(self):
        from repro.serve.loadgen import serial_csv

        doc = {"kind": "launch", "tenant": "real", "benchmark": "Square"}
        svc = ExperimentService(ServeConfig(workers=2),
                                registry=MetricsRegistry())
        try:
            resp = svc.submit(dict(doc))
            assert resp["ok"] and resp["dedupe"] == "leader"
            assert resp["csv"] == serial_csv(doc)
            assert resp["launch"]["invocations"] >= 1
            # identical re-submission from another tenant: cached, same bytes
            resp2 = svc.submit({**doc, "tenant": "other"})
            assert resp2["dedupe"] == "cached"
            assert resp2["csv"] == resp["csv"]
        finally:
            svc.close()

    def test_spelled_out_default_launch_shares_the_dedupe_group(self):
        """An explicit global size equal to the default resolves to the
        same fingerprint + launch config, so it never re-executes."""
        from repro.serve.protocol import known_benchmarks

        gs = list(known_benchmarks()["Square"].default_global_sizes[0])
        svc = ExperimentService(ServeConfig(workers=2),
                                registry=MetricsRegistry())
        try:
            a = svc.submit({"kind": "launch", "tenant": "t1",
                            "benchmark": "Square"})
            b = svc.submit({"kind": "launch", "tenant": "t2",
                            "benchmark": "Square", "global_size": gs})
            assert a["dedupe"] == "leader"
            assert b["dedupe"] == "cached"
        finally:
            svc.close()

    def test_experiment_matches_serial_cli(self):
        from repro.harness.registry import run_experiment

        svc = ExperimentService(ServeConfig(workers=2),
                                registry=MetricsRegistry())
        try:
            resp = svc.submit({"kind": "experiment", "tenant": "real",
                               "name": "fig1", "fast": True})
            assert resp["ok"]
            assert resp["csv"] == run_experiment("fig1", True).to_csv()
        finally:
            svc.close()
