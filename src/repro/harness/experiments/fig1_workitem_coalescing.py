"""Figure 1 + Table IV — workload per workitem (work coalescing).

Square and Vectoraddition are run at every Table II input size with 1, 10,
100 and 1000 logical workitems folded into each physical workitem (total
computation constant, Table IV gives the resulting workitem counts).
Expected shapes (paper Section III-B1):

* CPU: throughput *rises* with coalescing — fewer workgroups means less
  thread-switching overhead — and saturates;
* GPU: throughput *collapses* — the device loses the TLP it needs, and the
  per-item loop destroys memory coalescing.
"""

from __future__ import annotations

from typing import Dict, List

from ...suite import SquareBenchmark, VectorAddBenchmark
from ..report import ExperimentResult, Series
from ..runner import cpu_dut, gpu_dut, make_buffers, measure_kernel

__all__ = ["run", "COALESCE_FACTORS", "table4_workitem_counts"]

COALESCE_FACTORS = (1, 10, 100, 1000)


def _sizes(fast: bool):
    sq = SquareBenchmark()
    va = VectorAddBenchmark()
    if fast:
        return [(sq, [(10_000,), (100_000,)]), (va, [(110_000,)])]
    return [
        (sq, list(sq.default_global_sizes)),
        (va, list(va.default_global_sizes)),
    ]


def table4_workitem_counts(fast: bool = False) -> List[str]:
    """Table IV: the workitem counts for each configuration."""
    rows = []
    for bench, sizes in _sizes(fast):
        for i, gs in enumerate(sizes, start=1):
            n = gs[0]
            counts = " / ".join(
                str(max(n // c, 1)) for c in COALESCE_FACTORS
            )
            rows.append(f"{bench.name} {i}: base/10x/100x/1000x = {counts}")
    return rows


def run(fast: bool = False) -> ExperimentResult:
    cpu = cpu_dut()
    gpu = gpu_dut()
    series: Dict[str, Dict[str, float]] = {}
    for c in COALESCE_FACTORS:
        lbl = "base" if c == 1 else str(c)
        series[f"{lbl}(CPU)"] = {}
        series[f"{lbl}(GPU)"] = {}

    for bench, sizes in _sizes(fast):
        for i, gs in enumerate(sizes, start=1):
            x = f"{bench.name} {i}"
            for dut, tag in ((cpu, "CPU"), (gpu, "GPU")):
                buffers, scalars, _ = make_buffers(dut, bench, gs)
                base = None
                for c in COALESCE_FACTORS:
                    if gs[0] % c != 0:
                        continue
                    m = measure_kernel(
                        dut, bench, gs, None, coalesce=c,
                        buffers=buffers, scalars=scalars,
                    )
                    thr = m.throughput(gs[0])
                    if base is None:
                        base = thr
                    lbl = "base" if c == 1 else str(c)
                    series[f"{lbl}({tag})"][x] = thr / base

    return ExperimentResult(
        experiment_id="fig1",
        title="Square / Vectoraddition with different workload per workitem",
        series=[Series(k, v) for k, v in series.items()],
        notes=["Table IV workitem counts:"] + table4_workitem_counts(fast),
    )
