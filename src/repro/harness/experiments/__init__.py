"""One module per table/figure of the paper (see DESIGN.md section 3)."""

from . import (
    conclusions,
    ext_affinity,
    ext_omp_apps,
    ext_portability,
    table1,
    table2_table3,
    fig1_workitem_coalescing,
    fig2_parboil_coalescing,
    fig3_workgroup_size,
    fig4_blackscholes_wgsize,
    fig5_parboil_wgsize,
    fig6_ilp,
    fig7_transfer_api,
    fig8_parboil_transfer,
    fig9_affinity,
    fig10_vectorization,
    fig11_dependence_example,
    flags_no_effect,
)

__all__ = [
    "table1", "table2_table3",
    "fig1_workitem_coalescing", "fig2_parboil_coalescing",
    "fig3_workgroup_size", "fig4_blackscholes_wgsize",
    "fig5_parboil_wgsize", "fig6_ilp", "fig7_transfer_api",
    "fig8_parboil_transfer", "fig9_affinity", "fig10_vectorization",
    "fig11_dependence_example", "flags_no_effect", "ext_affinity",
    "ext_omp_apps", "ext_portability", "conclusions",
]
