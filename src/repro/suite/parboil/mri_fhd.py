"""Parboil ``MRI-FHD`` — MRI reconstruction, F^H d computation.

Two kernels (Table III):

* ``RhoPhi`` — global 3072, local 512: pointwise complex product of the
  density and coil-sensitivity vectors;
* ``FH`` — global 32768, local 256: per-voxel accumulation of cos/sin
  weighted RhoPhi samples (same shape as MRI-Q's computeQ, complex weights).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32
from ..base import Benchmark

__all__ = [
    "MriFhdRhoPhiBenchmark",
    "MriFhdFHBenchmark",
    "build_rhophi_kernel",
    "build_fh_kernel",
]

TWO_PI = 2.0 * math.pi


def build_rhophi_kernel(coalesce: int = 1) -> Kernel:
    kb = KernelBuilder("RhoPhi")
    rRho = kb.buffer("rRho", F32, access="r")
    iRho = kb.buffer("iRho", F32, access="r")
    rPhi = kb.buffer("rPhi", F32, access="r")
    iPhi = kb.buffer("iPhi", F32, access="r")
    rOut = kb.buffer("rRhoPhi", F32, access="w")
    iOut = kb.buffer("iRhoPhi", F32, access="w")
    gid = kb.global_id(0)

    def one(idx):
        rr = kb.let("rr", rRho[idx])
        ir = kb.let("ir", iRho[idx])
        rp = kb.let("rp", rPhi[idx])
        ip = kb.let("ip", iPhi[idx])
        rOut[idx] = rr * rp + ir * ip
        iOut[idx] = rr * ip - ir * rp

    if coalesce == 1:
        one(gid)
    else:
        n_per = kb.scalar("n_per", I32)
        with kb.loop("j", 0, n_per) as j:
            idx = kb.let("idx", gid * n_per + j)
            one(idx)
    return kb.finish()


def build_fh_kernel(coalesce: int = 1) -> Kernel:
    kb = KernelBuilder("FH")
    kx = kb.buffer("kx", F32, access="r")
    ky = kb.buffer("ky", F32, access="r")
    kz = kb.buffer("kz", F32, access="r")
    x = kb.buffer("x", F32, access="r")
    y = kb.buffer("y", F32, access="r")
    z = kb.buffer("z", F32, access="r")
    rRhoPhi = kb.buffer("rRhoPhi", F32, access="r")
    iRhoPhi = kb.buffer("iRhoPhi", F32, access="r")
    rFH = kb.buffer("rFH", F32, access="w")
    iFH = kb.buffer("iFH", F32, access="w")
    numK = kb.scalar("numK", I32)
    gid = kb.global_id(0)

    def one(idx):
        xi = kb.let("xi", x[idx])
        yi = kb.let("yi", y[idx])
        zi = kb.let("zi", z[idx])
        rf = kb.let("rf", kb.f32(0.0))
        jf = kb.let("jf", kb.f32(0.0))
        with kb.loop("k", 0, numK) as k:
            arg = kb.let(
                "arg",
                kb.f32(TWO_PI) * (kx[k] * xi + ky[k] * yi + kz[k] * zi),
            )
            c = kb.let("c", kb.cos(arg))
            s = kb.let("s", kb.sin(arg))
            rw = kb.let("rw", rRhoPhi[k])
            iw = kb.let("iw", iRhoPhi[k])
            rf = kb.let("rf", rf + rw * c - iw * s)
            jf = kb.let("jf", jf + iw * c + rw * s)
        rFH[idx] = rf
        iFH[idx] = jf

    if coalesce == 1:
        one(gid)
    else:
        n_per = kb.scalar("n_per", I32)
        with kb.loop("j", 0, n_per) as j:
            idx = kb.let("idx", gid * n_per + j)
            one(idx)
    return kb.finish()


class MriFhdRhoPhiBenchmark(Benchmark):
    name = "MRI-FHD: RhoPhi"
    work_dim = 1
    default_global_sizes = ((3072,),)
    default_local_size = (512,)

    def kernel(self, coalesce: int = 1) -> Kernel:
        return build_rhophi_kernel(coalesce)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        mk = lambda: rng.standard_normal(n, dtype=np.float32)  # noqa: E731
        return (
            {
                "rRho": mk(), "iRho": mk(), "rPhi": mk(), "iPhi": mk(),
                "rRhoPhi": np.zeros(n, dtype=np.float32),
                "iRhoPhi": np.zeros(n, dtype=np.float32),
            },
            {},
        )

    def reference(self, buffers, scalars, global_size):
        rr, ir = buffers["rRho"], buffers["iRho"]
        rp, ip = buffers["rPhi"], buffers["iPhi"]
        return {
            "rRhoPhi": rr * rp + ir * ip,
            "iRhoPhi": rr * ip - ir * rp,
        }


class MriFhdFHBenchmark(Benchmark):
    name = "MRI-FHD: FH"
    work_dim = 1
    default_global_sizes = ((32768,),)
    default_local_size = (256,)

    def __init__(self, num_k: int = 3072):
        self.num_k = num_k

    def kernel(self, coalesce: int = 1) -> Kernel:
        return build_fh_kernel(coalesce)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        k = self.num_k
        mk = lambda m: rng.standard_normal(m, dtype=np.float32)  # noqa: E731
        return (
            {
                "kx": mk(k), "ky": mk(k), "kz": mk(k),
                "x": mk(n), "y": mk(n), "z": mk(n),
                "rRhoPhi": mk(k), "iRhoPhi": mk(k),
                "rFH": np.zeros(n, dtype=np.float32),
                "iFH": np.zeros(n, dtype=np.float32),
            },
            {"numK": k},
        )

    def reference(self, buffers, scalars, global_size):
        arg = TWO_PI * (
            np.outer(buffers["x"].astype(np.float64), buffers["kx"].astype(np.float64))
            + np.outer(buffers["y"].astype(np.float64), buffers["ky"].astype(np.float64))
            + np.outer(buffers["z"].astype(np.float64), buffers["kz"].astype(np.float64))
        )
        c, s = np.cos(arg), np.sin(arg)
        rw = buffers["rRhoPhi"].astype(np.float64)[None, :]
        iw = buffers["iRhoPhi"].astype(np.float64)[None, :]
        return {
            "rFH": (rw * c - iw * s).sum(axis=1).astype(np.float32),
            "iFH": (iw * c + rw * s).sum(axis=1).astype(np.float32),
        }
