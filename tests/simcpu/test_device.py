"""Unit tests for the assembled CPU device model (timing + transfers)."""

import pytest

from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32
from repro.simcpu.device import CPUDeviceModel
from repro.simcpu.spec import CPUSpec, XEON_E5645


def square_kernel(coalesce=1):
    from repro.suite.simple.square import build_square_kernel

    return build_square_kernel(coalesce)


class TestSpec:
    def test_paper_peak(self):
        assert XEON_E5645.peak_gflops_sp == pytest.approx(230.4)

    def test_core_counts(self):
        assert XEON_E5645.physical_cores == 12
        assert XEON_E5645.logical_cores == 24

    def test_describe_matches_table1(self):
        d = XEON_E5645.describe()
        assert "64K/256K/12M" in d["Caches"]
        assert "230.4" in d["FP peak performance"]

    def test_cycle_conversion_roundtrip(self):
        s = XEON_E5645
        assert s.ns_to_cycles(s.cycles_to_ns(123.0)) == pytest.approx(123.0)


class TestNullLocalSizePolicy:
    def setup_method(self):
        self.dev = CPUDeviceModel()

    def test_explicit_passthrough(self):
        assert self.dev.choose_local_size((1024,), (256,)) == (256,)

    def test_null_divides(self):
        for n in (10_000, 110_000, 11_445_000):
            (ls,) = self.dev.choose_local_size((n,), None)
            assert n % ls == 0 and ls <= 64

    def test_null_keeps_threads_busy(self):
        (ls,) = self.dev.choose_local_size((100,), None)
        assert 100 // ls >= 24  # at least one group per logical core


class TestKernelCost:
    def setup_method(self):
        self.dev = CPUDeviceModel()

    def test_more_work_takes_longer(self):
        k = square_kernel()
        t1 = self.dev.kernel_cost(k, (10_000,)).total_ns
        t2 = self.dev.kernel_cost(k, (100_000,)).total_ns
        assert t2 > t1

    def test_coalescing_improves_throughput(self):
        n = 1_000_000
        base = self.dev.kernel_cost(square_kernel(), (n,))
        co = self.dev.kernel_cost(
            square_kernel(100), (n // 100,), scalars={"n_per": 100}
        )
        assert co.total_ns < base.total_ns

    def test_tiny_workgroups_hurt(self):
        k = square_kernel()
        small = self.dev.kernel_cost(k, (100_000,), (1,))
        large = self.dev.kernel_cost(k, (100_000,), (1000,))
        assert small.total_ns > 5 * large.total_ns

    def test_gflops_below_peak(self):
        k = square_kernel()
        c = self.dev.kernel_cost(k, (1_000_000,), (1000,))
        assert 0 < c.gflops < XEON_E5645.peak_gflops_sp

    def test_vectorization_toggle(self):
        k = square_kernel()
        v = CPUDeviceModel(vectorize=True).kernel_cost(k, (1_000_000,), (1000,))
        s = CPUDeviceModel(vectorize=False).kernel_cost(k, (1_000_000,), (1000,))
        assert not s.vectorization.vectorized
        assert v.vectorization.vectorized
        assert v.total_ns <= s.total_ns

    def test_cost_carries_diagnostics(self):
        c = self.dev.kernel_cost(square_kernel(), (4096,), (64,))
        assert c.analysis.per_item.flops == 1
        assert c.schedule.threads_used <= 24
        assert c.item.dominant() in ("compute", "memory", "bandwidth", "latency")
        assert c.local_size == (64,)
        assert c.per_item_ns > 0


class TestTransfers:
    def setup_method(self):
        self.dev = CPUDeviceModel()

    def test_copy_scales_with_bytes(self):
        small = self.dev.transfer_cost(1 << 10, "copy").total_ns
        big = self.dev.transfer_cost(1 << 24, "copy").total_ns
        assert big > small * 10

    def test_map_is_cheap_and_flat(self):
        small = self.dev.transfer_cost(1 << 10, "map").total_ns
        big = self.dev.transfer_cost(1 << 24, "map").total_ns
        assert big < self.dev.transfer_cost(1 << 24, "copy").total_ns / 10
        assert big / small < 10  # near-constant (page table touches only)

    def test_map_moves_no_bytes(self):
        t = self.dev.transfer_cost(1 << 20, "map")
        assert t.moved_bytes == 0
        assert self.dev.transfer_cost(1 << 20, "copy").moved_bytes == 1 << 20

    def test_gap_grows_with_size(self):
        """The paper: 'The performance gap increases with ... data transfer
        sizes.'"""
        ratios = []
        for size in (1 << 16, 1 << 20, 1 << 24):
            c = self.dev.transfer_cost(size, "copy").total_ns
            m = self.dev.transfer_cost(size, "map").total_ns
            ratios.append(c / m)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_unknown_api_rejected(self):
        with pytest.raises(ValueError):
            self.dev.transfer_cost(1024, "dma")

    def test_pinned_flag_changes_nothing_on_cpu(self):
        """Allocation location: same DRAM either way (paper Section III-D)."""
        a = self.dev.transfer_cost(1 << 20, "copy", pinned=False).total_ns
        b = self.dev.transfer_cost(1 << 20, "copy", pinned=True).total_ns
        assert a == b
