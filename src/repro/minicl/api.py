"""Flat C-style API layer, mirroring the OpenCL 1.1 entry points.

This is sugar over the object API for fidelity with the paper's text — host
programs can be written exactly in the shape of the C host code the paper
describes (``clGetPlatformIDs`` ... ``clEnqueueMapBuffer``)::

    platforms = clGetPlatformIDs()
    devices = clGetDeviceIDs(platforms[0], device_type.CPU)
    ctx = clCreateContext(devices)
    q = clCreateCommandQueue(ctx, devices[0])
    buf = clCreateBuffer(ctx, mem_flags.READ_ONLY | mem_flags.COPY_HOST_PTR,
                         hostbuf=a)
    ...
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .buffer import Buffer
from .constants import device_type, map_flags, mem_flags
from .context import Context
from .device import Device
from .event import Event
from .platform import Platform, get_platforms
from .program import CLKernel, Program
from .queue import CommandQueue

__all__ = [
    "clGetPlatformIDs",
    "clGetDeviceIDs",
    "clGetDeviceInfo",
    "clCreateContext",
    "clCreateCommandQueue",
    "clCreateBuffer",
    "clCreateProgram",
    "clCreateKernel",
    "clSetKernelArg",
    "clEnqueueNDRangeKernel",
    "clEnqueueReadBuffer",
    "clEnqueueWriteBuffer",
    "clEnqueueCopyBuffer",
    "clEnqueueMapBuffer",
    "clEnqueueUnmapMemObject",
    "clEnqueueMarkerWithWaitList",
    "clEnqueueBarrierWithWaitList",
    "clFinish",
    "clFlush",
    "clGetEventProfilingInfo",
]


def clGetPlatformIDs() -> List[Platform]:
    return get_platforms()


def clGetDeviceIDs(platform: Platform,
                   dtype: device_type = device_type.ALL) -> List[Device]:
    return platform.get_devices(dtype)


def clCreateContext(devices: Sequence[Device]) -> Context:
    return Context(devices)


def clCreateCommandQueue(context: Context, device: Optional[Device] = None,
                         *, profiling: bool = True,
                         functional: bool = True) -> CommandQueue:
    return CommandQueue(context, device, profiling=profiling, functional=functional)


def clCreateBuffer(context: Context, flags: mem_flags, *,
                   size: Optional[int] = None,
                   hostbuf: Optional[np.ndarray] = None,
                   dtype=None) -> Buffer:
    return Buffer(context, flags, size=size, hostbuf=hostbuf, dtype=dtype)


def clCreateProgram(context: Context, kernels) -> Program:
    return Program(context, kernels).build()


def clCreateKernel(program: Program, name: str) -> CLKernel:
    return program.create_kernel(name)


def clSetKernelArg(kernel: CLKernel, index: int, value) -> None:
    kernel.set_arg(index, value)


def clEnqueueNDRangeKernel(queue: CommandQueue, kernel: CLKernel,
                           global_work_size, local_work_size=None,
                           *, verify=None) -> Event:
    return queue.enqueue_nd_range_kernel(
        kernel, global_work_size, local_work_size, verify=verify
    )


def clEnqueueWriteBuffer(queue: CommandQueue, buf: Buffer, src: np.ndarray,
                         *, blocking: bool = True) -> Event:
    return queue.enqueue_write_buffer(buf, src, blocking=blocking)


def clEnqueueReadBuffer(queue: CommandQueue, buf: Buffer, dst: np.ndarray,
                        *, blocking: bool = True) -> Event:
    return queue.enqueue_read_buffer(buf, dst, blocking=blocking)


def clEnqueueMapBuffer(queue: CommandQueue, buf: Buffer,
                       flags: map_flags) -> Tuple[np.ndarray, Event]:
    return queue.enqueue_map_buffer(buf, flags)


def clEnqueueUnmapMemObject(queue: CommandQueue, buf: Buffer,
                            mapped: np.ndarray) -> Event:
    return queue.enqueue_unmap(buf, mapped)


def clGetDeviceInfo(device: Device) -> dict:
    return device.get_info()


def clEnqueueCopyBuffer(queue: CommandQueue, src: Buffer, dst: Buffer) -> Event:
    return queue.enqueue_copy_buffer(src, dst)


def clEnqueueMarkerWithWaitList(queue: CommandQueue,
                                wait_for: Optional[Sequence[Event]] = None) -> Event:
    return queue.enqueue_marker(wait_for)


def clEnqueueBarrierWithWaitList(queue: CommandQueue) -> Event:
    return queue.enqueue_barrier()


def clFinish(queue: CommandQueue) -> float:
    return queue.finish()


def clFlush(queue: CommandQueue) -> None:
    queue.flush()


def clGetEventProfilingInfo(event: Event) -> dict:
    p = event.profile
    return {
        "CL_PROFILING_COMMAND_QUEUED": p.queued,
        "CL_PROFILING_COMMAND_SUBMIT": p.submit,
        "CL_PROFILING_COMMAND_START": p.start,
        "CL_PROFILING_COMMAND_END": p.end,
    }
