"""Content-addressed sweep store (:mod:`repro.tune.store`).

The properties that make the tuner cheap to re-run: an identical sweep
executes zero points, a widened sweep executes only the delta, corrupt
entries load as misses, and serial vs ``jobs=N`` sweeps are
byte-identical.
"""

import json

import pytest

from repro import diskcache
from repro.tune import (
    KnobPoint,
    TuneStore,
    model_version,
    point_key,
    reset_tune_stats,
    suite_benchmarks,
    tune,
)


@pytest.fixture
def cache_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    diskcache.reset_disk_cache_stats()
    reset_tune_stats()
    yield tmp_path
    diskcache.reset_disk_cache_stats()
    reset_tune_stats()


def _square():
    return suite_benchmarks()["Square"]


class TestPointKey:
    def test_key_covers_every_knob(self, cache_root):
        bench = _square()
        base = point_key(bench, (1024,), KnobPoint(), "kernel", "fp")
        for other in (
            point_key(bench, (2048,), KnobPoint(), "kernel", "fp"),
            point_key(bench, (1024,), KnobPoint(coalesce=2), "kernel", "fp"),
            point_key(bench, (1024,), KnobPoint(local_size=(64,)),
                      "kernel", "fp"),
            point_key(bench, (1024,), KnobPoint(affinity="blocked"),
                      "kernel", "fp"),
            point_key(bench, (1024,), KnobPoint(), "app", "fp"),
            point_key(bench, (1024,), KnobPoint(), "kernel", "fp2"),
        ):
            assert other != base

    def test_key_includes_model_version(self, cache_root):
        key = point_key(_square(), (1024,), KnobPoint(), "kernel", "fp")
        assert model_version() in key


class TestStoreRoundtrip:
    def test_roundtrip(self, cache_root):
        store = TuneStore()
        key = point_key(_square(), (1024,), KnobPoint(), "kernel", "fp")
        assert store.get(key) is None
        store.put(key, {"value": 1.5, "units": "ns", "score": 1.5})
        assert store.get(key) == {"value": 1.5, "units": "ns", "score": 1.5}
        assert store.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_corrupt_entry_is_a_miss(self, cache_root):
        store = TuneStore()
        key = point_key(_square(), (1024,), KnobPoint(), "kernel", "fp")
        store.put(key, {"value": 2.0, "score": 2.0})
        files = list(cache_root.rglob("tune/*.json"))
        assert len(files) == 1
        files[0].write_text("{ not json")
        assert TuneStore().get(key) is None

    def test_wrong_payload_shape_is_a_miss(self, cache_root):
        store = TuneStore()
        key = point_key(_square(), (1024,), KnobPoint(), "kernel", "fp")
        store.put(key, {"value": 2.0, "score": 2.0})
        files = list(cache_root.rglob("tune/*.json"))
        # valid JSON, but not the {"result": {...}} contract
        payload = json.loads(files[0].read_text())
        payload["result"] = "not-a-dict"
        files[0].write_text(json.dumps(payload))
        assert TuneStore().get(key) is None


class TestDiskcachePartition:
    def test_partition_usage_and_selective_clear(self, cache_root):
        diskcache.store_tune(("k1",), {"result": {"score": 1.0}})
        diskcache.store_plan(("p1",), {"plan": "x"})
        use = diskcache.usage()
        assert use["partitions"]["tune"]["entries"] == 1
        assert use["partitions"]["plans"]["entries"] == 1

        assert diskcache.clear("tune") == 1
        use = diskcache.usage()
        assert use["partitions"]["tune"]["entries"] == 0
        assert use["partitions"]["plans"]["entries"] == 1

    def test_clear_unknown_partition_raises(self, cache_root):
        with pytest.raises(ValueError):
            diskcache.clear("nonsense")


class TestSweepReuse:
    def test_identical_rerun_executes_zero_points(self, cache_root):
        doc1 = tune(["Square"], strategy="grid", budget=5,
                    log=lambda *a: None)
        assert doc1["store"]["misses"] > 0
        doc2 = tune(["Square"], strategy="grid", budget=5,
                    log=lambda *a: None)
        assert doc2["store"]["misses"] == 0
        assert doc2["store"]["hits"] >= doc1["store"]["misses"]
        assert doc2["configs"] == doc1["configs"]

    def test_widened_sweep_executes_only_the_delta(self, cache_root):
        doc1 = tune(["Square"], strategy="grid", budget=4,
                    log=lambda *a: None)
        executed_first = doc1["store"]["misses"]
        # grid order is deterministic, so a bigger budget is a superset
        doc2 = tune(["Square"], strategy="grid", budget=8,
                    log=lambda *a: None)
        assert doc2["store"]["misses"] == 8 - executed_first

    def test_serial_vs_jobs_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = tune(["Square"], strategy="grid", budget=6, jobs=1,
                      log=lambda *a: None)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pooled"))
        pooled = tune(["Square"], strategy="grid", budget=6, jobs=3,
                      log=lambda *a: None)
        assert (
            json.dumps(serial["configs"], sort_keys=True)
            == json.dumps(pooled["configs"], sort_keys=True)
        )

    def test_no_cache_env_disables_the_store(self, cache_root, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        doc1 = tune(["Square"], strategy="grid", budget=3,
                    log=lambda *a: None)
        doc2 = tune(["Square"], strategy="grid", budget=3,
                    log=lambda *a: None)
        # 3 grid points + the driver's default re-check, all misses
        assert doc1["store"]["hits"] == 0
        assert doc2["store"]["hits"] == 0  # nothing persisted
        assert doc2["store"]["misses"] == doc1["store"]["misses"] == 4
        assert doc2["configs"] == doc1["configs"]  # still deterministic
