"""Streaming-multiprocessor throughput model.

The defining contrast with the CPU model (and the paper's core finding):

* a GPU hides instruction latency with *thread-level parallelism* — given
  enough resident warps, a dependence chain in one thread costs nothing,
  which is why Figure 6 shows a flat ILP curve on the GTX 580;
* take the warps away (few workitems after coalescing — Figure 1; tiny
  workgroups — Figures 3/4) and the latency is exposed, collapsing
  throughput.

Memory cost is transaction-based: a warp's access is one 128-byte
transaction when contiguous ("coalesced"), and up to 32 when scattered.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from ..kernelir.analysis import KernelAnalysis
from .occupancy import Occupancy
from .spec import GPUSpec

__all__ = ["SMCost", "SMModel"]


@dataclasses.dataclass
class SMCost:
    """Per-workgroup cycle cost on one SM, with diagnostics."""

    cycles_per_workgroup: float
    compute_cycles: float
    memory_cycles: float
    latency_hiding: float       # 0..1: fraction of latency hidden
    effective_bytes_per_item: float
    divergence_penalty: float


class SMModel:
    """Costs one workgroup's execution on one SM."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    # -- memory -----------------------------------------------------------
    def effective_bytes_per_item(self, analysis: KernelAnalysis) -> float:
        """DRAM bytes per workitem, inflated by uncoalesced access.

        Contiguous warp accesses move ``itemsize`` bytes per lane; a stride
        of ``s`` elements touches ``min(32, s)`` times more transactions; a
        gather degenerates to one transaction per lane.
        """
        total = 0.0
        for a in analysis.accesses:
            if a.is_local:
                continue  # shared memory: on-chip
            if a.pattern == "uniform":
                # broadcast: one transaction per warp
                per_item = a.itemsize / self.spec.warp_size
            elif a.pattern == "contiguous":
                per_item = a.itemsize
            elif a.pattern == "strided":
                stride = abs(a.vector_stride or 1.0)
                # stride-s lanes span s*32*itemsize bytes -> that many
                # transactions; capped at one 32B sector per lane.
                inflation = min(float(self.spec.warp_size), max(1.0, stride))
                per_item = min(a.itemsize * inflation, 32.0)
            else:  # gather
                per_item = 32.0  # one 32B sector per lane
            total += per_item * a.count_per_item
        return total

    # -- compute ---------------------------------------------------------------
    def workgroup_cycles(
        self,
        analysis: KernelAnalysis,
        occ: Occupancy,
        *,
        resident_workgroups: Optional[int] = None,
        dram_share: float = 1.0,
    ) -> SMCost:
        """Cycles for one workgroup given the SM's resident context.

        ``resident_workgroups`` is how many workgroups actually share the SM
        (may be fewer than the occupancy limit when the grid is small);
        latency hiding depends on the *actual* resident warps.
        """
        s = self.spec
        c = analysis.per_item
        wg_items = occ.workgroup_size
        resident = resident_workgroups if resident_workgroups is not None else occ.workgroups_per_sm
        resident = max(1, min(resident, occ.workgroups_per_sm))
        active_warps = resident * occ.warps_per_workgroup

        # Latency hiding: warps x per-thread ILP both contribute issue slots.
        ilp_factor = min(analysis.ilp, 2.0)
        hiding = min(1.0, (active_warps * ilp_factor) / s.warps_to_hide_latency)

        divergence = 2.0 if analysis.divergent_flow else 1.0

        # issue-throughput: one warp-instruction (32 lanes) per cycle per SM
        ops_per_item = c.arith_ops + c.mem_ops + 2.0 * c.atomics
        warp_instructions = (
            ops_per_item * wg_items / (s.warp_size * occ.lane_efficiency)
        )
        peak_cycles = warp_instructions * divergence
        # exposed latency when under-occupied stretches issue slots
        compute_cycles = peak_cycles / max(1e-9, min(1.0, hiding))

        # memory: the SM's share of DRAM bandwidth
        bpi = self.effective_bytes_per_item(analysis)
        bw_bytes_per_cycle = (
            s.dram_bandwidth_gbps * dram_share / s.shader_clock_ghz
        )
        memory_cycles = (
            (bpi * wg_items) / bw_bytes_per_cycle if bw_bytes_per_cycle > 0 else 0.0
        )
        # un-hidden memory latency for very low occupancy
        mem_latency = 400.0  # cycles to DRAM
        exposed = (1.0 - min(1.0, hiding)) * mem_latency * (
            c.mem_ops * wg_items / (s.warp_size * occ.lane_efficiency)
        ) / max(1.0, active_warps)
        memory_cycles += exposed

        total = max(compute_cycles, memory_cycles)
        return SMCost(
            cycles_per_workgroup=total,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            latency_hiding=min(1.0, hiding),
            effective_bytes_per_item=bpi,
            divergence_penalty=divergence,
        )
