"""Unit tests for IR AST construction, validation, and walkers."""

import pytest

from repro.kernelir import ast as ir
from repro.kernelir.types import BOOL, F32, I32, I64


def test_const_inference():
    assert ir.Const(3).dtype is I64
    assert ir.Const(3.0).dtype is F32
    assert ir.Const(True).dtype is BOOL
    with pytest.raises(TypeError):
        ir.Const("bad")


def test_id_nodes():
    g = ir.GlobalId(1)
    assert g.dim == 1
    assert g.dtype is I64
    assert g == ir.GlobalId(1)
    assert g != ir.GlobalId(0)
    assert g != ir.LocalId(1)
    assert hash(ir.GroupId(2)) == hash(ir.GroupId(2))
    with pytest.raises(ValueError):
        ir.GlobalId(3)


def test_operator_overloads_build_binops():
    g = ir.GlobalId(0)
    e = (g + 1) * 2 - 3
    assert isinstance(e, ir.BinOp) and e.op == "-"
    assert e.dtype is I64
    # reflected
    e2 = 1 + g
    assert isinstance(e2, ir.BinOp) and e2.op == "+"
    assert isinstance(-g, ir.UnOp)


def test_comparison_dtype_is_bool():
    g = ir.GlobalId(0)
    assert (g < 5).dtype is BOOL
    assert g.eq(0).dtype is BOOL
    assert g.ne(1).dtype is BOOL


def test_binop_promotion():
    f = ir.Var("f", F32)
    i = ir.Var("i", I32)
    assert (f + i).dtype is F32
    assert (i + i).dtype is I32
    assert (i / i).dtype is I32  # C-style integer division
    assert (f / i).dtype is F32


def test_bad_binop_rejected():
    with pytest.raises(ValueError):
        ir.BinOp("**", ir.Const(1), ir.Const(2))
    with pytest.raises(ValueError):
        ir.UnOp("sqrt", ir.Const(1.0))


def test_call_arity_and_dtype():
    c = ir.Call("mad", (ir.Const(1.0), ir.Const(2.0), ir.Const(3.0)))
    assert c.dtype.is_float
    with pytest.raises(ValueError):
        ir.Call("exp", (ir.Const(1.0), ir.Const(2.0)))
    with pytest.raises(ValueError):
        ir.Call("nosuch", (ir.Const(1.0),))


def test_select_dtype():
    s = ir.Select(ir.Const(True), ir.Var("a", F32), ir.Var("b", F32))
    assert s.dtype is F32
    assert len(s.children()) == 3


def test_walk_exprs_covers_tree():
    g = ir.GlobalId(0)
    e = ir.Load("a", g * 2 + 1, F32)
    kinds = [type(x).__name__ for x in ir.walk_exprs(e)]
    assert kinds[0] == "Load"
    assert "GlobalId" in kinds and "Const" in kinds


def _simple_kernel(**kw):
    body = kw.pop(
        "body",
        [ir.Store("out", ir.GlobalId(0), ir.Load("a", ir.GlobalId(0), F32))],
    )
    params = kw.pop(
        "params",
        [ir.BufferParam("a", F32, "r"), ir.BufferParam("out", F32, "w")],
    )
    return ir.Kernel("k", params, kw.pop("local_arrays", []), body, **kw)


class TestKernelValidation:
    def test_valid(self):
        k = _simple_kernel()
        assert k.buffer_params[0].name == "a"
        assert not k.uses_barrier and not k.uses_local_memory

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            _simple_kernel(
                params=[ir.BufferParam("a", F32, "r"), ir.BufferParam("a", F32, "w")]
            )

    def test_unknown_buffer_rejected(self):
        with pytest.raises(ValueError, match="unknown buffer"):
            _simple_kernel(
                body=[ir.Store("nope", ir.GlobalId(0), ir.Const(1.0))],
            )

    def test_write_to_readonly_rejected(self):
        with pytest.raises(ValueError, match="read-only"):
            _simple_kernel(
                body=[ir.Store("a", ir.GlobalId(0), ir.Const(1.0))],
            )

    def test_read_from_writeonly_rejected(self):
        with pytest.raises(ValueError, match="write-only"):
            _simple_kernel(
                body=[
                    ir.Store("out", ir.GlobalId(0), ir.Load("out", ir.GlobalId(0), F32))
                ],
            )

    def test_bad_work_dim(self):
        with pytest.raises(ValueError):
            _simple_kernel(work_dim=4)

    def test_bad_access_flag(self):
        with pytest.raises(ValueError):
            ir.BufferParam("x", F32, "rx")

    def test_local_array_positive(self):
        with pytest.raises(ValueError):
            ir.LocalArray("s", F32, 0)

    def test_local_mem_bytes(self):
        k = _simple_kernel(local_arrays=[ir.LocalArray("s", F32, 16)])
        assert k.local_mem_bytes == 64
        assert k.uses_local_memory

    def test_uses_atomics(self):
        k = _simple_kernel(
            params=[ir.BufferParam("a", F32, "r"), ir.BufferParam("out", F32, "rw")],
            body=[ir.AtomicAdd("out", ir.GlobalId(0), ir.Const(1.0))],
        )
        assert k.uses_atomics


def test_for_keeps_body_list_identity():
    body = []
    f = ir.For("i", ir.Const(0), ir.Const(4), ir.Const(1), body)
    body.append(ir.Assign("x", ir.Const(1.0)))
    assert len(f.body) == 1  # the builder relies on this aliasing


def test_if_keeps_body_list_identity():
    then, els = [], []
    s = ir.If(ir.Const(True), then, els)
    then.append(ir.Assign("x", ir.Const(1.0)))
    els.append(ir.Assign("y", ir.Const(2.0)))
    assert len(s.then_body) == 1 and len(s.else_body) == 1


def test_walk_stmts_enters_nested_blocks():
    inner = ir.Assign("x", ir.Const(1.0))
    loop = ir.For("i", ir.Const(0), ir.Const(2), ir.Const(1), [inner])
    cond = ir.If(ir.Const(True), [loop], [ir.Barrier()])
    kinds = [type(s).__name__ for s in ir.walk_stmts([cond])]
    assert kinds == ["If", "For", "Assign", "Barrier"]


def test_pretty_renders():
    k = _simple_kernel()
    text = k.pretty()
    assert "__kernel void k" in text
    assert "out[get_global_id(0)]" in text
