"""Benchmarks regenerating Tables I-III (experiment index: T1, T2, T3)."""

from repro.harness.experiments import table1, table2_table3


def test_table1_environment(benchmark):
    result = benchmark(table1.run, True)
    notes = "\n".join(result.notes)
    assert "E5645" in notes and "GTX 580" in notes


def test_table2_simple_apps(benchmark):
    result = benchmark(table2_table3.run_table2, True)
    assert len(result.notes) == 9
    assert any("10000000" in n for n in result.notes)  # Square input 4


def test_table3_parboil(benchmark):
    result = benchmark(table2_table3.run_table3, True)
    assert len(result.notes) == 5
    assert any("64 X 512" in n for n in result.notes)
