"""Command-line interface: ``python -m repro``.

Subcommands:

* ``experiments [names...] [--fast] [--csv DIR] [--jobs N]`` (alias
  ``run``) — regenerate the paper's tables/figures (same engine as
  ``examples/reproduce_paper.py``), optionally across worker processes;
* ``bench [--quick] [--out FILE] [--compare BASELINE]`` — wall-clock
  benchmark of the suite with launch-plan cache statistics and the
  cache-on/cache-off speedup (regression gate for CI);
* ``report <benchmark> [--size ...]`` — print the programmer-guideline
  report (roofline, bottleneck, vectorization, occupancy) for one of the
  suite's kernels;
* ``lint [benchmarks...|--all]`` — run the static kernel verifier
  (:mod:`repro.kernelir.verify`) over suite kernels at their default
  launch sizes and print a rule-grouped report;
* ``jitdump [benchmarks...] [--out DIR]`` — print (or write) the fused
  NumPy source the kernel JIT generates for each suite kernel;
* ``trace record|summarize|diff`` — record an experiment run as a
  Chrome-trace (Perfetto) JSON, summarize one trace, or diff two;
* ``cache stats|clear`` — inspect or wipe the persistent on-disk code
  cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; see
  ``docs/CODEGEN.md``);
* ``serve [--host H --port P]`` — run the multi-tenant experiment
  service daemon (JSON over HTTP in, CSV + trace out; see
  ``docs/SERVE.md``); ``serve --replay BATCH`` instead starts an
  ephemeral daemon, replays a load-generator batch against it and
  verifies exactly-once delivery + byte-identical responses;
* ``list`` — list experiments and benchmarks.

``experiments`` and ``bench`` accept ``--engine {compiled,interp}`` to pick
the functional execution engine (``interp`` == ``REPRO_NO_JIT=1``),
``--trace FILE`` (env: ``REPRO_TRACE``) to record the run as a
Chrome-trace JSON (see ``docs/OBSERVABILITY.md``), plus the command-queue
engine knobs ``--queue {inorder,ooo}`` (env: ``REPRO_QUEUE``) and
``--workers N`` (env: ``REPRO_WORKERS``) described in
``docs/SCHEDULER.md``.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import pathlib
import sys

import numpy as np


def _apply_engine(engine) -> None:
    """Select the functional execution engine for this process tree.

    Expressed through ``REPRO_NO_JIT`` rather than in-process state so the
    choice survives into ``--jobs`` worker processes.
    """
    if engine is None:
        return
    if engine == "interp":
        os.environ["REPRO_NO_JIT"] = "1"
    else:
        os.environ.pop("REPRO_NO_JIT", None)


def _apply_scheduling(args) -> None:
    """Select the command-queue engine and worker count (see
    ``docs/SCHEDULER.md``).

    Like :func:`_apply_engine`, both knobs are expressed through their
    environment variables (``REPRO_QUEUE``, ``REPRO_WORKERS``) so they
    survive into ``--jobs`` worker processes.
    """
    queue = getattr(args, "queue", None)
    if queue is not None:
        if queue == "ooo":
            os.environ["REPRO_QUEUE"] = "ooo"
        else:
            os.environ.pop("REPRO_QUEUE", None)
    workers = getattr(args, "workers", None)
    if workers is not None:
        if workers < 1:
            raise SystemExit(f"--workers must be >= 1, got {workers}")
        os.environ["REPRO_WORKERS"] = str(workers)


def _suite_benchmarks():
    from .suite import all_parboil_benchmarks, all_table2_benchmarks

    out = {}
    for b in all_table2_benchmarks() + all_parboil_benchmarks():
        out[b.name] = b
    return out


def _lint_benchmarks():
    """Every kernel the suite ships: Table II/III plus the micro families."""
    from .suite import ILP_LEVELS, IlpMicroBenchmark, MBENCHES

    out = _suite_benchmarks()
    for b in MBENCHES:
        out[b.name] = b
    for lvl in ILP_LEVELS:
        b = IlpMicroBenchmark(lvl)
        out[b.name] = b
    return out


def _unknown_name_error(kind: str, names, known) -> int:
    """Print an unknown-<kind> message with did-you-mean suggestions."""
    if isinstance(names, str):
        names = [names]
    known = list(known)
    for name in names:
        close = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        hint = f" (did you mean: {', '.join(close)}?)" if close else ""
        print(f"unknown {kind} {name!r}{hint}", file=sys.stderr)
    print(
        f"available {kind}s: {', '.join(known)}",
        file=sys.stderr,
    )
    return 2


def cmd_list(args) -> int:
    from .harness.registry import EXPERIMENTS

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("benchmarks:")
    for name in _suite_benchmarks():
        print(f"  {name}")
    return 0


def _experiment_aliases():
    """Module-style aliases for experiments (``fig7_transfer_api`` -> fig7).

    One module can back several registry keys (``table2_table3`` covers
    both ``table2`` and ``table3``), so an alias expands to a list.
    """
    from .harness.registry import EXPERIMENTS

    aliases: dict = {}
    for key, fn in EXPERIMENTS.items():
        mod = fn.__module__.rsplit(".", 1)[-1]
        if mod != key:
            aliases.setdefault(mod, []).append(key)
    return aliases


def _resolve_experiments(requested):
    """Map registry keys and module-style names to registry keys, in order."""
    from .harness.registry import EXPERIMENTS

    aliases = _experiment_aliases()
    names, unknown = [], []
    for n in requested:
        if n in EXPERIMENTS:
            names.append(n)
        elif n in aliases:
            names.extend(aliases[n])
        else:
            unknown.append(n)
    # drop duplicates, keep first occurrence
    names = list(dict.fromkeys(names))
    return names, unknown


def _trace_target(explicit):
    """The trace output path: ``--trace`` wins, else ``REPRO_TRACE``."""
    if explicit:
        return pathlib.Path(explicit)
    from . import obs

    env = obs.env_trace_path()
    return pathlib.Path(env) if env else None


def _finish_trace(tracer, path) -> None:
    """Fold global stats into the registry and write the trace JSON."""
    from . import obs

    obs.REGISTRY.absorb_cache_stats()
    obs.REGISTRY.absorb_jit_stats()
    obs.REGISTRY.absorb_disk_cache_stats()
    obs.REGISTRY.absorb_scheduler_stats()
    obs.REGISTRY.absorb_analysis_stats()
    obs.REGISTRY.absorb_tune_stats()
    obs.REGISTRY.absorb_data_plane_stats()
    out = obs.write_trace(tracer, path, registry=obs.REGISTRY)
    msg = f"[trace] wrote {out} ({len(tracer.events)} events)"
    if tracer.dropped:
        msg += f", {tracer.dropped} dropped"
    print(msg, file=sys.stderr)


def _apply_tuned(path) -> None:
    """Opt paper-default launches into tuned configs (``--tuned FILE``).

    Exported via the environment so the overlay survives into ``--jobs``
    worker processes.
    """
    if path:
        os.environ["REPRO_TUNED"] = str(pathlib.Path(path).resolve())


def cmd_experiments(args) -> int:
    _apply_engine(args.engine)
    _apply_scheduling(args)
    _apply_tuned(getattr(args, "tuned", None))
    from .harness.registry import EXPERIMENTS, run_many

    requested = list(args.names or []) + list(getattr(args, "only", None) or [])
    if requested:
        names, unknown = _resolve_experiments(requested)
        if unknown:
            return _unknown_name_error(
                "experiment", unknown,
                list(EXPERIMENTS) + sorted(_experiment_aliases()),
            )
    else:
        names = list(EXPERIMENTS)
    csv_dir = pathlib.Path(args.csv) if args.csv else None
    if csv_dir:
        csv_dir.mkdir(parents=True, exist_ok=True)
    trace_to = _trace_target(getattr(args, "trace", None))
    jobs = args.jobs
    if trace_to is not None and jobs > 1:
        print("[trace] tracing forces --jobs 1 (worker processes would "
              "not be traced)", file=sys.stderr)
        jobs = 1
    tracer = None
    if trace_to is not None:
        from . import obs

        obs.REGISTRY.reset()
        tracer = obs.install()
    try:
        for name, result in zip(names, run_many(names, args.fast, jobs)):
            print(result.render())
            if csv_dir:
                (csv_dir / f"{name}.csv").write_text(result.to_csv())
    finally:
        if tracer is not None:
            from . import obs

            obs.uninstall()
            _finish_trace(tracer, trace_to)
    return 0


def cmd_bench(args) -> int:
    _apply_engine(args.engine)
    _apply_scheduling(args)
    from .harness import bench as bench_mod

    mode = "quick" if args.quick else "full"
    trace_to = _trace_target(getattr(args, "trace", None))
    tracer = None
    if trace_to is not None:
        from . import obs

        obs.REGISTRY.reset()
        tracer = obs.install()
    try:
        run = bench_mod.run_bench(
            mode,
            args.names or None,
            measure_speedup=not args.no_speedup,
            microbench=not args.names,
            workers=args.workers or 1,
            queue=args.queue or "inorder",
            tuned=getattr(args, "tuned", None),
            profile=getattr(args, "profile", False),
        )
    finally:
        if tracer is not None:
            from . import obs

            obs.uninstall()
            _finish_trace(tracer, trace_to)
    ok = True
    baselines = list(args.compare or [])
    if baselines:
        loaded = [(b, bench_mod.load_baseline(b)) for b in baselines]
        if len(loaded) > 1:
            bench_mod.trend(run, loaded)
        # gate against the newest (last-listed) baseline only
        ok = bench_mod.compare(run, loaded[-1][1], threshold=args.threshold)
    if args.out:
        out = pathlib.Path(args.out)
        doc = None
        if out.exists():
            try:
                doc = bench_mod.load_baseline(out)
            except (ValueError, OSError):
                doc = None
        doc = bench_mod.merge_run(doc, run)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"[bench] wrote {out}")
    else:
        print(json.dumps(bench_mod.merge_run(None, run), indent=2,
                         sort_keys=True))
    return 0 if ok else 1


def cmd_report(args) -> int:
    from .metrics import kernel_report

    benches = _suite_benchmarks()
    if args.benchmark not in benches:
        return _unknown_name_error("benchmark", args.benchmark, benches)
    bench = benches[args.benchmark]
    gs = (
        tuple(args.size)
        if args.size
        else bench.default_global_sizes[0]
    )
    ls = bench.default_local_size
    host, scalars = bench.make_data(gs, np.random.default_rng(0))
    rep = kernel_report(
        bench.kernel(),
        gs,
        ls,
        scalars={k: float(v) for k, v in scalars.items()},
        buffer_bytes={k: v.nbytes for k, v in host.items()},
    )
    print(rep.render())
    return 0


def _emit_one(name: str, target: str) -> str:
    """Source text for one benchmark (module-level for worker pickling)."""
    from .kernelir.codegen import to_opencl_c, to_openmp_c

    kernel = _suite_benchmarks()[name].kernel()
    return to_opencl_c(kernel) if target == "opencl" else to_openmp_c(kernel)


def cmd_emit(args) -> int:
    from .kernelir.codegen import CodegenError

    benches = _suite_benchmarks()
    unknown = [n for n in args.benchmarks if n not in benches]
    if unknown:
        return _unknown_name_error("benchmark", unknown, benches)
    try:
        if args.jobs > 1 and len(args.benchmarks) > 1:
            import concurrent.futures

            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(args.jobs, len(args.benchmarks))
            ) as pool:
                futures = [
                    pool.submit(_emit_one, n, args.target)
                    for n in args.benchmarks
                ]
                sources = [f.result() for f in futures]
        else:
            sources = [_emit_one(n, args.target) for n in args.benchmarks]
    except CodegenError as e:
        print(f"cannot emit: {e}", file=sys.stderr)
        return 1
    try:
        for src in sources:
            print(src)
    except BrokenPipeError:  # e.g. `| head`
        pass
    return 0


def cmd_jitdump(args) -> int:
    """Dump the kernel JIT's generated NumPy source for suite kernels."""
    from .kernelir.coarsen import CoarsenError
    from .kernelir.compile import UnsupportedKernelError, generated_source

    benches = _lint_benchmarks()
    if args.all or not args.benchmarks:
        names = list(benches)
    else:
        unknown = [n for n in args.benchmarks if n not in benches]
        if unknown:
            return _unknown_name_error("benchmark", unknown, benches)
        names = list(args.benchmarks)

    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    n_unsupported = 0
    coarsen = args.coarsen or 0
    if coarsen == 1:
        coarsen = 0  # K=1 is the identity transform
    if coarsen < 0:
        raise SystemExit(f"--coarsen must be >= 1, got {coarsen}")
    for name in names:
        kernel = benches[name].kernel()
        try:
            src = generated_source(
                kernel, count_ops=args.count_ops, coarsen=coarsen
            )
            reason = None
        except (UnsupportedKernelError, CoarsenError) as e:
            src = None
            reason = str(e)
            n_unsupported += 1
        if out_dir:
            path = out_dir / f"{kernel.name}.py"
            if src is None:
                path.with_suffix(".txt").write_text(
                    f"# interpreter fallback: {reason}\n"
                )
            else:
                path.write_text(src + "\n")
        else:
            header = f"# ===== {name} ({kernel.name}) ====="
            body = (src if src is not None
                    else f"# interpreter fallback: {reason}")
            print(f"{header}\n{body}\n")
    if out_dir:
        print(
            f"[jitdump] wrote {len(names) - n_unsupported} kernel(s) to "
            f"{out_dir} ({n_unsupported} interpreter fallback(s))"
        )
    return 0


def cmd_lint(args) -> int:
    """Static kernel lint over the suite.

    Exit-code contract (documented in docs/LINT.md): 0 = clean (notes do
    not fail the lint), 1 = error- or warning-severity diagnostics were
    found, 2 = usage error (unknown benchmark name).
    """
    import json as _json

    from .kernelir.dataflow import location_sort_key
    from .kernelir.verify import RULES

    benches = _lint_benchmarks()
    if args.all or not args.benchmarks:
        names = list(benches)
    else:
        unknown = [n for n in args.benchmarks if n not in benches]
        if unknown:
            return _unknown_name_error("benchmark", unknown, benches)
        names = list(args.benchmarks)

    #: flat, deterministically ordered: kernel name, then location (natural
    #: order), then rule id, then message — unrolled-site repeats are
    #: already deduplicated at emission time by the dataflow core
    diags = []
    clean = []
    suppressed = 0
    for name in sorted(names):
        report = benches[name].verify()
        suppressed += report.suppressed
        if not report.diagnostics:
            clean.append(name)
        diags.extend(report.diagnostics)
    diags.sort(key=lambda d: (
        d.kernel, location_sort_key(d.location), d.rule, d.message
    ))

    n_err = sum(d.severity == "error" for d in diags)
    n_warn = sum(d.severity == "warning" for d in diags)
    n_note = sum(d.severity == "note" for d in diags)
    shown = [d for d in diags if not (args.no_notes and d.severity == "note")]

    if args.format == "json":
        payload = {
            "diagnostics": [
                {
                    "kernel": d.kernel,
                    "rule": d.rule,
                    "severity": d.severity,
                    "location": d.location,
                    "message": d.message,
                    "hint": d.hint,
                }
                for d in shown
            ],
            "summary": {
                "kernels": len(names),
                "errors": n_err,
                "warnings": n_warn,
                "notes": n_note,
                "suppressed": suppressed,
                "clean": len(clean),
            },
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        sarif = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri":
                                "docs/LINT.md",
                            "rules": [
                                {
                                    "id": rid,
                                    "shortDescription": {"text": RULES[rid]},
                                }
                                for rid in sorted(RULES)
                            ],
                        }
                    },
                    "results": [
                        {
                            "ruleId": d.rule,
                            "level": d.severity,
                            "message": {"text": d.message},
                            "locations": [
                                {
                                    "logicalLocations": [
                                        {
                                            "fullyQualifiedName":
                                                f"{d.kernel}::{d.location}",
                                        }
                                    ]
                                }
                            ],
                            **(
                                {"properties": {"hint": d.hint}}
                                if d.hint else {}
                            ),
                        }
                        for d in shown
                    ],
                }
            ],
        }
        print(_json.dumps(sarif, indent=2, sort_keys=True))
    else:
        by_rule: dict = {}
        for d in shown:
            by_rule.setdefault(d.rule, []).append(d)
        for rule in sorted(by_rule):
            rdiags = by_rule[rule]
            print(f"{rule} — {RULES.get(rule, '')} ({len(rdiags)} finding(s))")
            for d in rdiags:
                for line in d.format().splitlines():
                    print(f"  {line}")
            print()
        print(
            f"linted {len(names)} kernel(s): {n_err} error(s), "
            f"{n_warn} warning(s), {n_note} note(s), "
            f"{suppressed} suppressed, {len(clean)} clean"
        )
    return 1 if (n_err or n_warn) else 0


def cmd_fuzz(args) -> int:
    from .kernelir.fuzz import run_fuzz

    return run_fuzz(
        seeds=args.seeds,
        base_seed=args.base_seed,
        quick=args.quick,
        verbose=args.verbose,
    )


def cmd_cache(args) -> int:
    """Inspect or wipe the persistent on-disk code cache."""
    from . import diskcache

    if args.action == "clear":
        partition = getattr(args, "partition", None)
        removed = diskcache.clear(partition)
        where = f" ({partition} partition)" if partition else ""
        print(f"[cache] removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {diskcache.cache_dir()}{where}")
        return 0

    # stats
    use = diskcache.usage()
    print(f"cache dir:     {use['dir']}")
    print(f"code version:  {use['code_version']}")
    print(f"entries:       {use['entries']} ({use['bytes']} bytes)")
    partitions = use.get("partitions") or {}
    for name in diskcache.PARTITIONS:
        info = partitions.get(name)
        if info:
            print(f"  {name + ':':<10} {info['entries']} entries, "
                  f"{info['bytes']} bytes")
    for ver, info in sorted(use["versions"].items()):
        cur = "  <- current" if ver == use["code_version"][:16] else ""
        print(f"  {ver}: {info['entries']} entries, "
              f"{info['bytes']} bytes{cur}")
    if not diskcache.enabled():
        print("note: REPRO_NO_CACHE is set; the disk cache is bypassed")
    return 0


def cmd_tune(args) -> int:
    """Auto-tune execution configurations over deterministic virtual time."""
    from . import tune as tune_mod

    benches = tune_mod.suite_benchmarks()
    names = list(args.benchmarks or [])
    unknown = [n for n in names if n not in benches]
    if unknown:
        return _unknown_name_error("benchmark", unknown, benches)
    gs = tuple(args.size) if args.size else None
    as_json = args.json

    if args.explain:
        selected = {n: benches[n] for n in (names or sorted(benches))}
        doc = tune_mod.explain_doc(selected, global_size=gs)
        text = json.dumps(doc, indent=2, sort_keys=True)
        if args.out:
            pathlib.Path(args.out).write_text(text + "\n")
            print(f"[tune] wrote {args.out}")
        print(text if as_json else tune_mod.render_explain(doc), end="")
        return 0

    # sweep logs go to stderr under --json so stdout stays parseable
    log = (lambda *a: print(*a, file=sys.stderr)) if as_json else print
    doc = tune_mod.tune(
        names or None,
        objective=args.objective,
        strategy=args.strategy,
        budget=args.budget,
        jobs=args.jobs,
        seed=args.seed,
        affinity=args.affinity,
        global_size=gs,
        log=log,
    )
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        log(f"[tune] wrote {args.out}")
    if as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(tune_mod.render_comparison(doc), end="")
    return 0


def _serve_config(args, persistent=None):
    from .serve import ServeConfig

    return ServeConfig(
        workers=args.workers or 0,
        tenant_queue_limit=args.tenant_queue or 0,
        global_queue_limit=args.queue_limit or 0,
        persistent=persistent,
    )


def _group_filename(key: tuple) -> str:
    """A stable CSV filename for one dedupe group (experiments keep their
    registry name so CI can diff against ``results/<name>.csv``)."""
    if key[0] == "experiment":
        _, name, fast = key
        return f"{name}{'.fast' if fast else ''}.csv"
    _, bench, gs, ls, coalesce, device = key
    gs_s = "x".join(map(str, gs)) if gs else "default"
    ls_s = "x".join(map(str, ls)) if ls else "NULL"
    return f"launch-{bench}-{device}-g{gs_s}-l{ls_s}-c{coalesce}.csv"


def cmd_serve(args) -> int:
    """Run the experiment-service daemon, or replay a batch against one."""
    import urllib.request

    import repro as repro_mod
    from .serve import start_server
    from .serve import loadgen

    # --workers here sizes the *service* pool (REPRO_SERVE_WORKERS), not
    # the engine pool, so route only the queue knob through the env
    if getattr(args, "queue", None) == "ooo":
        os.environ["REPRO_QUEUE"] = "ooo"
    host = args.host or repro_mod.env_value("REPRO_SERVE_HOST") or "127.0.0.1"

    if args.replay is None:
        port = (args.port if args.port is not None
                else repro_mod.env_int("REPRO_SERVE_PORT", 8752))
        # the long-lived daemon persists its result cache across restarts
        # (the serve partition); --no-persist or REPRO_SERVE_PERSIST=0
        # turn it off, --replay's ephemeral daemon stays process-local
        persistent = (
            False if args.no_persist
            else repro_mod.env_value("REPRO_SERVE_PERSIST") != "0"
        )
        server, thread = start_server(
            host, port, config=_serve_config(args, persistent=persistent),
            verbose=args.verbose,
        )
        print(f"[serve] listening on {server.url} "
              f"(POST /v1/submit, GET /healthz, GET /v1/metrics)")
        try:
            thread.join()
        except KeyboardInterrupt:
            print("\n[serve] shutting down", file=sys.stderr)
            server.close()
        return 0

    # --replay: ephemeral daemon + load generator + verification
    if args.replay == "builtin":
        spec = loadgen.default_batch(tenants=args.tenants, repeat=args.repeat)
    else:
        try:
            spec = json.loads(pathlib.Path(args.replay).read_text())
        except (OSError, ValueError) as e:
            print(f"cannot read batch {args.replay!r}: {e}", file=sys.stderr)
            return 2
    try:
        requests = loadgen.expand_batch(spec)
    except ValueError as e:
        print(f"bad batch: {e}", file=sys.stderr)
        return 2

    port = args.port if args.port is not None else 0
    server, _ = start_server(host, port, config=_serve_config(args),
                             verbose=args.verbose)
    print(f"[serve] replaying {len(requests)} request(s) against "
          f"{server.url}")
    try:
        responses = loadgen.replay(
            server.url, requests, concurrency=args.concurrency
        )
        expected = None
        if args.check:
            expected = {}
            for doc in requests:
                key = loadgen._group_key(doc)
                if key not in expected:
                    expected[key] = loadgen.serial_csv(doc)
            print(f"[serve] checked {len(expected)} group(s) against "
                  f"serial execution")
        report = loadgen.verify_replay(requests, responses, expected)
        print(loadgen.summarize_report(report))
        with urllib.request.urlopen(server.url + "/v1/metrics") as r:
            snapshot = json.loads(r.read().decode("utf-8"))
        assert snapshot.get("schema") == 1, "metrics snapshot is malformed"
        print(f"[serve] metrics snapshot: "
              f"{len(snapshot['metrics']['counters'])} counters, "
              f"{len(snapshot['metrics']['histograms'])} histograms")
        if args.out:
            out_dir = pathlib.Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            written = set()
            for doc, resp in zip(requests, responses):
                if not resp.get("ok"):
                    continue
                fname = _group_filename(loadgen._group_key(doc))
                if fname not in written:
                    (out_dir / fname).write_text(resp["csv"])
                    written.add(fname)
            print(f"[serve] wrote {len(written)} CSV(s) to {out_dir}")
    finally:
        server.close()
    return 0 if report["passed"] else 1


def cmd_trace(args) -> int:
    """Record / summarize / diff Chrome-trace recordings."""
    from . import obs

    if args.action == "record":
        _apply_engine(args.engine)
        from .harness.registry import EXPERIMENTS, run_many

        requested = list(args.names or [])
        if requested:
            names, unknown = _resolve_experiments(requested)
            if unknown:
                return _unknown_name_error(
                    "experiment", unknown,
                    list(EXPERIMENTS) + sorted(_experiment_aliases()),
                )
        else:
            names = list(EXPERIMENTS)
        obs.REGISTRY.reset()
        tracer = obs.install()
        try:
            for result in run_many(names, args.fast, 1):
                print(result.render())
        finally:
            obs.uninstall()
            _finish_trace(tracer, pathlib.Path(args.out))
        return 0

    if args.action == "summarize":
        try:
            doc = obs.load_trace(args.trace_file)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"cannot read trace: {e}", file=sys.stderr)
            return 1
        problems = obs.validate_trace(doc)
        if problems:
            print(f"{args.trace_file}: INVALID trace:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        try:
            print(obs.summarize(doc, top=args.top))
        except BrokenPipeError:  # e.g. `| head`
            pass
        return 0

    # diff
    docs = []
    for path in (args.trace_a, args.trace_b):
        try:
            docs.append(obs.load_trace(path))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"cannot read trace {path}: {e}", file=sys.stderr)
            return 1
    try:
        print(obs.diff_traces(docs[0], docs[1], top=args.top))
    except BrokenPipeError:  # e.g. `| head`
        pass
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_list = sub.add_parser("list", help="list experiments and benchmarks")
    p_list.set_defaults(fn=cmd_list)

    p_exp = sub.add_parser("experiments", aliases=["run"],
                           help="regenerate tables/figures")
    p_exp.add_argument("names", nargs="*")
    p_exp.add_argument("--fast", action="store_true")
    p_exp.add_argument("--csv", metavar="DIR")
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run experiments across N worker processes")
    p_exp.add_argument("--engine", choices=("compiled", "interp"),
                       help="functional execution engine (default: compiled; "
                            "equivalent to REPRO_NO_JIT=1 for 'interp')")
    p_exp.add_argument("--only", action="append", metavar="NAME",
                       help="run only this experiment; accepts registry keys "
                            "(fig7) or module names (fig7_transfer_api); "
                            "repeatable")
    p_exp.add_argument("--trace", metavar="FILE",
                       help="record the run as Chrome-trace JSON "
                            "(env: REPRO_TRACE); forces --jobs 1")
    p_exp.add_argument("--workers", type=int, metavar="N",
                       help="engine worker threads per process "
                            "(env: REPRO_WORKERS; default: auto)")
    p_exp.add_argument("--queue", choices=("inorder", "ooo"),
                       help="command-queue engine for functional execution "
                            "(env: REPRO_QUEUE; default: inorder/eager)")
    p_exp.add_argument("--tuned", metavar="FILE",
                       help="opt paper-default launches into the tuned "
                            "configurations from a 'repro tune' output file "
                            "(env: REPRO_TUNED)")
    p_exp.set_defaults(fn=cmd_experiments)

    p_bench = sub.add_parser(
        "bench", help="wall-clock benchmark with cache statistics"
    )
    p_bench.add_argument("names", nargs="*",
                         help="experiment subset (default: all)")
    p_bench.add_argument("--quick", action="store_true",
                         help="fast-mode experiments (CI smoke setting)")
    p_bench.add_argument("--out", metavar="FILE",
                         help="write/update a schema-1 bench JSON document")
    p_bench.add_argument("--compare", metavar="BASELINE", action="append",
                         help="compare against a committed baseline JSON; "
                              "repeat (oldest first) to print the trend "
                              "across baselines — gating uses the last one")
    p_bench.add_argument("--threshold", type=float, default=0.30,
                         help="allowed wall-clock regression (default 0.30)")
    p_bench.add_argument("--no-speedup", action="store_true",
                         help="skip the caches-disabled reference run")
    p_bench.add_argument("--engine", choices=("compiled", "interp"),
                         help="functional execution engine (default: compiled)")
    p_bench.add_argument("--trace", metavar="FILE",
                         help="record the bench run as Chrome-trace JSON "
                              "(env: REPRO_TRACE)")
    p_bench.add_argument("--workers", type=int, metavar="N",
                         help="run the suite across N worker processes and "
                              "report wall clock (env: REPRO_WORKERS)")
    p_bench.add_argument("--queue", choices=("inorder", "ooo"),
                         help="command-queue engine for functional execution "
                              "(env: REPRO_QUEUE; default: inorder/eager)")
    p_bench.add_argument("--tuned", metavar="FILE",
                         help="add a tuned-vs-default virtual-time section "
                              "from a 'repro tune' output file")
    p_bench.add_argument("--profile", action="store_true",
                         help="cProfile each phase (warm suite, uncached "
                              "suite, microbench) and print the top-20 "
                              "cumulative frames")
    p_bench.set_defaults(fn=cmd_bench)

    p_tune = sub.add_parser(
        "tune",
        help="search the execution-configuration space (workgroup size, "
             "coarsening, placement, transfer API) over virtual time",
    )
    p_tune.add_argument("benchmarks", nargs="*",
                        help="benchmark names (default: the whole suite)")
    p_tune.add_argument("--strategy",
                        choices=("grid", "hillclimb", "random", "shalving"),
                        default="grid",
                        help="search strategy (default: grid/exhaustive)")
    p_tune.add_argument("--budget", type=int, metavar="N",
                        help="max points a strategy may evaluate per "
                             "benchmark (default: the whole space)")
    p_tune.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="evaluate sweep points across N worker "
                             "processes (byte-identical results)")
    p_tune.add_argument("--seed", type=int, default=0,
                        help="seed for the random strategy (default: 0)")
    p_tune.add_argument("--objective", choices=("kernel", "app"),
                        default="kernel",
                        help="minimize kernel virtual time, or maximize the "
                             "paper's Eq (1) end-to-end throughput "
                             "(sweeps map-vs-copy)")
    p_tune.add_argument("--affinity", action="store_true",
                        help="also sweep workgroup-placement policies "
                             "(Section III-E affinity proposal)")
    p_tune.add_argument("--size", type=int, nargs="+", metavar="N",
                        help="global work size (default: Table II/III "
                             "input 1)")
    p_tune.add_argument("--explain", action="store_true",
                        help="print the per-kernel cycle-accounting report "
                             "(no sweep)")
    p_tune.add_argument("--json", action="store_true",
                        help="print the JSON document (sweep logs move to "
                             "stderr)")
    p_tune.add_argument("--out", metavar="FILE",
                        help="also write the JSON document here (the "
                             "--tuned input format)")
    p_tune.set_defaults(fn=cmd_tune)

    p_rep = sub.add_parser("report", help="kernel performance report")
    p_rep.add_argument("benchmark")
    p_rep.add_argument("--size", type=int, nargs="+",
                       help="global work size (default: Table II/III input 1)")
    p_rep.set_defaults(fn=cmd_report)

    p_emit = sub.add_parser(
        "emit", help="emit suite kernels as OpenCL C or C+OpenMP source"
    )
    p_emit.add_argument("benchmarks", nargs="+")
    p_emit.add_argument("--target", choices=("opencl", "openmp"),
                        default="opencl")
    p_emit.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="emit across N worker processes (same output)")
    p_emit.set_defaults(fn=cmd_emit)

    p_jit = sub.add_parser(
        "jitdump",
        help="dump the kernel JIT's generated NumPy source per kernel",
    )
    p_jit.add_argument("benchmarks", nargs="*",
                       help="benchmark names (default: all)")
    p_jit.add_argument("--all", action="store_true",
                       help="dump every suite kernel (the default)")
    p_jit.add_argument("--out", metavar="DIR",
                       help="write one <kernel>.py per kernel instead of "
                            "printing to stdout")
    p_jit.add_argument("--count-ops", action="store_true",
                       help="generate the dynamic-op-counting variant")
    p_jit.add_argument("--coarsen", type=int, metavar="K",
                       help="dump the thread-coarsened variant (factor K; "
                            "kernels where coarsening is illegal fall back)")
    p_jit.set_defaults(fn=cmd_jitdump)

    p_lint = sub.add_parser(
        "lint", help="static kernel verification (races, barriers, bounds)"
    )
    p_lint.add_argument("benchmarks", nargs="*",
                        help="benchmark names (default: all)")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every suite kernel (the default)")
    p_lint.add_argument("--no-notes", action="store_true",
                        help="hide note-severity diagnostics")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text; sarif emits "
                             "SARIF 2.1.0 for code-scanning UIs)")
    p_lint.set_defaults(fn=cmd_lint)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential kernel-IR fuzzing: random kernels must agree "
             "bit-for-bit across engines and never be unsoundly chunked",
    )
    p_fuzz.add_argument("--seeds", type=int, default=200,
                        help="number of random kernels (default: 200)")
    p_fuzz.add_argument("--base-seed", type=int, default=0,
                        help="first seed (kernel i uses base+i)")
    p_fuzz.add_argument("--quick", action="store_true",
                        help="smaller launches and skip the 4-worker rerun")
    p_fuzz.add_argument("--verbose", action="store_true",
                        help="print one line per generated kernel")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or wipe the persistent on-disk code cache",
    )
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    c_stats = cache_sub.add_parser(
        "stats", help="print cache location, entry counts, and bytes"
    )
    c_stats.set_defaults(fn=cmd_cache)
    c_clear = cache_sub.add_parser(
        "clear", help="delete every cached entry (all code versions)"
    )
    c_clear.add_argument("--partition",
                         choices=("kernels", "plans", "verify", "tune",
                                  "analysis", "serve"),
                         help="only clear this partition (e.g. reset sweep "
                              "stores without nuking compiled kernels)")
    c_clear.set_defaults(fn=cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant experiment service daemon (HTTP), or "
             "--replay a load-generator batch against an ephemeral one",
    )
    p_serve.add_argument("--host", metavar="ADDR",
                         help="bind address (env: REPRO_SERVE_HOST; "
                              "default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, metavar="P",
                         help="port (env: REPRO_SERVE_PORT; default 8752; "
                              "--replay defaults to an ephemeral port)")
    p_serve.add_argument("--workers", type=int, metavar="N",
                         help="service execution threads (env: "
                              "REPRO_SERVE_WORKERS; default: engine auto)")
    p_serve.add_argument("--queue-limit", type=int, metavar="N",
                         help="global admission queue limit (env: "
                              "REPRO_SERVE_QUEUE; default 256)")
    p_serve.add_argument("--tenant-queue", type=int, metavar="N",
                         help="per-tenant queue limit (env: "
                              "REPRO_SERVE_TENANT_QUEUE; default 64)")
    p_serve.add_argument("--queue", choices=("inorder", "ooo"),
                         help="command-queue engine for served launches "
                              "(env: REPRO_QUEUE)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each HTTP request to stderr")
    p_serve.add_argument("--no-persist", action="store_true",
                         help="do not persist the daemon's result cache to "
                              "the disk cache's serve partition (persistence "
                              "is on for the daemon by default; env: "
                              "REPRO_SERVE_PERSIST=0)")
    p_serve.add_argument("--replay", metavar="BATCH",
                         help="replay a batch JSON file ('builtin' = the "
                              "canned CI batch) instead of serving forever")
    p_serve.add_argument("--tenants", type=int, default=8, metavar="N",
                         help="tenant count for the builtin batch "
                              "(default 8)")
    p_serve.add_argument("--repeat", type=int, default=2, metavar="N",
                         help="builtin batch repetitions (default 2)")
    p_serve.add_argument("--concurrency", type=int, default=16, metavar="N",
                         help="replay client threads (default 16)")
    p_serve.add_argument("--check", action="store_true",
                         help="also verify each dedupe group against a "
                              "serial in-process run (byte-identical)")
    p_serve.add_argument("--out", metavar="DIR",
                         help="write one response CSV per dedupe group "
                              "(experiments: <name>.csv, diffable against "
                              "results/)")
    p_serve.set_defaults(fn=cmd_serve)

    p_trace = sub.add_parser(
        "trace",
        help="record / summarize / diff Chrome-trace (Perfetto) recordings",
    )
    trace_sub = p_trace.add_subparsers(dest="action", required=True)

    t_rec = trace_sub.add_parser(
        "record", help="run experiments with tracing and write a trace JSON"
    )
    t_rec.add_argument("names", nargs="*",
                       help="experiments (registry keys or module names; "
                            "default: all)")
    t_rec.add_argument("--out", metavar="FILE", default="trace.json",
                       help="trace output path (default: trace.json)")
    t_rec.add_argument("--fast", action="store_true")
    t_rec.add_argument("--engine", choices=("compiled", "interp"),
                       help="functional execution engine (default: compiled)")
    t_rec.set_defaults(fn=cmd_trace)

    t_sum = trace_sub.add_parser(
        "summarize", help="validate a trace and print its span summary"
    )
    t_sum.add_argument("trace_file")
    t_sum.add_argument("--top", type=int, default=25,
                       help="span rows to show (default 25)")
    t_sum.set_defaults(fn=cmd_trace)

    t_diff = trace_sub.add_parser(
        "diff", help="compare span times between two traces (B minus A)"
    )
    t_diff.add_argument("trace_a")
    t_diff.add_argument("trace_b")
    t_diff.add_argument("--top", type=int, default=25,
                        help="rows to show (default 25)")
    t_diff.set_defaults(fn=cmd_trace)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
