"""Content-addressed shared-memory segments: the zero-copy data plane.

``registry.pool_map`` used to re-pickle every input dataset into every
worker process on every call; for the Table II benchmarks that is ~130 MB
of host arrays serialized per job.  This module gives the repo what a CPU
OpenCL runtime gets from mapping one ``clCreateBuffer`` allocation into
every device thread: a dataset is **materialized once per machine**, placed
in a POSIX shared-memory segment whose name is a content address of the
producing key, and every other process maps it read-only with zero copies.

Two segment kinds share the machinery:

* **array segments** (:func:`publish_arrays` / :func:`attach_arrays`) hold
  one ``harness.bench_data`` entry — named numpy arrays plus the pickled
  scalar dict — keyed exactly like the in-memory data cache
  (``(_bench_key(bench), global_size)`` + the suite-source digest);
* **blob segments** (:func:`publish_blob` / :func:`take_blob`) spill one
  large pickled worker result; the consumer unlinks after reading, so a
  blob lives for exactly one parent/worker handoff.

Ownership and cleanup mirror :func:`repro.diskcache.sweep_stale_tmp`:

* the *creator* of a segment immediately takes manual ownership away from
  :mod:`multiprocessing.resource_tracker` (forked workers share the
  parent's tracker process, so the default register/unregister accounting
  double-counts and must not be trusted) and records a JSON sidecar under
  ``cache_dir()/shm/`` naming the owning pid;
* clean exits unlink every segment this pid created
  (:func:`release_all`, hooked into ``workers.shutdown_pools`` and
  ``atexit``);
* :func:`sweep_stale_segments` reclaims segments whose owner pid is dead
  (a killed worker) — it runs on every pool start.  Unlinking only removes
  the name: processes that already mapped the segment keep a valid view,
  so sweeping can never corrupt a live reader.

``REPRO_SHM=0`` disables the plane entirely (callers fall back to their
per-process paths); ``REPRO_SHM_MAX_MB`` caps the size of any single
segment (default 512).
"""

from __future__ import annotations

import atexit
import errno
import hashlib
import json
import os
import pickle
import struct
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = [
    "attach_arrays",
    "module_digest",
    "publish_arrays",
    "publish_blob",
    "release_all",
    "reset_shm_stats",
    "shm_enabled",
    "shm_stats",
    "sweep_stale_segments",
    "take_blob",
]

#: every segment name starts with this (the sweep and the CI leak check
#: match on it; never shorten it to something another tool could own)
_PREFIX = "repro-shm-"

_HEADER_LEN = struct.Struct("<Q")

#: segments created by this process: name -> (SharedMemory, owner pid).
#: The pid guard matters under fork: a worker inherits the parent's dict
#: and must not unlink the parent's segments at its own exit.
_owned: Dict[str, Tuple[object, int]] = {}

#: segments this process mapped (kept open for the process lifetime —
#: numpy views into the mapping may outlive any cache entry)
_attached: Dict[str, object] = {}

#: in-process attach refcounts per segment (diagnostics; views share maps)
_refs: Dict[str, int] = {}

_STATS = {
    "published": 0,
    "publish_races": 0,
    "attach_hits": 0,
    "attach_misses": 0,
    "bytes_mapped": 0,
    "blobs_published": 0,
    "blobs_taken": 0,
    "segments_swept": 0,
    "errors": 0,
}


def shm_enabled() -> bool:
    """The zero-copy plane honors its own kill switch (default on)."""
    import repro

    return repro.env_value("REPRO_SHM") != "0"


_IS_WORKER = False


def mark_worker_process() -> None:
    """Flag this process as a pool worker (set right after fork).

    Dataset *publishing* only pays off when sibling processes can attach;
    callers use :func:`is_worker_process` to skip the publish memcpy in
    single-process runs.
    """
    global _IS_WORKER
    _IS_WORKER = True


def is_worker_process() -> bool:
    return _IS_WORKER


def max_segment_bytes() -> int:
    """Per-segment size cap from ``REPRO_SHM_MAX_MB`` (default 512 MB)."""
    import repro

    mb = repro.env_int("REPRO_SHM_MAX_MB", 512)
    return max(1, mb) * (1 << 20)


def shm_stats() -> dict:
    out = dict(_STATS)
    out["owned"] = len(_owned)
    out["attached"] = len(_attached)
    return out


def reset_shm_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


@lru_cache(maxsize=None)
def module_digest(modname: str) -> str:
    """Short digest of a module's source file — folded into dataset keys so
    an edited ``make_data`` never aliases a stale segment published by an
    older checkout (same discipline as ``diskcache.code_version``)."""
    import importlib

    try:
        mod = importlib.import_module(modname)
        data = Path(mod.__file__).read_bytes()
    except Exception:
        data = modname.encode()
    return hashlib.sha1(data).hexdigest()[:12]


def _segment_name(key: tuple) -> str:
    return _PREFIX + hashlib.sha1(repr(key).encode()).hexdigest()[:24]


def _sidecar_dir() -> Path:
    from . import diskcache

    return diskcache.cache_dir() / "shm"


def _write_sidecar(name: str, kind: str) -> None:
    try:
        d = _sidecar_dir()
        d.mkdir(parents=True, exist_ok=True)
        tmp = d / f".{name}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump({"pid": os.getpid(), "kind": kind,
                       "created": time.time()}, f)
        os.replace(tmp, d / f"{name}.json")
    except OSError:
        _STATS["errors"] += 1


def _remove_sidecar(name: str) -> None:
    try:
        (_sidecar_dir() / f"{name}.json").unlink()
    except OSError:
        pass


def _untrack(seg) -> None:
    """Take ownership away from the (fork-shared) resource tracker."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def _create(name: str, size: int, kind: str):
    """Create + claim one segment, or ``None`` when it already exists."""
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        _STATS["publish_races"] += 1
        return None
    except OSError:
        _STATS["errors"] += 1
        return None
    _untrack(seg)
    _owned[name] = (seg, os.getpid())
    _write_sidecar(name, kind)
    return seg


def _attach(name: str):
    """Map an existing segment (cached for the process lifetime)."""
    seg = _attached.get(name)
    if seg is not None:
        _refs[name] = _refs.get(name, 0) + 1
        return seg
    entry = _owned.get(name)
    if entry is not None:
        _refs[name] = _refs.get(name, 0) + 1
        return entry[0]
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return None
    except ValueError:
        # racing publisher: segment created but not yet sized (mmap of an
        # empty file) — treat as a miss, the caller generates its own copy
        return None
    _untrack(seg)
    _attached[name] = seg
    _refs[name] = _refs.get(name, 0) + 1
    _STATS["bytes_mapped"] += seg.size
    return seg


# -- array segments (bench input datasets) ----------------------------------


def publish_arrays(key: tuple, arrays: Dict[str, "object"],
                   scalars=None) -> bool:
    """Place named arrays + a pickled scalar dict into one shared segment.

    Returns True when the dataset is available under ``key`` afterwards
    (freshly published *or* already present); False when the plane is off,
    the dataset exceeds the segment cap, or a non-array value slips in.
    """
    import numpy as np

    if not shm_enabled():
        return False
    table = []
    offset = 0
    blob = pickle.dumps(scalars if scalars is not None else {})
    for aname, a in arrays.items():
        if not isinstance(a, np.ndarray):
            return False
        a = np.ascontiguousarray(a)
        offset = (offset + 63) & ~63
        table.append({"name": aname, "dtype": a.dtype.str,
                      "shape": list(a.shape), "offset": offset,
                      "nbytes": int(a.nbytes)})
        offset += a.nbytes
    offset = (offset + 63) & ~63
    header = json.dumps({"arrays": table,
                         "pickle": [offset, len(blob)]}).encode()
    base = _HEADER_LEN.size + len(header)
    total = base + offset + len(blob)
    if total > max_segment_bytes():
        return False
    name = _segment_name(key)
    seg = _create(name, total, "data")
    if seg is None:
        # racing publisher (or a previous run) already materialized it
        return name in _owned or _probe(name)
    try:
        buf = seg.buf
        buf[_HEADER_LEN.size:base] = header
        for rec, a in zip(table, arrays.values()):
            a = np.ascontiguousarray(a)
            start = base + rec["offset"]
            buf[start:start + rec["nbytes"]] = a.tobytes()
        pstart = base + offset
        buf[pstart:pstart + len(blob)] = blob
        # the length field is the publication barrier: written last, so a
        # concurrent attacher seeing it nonzero sees complete content
        buf[:_HEADER_LEN.size] = _HEADER_LEN.pack(len(header))
    except Exception:
        _STATS["errors"] += 1
        _release_owned(name)
        return False
    _STATS["published"] += 1
    return True


def _probe(name: str) -> bool:
    return _attach(name) is not None


def attach_arrays(key: tuple):
    """Zero-copy read-only views of a published dataset, or ``None``.

    Returns ``(arrays, scalars)`` with every array a read-only numpy view
    into the mapping — no bytes are copied.  The mapping stays open for
    the process lifetime, so views are safe to cache and hand out.
    """
    import numpy as np

    if not shm_enabled():
        return None
    seg = _attach(_segment_name(key))
    if seg is None:
        _STATS["attach_misses"] += 1
        return None
    try:
        buf = seg.buf
        (hlen,) = _HEADER_LEN.unpack(bytes(buf[:_HEADER_LEN.size]))
        if hlen == 0:
            # publisher still copying (the length field is written last)
            _STATS["attach_misses"] += 1
            return None
        base = _HEADER_LEN.size + hlen
        header = json.loads(bytes(buf[_HEADER_LEN.size:base]))
        arrays = {}
        for rec in header["arrays"]:
            v = np.ndarray(tuple(rec["shape"]), dtype=np.dtype(rec["dtype"]),
                           buffer=buf, offset=base + rec["offset"])
            v.setflags(write=False)
            arrays[rec["name"]] = v
        poff, plen = header["pickle"]
        scalars = pickle.loads(bytes(buf[base + poff:base + poff + plen]))
    except Exception:
        _STATS["errors"] += 1
        _STATS["attach_misses"] += 1
        return None
    _STATS["attach_hits"] += 1
    return arrays, scalars


# -- blob segments (large worker-result spill) ------------------------------


def publish_blob(data: bytes) -> Optional[str]:
    """Spill one byte payload; returns the segment name or ``None``.

    Content-addressed: two workers producing identical payloads share one
    segment.  The consumer (:func:`take_blob`) unlinks after reading.
    """
    if not shm_enabled() or len(data) > max_segment_bytes():
        return None
    name = _PREFIX + "b" + hashlib.sha1(data).hexdigest()[:24]
    total = _HEADER_LEN.size + len(data)
    seg = _create(name, total, "blob")
    if seg is None:
        return name if _probe(name) else None
    try:
        seg.buf[:_HEADER_LEN.size] = _HEADER_LEN.pack(len(data))
        seg.buf[_HEADER_LEN.size:total] = data
    except Exception:
        _STATS["errors"] += 1
        _release_owned(name)
        return None
    # a blob must outlive its creator until the consumer takes it: drop it
    # from this process's exit cleanup and let take_blob / the sweep unlink
    _owned.pop(name, None)
    _STATS["blobs_published"] += 1
    return name


def take_blob(name: str) -> Optional[bytes]:
    """Read a spilled payload and unlink the segment (consume-once)."""
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return None
    # no _untrack here: attach registered the name, unlink unregisters it —
    # the pair keeps the fork-shared resource tracker's cache balanced
    try:
        (n,) = _HEADER_LEN.unpack(bytes(seg.buf[:_HEADER_LEN.size]))
        data = bytes(seg.buf[_HEADER_LEN.size:_HEADER_LEN.size + n])
    except Exception:
        _STATS["errors"] += 1
        data = None
    try:
        seg.close()
        seg.unlink()
    except OSError:
        pass
    _remove_sidecar(name)
    if data is not None:
        _STATS["blobs_taken"] += 1
    return data


# -- lifecycle ---------------------------------------------------------------


def _release_owned(name: str) -> None:
    entry = _owned.pop(name, None)
    if entry is None:
        return
    seg, pid = entry
    if pid != os.getpid():
        return
    try:
        seg.close()
    except BufferError:
        pass  # live views exist; unlink alone removes the name
    except OSError:
        pass
    try:
        # balance the tracker cache: unlink() sends an unregister, but the
        # name was untracked at create — re-register first so the shared
        # resource-tracker process doesn't log a KeyError
        from multiprocessing import resource_tracker

        resource_tracker.register(seg._name, "shared_memory")
    except Exception:
        pass
    try:
        seg.unlink()
    except (FileNotFoundError, OSError):
        pass
    _remove_sidecar(name)


def release_all() -> None:
    """Unlink every segment this pid created and drop attachments.

    Called by ``workers.shutdown_pools()`` and at interpreter exit; safe to
    call repeatedly.  Attached mappings with exported numpy views survive
    (closing them would invalidate live arrays); only the names go away.
    """
    for name in [n for n, (_, pid) in list(_owned.items())
                 if pid == os.getpid()]:
        _release_owned(name)
    for name, seg in list(_attached.items()):
        try:
            seg.close()
        except BufferError:
            continue  # numpy views still alive: keep the mapping
        except OSError:
            pass
        _attached.pop(name, None)
        _refs.pop(name, None)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError as e:
        return e.errno != errno.ESRCH
    return True


def sweep_stale_segments(max_age_seconds: float = 3600.0) -> int:
    """Reclaim segments whose owning process is gone.

    The SHM mirror of :func:`repro.diskcache.sweep_stale_tmp`: a worker
    killed between create and exit leaves its segment behind; the next
    pool start sweeps it.  Segments with a live owner are never touched,
    and sidecar-less ``/dev/shm`` residue is removed once old enough (a
    crash exactly between create and sidecar publish).  Returns the number
    of segments unlinked.
    """
    from multiprocessing import shared_memory

    removed = 0
    d = _sidecar_dir()
    if d.is_dir():
        for sc in list(d.glob("*.json")):
            name = sc.stem
            try:
                with open(sc, "r", encoding="utf-8") as f:
                    meta = json.load(f)
                pid = int(meta.get("pid", -1))
            except (OSError, ValueError):
                pid = -1
            if pid == os.getpid() or (pid > 0 and _pid_alive(pid)):
                continue
            try:
                # attach registers with the tracker; unlink unregisters —
                # a balanced pair, so no _untrack in between
                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()
                removed += 1
            except (FileNotFoundError, OSError):
                pass
            _remove_sidecar(name)
        for tmp in list(d.glob("*.tmp")):
            try:
                if tmp.stat().st_mtime < time.time() - max_age_seconds:
                    tmp.unlink()
            except OSError:
                pass
    devshm = Path("/dev/shm")
    if devshm.is_dir():
        cutoff = time.time() - max_age_seconds
        for f in devshm.glob(_PREFIX + "*"):
            if f.name in _owned or f.name in _attached:
                continue
            if (d / f"{f.name}.json").exists():
                continue  # has an owner record; handled above
            try:
                if f.stat().st_mtime < cutoff:
                    f.unlink()
                    removed += 1
            except OSError:
                pass
    _STATS["segments_swept"] += removed
    return removed


atexit.register(release_all)
