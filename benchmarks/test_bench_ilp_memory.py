"""Benchmarks regenerating the ILP and memory/transfer figures (F6-F8)."""

from repro.harness.experiments import (
    fig6_ilp,
    fig7_transfer_api,
    fig8_parboil_transfer,
    flags_no_effect,
)


def test_fig6_ilp(benchmark):
    """Figure 6: CPU scales with ILP, GPU flat."""
    r = benchmark(fig6_ilp.run, True)
    cpu = [r.get("CPU").points[str(k)] for k in (1, 2, 3, 4, 5)]
    gpu = [r.get("GPU").points[str(k)] for k in (1, 2, 3, 4, 5)]
    assert cpu == sorted(cpu) and cpu[4] > 3 * cpu[0]
    assert max(gpu) / min(gpu) < 1.05


def test_fig7_transfer_api(benchmark):
    """Figure 7: mapping superior on every flag combination."""
    r = benchmark(fig7_transfer_api.run, True)
    for s in r.series:
        assert all(v > 1.0 for v in s.points.values()), s.label


def test_fig8_parboil_transfer(benchmark):
    """Figure 8: Parboil transfer times, map < copy in both directions."""
    r = benchmark(fig8_parboil_transfer.run, True)
    for app in r.x_labels:
        assert (r.get("Mapping (host to device)").points[app]
                < r.get("Copying (host to device)").points[app])
        assert (r.get("Mapping (device to host)").points[app]
                < r.get("Copying (device to host)").points[app])


def test_flags_null_result(benchmark):
    """Section III-D text: allocation location / access flags: no effect."""
    r = benchmark(flags_no_effect.run, True)
    for x in r.x_labels:
        vals = [s.points[x] for s in r.series]
        assert (max(vals) - min(vals)) / max(vals) < 0.01
