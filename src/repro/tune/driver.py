"""The search driver behind ``python -m repro tune``.

An archgym-style gym-over-simulator loop: a strategy proposes knob
points, the oracle evaluates each one as deterministic *virtual time*
through the full minicl measurement path (the same
:func:`repro.harness.runner.measure_kernel` every experiment uses), and
every measurement lands in the content-addressed sweep store — so a
repeated sweep executes zero points, a widened sweep executes only the
delta, and ``jobs=N`` fan-out (the ``run_many`` process-pool idiom)
produces byte-identical results to a serial run.

Before sweeping, the driver runs the cycle-accounting report
(:mod:`repro.tune.report`) and prunes dead axes — a bandwidth-bound
kernel with negligible per-workitem overhead never gets its coarsening
axis swept, because coarsening only amortizes that overhead.

Objectives:

* ``kernel`` — mean virtual ns per launch (minimize); affinity-policy
  points are measured as the mean of three *repeated* launches on an
  :class:`~repro.minicl.ext.AffinityCommandQueue`, so cross-launch cache
  residency (the paper's Section III-E proposal) counts;
* ``app`` — the paper's Equation (1) end-to-end throughput including
  host<->device transfers (maximize), which makes the map-vs-copy knob
  meaningful.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..harness.registry import pool_map
from ..harness.runner import (
    cpu_dut,
    kernel_ir,
    make_buffers,
    measure_app_throughput,
    measure_kernel,
)
from ..suite.base import Benchmark, _largest_divisor_at_most, scale_global_size
from .report import cycle_accounting
from .space import (
    KnobPoint,
    default_point,
    default_space,
    suite_benchmarks,
)
from .store import TuneStore, model_version, point_key
from .strategies import STRATEGIES

__all__ = [
    "SCHEMA",
    "reset_tune_stats",
    "tune",
    "tune_stats",
    "tuned_comparison",
]

SCHEMA = 1

#: improvements below this fraction are noise-level float differences
_MIN_IMPROVEMENT = 1e-6

_STATS = {
    "sweeps": 0,
    "points_requested": 0,
    "points_executed": 0,
    "points_cached": 0,
    "benchmarks_tuned": 0,
    "benchmarks_improved": 0,
}


def tune_stats() -> dict:
    """This process's search activity (absorbed by ``repro.obs``)."""
    return dict(_STATS)


def reset_tune_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


# -- point evaluation (runs in worker processes) ----------------------------

#: per-process device under test, shared across evaluations
_DUT = None


def _get_dut():
    global _DUT
    if _DUT is None:
        _DUT = cpu_dut()
    return _DUT


def _legal_local(
    local_size: Optional[Tuple[int, ...]], launch_gs: Tuple[int, ...]
) -> Optional[Tuple[int, ...]]:
    """Shrink a candidate workgroup to a legal divisor of the launch size.

    ``None`` stays ``None`` (the runtime's NULL policy is itself a
    candidate).  Mirrors :meth:`Benchmark.resolved_launch`.
    """
    if local_size is None:
        return None
    ls = tuple(min(int(l), g) for l, g in zip(local_size, launch_gs))
    return tuple(
        _largest_divisor_at_most(g, l) for g, l in zip(launch_gs, ls)
    )


def _measure_affinity(bench: Benchmark, gs, point: KnobPoint) -> float:
    """Mean virtual ns over three warmed launches on the affinity queue."""
    from ..minicl.ext import AffinityCommandQueue

    dut = _get_dut()
    kir = kernel_ir(bench, point.coalesce)
    launch_gs = scale_global_size(gs, point.coalesce)
    ls = _legal_local(point.local_size, launch_gs)
    buffers, scalars, _ = make_buffers(dut, bench, gs)
    scalars = {**scalars, **bench.scalars_for(point.coalesce)}
    program = dut.build_program(kir)
    k = program.create_kernel(kir.name)
    k.set_args(*[
        buffers[p.name] if p.name in buffers else scalars[p.name]
        for p in kir.params
    ])
    # a fresh queue per point: residency warming must not leak between
    # sweep points, only between this point's repeated launches
    q = AffinityCommandQueue(dut.context)
    model = q.device.model
    resolved_ls = model.choose_local_size(launch_gs, ls)
    num_wgs = 1
    for g, l in zip(launch_gs, resolved_ls):
        num_wgs *= math.ceil(g / l)
    cores = model.spec.logical_cores
    if point.affinity == "blocked":
        placement = lambda w: min(cores - 1, (w * cores) // max(1, num_wgs))
    else:  # round_robin
        placement = lambda w: w % cores
    t0 = q.now_ns
    invocations = 3
    for _ in range(invocations):
        q.enqueue_nd_range_kernel(
            k, launch_gs, ls, workgroup_affinity=placement
        )
    return (q.now_ns - t0) / invocations


def _evaluate(bench: Benchmark, gs, point: KnobPoint, objective: str) -> dict:
    """Measure one knob point; pure function of (bench, gs, point)."""
    from ..harness.runner import tuned_overlay_disabled

    with tuned_overlay_disabled():
        return _evaluate_inner(bench, gs, point, objective)


def _evaluate_inner(
    bench: Benchmark, gs, point: KnobPoint, objective: str
) -> dict:
    gs = tuple(int(g) for g in gs)
    if objective == "app":
        thr = measure_app_throughput(
            _get_dut(), bench, gs, _legal_local(point.local_size, gs),
            transfer_api=point.transfer_api,
        )
        return {"value": thr, "units": "items_per_ns", "score": -thr}
    if point.affinity != "none":
        mean_ns = _measure_affinity(bench, gs, point)
        return {
            "value": mean_ns, "units": "ns", "invocations": 3,
            "score": mean_ns,
        }
    launch_gs = scale_global_size(gs, point.coalesce)
    m = measure_kernel(
        _get_dut(), bench, gs,
        _legal_local(point.local_size, launch_gs),
        coalesce=point.coalesce,
    )
    return {
        "value": m.mean_ns, "units": "ns", "invocations": m.invocations,
        "score": m.mean_ns,
    }


def _eval_point_job(
    bench_name: str, point_payload: dict, gs: tuple, objective: str
) -> dict:
    """Module-level so ``pool_map`` worker processes can unpickle it."""
    bench = suite_benchmarks()[bench_name]
    return _evaluate(bench, gs, KnobPoint.from_payload(point_payload), objective)


# -- the oracle -------------------------------------------------------------


def _fidelity_rungs(gs: Tuple[int, ...]) -> List[Tuple[int, ...]]:
    """Problem-size rungs for successive halving (low first, full last).

    Shrunken sizes stay multiples of 4096 in dim 0 so every coarsening
    factor and workgroup candidate remains legal at every rung.
    """
    rungs: List[Tuple[int, ...]] = []
    for div in (4, 2):
        n0 = (gs[0] // div) // 4096 * 4096
        cand = (n0,) + gs[1:]
        if n0 >= 4096 and cand != gs and cand not in rungs:
            rungs.append(cand)
    rungs.append(gs)
    return rungs


class _Oracle:
    """Content-addressed evaluation of knob points at several fidelities."""

    def __init__(self, bench: Benchmark, gs: Tuple[int, ...],
                 objective: str, store: TuneStore, jobs: int):
        self.bench = bench
        self.gs = gs
        self.objective = objective
        self.store = store
        self.jobs = jobs
        self.rungs = _fidelity_rungs(gs)
        #: full-fidelity results in first-evaluation order
        self.full: Dict[KnobPoint, dict] = {}

    def evaluate(self, points: Sequence[KnobPoint], *,
                 fidelity: int = -1) -> List[dict]:
        points = list(points)
        gs = self.rungs[fidelity]
        _STATS["points_requested"] += len(points)
        keys = [
            point_key(
                self.bench, gs, p, self.objective,
                kernel_ir(self.bench, p.coalesce).fingerprint(),
            )
            for p in points
        ]
        results: Dict[int, dict] = {}
        misses: List[int] = []
        for i, key in enumerate(keys):
            cached = self.store.get(key)
            if cached is None:
                misses.append(i)
            else:
                results[i] = cached
        if misses:
            out = pool_map(
                _eval_point_job,
                [
                    (self.bench.name, points[i].to_payload(), gs,
                     self.objective)
                    for i in misses
                ],
                self.jobs,
            )
            for i, r in zip(misses, out):
                self.store.put(keys[i], r)
                results[i] = r
        _STATS["points_executed"] += len(misses)
        _STATS["points_cached"] += len(points) - len(misses)
        ordered = [results[i] for i in range(len(points))]
        if tuple(gs) == tuple(self.gs):
            for p, r in zip(points, ordered):
                self.full.setdefault(p, r)
        return ordered


# -- the driver -------------------------------------------------------------


def _tune_one(
    bench: Benchmark,
    *,
    objective: str,
    strategy: str,
    budget: Optional[int],
    jobs: int,
    seed: int,
    affinity: bool,
    store: TuneStore,
    global_size: Optional[Sequence[int]] = None,
    log=print,
) -> dict:
    gs = tuple(
        int(g) for g in (global_size or bench.default_global_sizes[0])
    )
    acct = cycle_accounting(bench, gs)
    space = default_space(
        bench, gs,
        objective=objective,
        affinity=affinity,
        sweep_coalesce=acct["pruning"]["sweep_coalesce"],
    )
    dpoint = default_point(bench, objective)
    oracle = _Oracle(bench, gs, objective, store, jobs)
    STRATEGIES[strategy](space, oracle, dpoint, budget, seed)
    # the paper default is always measured at full fidelity, whatever the
    # strategy visited (a store hit when the strategy already saw it)
    default_result = oracle.evaluate([dpoint])[0]
    best_point, best_result = min(
        oracle.full.items(), key=lambda pr: pr[1]["score"]
    )
    improved = (
        best_result["score"]
        < default_result["score"] * (1.0 - _MIN_IMPROVEMENT)
    )
    if not improved:
        best_point, best_result = dpoint, default_result
    if best_result["units"] == "ns":
        speedup = (
            default_result["value"] / best_result["value"]
            if best_result["value"] > 0 else 0.0
        )
    else:
        speedup = (
            best_result["value"] / default_result["value"]
            if default_result["value"] > 0 else 0.0
        )
    _STATS["benchmarks_tuned"] += 1
    if improved:
        _STATS["benchmarks_improved"] += 1
    log(
        f"[tune] {bench.name}: {len(oracle.full)} point(s) at full size, "
        f"best {best_point.describe()} "
        f"({speedup:.2f}x vs paper default)"
    )
    return {
        "global_size": list(gs),
        "objective": objective,
        "strategy": strategy,
        "space_size": space.size(),
        "evaluated_points": len(oracle.full),
        "default": {
            "point": dpoint.to_payload(), "result": default_result,
        },
        "best": {
            "point": best_point.to_payload(), "result": best_result,
        },
        "speedup": round(speedup, 4),
        "improved": improved,
        "pruning": acct["pruning"],
    }


def tune(
    names: Optional[Sequence[str]] = None,
    *,
    objective: str = "kernel",
    strategy: str = "grid",
    budget: Optional[int] = None,
    jobs: int = 1,
    seed: int = 0,
    affinity: bool = False,
    global_size: Optional[Sequence[int]] = None,
    log=print,
) -> dict:
    """Tune several benchmarks; returns the JSON-ready sweep document.

    The document doubles as the ``--tuned`` opt-in file: ``configs``
    holds, per benchmark, the paper-default and tuned points with their
    measured objectives; ``store`` reports how many points this sweep
    loaded from the content-addressed store vs actually executed.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; known: {sorted(STRATEGIES)}"
        )
    if objective not in ("kernel", "app"):
        raise ValueError(f"unknown objective {objective!r}")
    benches = suite_benchmarks()
    names = list(names) if names else list(benches)
    unknown = [n for n in names if n not in benches]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {unknown!r}; known: {sorted(benches)}"
        )
    _STATS["sweeps"] += 1
    store = TuneStore()
    configs = {
        name: _tune_one(
            benches[name],
            objective=objective, strategy=strategy, budget=budget,
            jobs=jobs, seed=seed, affinity=affinity, store=store,
            global_size=global_size, log=log,
        )
        for name in names
    }
    improved = sum(1 for c in configs.values() if c["improved"])
    log(
        f"[tune] {improved}/{len(configs)} benchmark(s) beat the paper "
        f"default; store: {store.hits} hit(s), {store.misses} executed"
    )
    return {
        "schema": SCHEMA,
        "objective": objective,
        "strategy": strategy,
        "model_version": model_version()[:16],
        "configs": configs,
        "store": store.stats(),
    }


# -- the --tuned comparison (used by ``repro bench --tuned``) ---------------


def tuned_comparison(path, log=print) -> dict:
    """Re-measure default vs tuned virtual time for a committed config file.

    Returns ``{benchmark: {"default_ns", "tuned_ns", "speedup", "point"}}``
    — every measurement goes through the content-addressed store, so a
    warm comparison executes nothing.
    """
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported tuned-config schema {doc.get('schema')!r}"
        )
    benches = suite_benchmarks()
    store = TuneStore()
    out: Dict[str, dict] = {}
    for name in sorted(doc.get("configs", {})):
        if name not in benches:
            log(f"[tune] {name}: unknown benchmark in {path}; skipped")
            continue
        cfg = doc["configs"][name]
        bench = benches[name]
        gs = tuple(int(g) for g in cfg["global_size"])
        objective = cfg.get("objective", "kernel")
        oracle = _Oracle(bench, gs, objective, store, jobs=1)
        dres, tres = oracle.evaluate([
            KnobPoint.from_payload(cfg["default"]["point"]),
            KnobPoint.from_payload(cfg["best"]["point"]),
        ])
        speedup = (
            dres["value"] / tres["value"]
            if tres["units"] == "ns" and tres["value"] > 0
            else (tres["value"] / dres["value"] if dres["value"] > 0 else 0.0)
        )
        out[name] = {
            "default": round(dres["value"], 3),
            "tuned": round(tres["value"], 3),
            "units": tres["units"],
            "speedup": round(speedup, 4),
            "point": cfg["best"]["point"],
        }
    return out
