"""Wall-clock benchmark harness: ``python -m repro bench``.

Times the experiment suite (host wall-clock, not simulated time), reports
per-cache-family hit rates, runs a pair of cache-sensitive microbenchmarks,
and — unless disabled — re-runs the suite with every launch-plan cache
bypassed to measure the end-to-end caching speedup.

Results serialize to JSON (``BENCH_2.json`` in the repo keeps the committed
baseline) as ``{"schema": 1, "runs": {mode: run}}`` with one run per mode
(``full``/``quick``).  :func:`compare` checks a fresh run against the
committed baseline of the *same* mode and flags wall-clock regressions
beyond a threshold — the CI bench smoke job fails on that.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

from .. import plancache

__all__ = ["SCHEMA", "compare", "load_baseline", "merge_run", "run_bench",
           "trend"]

SCHEMA = 1


def _time_suite(names: Sequence[str], fast: bool) -> Dict[str, float]:
    """Wall-clock seconds per experiment (serial, in-process)."""
    from .registry import run_experiment

    out: Dict[str, float] = {}
    for name in names:
        t0 = time.perf_counter()
        run_experiment(name, fast=fast)
        out[name] = time.perf_counter() - t0
    return out


def _microbench() -> Dict[str, dict]:
    """Per-call latency of the two hottest cached paths, hit vs. miss.

    Uses MBench1 (a pure-compute kernel with one launch shape) so numbers
    reflect cache behaviour rather than data-size effects.
    """
    import numpy as np

    from ..minicl.platform import cpu_platform
    from ..suite import mbench_by_name

    bench = mbench_by_name("MBench1")
    kernel = bench.kernel()
    gs = bench.default_global_sizes[0]
    ls = bench.default_local_size
    host, scalars = bench.make_data(gs, np.random.default_rng(0))
    buffer_bytes = {k: int(v.nbytes) for k, v in host.items()}

    model = cpu_platform().devices[0].model
    rounds = 50

    def per_call_us(fn, n: int) -> float:
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - t0) / n * 1e6

    def cost():
        model.kernel_cost(kernel, gs, ls, scalars=scalars,
                          buffer_bytes=buffer_bytes)

    cost()  # prime
    hit_us = per_call_us(cost, rounds)
    with plancache.caching_disabled():
        miss_us = per_call_us(cost, 5)

    from ..kernelir.interp import Interpreter

    small_gs, small_ls = (4096,), (256,)
    small_host, small_sc = bench.make_data(small_gs, np.random.default_rng(0))

    def interp():
        bufs = {k: v.copy() for k, v in small_host.items()}
        Interpreter().launch(kernel, small_gs, small_ls,
                             buffers=bufs, scalars=small_sc)

    interp()  # prime the id-grid cache
    interp_hit_us = per_call_us(interp, 10)
    with plancache.caching_disabled():
        interp_miss_us = per_call_us(interp, 10)

    # compiled engine vs tree-walk interpreter on the same launch
    from ..kernelir import compile as klcompile

    def compiled():
        bufs = {k: v.copy() for k, v in small_host.items()}
        ck = klcompile.get_compiled(kernel)
        if ck is None:  # pragma: no cover - MBench kernels always compile
            return interp()
        ck.launch(small_gs, small_ls, buffers=bufs, scalars=small_sc)

    compiled()  # prime the compile cache
    compiled_us = per_call_us(compiled, 10)

    return {
        "engine_launch_us": {
            "compiled": round(compiled_us, 2),
            "interp": round(interp_hit_us, 2),
            "speedup": (
                round(interp_hit_us / compiled_us, 2)
                if compiled_us > 0 else 0.0
            ),
        },
        "kernel_cost_us": {
            "cached": round(hit_us, 2),
            "uncached": round(miss_us, 2),
            "speedup": round(miss_us / hit_us, 2) if hit_us > 0 else 0.0,
        },
        "interp_launch_us": {
            "cached": round(interp_hit_us, 2),
            "uncached": round(interp_miss_us, 2),
            "speedup": (
                round(interp_miss_us / interp_hit_us, 2)
                if interp_hit_us > 0 else 0.0
            ),
        },
    }


def run_bench(
    mode: str = "full",
    experiments: Optional[Sequence[str]] = None,
    *,
    measure_speedup: bool = True,
    microbench: bool = True,
    log=print,
) -> dict:
    """Run the wall-clock benchmark and return one JSON-ready *run* dict."""
    from .registry import EXPERIMENTS

    fast = mode == "quick"
    names: List[str] = list(experiments) if experiments else list(EXPERIMENTS)

    from ..kernelir import compile as klcompile

    plancache.invalidate_all()
    plancache.reset_stats()
    klcompile.reset_compile_stats()
    engine = "compiled" if klcompile.jit_enabled() else "interp"
    log(
        f"[bench] timing {len(names)} experiment(s), mode={mode}, "
        f"caches on, engine={engine}"
    )
    timings = _time_suite(names, fast)
    total = sum(timings.values())
    stats = plancache.cache_stats()
    jit = klcompile.compile_stats()
    log(f"[bench] cached suite: {total:.2f}s")
    if jit["unsupported"]:
        log(
            "[bench] JIT interpreter fallbacks: "
            + "; ".join(f"{k}: {v}" for k, v in jit["unsupported"].items())
        )

    run: dict = {
        "mode": mode,
        "experiments": {k: round(v, 4) for k, v in timings.items()},
        "total_seconds": round(total, 4),
        "cache_stats": stats,
        "jit": jit,
    }

    if measure_speedup:
        plancache.invalidate_all()
        log("[bench] re-running with caches disabled (REPRO_NO_CACHE mode)")
        with plancache.caching_disabled():
            uncached = _time_suite(names, fast)
        uncached_total = sum(uncached.values())
        run["uncached_total_seconds"] = round(uncached_total, 4)
        run["speedup"] = (
            round(uncached_total / total, 2) if total > 0 else 0.0
        )
        log(
            f"[bench] uncached suite: {uncached_total:.2f}s "
            f"-> speedup {run['speedup']}x"
        )

    if microbench:
        run["microbench"] = _microbench()
    return run


# -- baseline handling --------------------------------------------------------


def load_baseline(path) -> dict:
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {doc.get('schema')!r}"
        )
    return doc


def merge_run(doc: Optional[dict], run: dict) -> dict:
    """Insert ``run`` into a schema-1 document, replacing its mode's slot."""
    if not doc:
        doc = {"schema": SCHEMA, "runs": {}}
    doc.setdefault("runs", {})[run["mode"]] = run
    return doc


def trend(run: dict, baselines: Sequence, log=print) -> None:
    """Print the wall-clock trajectory across several committed baselines.

    ``baselines`` is a sequence of ``(label, document)`` pairs in the
    order given on the command line (oldest first by convention, e.g.
    ``--compare BENCH_2.json --compare BENCH_3.json``).  For the current
    run's mode, each baseline's total and its ratio to the current run
    are printed, so the perf trajectory across PRs is visible from the
    CLI.  Purely informational — gating stays with :func:`compare`.
    """
    mode = run["mode"]
    cur_total = float(run["total_seconds"])
    log(f"[bench] trend for mode {mode!r} (current: {cur_total:.2f}s):")
    prev: Optional[float] = None
    for label, doc in baselines:
        base_run = (doc.get("runs") or {}).get(mode)
        if base_run is None:
            log(f"[bench]   {label}: no {mode!r} run recorded")
            continue
        total = float(base_run["total_seconds"])
        vs_cur = cur_total / total if total > 0 else float("inf")
        step = ""
        if prev is not None and total > 0:
            step = f", {prev / total:.2f}x vs previous baseline"
        speedup = base_run.get("speedup")
        extra = f", caching speedup {speedup}x" if speedup else ""
        log(
            f"[bench]   {label}: {total:.2f}s "
            f"(current is {vs_cur:.2f}x of it{step}{extra})"
        )
        prev = total


def compare(run: dict, baseline: dict, threshold: float = 0.30,
            log=print) -> bool:
    """True if ``run`` is within ``threshold`` of the same-mode baseline.

    A baseline without this mode is a skip (returns True with a notice),
    so a quick CI run never gets judged against a full-mode number.
    """
    base_run = (baseline.get("runs") or {}).get(run["mode"])
    if base_run is None:
        log(f"[bench] baseline has no {run['mode']!r} run; comparison skipped")
        return True
    base_total = float(base_run["total_seconds"])
    cur_total = float(run["total_seconds"])
    limit = base_total * (1.0 + threshold)
    ratio = cur_total / base_total if base_total > 0 else float("inf")
    verdict = "OK" if cur_total <= limit else "REGRESSION"
    log(
        f"[bench] {run['mode']}: {cur_total:.2f}s vs baseline "
        f"{base_total:.2f}s ({ratio:.2f}x, limit {1.0 + threshold:.2f}x) "
        f"-> {verdict}"
    )
    if "speedup" in run:
        log(f"[bench] caching speedup this run: {run['speedup']}x")
    jit = run.get("jit")
    if jit:
        launches = jit.get("launches", {})
        log(
            f"[bench] engine={jit.get('engine')}: "
            f"{launches.get('compiled', 0)} compiled launch(es), "
            f"{launches.get('interp_fallback', 0)} fallback(s), "
            f"{launches.get('interp_forced', 0)} forced-interp"
        )
    return cur_total <= limit
