"""Memory objects (``clCreateBuffer``).

A buffer carries a real numpy backing array, so every command has observable
functional semantics: writes copy data in, reads copy data out, maps return
views.  The allocation flags are honoured both functionally (USE_HOST_PTR
shares the host array's memory; COPY_HOST_PTR snapshots it) and in the
timing model (ALLOC_HOST_PTR marks the buffer pinned/host-resident — which,
on the CPU device, changes nothing, the paper's Section III-D finding).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernelir.types import DType, from_numpy
from .constants import mem_flags
from .errors import InvalidBufferSize, InvalidValue

__all__ = ["Buffer"]


class Buffer:
    """An OpenCL memory object with a numpy backing store."""

    def __init__(
        self,
        context,
        flags: mem_flags,
        *,
        size: Optional[int] = None,
        hostbuf: Optional[np.ndarray] = None,
        dtype: Optional[np.dtype] = None,
    ):
        self.context = context
        self.flags = mem_flags(flags)
        self._validate_flags(hostbuf)

        self._lazy_src: Optional[np.ndarray] = None
        if hostbuf is not None:
            if hostbuf.ndim != 1:
                raise InvalidValue("host buffers must be 1-D arrays")
            if self.flags & mem_flags.USE_HOST_PTR:
                self._array = hostbuf  # zero-copy: share host memory
            elif not hostbuf.flags.writeable:
                # COPY_HOST_PTR from an immutable source (e.g. the harness
                # data cache): the snapshot is identical whenever it is
                # taken, so defer the copy until the backing store is first
                # touched — timing-only launches never pay for it
                self._lazy_src = hostbuf
                self._array = None
            else:  # COPY_HOST_PTR (or plain initialization)
                self._array = hostbuf.copy()
        else:
            if size is None or size <= 0:
                raise InvalidBufferSize("size must be positive when no hostbuf")
            np_dtype = np.dtype(dtype or np.uint8)
            if size % np_dtype.itemsize != 0:
                raise InvalidBufferSize(
                    f"size {size} not a multiple of dtype size {np_dtype.itemsize}"
                )
            self._array = np.zeros(size // np_dtype.itemsize, dtype=np_dtype)

        self._mapped_views: list = []

    def _validate_flags(self, hostbuf) -> None:
        f = self.flags
        rw_bits = [
            bool(f & mem_flags.READ_WRITE),
            bool(f & mem_flags.READ_ONLY),
            bool(f & mem_flags.WRITE_ONLY),
        ]
        if sum(rw_bits) > 1:
            raise InvalidValue("at most one of READ_WRITE/READ_ONLY/WRITE_ONLY")
        if not any(rw_bits):
            self.flags |= mem_flags.READ_WRITE  # OpenCL default
        if (f & (mem_flags.USE_HOST_PTR | mem_flags.COPY_HOST_PTR)) and hostbuf is None:
            raise InvalidValue("USE_HOST_PTR/COPY_HOST_PTR require a hostbuf")
        if (f & mem_flags.USE_HOST_PTR) and (f & mem_flags.ALLOC_HOST_PTR):
            raise InvalidValue("USE_HOST_PTR and ALLOC_HOST_PTR are exclusive")

    # -- properties ------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The backing store (device-side view of the data)."""
        if self._array is None:
            self._array = self._lazy_src.copy()
            self._lazy_src = None
        return self._array

    @property
    def _meta(self) -> np.ndarray:
        """Shape/dtype source that never materializes a deferred snapshot."""
        return self._array if self._array is not None else self._lazy_src

    @property
    def nbytes(self) -> int:
        return self._meta.nbytes

    @property
    def size(self) -> int:
        """Size in bytes, as CL_MEM_SIZE reports."""
        return self._meta.nbytes

    @property
    def dtype(self) -> np.dtype:
        return self._meta.dtype

    @property
    def ir_dtype(self) -> DType:
        return from_numpy(self._meta.dtype)

    @property
    def pinned(self) -> bool:
        """Allocated in host-accessible (pinned) memory."""
        return bool(self.flags & (mem_flags.ALLOC_HOST_PTR | mem_flags.USE_HOST_PTR))

    @property
    def kernel_readable(self) -> bool:
        return not (self.flags & mem_flags.WRITE_ONLY)

    @property
    def kernel_writable(self) -> bool:
        return not (self.flags & mem_flags.READ_ONLY)

    def __len__(self) -> int:
        return len(self._meta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Buffer {self.nbytes}B {self.dtype} flags="
            f"{self.flags!r} pinned={self.pinned}>"
        )
