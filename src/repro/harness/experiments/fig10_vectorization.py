"""Figure 10 — performance impact of vectorization: OpenCL vs OpenMP.

Each MBench kernel runs through the OpenCL CPU runtime (implicit
cross-workitem vectorization) and, as the same IR, through the OpenMP
runtime (classic loop auto-vectorization with its legality rules).
Expected: comparable numbers where the loop vectorizes (MBench1/2); OpenCL
wins — often by about the SIMD width — where the loop vectorizer bails on
dependences, strides, gathers, or long chains (MBench3..8).
"""

from __future__ import annotations

from typing import Dict

from ...openmp import OpenMPRuntime
from ...suite import MBENCHES, MBench
from ..report import ExperimentResult, Series
from ..runner import bench_data, cpu_dut, make_buffers, measure_kernel

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    n = 1 << (16 if fast else 20)
    cpu = cpu_dut()
    omp = OpenMPRuntime(functional=False,
                        env={"OMP_NUM_THREADS": "12"})
    ocl_pts: Dict[str, float] = {}
    omp_pts: Dict[str, float] = {}
    notes = []
    for proto in MBENCHES:
        bench = MBench(
            proto.name, proto._build, proto._make_data, proto._reference,
            proto.flops_per_item, n=n,
            omp_should_vectorize=proto.omp_should_vectorize,
        )
        gs = bench.default_global_sizes[0]
        flops = float(bench.flops_per_item) * gs[0]
        m = measure_kernel(cpu, bench, gs, bench.default_local_size)
        ocl_pts[bench.name] = flops / m.mean_ns

        host, scalars = bench_data(bench, gs)
        r = omp.parallel_for(bench.kernel(), gs[0], buffers=host, scalars=scalars)
        omp_pts[bench.name] = flops / r.time_ns
        notes.append(
            f"{bench.name}: OpenMP loop vectorizer -> "
            f"{r.vectorization.explain()}"
        )
    return ExperimentResult(
        experiment_id="fig10",
        title="Performance impact of vectorization (OpenMP vs OpenCL, CPU)",
        series=[Series("OpenMP", omp_pts), Series("OpenCL", ocl_pts)],
        value_name="Gflop/s",
        notes=notes,
    )
