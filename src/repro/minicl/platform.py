"""Platform discovery.

``get_platforms()`` plays the role of ``clGetPlatformIDs``: it returns the
two platforms of the paper's Table I — an Intel-style CPU platform and an
NVIDIA-style GPU platform — each exposing one simulated device.
"""

from __future__ import annotations

from typing import List, Optional

from ..simcpu.device import CPUDeviceModel
from ..simcpu.spec import CPUSpec, XEON_E5645
from ..simgpu.device import GPUDeviceModel
from ..simgpu.spec import GPUSpec, GTX580
from .constants import device_type
from .device import Device
from .errors import InvalidDevice

__all__ = ["Platform", "get_platforms", "cpu_platform", "gpu_platform"]


class Platform:
    """One OpenCL platform (vendor implementation) with its devices."""

    def __init__(self, name: str, vendor: str, devices: List[Device]):
        self.name = name
        self.vendor = vendor
        self._devices = list(devices)

    def get_devices(self, dtype: device_type = device_type.ALL) -> List[Device]:
        out = [d for d in self._devices if d.type & dtype]
        if not out:
            raise InvalidDevice(f"no device of type {dtype!r} on {self.name}")
        return out

    @property
    def devices(self) -> List[Device]:
        return list(self._devices)

    def get_info(self) -> dict:
        return {
            "CL_PLATFORM_NAME": self.name,
            "CL_PLATFORM_VENDOR": self.vendor,
            "CL_PLATFORM_VERSION": "OpenCL 1.1 (simulated)",
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Platform {self.name!r}>"


def cpu_platform(spec: Optional[CPUSpec] = None) -> Platform:
    """The Intel-OpenCL-SDK-like CPU platform."""
    model = CPUDeviceModel(spec or XEON_E5645)
    return Platform(
        "Intel-like OpenCL Platform for CPU (simulated)",
        "repro.simcpu",
        [Device(model)],
    )


def gpu_platform(spec: Optional[GPUSpec] = None) -> Platform:
    """The NVIDIA-like GPU platform."""
    model = GPUDeviceModel(spec or GTX580)
    return Platform(
        "NVidia-like OpenCL Platform for GPU (simulated)",
        "repro.simgpu",
        [Device(model)],
    )


def get_platforms() -> List[Platform]:
    """``clGetPlatformIDs``: both platforms of the paper's testbed."""
    return [cpu_platform(), gpu_platform()]
