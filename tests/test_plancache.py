"""Unit tests for the launch-plan cache primitive."""

import pytest

from repro import plancache
from repro.plancache import (
    LaunchPlanCache,
    cache_stats,
    caching_disabled,
    caching_enabled,
    set_caching,
)


@pytest.fixture(autouse=True)
def _caching_on():
    set_caching(True)
    yield
    set_caching(True)


class TestBasics:
    def test_miss_then_hit(self):
        c = LaunchPlanCache("t.basic")
        assert c.get("k") is None
        c.put("k", 42)
        assert c.get("k") == 42
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate == 0.5

    def test_none_is_not_cacheable(self):
        c = LaunchPlanCache("t.none")
        c.put("k", None)
        assert "k" not in c

    def test_unhashable_key_is_a_miss(self):
        c = LaunchPlanCache("t.unhashable")
        c.put(["list"], 1)
        assert len(c) == 0
        assert c.get(["list"]) is None

    def test_invalidate_one_and_all(self):
        c = LaunchPlanCache("t.inval")
        c.put("a", 1)
        c.put("b", 2)
        c.invalidate("a")
        assert "a" not in c and "b" in c
        c.invalidate()
        assert len(c) == 0


class TestLRU:
    def test_evicts_least_recently_used(self):
        c = LaunchPlanCache("t.lru", maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")        # refresh a
        c.put("c", 3)     # evicts b
        assert "a" in c and "c" in c and "b" not in c

    def test_weight_bound(self):
        c = LaunchPlanCache("t.weight", maxsize=100,
                            max_weight=10, weigher=len)
        c.put("a", "xxxx")
        c.put("b", "xxxx")
        c.put("c", "xxxx")   # 12 > 10: oldest goes
        assert "a" not in c and "b" in c and "c" in c
        c.invalidate("b")
        assert c._weight == 4

    def test_overwrite_does_not_double_count_weight(self):
        c = LaunchPlanCache("t.rewrite", max_weight=100, weigher=len)
        c.put("a", "xx")
        c.put("a", "xxxx")
        assert c._weight == 4


class TestDisable:
    def test_context_manager(self):
        c = LaunchPlanCache("t.disable")
        c.put("k", 1)
        with caching_disabled():
            assert not caching_enabled()
            assert c.get("k") is None       # bypassed, counted as miss
            c.put("k2", 2)                  # no-op
        assert caching_enabled()
        assert c.get("k") == 1
        assert "k2" not in c

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not caching_enabled()
        c = LaunchPlanCache("t.env")
        c.put("k", 1)
        assert c.get("k") is None
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert caching_enabled()


class TestStats:
    def test_family_aggregation_across_instances(self):
        plancache.reset_stats()
        a = LaunchPlanCache("t.family")
        b = LaunchPlanCache("t.family")
        a.put("k", 1)
        a.get("k")
        b.get("k")   # second instance: its own miss, same family
        fam = cache_stats()["t.family"]
        assert fam["hits"] == 1 and fam["misses"] == 1
        assert fam["hit_rate"] == 0.5

    def test_instance_stats_dict(self):
        c = LaunchPlanCache("t.stats")
        c.get("missing")
        c.put("k", 1)
        c.get("k")
        assert c.stats() == {
            "hits": 1, "misses": 1, "hit_rate": 0.5, "entries": 1,
            "evictions": 0,
        }
