"""Figure 7 — mapping vs copying APIs, across all allocation-flag combos.

For every simple application, application throughput (paper Equation (1):
work / (kernel time + transfer time)) is measured with the copy APIs
(``clEnqueueWrite/ReadBuffer``) and with the mapping APIs
(``clEnqueueMapBuffer``), in all four combinations of

* kernel-access flags: READ_ONLY/WRITE_ONLY (per the kernel's use) vs
  READ_WRITE for everything;
* allocation location: device memory vs host-accessible (pinned,
  ``CL_MEM_ALLOC_HOST_PTR``).

The reported value is the *ratio* map/copy.  Expected: > 1 everywhere on the
CPU device (mapping returns a pointer into the same DRAM; copying pays a
real memcpy), growing with the data size of the app.
"""

from __future__ import annotations

from typing import Dict, List

from ... import minicl as cl
from ...suite import (
    BinomialOptionBenchmark,
    BlackScholesBenchmark,
    HistogramBenchmark,
    MatrixMulBenchmark,
    PrefixSumBenchmark,
    ReductionBenchmark,
    SquareBenchmark,
    VectorAddBenchmark,
)
from ..report import ExperimentResult, Series
from ..runner import cpu_dut, measure_app_throughput

__all__ = ["run", "COMBOS"]

#: (label, use access-specific flags, allocate host-accessible)
COMBOS = (
    ("ReadOnly or WriteOnly, Allocation on Device", True, False),
    ("ReadOnly or WriteOnly, Allocation on Host", True, True),
    ("Read Write, Allocation on Device", False, False),
    ("Read Write, Allocation on Host", False, True),
)


def _benches(fast: bool) -> List[tuple]:
    if fast:
        return [
            (SquareBenchmark(), (100_000,)),
            (VectorAddBenchmark(), (110_000,)),
            (ReductionBenchmark(), (640_000,)),
            (PrefixSumBenchmark(), (1024,)),
        ]
    return [
        (SquareBenchmark(), (1_000_000,)),
        (VectorAddBenchmark(), (1_100_000,)),
        (MatrixMulBenchmark(), (800, 1600)),
        (ReductionBenchmark(), (2_560_000,)),
        (HistogramBenchmark(), (409_600,)),
        (PrefixSumBenchmark(), (1024,)),
        (BlackScholesBenchmark(), (1280, 1280)),
        (BinomialOptionBenchmark(), (255_000,)),
    ]


def _flags_map(bench, access_specific: bool, host_alloc: bool) -> Dict[str, cl.mem_flags]:
    kernel = bench.kernel()
    flags: Dict[str, cl.mem_flags] = {}
    for p in kernel.buffer_params:
        if access_specific and p.access == "r":
            f = cl.mem_flags.READ_ONLY
        elif access_specific and p.access == "w":
            f = cl.mem_flags.WRITE_ONLY
        else:
            f = cl.mem_flags.READ_WRITE
        if host_alloc:
            f |= cl.mem_flags.ALLOC_HOST_PTR
        flags[p.name] = f
    return flags


def run(fast: bool = False) -> ExperimentResult:
    cpu = cpu_dut()
    series: Dict[str, Dict[str, float]] = {label: {} for label, _, _ in COMBOS}
    for bench, gs in _benches(fast):
        ls = bench.default_local_size
        for label, access_specific, host_alloc in COMBOS:
            fm = _flags_map(bench, access_specific, host_alloc)
            thr_copy = measure_app_throughput(
                cpu, bench, gs, ls, transfer_api="copy", flags_map=fm
            )
            thr_map = measure_app_throughput(
                cpu, bench, gs, ls, transfer_api="map", flags_map=fm
            )
            series[label][bench.name] = thr_map / thr_copy
    return ExperimentResult(
        experiment_id="fig7",
        title=(
            "Normalized application throughput of mapping over copying, all "
            "flag combinations (CPU)"
        ),
        series=[Series(k, v) for k, v in series.items()],
        value_name="throughput(map) / throughput(copy)",
    )
