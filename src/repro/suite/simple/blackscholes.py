"""``Blackscholes`` — European option pricing, the paper's compute-heavy
simple app.

Table II: global sizes 1280x1280 and 2560x2560, local 16x16 (a 2-D NDRange
over a matrix of options).  The kernel is a long straight-line dependence
chain of transcendentals, which is why (Figure 4) workgroup size barely
matters on the CPU — per-workitem work dwarfs the scheduling overhead — while
the GPU still needs large workgroups for occupancy.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import special as _sp

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32
from ..base import Benchmark

__all__ = ["BlackScholesBenchmark", "build_blackscholes_kernel"]

RISK_FREE = 0.02
VOLATILITY = 0.30
#: the kernel prices each option across a small volatility smile and
#: averages — this is what makes a Blackscholes workitem "relatively long
#: compared to other applications" (paper Section III-B2 / Figure 4)
VOL_ROUNDS = 192
VOL_STEP = 1e-4

_SQRT1_2 = 1.0 / math.sqrt(2.0)


def build_blackscholes_kernel(vol_rounds: int = VOL_ROUNDS) -> Kernel:
    kb = KernelBuilder("blackScholes", work_dim=2)
    S = kb.buffer("price", F32, access="r")
    X = kb.buffer("strike", F32, access="r")
    T = kb.buffer("years", F32, access="r")
    call = kb.buffer("call", F32, access="w")
    put = kb.buffer("put", F32, access="w")
    r = kb.scalar("riskfree", F32)
    v0 = kb.scalar("volatility", F32)

    idx = kb.let("idx", kb.global_id(1) * kb.global_size(0) + kb.global_id(0))
    s = kb.let("s", S[idx])
    x = kb.let("x", X[idx])
    t = kb.let("t", T[idx])

    sqrt_t = kb.let("sqrt_t", kb.sqrt(t))
    log_sx = kb.let("log_sx", kb.log(s / x))
    c_acc = kb.let("c_acc", kb.f32(0.0))
    e_acc = kb.let("e_acc", kb.f32(0.0))
    with kb.loop("round", 0, vol_rounds) as rnd:
        v = kb.let("v", v0 + kb.cast(rnd, F32) * kb.f32(VOL_STEP))
        d1 = kb.let(
            "d1",
            (log_sx + (r + kb.f32(0.5) * v * v) * t) / (v * sqrt_t),
        )
        d2 = kb.let("d2", d1 - v * sqrt_t)
        # cumulative normal via erf: CND(d) = 0.5 * (1 + erf(d / sqrt(2)))
        cnd1 = kb.let(
            "cnd1", kb.f32(0.5) * (kb.f32(1.0) + kb.erf(d1 * kb.f32(_SQRT1_2)))
        )
        cnd2 = kb.let(
            "cnd2", kb.f32(0.5) * (kb.f32(1.0) + kb.erf(d2 * kb.f32(_SQRT1_2)))
        )
        expRT = kb.let("expRT", kb.exp(kb.f32(0.0) - r * t))
        c_acc = kb.let("c_acc", c_acc + (s * cnd1 - x * expRT * cnd2))
        e_acc = kb.let("e_acc", e_acc + expRT)
    inv = kb.f32(1.0 / vol_rounds)
    c = kb.let("c", c_acc * inv)
    e = kb.let("e", e_acc * inv)
    call[idx] = c
    put[idx] = c - s + x * e  # put-call parity on the averaged price
    return kb.finish()


class BlackScholesBenchmark(Benchmark):
    name = "Blackscholes"
    work_dim = 2
    default_global_sizes = ((1280, 1280), (2560, 2560))
    default_local_size = (16, 16)
    supports_coalescing = False

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("Blackscholes does not support workitem coalescing")
        return build_blackscholes_kernel()

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(np.prod(global_size))

        def uniform(scale, shift):
            a = rng.random(n, dtype=np.float32)
            a *= np.float32(scale)
            a += np.float32(shift)
            return a

        return (
            {
                "price": uniform(95.0, 5.0),
                "strike": uniform(99.0, 1.0),
                "years": uniform(9.75, 0.25),
                "call": np.zeros(n, dtype=np.float32),
                "put": np.zeros(n, dtype=np.float32),
            },
            {"riskfree": RISK_FREE, "volatility": VOLATILITY},
        )

    def reference(self, buffers, scalars, global_size):
        s = buffers["price"].astype(np.float64)
        x = buffers["strike"].astype(np.float64)
        t = buffers["years"].astype(np.float64)
        r = float(scalars["riskfree"])
        v0 = float(scalars["volatility"])
        sqrt_t = np.sqrt(t)
        log_sx = np.log(s / x)
        cnd = lambda d: 0.5 * (1.0 + _sp.erf(d * _SQRT1_2))  # noqa: E731
        exp_rt = np.exp(-r * t)
        c_acc = np.zeros_like(s)
        for rnd in range(VOL_ROUNDS):
            v = np.float32(v0) + np.float32(rnd) * np.float32(VOL_STEP)
            v = float(v)
            d1 = (log_sx + (r + 0.5 * v * v) * t) / (v * sqrt_t)
            d2 = d1 - v * sqrt_t
            c_acc += s * cnd(d1) - x * exp_rt * cnd(d2)
        call = c_acc / VOL_ROUNDS
        put = call - s + x * exp_rt
        return {
            "call": call.astype(np.float32),
            "put": put.astype(np.float32),
        }
