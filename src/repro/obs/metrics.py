"""Process-wide metrics: counters, gauges and histograms in one registry.

Before this module existed the repo's runtime statistics were scattered:
:func:`repro.plancache.cache_stats` kept per-cache-family hit rates,
:func:`repro.kernelir.compile.compile_stats` kept JIT activity, the
harness's ``DiagnosticTally`` counted verifier findings per experiment,
and ``repro bench`` re-assembled ad-hoc dicts from all three.  The
:class:`MetricsRegistry` unifies them: every source *absorbs* into the
same namespaced instruments, one ``snapshot()`` serializes everything,
and the trace exporter embeds that snapshot in the Chrome-trace JSON.

Naming convention (dots namespace the source):

* ``plancache.<family>.{hits,misses,hit_rate}`` — launch-plan caches;
* ``jit.{kernels_compiled,kernels_unsupported}`` and
  ``jit.launches.{compiled,interp_fallback,interp_forced}``;
* ``verify.{errors,warnings,notes,launches}`` — static-verifier tallies;
* ``experiment.seconds`` (histogram) and ``experiment.<name>.seconds``
  (gauge) — harness wall clock;
* ``trace.commands`` etc. — the tracer's own self-accounting.

The module-level :data:`REGISTRY` is the default sink used by the
instrumentation hooks; tests build private registries.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
]


@dataclasses.dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {n}")
        self.value += n


@dataclasses.dataclass
class Gauge:
    """A last-write-wins sampled value."""

    name: str
    value: Optional[float] = None

    def set(self, v: float) -> None:
        self.value = float(v)


@dataclasses.dataclass
class Histogram:
    """Streaming summary of an observed distribution (no buckets kept)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Namespaced counters/gauges/histograms with a JSON-ready snapshot."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) ----------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- absorption of the pre-existing stat sources ----------------------------
    def absorb_cache_stats(self, stats: Optional[dict] = None) -> None:
        """Pull :func:`repro.plancache.cache_stats` into gauges."""
        if stats is None:
            from .. import plancache

            stats = plancache.cache_stats()
        for family, c in stats.items():
            self.gauge(f"plancache.{family}.hits").set(c["hits"])
            self.gauge(f"plancache.{family}.misses").set(c["misses"])
            self.gauge(f"plancache.{family}.hit_rate").set(c["hit_rate"])

    def absorb_jit_stats(self, stats: Optional[dict] = None) -> None:
        """Pull :func:`repro.kernelir.compile.compile_stats` into gauges."""
        if stats is None:
            from ..kernelir import compile as klcompile

            stats = klcompile.compile_stats()
        self.gauge("jit.kernels_compiled").set(stats["kernels_compiled"])
        self.gauge("jit.kernels_unsupported").set(stats["kernels_unsupported"])
        for k in ("kernels_loaded_disk", "plans_loaded_disk"):
            if k in stats:
                self.gauge(f"jit.{k}").set(stats[k])
        for k, v in stats["launches"].items():
            self.gauge(f"jit.launches.{k}").set(v)

    def absorb_disk_cache_stats(self, stats: Optional[dict] = None) -> None:
        """Pull :func:`repro.diskcache.disk_cache_stats` into gauges."""
        if stats is None:
            from .. import diskcache

            stats = diskcache.disk_cache_stats()
        for k, v in stats.items():
            self.gauge(f"diskcache.{k}").set(v)

    def absorb_scheduler_stats(self, stats: Optional[dict] = None) -> None:
        """Pull :func:`repro.minicl.schedule.scheduler_stats` into gauges."""
        if stats is None:
            from ..minicl import schedule as clschedule

            stats = clschedule.scheduler_stats()
        for k, v in stats.items():
            self.gauge(f"scheduler.{k}").set(v)

    def absorb_analysis_stats(self, stats: Optional[dict] = None) -> None:
        """Pull :func:`repro.kernelir.dataflow.analysis_stats` into gauges."""
        if stats is None:
            from ..kernelir import dataflow

            stats = dataflow.analysis_stats()
        for k, v in stats.items():
            self.gauge(f"analysis.{k}").set(v)

    def absorb_serve_stats(self, stats: Optional[dict] = None) -> None:
        """Pull :func:`repro.serve.service.serve_stats` into gauges."""
        if stats is None:
            from ..serve.service import serve_stats

            stats = serve_stats()
        for k, v in stats.items():
            self.gauge(f"serve.totals.{k}").set(v)

    def absorb_data_plane_stats(self, pool: Optional[dict] = None,
                                shm: Optional[dict] = None) -> None:
        """Pull the zero-copy data plane's counters into gauges —
        :func:`repro.workers.pool_stats` under ``pool.*`` and
        :func:`repro.shm.shm_stats` under ``shm.*``."""
        if pool is None:
            from .. import workers

            pool = workers.pool_stats()
        if shm is None:
            from .. import shm as shm_mod

            shm = shm_mod.shm_stats()
        for k, v in pool.items():
            self.gauge(f"pool.{k}").set(v)
        for k, v in shm.items():
            self.gauge(f"shm.{k}").set(v)

    def absorb_tune_stats(self, stats: Optional[dict] = None) -> None:
        """Pull :func:`repro.tune.tune_stats` into gauges."""
        if stats is None:
            from ..tune import tune_stats

            stats = tune_stats()
        for k, v in stats.items():
            self.gauge(f"tune.{k}").set(v)

    def absorb_verifier_tally(self, tally) -> None:
        """Accumulate one experiment's ``DiagnosticTally`` into counters."""
        self.counter("verify.launches").inc(tally.launches)
        for severity, n in tally.counts.items():
            self.counter(f"verify.{severity}s").inc(n)

    def observe_experiment(self, name: str, seconds: float) -> None:
        """Record one harness experiment's wall-clock duration."""
        self.histogram("experiment.seconds").observe(seconds)
        self.gauge(f"experiment.{name}.seconds").set(round(seconds, 4))
        self.counter("experiment.runs").inc()

    # -- serialization ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every instrument, sorted by name."""
        return {
            "counters": {
                k: c.value for k, c in sorted(self._counters.items())
            },
            "gauges": {
                k: g.value for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                k: {
                    "count": h.count,
                    "total": round(h.total, 6),
                    "mean": round(h.mean, 6),
                    "min": h.min,
                    "max": h.max,
                }
                for k, h in sorted(self._histograms.items())
            },
        }


#: default process-wide registry used by the instrumentation hooks
REGISTRY = MetricsRegistry()
