"""Tests for event wait lists, markers/barriers, and out-of-order queues."""

import numpy as np
import pytest

from repro import minicl as cl


@pytest.fixture
def ctx():
    return cl.Context(cl.cpu_platform().devices)


def _buf(ctx, n=1 << 16):
    return ctx.create_buffer(
        cl.mem_flags.READ_WRITE, size=4 * n, dtype=np.float32
    ), np.zeros(n, np.float32)


class TestInOrderWaitLists:
    def test_wait_list_can_delay_start(self, ctx):
        q1 = ctx.create_command_queue()
        q2 = ctx.create_command_queue()
        b1, h1 = _buf(ctx)
        b2, h2 = _buf(ctx)
        slow = q1.enqueue_write_buffer(b1, h1)
        # q2 is fresh (t=0) but must wait for q1's event
        dep = q2.enqueue_write_buffer(b2, h2, wait_for=[slow])
        assert dep.profile.start >= slow.profile.end

    def test_in_order_queue_serializes_without_wait_list(self, ctx):
        q = ctx.create_command_queue()
        b, h = _buf(ctx)
        e1 = q.enqueue_write_buffer(b, h)
        e2 = q.enqueue_write_buffer(b, h)
        assert e2.profile.start == e1.profile.end


class TestOutOfOrderQueue:
    def test_independent_commands_overlap(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b1, h1 = _buf(ctx)
        b2, h2 = _buf(ctx)
        e1 = q.enqueue_write_buffer(b1, h1)
        e2 = q.enqueue_write_buffer(b2, h2)
        assert e2.profile.start == e1.profile.start  # concurrent

    def test_wait_list_orders_dependents(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b1, h1 = _buf(ctx)
        b2, h2 = _buf(ctx)
        e1 = q.enqueue_write_buffer(b1, h1)
        e2 = q.enqueue_write_buffer(b2, h2, wait_for=[e1])
        assert e2.profile.start == e1.profile.end

    def test_barrier_floors_later_commands(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b1, h1 = _buf(ctx)
        e1 = q.enqueue_write_buffer(b1, h1)
        bar = q.enqueue_barrier()
        e2 = q.enqueue_write_buffer(b1, h1)
        assert bar.profile.end >= e1.profile.end
        assert e2.profile.start >= bar.profile.end

    def test_finish_reports_latest_end(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b1, h1 = _buf(ctx)
        b2, h2 = _buf(ctx, 1 << 20)  # much larger: later end
        q.enqueue_write_buffer(b1, h1)
        big = q.enqueue_write_buffer(b2, h2)
        assert q.finish() == big.profile.end


class TestSubmitSemantics:
    """QUEUED -> SUBMIT -> START -> END must be distinct, ordered stages.

    SUBMIT is when the runtime hands the command to the device, i.e. once
    its wait list resolves; on this simulator the device is idle at
    hand-off so START == SUBMIT, but SUBMIT is *not* hardcoded to QUEUED.
    """

    def test_profile_ordering_invariant(self, ctx):
        q = ctx.create_command_queue()
        b, h = _buf(ctx)
        p = q.enqueue_write_buffer(b, h).profile
        assert p.queued <= p.submit <= p.start <= p.end

    def test_unblocked_command_submits_at_enqueue(self, ctx):
        q = ctx.create_command_queue()
        b, h = _buf(ctx)
        p = q.enqueue_write_buffer(b, h).profile
        assert p.submit == p.queued
        assert p.queue_delay_ns == 0.0

    def test_cross_queue_wait_delays_submit_not_queued(self, ctx):
        q1 = ctx.create_command_queue()
        q2 = ctx.create_command_queue()
        b1, h1 = _buf(ctx)
        b2, h2 = _buf(ctx)
        slow = q1.enqueue_write_buffer(b1, h1)
        # q2 is fresh (its clock is at 0) so the command is QUEUED at 0,
        # but the runtime only hands it to the device (SUBMIT) once the
        # other queue's event resolves
        dep = q2.enqueue_write_buffer(b2, h2, wait_for=[slow])
        p = dep.profile
        assert p.queued == 0.0
        assert p.queued < p.submit == slow.profile.end
        assert p.start == p.submit
        assert p.queue_delay_ns == slow.profile.end

    def test_out_of_order_wait_list_delays_submit(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b1, h1 = _buf(ctx)
        b2, h2 = _buf(ctx)
        e1 = q.enqueue_write_buffer(b1, h1)
        dep = q.enqueue_write_buffer(b2, h2, wait_for=[e1])
        assert dep.profile.queued < dep.profile.submit == e1.profile.end
        # an independent command submits immediately
        free = q.enqueue_write_buffer(b2, h2)
        assert free.profile.submit == free.profile.queued


class TestMarker:
    def test_marker_completes_with_all_prior_work(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b1, h1 = _buf(ctx)
        b2, h2 = _buf(ctx, 1 << 20)
        q.enqueue_write_buffer(b1, h1)
        big = q.enqueue_write_buffer(b2, h2)
        m = q.enqueue_marker()
        assert m.profile.end == big.profile.end
        assert m.duration_ns == 0.0

    def test_marker_with_explicit_list(self, ctx):
        q = ctx.create_command_queue(out_of_order=True)
        b1, h1 = _buf(ctx)
        e1 = q.enqueue_write_buffer(b1, h1)
        q.enqueue_write_buffer(b1, h1)
        m = q.enqueue_marker(wait_for=[e1])
        assert m.profile.end == e1.profile.end

    def test_kernel_respects_wait_list(self, ctx):
        from repro.kernelir.builder import KernelBuilder
        from repro.kernelir.types import F32

        kb = KernelBuilder("s")
        x = kb.buffer("x", F32)
        x[kb.global_id(0)] = x[kb.global_id(0)] * 2.0
        k = ctx.create_program(kb.finish()).create_kernel("s")

        q = ctx.create_command_queue(out_of_order=True)
        b, h = _buf(ctx, 1024)
        k.set_args(b)
        w = q.enqueue_write_buffer(b, np.ones(1024, np.float32))
        ev = q.enqueue_nd_range_kernel(k, (1024,), (64,), wait_for=[w])
        assert ev.profile.start == w.profile.end
        ev.wait()  # the OOO engine defers execution until a sync point
        assert (b.array == 2.0).all()
