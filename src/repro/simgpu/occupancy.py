"""Occupancy calculation: how many workgroups and warps fit per SM.

Mirrors NVIDIA's occupancy calculator for the Fermi generation: a workgroup
is resident on exactly one SM (the paper's Section II-A), and the number of
resident workgroups is limited by the thread, warp, workgroup-slot and shared
memory budgets.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

from .spec import GPUSpec

__all__ = ["Occupancy", "compute_occupancy"]


@dataclasses.dataclass(frozen=True)
class Occupancy:
    """Resident state of one SM for a given kernel configuration."""

    workgroup_size: int
    warps_per_workgroup: int
    workgroups_per_sm: int
    #: which resource bound the residency ("threads"/"slots"/"shared"/"warps")
    limiter: str
    #: lanes actually used in the workgroup's warps (tail-warp waste)
    lane_efficiency: float

    @property
    def active_warps(self) -> int:
        return self.workgroups_per_sm * self.warps_per_workgroup

    @property
    def active_threads(self) -> int:
        return self.workgroups_per_sm * self.workgroup_size

    @property
    def occupancy(self) -> float:
        """Fraction of the SM's maximum resident warps (the classic metric)."""
        return 0.0 if self.workgroups_per_sm == 0 else self.active_warps / 48.0


def compute_occupancy(
    spec: GPUSpec, workgroup_size: int, shared_bytes_per_wg: int = 0
) -> Occupancy:
    """Residency of one SM for workgroups of ``workgroup_size`` threads."""
    if workgroup_size <= 0:
        raise ValueError("workgroup size must be positive")
    if workgroup_size > spec.max_threads_per_sm:
        raise ValueError(
            f"workgroup of {workgroup_size} exceeds the SM thread limit "
            f"{spec.max_threads_per_sm}"
        )
    if shared_bytes_per_wg > spec.shared_mem_per_sm:
        raise ValueError(
            f"workgroup needs {shared_bytes_per_wg}B shared memory; SM has "
            f"{spec.shared_mem_per_sm}B"
        )
    warps_per_wg = math.ceil(workgroup_size / spec.warp_size)

    limits = {
        "threads": spec.max_threads_per_sm // workgroup_size,
        "slots": spec.max_workgroups_per_sm,
        "warps": spec.max_warps_per_sm // warps_per_wg,
    }
    if shared_bytes_per_wg > 0:
        limits["shared"] = spec.shared_mem_per_sm // shared_bytes_per_wg
    wgs = max(1, min(limits.values()))
    limiter = min(limits, key=limits.get)
    lane_eff = workgroup_size / (warps_per_wg * spec.warp_size)
    return Occupancy(
        workgroup_size=workgroup_size,
        warps_per_workgroup=warps_per_wg,
        workgroups_per_sm=wgs,
        limiter=limiter,
        lane_efficiency=lane_eff,
    )
